"""Export experiment data for external plotting (CSV / JSON).

The plain-text reports are for terminals; a downstream user replotting
the figures wants machine-readable series.  These writers take any
:class:`~repro.reporting.experiments.ExperimentResult` and dump its
``data`` payload -- series experiments become tidy CSV (one row per x
value, one column per series), everything becomes JSON.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from .experiments import ExperimentResult

__all__ = ["to_json", "to_csv", "export_experiment"]


def _jsonable(value):
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def to_json(result: ExperimentResult, path: Path | str) -> Path:
    """Write the experiment's full data payload as JSON."""
    path = Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "data": _jsonable(result.data),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _series_columns(data: dict) -> tuple[str, Sequence, dict] | None:
    """Detect a (x-key, x-values, {series: values}) layout in ``data``."""
    for x_key in ("n", "log2_stride", "threads"):
        x = data.get(x_key)
        if not isinstance(x, (list, tuple)):
            continue
        series = {
            k: v
            for k, v in data.items()
            if k != x_key and isinstance(v, (list, tuple)) and len(v) == len(x)
        }
        if series:
            return x_key, x, series
    return None


def to_csv(result: ExperimentResult, path: Path | str) -> Path:
    """Write a series experiment as tidy CSV.

    Raises ``ValueError`` for experiments whose data is not a flat series
    (use :func:`to_json` for those).
    """
    layout = _series_columns(result.data)
    if layout is None:
        raise ValueError(
            f"experiment {result.experiment_id!r} has no flat series; "
            "export it as JSON instead"
        )
    x_key, x, series = layout
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_key, *series.keys()])
        for i, xv in enumerate(x):
            writer.writerow([xv, *(s[i] for s in series.values())])
    return path


def export_experiment(
    result: ExperimentResult, directory: Path | str
) -> list[Path]:
    """Write JSON (always) and CSV (when the data is a series)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = [to_json(result, directory / f"{result.experiment_id}.json")]
    try:
        written.append(to_csv(result, directory / f"{result.experiment_id}.csv"))
    except ValueError:
        pass
    return written
