"""Every number the paper publishes, for side-by-side comparison.

These are transcription targets, not assertions: the benchmark harness
prints paper-vs-measured for each artefact, and EXPERIMENTS.md records
the comparison.  Where the paper gives a curve we keep the anchor points
that define its shape.
"""

from __future__ import annotations

__all__ = [
    "TABLE_I",
    "TABLE_II",
    "TABLE_III",
    "TABLE_IV",
    "TABLE_V",
    "TABLE_VII",
    "FIGURE_2_ANCHORS",
    "FIGURE_4_ANCHORS",
    "FIGURE_9_ANCHORS",
    "HEADLINE_SPEEDUPS",
]

#: Table I: NVIDIA GF100 / Quadro 6000 summary.
TABLE_I = {
    "Number of multiprocessors (SIMT unit)": 14,
    "Total number of FPUs": 448,
    "Core clock rate (GHz)": 1.15,
    "Max registers per FPU": 64,
    "Shared memory per SIMT unit (kB)": 64,
    "Global memory bandwidth (GB/s)": 144,
    "Global memory size (GB)": 6,
    "Peak SP flops (TFlop/s)": 1.03,
    "Peak SP per FPU (GFlop/s)": 2.3,
}

#: Table II: achieved bandwidths (GB/s).
TABLE_II = {
    "Shared memory (per core)": 62.8,
    "Shared memory (all cores)": 880.0,
    "Global memory": 108.0,
    # Quoted in the text rather than the table:
    "Global memory (cudaMemcpy)": 84.0,
    "Theoretical shared peak": 1030.0,
}

#: Table III: latencies (cycles).
TABLE_III = {
    "Shared memory": 27,
    "Global memory": 570,
    # Quoted in the text:
    "Shared via generic LD penalty": 14,
    "Shift + shared load combination": 45,
    "G80 shared (Volkov)": 36,
}

#: Table IV: model parameters.
TABLE_IV = {
    "alpha_glb (cycles)": 570,
    "global bandwidth (GB/s)": 108,
    "alpha_sh (cycles)": 27,
    "shared bandwidth (GB/s)": 880,
    "alpha_sync 64 threads (cycles)": 46,
    "gamma (cycles)": 18,
}

#: Table V: 56x56 SP cycle counts (load / compute / store).
TABLE_V = {
    "lu": {"load": 8800, "compute": 68250, "store": 8740},
    "qr": {"load": 9120, "compute": 150203, "store": 9762},
}

#: Table VII: RT_STAP complex QR results.
TABLE_VII = [
    {"size": "80x16", "matrices": 384, "gpu_gflops": 134, "mkl_gflops": 5.4,
     "speedup": 25.0},
    {"size": "240x66", "matrices": 128, "gpu_gflops": 99, "mkl_gflops": 36.0,
     "speedup": 2.8},
    {"size": "192x96", "matrices": 128, "gpu_gflops": 98, "mkl_gflops": 27.0,
     "speedup": 3.6},
]

#: Figure 2 anchors: (threads/SM, sync cycles).
FIGURE_2_ANCHORS = [(64, 46), (1024, 175)]

#: Figure 4 anchors: (n, GFLOPS) for the one-problem-per-thread QR curve.
FIGURE_4_ANCHORS = {
    "qr_peak": (7, 126),  # the worked example
    "post_spill_band": (12, (40, 90)),  # flat DRAM-speed region
}

#: Figure 9 anchors: per-block QR GFLOPS bands.
FIGURE_9_ANCHORS = {
    56: (160, 220),
    80: (110, 160),  # after the 64->256 thread switch
    144: (130, 250),
}

#: The abstract's headline comparisons for 5000 56x56 SP QRs.
HEADLINE_SPEEDUPS = {
    "vs_mkl": 29.0,
    "vs_gpu_library": 140.0,
    "stap_range": (2.8, 25.0),
}
