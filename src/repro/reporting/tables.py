"""Plain-text table and series rendering for the benchmark harness.

No plotting dependencies: figures are emitted as aligned numeric series
(the same rows a gnuplot script would consume) plus a coarse ASCII chart
for quick eyeballing in terminal output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "ascii_chart", "format_comparison"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def format_series(
    x: Sequence[object],
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render one or more y-series against a shared x column."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv, *(s[i] for s in series.values())])
    return format_table(headers, rows, title=title)


def ascii_chart(
    x: Sequence[object],
    y: Sequence[float],
    width: int = 48,
    label: str = "",
) -> str:
    """A coarse horizontal bar chart: one row per x value."""
    if len(x) != len(y):
        raise ValueError("x and y lengths differ")
    top = max(max(y), 1e-300)
    lines = [label] if label else []
    for xv, yv in zip(x, y):
        bar = "#" * max(0, round(width * yv / top))
        lines.append(f"{str(xv):>8}  {bar} {_fmt(float(yv))}")
    return "\n".join(lines)


def format_comparison(
    rows: Iterable[tuple[str, object, object]],
    title: str | None = None,
) -> str:
    """Paper-vs-measured table with a ratio column where both are numeric."""
    out_rows = []
    for name, paper, measured in rows:
        ratio = ""
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)):
            if paper:
                ratio = f"{measured / paper:.2f}x"
        out_rows.append([name, paper, measured, ratio])
    return format_table(
        ["quantity", "paper", "measured", "ratio"], out_rows, title=title
    )
