"""Experiment registry and plain-text reporting."""

from ..observe.attribution import (
    AttributionReport,
    attribute_launch,
    format_attribution,
)
from .export import export_experiment, to_csv, to_json
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    run_experiment,
)
from .tables import ascii_chart, format_comparison, format_series, format_table

__all__ = [
    "EXPERIMENTS",
    "export_experiment",
    "to_csv",
    "to_json",
    "ExperimentResult",
    "list_experiments",
    "run_experiment",
    "ascii_chart",
    "format_comparison",
    "format_series",
    "format_table",
    "AttributionReport",
    "attribute_launch",
    "format_attribution",
]
