"""Experiment registry: one runner per table/figure of the paper.

Each runner regenerates its artefact on the simulated substrate and
returns an :class:`ExperimentResult` carrying the raw data plus a
rendered plain-text report with the paper's numbers alongside.  The
``benchmarks/`` harness and EXPERIMENTS.md are generated from these.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from ..approaches import (
    CpuLapackApproach,
    HybridBlockedApproach,
    PerBlockApproach,
    PerThreadApproach,
    Workload,
)
from ..gpu.device import QUADRO_6000, DeviceSpec
from ..kernels.batched import diagonally_dominant_batch, random_batch
from ..kernels.device import per_block_lu, per_block_qr
from ..layouts import compare_layouts
from ..microbench import (
    calibrate,
    measure_global_bandwidth,
    measure_shared_bandwidth,
    measure_shared_latency,
    plateau_latency,
    sweep_global_latency,
    sweep_sync_latency,
)
from ..model import (
    ModelParameters,
    panel_breakdown,
    predict_per_block,
    predict_per_thread,
)
from ..model.per_block_model import estimate_lu_column, estimate_qr_column
from ..model.block_config import block_config
from ..stap.benchmark import run_table7
from . import paper_values as paper
from .tables import format_comparison, format_series, format_table

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    experiment_id: str
    title: str
    report: str
    data: dict


def _params(device: DeviceSpec) -> ModelParameters:
    return calibrate(device)


# ----------------------------------------------------------------------
# Tables I-IV: device characterization
# ----------------------------------------------------------------------
def run_table1(device: DeviceSpec = QUADRO_6000) -> ExperimentResult:
    """Table I: chip summary."""
    measured = {
        "Number of multiprocessors (SIMT unit)": device.num_sms,
        "Total number of FPUs": device.total_fpus,
        "Core clock rate (GHz)": device.clock_hz / 1e9,
        "Max registers per FPU": device.max_registers_per_thread,
        "Shared memory per SIMT unit (kB)": (
            (device.shared_mem_per_sm + device.l1_bytes) // 1024
        ),
        "Global memory bandwidth (GB/s)": device.global_bandwidth / 1e9,
        "Global memory size (GB)": device.global_mem_bytes / 1024**3,
        "Peak SP flops (TFlop/s)": device.peak_sp_flops / 1e12,
        "Peak SP per FPU (GFlop/s)": device.peak_sp_per_fpu / 1e9,
    }
    rows = [(k, paper.TABLE_I[k], measured[k]) for k in paper.TABLE_I]
    report = format_comparison(rows, title="Table I: device summary")
    return ExperimentResult("table1", "Device summary", report, {"rows": measured})


def run_table2(device: DeviceSpec = QUADRO_6000) -> ExperimentResult:
    """Table II: bandwidth of each level of the memory hierarchy."""
    shared = measure_shared_bandwidth(device)
    glbl = measure_global_bandwidth(device)
    measured = {
        "Shared memory (per core)": shared.per_sm_bandwidth / 1e9,
        "Shared memory (all cores)": shared.total_bandwidth / 1e9,
        "Global memory": glbl.copy_bandwidth / 1e9,
        "Global memory (cudaMemcpy)": glbl.memcpy_bandwidth / 1e9,
        "Theoretical shared peak": device.peak_shared_bandwidth / 1e9,
    }
    rows = [(k, paper.TABLE_II[k], measured[k]) for k in paper.TABLE_II]
    report = format_comparison(rows, title="Table II: bandwidths (GB/s)")
    return ExperimentResult("table2", "Memory bandwidths", report, measured)


def run_table3(device: DeviceSpec = QUADRO_6000) -> ExperimentResult:
    """Table III: latency of each level of the memory hierarchy."""
    from ..gpu.device import G80

    shared = measure_shared_latency(device)
    measured = {
        "Shared memory": shared.latency_cycles,
        "Global memory": plateau_latency(device),
        "Shared via generic LD penalty": shared.generic_ld_penalty,
        "Shift + shared load combination": shared.combined_cycles,
        "G80 shared (Volkov)": measure_shared_latency(G80).latency_cycles,
    }
    rows = [(k, paper.TABLE_III[k], measured[k]) for k in paper.TABLE_III]
    report = format_comparison(rows, title="Table III: latencies (cycles)")
    return ExperimentResult("table3", "Memory latencies", report, measured)


def run_table4(device: DeviceSpec = QUADRO_6000) -> ExperimentResult:
    """Table IV: the calibrated model parameters."""
    params = _params(device)
    measured = {
        "alpha_glb (cycles)": params.alpha_glb,
        "global bandwidth (GB/s)": params.global_bandwidth / 1e9,
        "alpha_sh (cycles)": params.alpha_sh,
        "shared bandwidth (GB/s)": params.shared_bandwidth / 1e9,
        "alpha_sync 64 threads (cycles)": params.alpha_sync,
        "gamma (cycles)": params.gamma,
    }
    rows = [(k, paper.TABLE_IV[k], measured[k]) for k in paper.TABLE_IV]
    report = format_comparison(rows, title="Table IV: model parameters")
    return ExperimentResult("table4", "Model parameters", report, measured)


# ----------------------------------------------------------------------
# Figures 1-2: microbenchmark sweeps
# ----------------------------------------------------------------------
def run_fig1(device: DeviceSpec = QUADRO_6000, hops: int = 512) -> ExperimentResult:
    """Figure 1: global latency vs log2(stride)."""
    sweep = sweep_global_latency(device, hops=hops)
    log2 = [s for s, _ in sweep.series()]
    lats = [lat for _, lat in sweep.series()]
    report = format_series(
        log2,
        {"latency (cycles)": lats},
        x_label="log2(stride)",
        title="Figure 1: global memory latency vs access stride",
    )
    return ExperimentResult(
        "fig1",
        "Global latency vs stride",
        report,
        {"log2_stride": log2, "latency": lats},
    )


def run_fig2(device: DeviceSpec = QUADRO_6000) -> ExperimentResult:
    """Figure 2: synchronization latency vs threads per SM."""
    sweep = sweep_sync_latency(device)
    threads = list(sweep.thread_counts)
    lats = list(sweep.latencies)
    report = format_series(
        threads,
        {"sync latency (cycles)": lats},
        x_label="threads/SM",
        title="Figure 2: synchronization latency",
    )
    return ExperimentResult(
        "fig2", "Sync latency vs threads", report, {"threads": threads, "latency": lats}
    )


# ----------------------------------------------------------------------
# Figure 4: one problem per thread
# ----------------------------------------------------------------------
def run_fig4(
    device: DeviceSpec = QUADRO_6000, batch: int = 256, sizes=range(3, 13)
) -> ExperimentResult:
    """Figure 4: per-thread QR/LU, measured vs predicted, n = 3..12."""
    from ..kernels.device import per_thread_factor

    params = _params(device)
    ns, data = list(sizes), {"qr_measured": [], "qr_predicted": [],
                             "lu_measured": [], "lu_predicted": []}
    for n in ns:
        a = random_batch(batch, n, n, dtype=np.float32, seed=n)
        data["qr_measured"].append(per_thread_factor(a, "qr", device).gflops)
        data["lu_measured"].append(per_thread_factor(a, "lu", device).gflops)
        data["qr_predicted"].append(predict_per_thread(params, "qr", n).gflops)
        data["lu_predicted"].append(predict_per_thread(params, "lu", n).gflops)
    report = format_series(
        ns,
        {k: v for k, v in data.items()},
        x_label="n",
        title="Figure 4: one-problem-per-thread GFLOPS (64000-problem batches)",
    )
    return ExperimentResult("fig4", "Per-thread performance", report, {"n": ns, **data})


# ----------------------------------------------------------------------
# Figure 7: layouts
# ----------------------------------------------------------------------
def run_fig7(
    device: DeviceSpec = QUADRO_6000, sizes=range(16, 97, 16)
) -> ExperimentResult:
    """Figure 7: 1D vs 2D layouts for the QR solver."""
    params = _params(device)
    ns = list(sizes)
    series = {"2D cyclic": [], "1D column cyclic": [], "1D row cyclic": []}
    for n in ns:
        res = compare_layouts(params, n)
        series["2D cyclic"].append(res["cyclic2d"].gflops)
        series["1D column cyclic"].append(res["column_cyclic"].gflops)
        series["1D row cyclic"].append(res["row_cyclic"].gflops)
    report = format_series(
        ns, series, x_label="n",
        title="Figure 7: QR solve GFLOPS under the three data layouts",
    )
    return ExperimentResult("fig7", "Layout comparison", report, {"n": ns, **series})


# ----------------------------------------------------------------------
# Table V / Figure 8: the 56x56 deep dive
# ----------------------------------------------------------------------
def run_table5(device: DeviceSpec = QUADRO_6000, batch: int = 2) -> ExperimentResult:
    """Table V: load/compute/store cycles for 56x56 LU and QR."""
    lu = per_block_lu(diagonally_dominant_batch(batch, 56, dtype=np.float32), device)
    qr = per_block_qr(random_batch(batch, 56, 56, dtype=np.float32), device)
    rows = []
    measured = {}
    for name, res in (("lu", lu), ("qr", qr)):
        load = res.phase_cycles("load")["load"]
        store = res.phase_cycles("store")["store"]
        compute = res.cycles - load - store
        measured[name] = {"load": load, "compute": compute, "store": store}
        for phase in ("load", "compute", "store"):
            rows.append(
                (f"{name.upper()} {phase}", paper.TABLE_V[name][phase],
                 round(measured[name][phase]))
            )
    report = format_comparison(rows, title="Table V: 56x56 cycle counts")
    return ExperimentResult("table5", "56x56 cycle counts", report, measured)


def run_fig8(device: DeviceSpec = QUADRO_6000, batch: int = 2) -> ExperimentResult:
    """Figure 8: per-panel cycles, measured (engine) and modeled."""
    qr = per_block_qr(random_batch(batch, 56, 56, dtype=np.float32), device)
    measured = qr.panel_breakdown()
    params = _params(device)
    modeled = panel_breakdown(predict_per_block(params, "qr", 56))
    ops = ["Form HH Vector", "Matrix-Vector Multiply", "Rank-1 Update"]
    rows = []
    for i, (mp, md) in enumerate(zip(measured, modeled), start=1):
        for op in ops:
            rows.append([i, op, round(mp.get(op, 0)), round(md.get(op, 0))])
    report = format_table(
        ["panel", "operation", "measured cycles", "modeled cycles"],
        rows,
        title="Figure 8: 56x56 QR per-panel breakdown",
    )
    return ExperimentResult(
        "fig8", "Per-panel breakdown", report,
        {"measured": measured, "modeled": modeled},
    )


def run_table6(device: DeviceSpec = QUADRO_6000) -> ExperimentResult:
    """Table VI: the per-column model estimates, evaluated at 56x56."""
    params = _params(device)
    cfg = block_config(56, 56)
    rows = []
    for kind, estimator in (("LU", estimate_lu_column), ("QR", estimate_qr_column)):
        est = estimator(params, cfg, 0)
        for op in est.ops:
            rows.append(
                [kind, op.name, round(op.flops_cycles), round(op.shared_cycles),
                 round(op.sync_cycles), round(op.total)]
            )
    report = format_table(
        ["kind", "operation", "flops cyc", "shared cyc", "sync cyc", "total"],
        rows,
        title="Table VI: per-column estimates at 56x56 (first column, N=7)",
    )
    return ExperimentResult("table6", "Model estimates", report, {"rows": rows})


# ----------------------------------------------------------------------
# Figure 9: one problem per block
# ----------------------------------------------------------------------
def run_fig9(
    device: DeviceSpec = QUADRO_6000, sizes=range(8, 145, 8)
) -> ExperimentResult:
    """Figure 9: per-block LU/QR, measured (replay) vs predicted."""
    params = _params(device)
    replay = PerBlockApproach(device)
    ns = list(sizes)
    data = {"qr_measured": [], "qr_predicted": [], "lu_measured": [],
            "lu_predicted": []}
    for n in ns:
        for kind in ("qr", "lu"):
            launch = replay.launch(Workload.square(kind, n, 8000))
            data[f"{kind}_measured"].append(launch.throughput_gflops(8000))
            data[f"{kind}_predicted"].append(
                predict_per_block(params, kind, n).gflops
            )
    report = format_series(
        ns, data, x_label="n",
        title="Figure 9: one-problem-per-block GFLOPS (8000 problems)",
    )
    return ExperimentResult("fig9", "Per-block performance", report, {"n": ns, **data})


# ----------------------------------------------------------------------
# Figures 10-12: approach comparisons
# ----------------------------------------------------------------------
def run_fig10(
    device: DeviceSpec = QUADRO_6000,
    sizes=(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
) -> ExperimentResult:
    """Figure 10: the three approaches across the design space."""
    pt, pb, hy = (
        PerThreadApproach(device),
        PerBlockApproach(device),
        HybridBlockedApproach(),
    )
    ns = list(sizes)
    data = {}
    for kind in ("qr", "lu"):
        for name, approach in (("per_thread", pt), ("per_block", pb), ("hybrid", hy)):
            key = f"{kind}_{name}"
            data[key] = []
            for n in ns:
                batch = 8000 if n <= 256 else max(1, 2048 // n)
                work = Workload.square(kind, n, batch)
                data[key].append(
                    approach.gflops(work) if approach.supports(work) else float("nan")
                )
    report = format_series(
        ns, data, x_label="n",
        title="Figure 10: many QR/LU factorizations, three approaches",
    )
    return ExperimentResult("fig10", "Design space", report, {"n": ns, **data})


def run_fig11(
    device: DeviceSpec = QUADRO_6000, sizes=range(8, 145, 8), batch: int = 8000
) -> ExperimentResult:
    """Figure 11: per-block vs MKL and MAGMA (both starts), QR and LU."""
    pb, cpu = PerBlockApproach(device), CpuLapackApproach()
    magma_cpu = HybridBlockedApproach(gpu_start=False)
    magma_gpu = HybridBlockedApproach(gpu_start=True)
    ns = list(sizes)
    data = {}
    for kind in ("qr", "lu"):
        for name, approach in (
            ("per_block", pb), ("mkl", cpu),
            ("magma_cpu_start", magma_cpu), ("magma_gpu_start", magma_gpu),
        ):
            key = f"{kind}_{name}"
            data[key] = [
                approach.gflops(Workload.square(kind, n, batch)) for n in ns
            ]
    report = format_series(
        ns, data, x_label="n",
        title=f"Figure 11: {batch} LU/QR factorizations vs MKL and MAGMA",
    )
    return ExperimentResult("fig11", "MKL/MAGMA comparison", report, {"n": ns, **data})


def run_fig12(
    device: DeviceSpec = QUADRO_6000, sizes=range(8, 145, 8), batch: int = 8000
) -> ExperimentResult:
    """Figure 12: solving linear systems (QR solve, Gauss-Jordan) vs MKL."""
    pb, cpu = PerBlockApproach(device), CpuLapackApproach()
    ns = list(sizes)
    data = {
        "qr_solve_per_block": [], "qr_solve_mkl": [],
        "gj_per_block": [], "gj_mkl": [],
    }
    for n in ns:
        ls = Workload.square("least_squares", n, batch)
        gj = Workload.square("gauss_jordan", n, batch)
        data["qr_solve_per_block"].append(pb.gflops(ls))
        data["qr_solve_mkl"].append(cpu.gflops(ls))
        data["gj_per_block"].append(pb.gflops(gj))
        data["gj_mkl"].append(cpu.gflops(gj))
    report = format_series(
        ns, data, x_label="n",
        title=f"Figure 12: solving {batch} linear systems vs MKL",
    )
    return ExperimentResult("fig12", "Linear-system solves", report, {"n": ns, **data})


def run_table7_experiment(
    device: DeviceSpec = QUADRO_6000, numeric_batch: int = 2
) -> ExperimentResult:
    """Table VII: RT_STAP complex QR sizes."""
    results = run_table7(device, numeric_batch)
    rows = []
    for res, ref in zip(results, paper.TABLE_VII):
        rows.append([
            res.case.label, f"{res.case.rows}x{res.case.cols}",
            res.case.num_matrices,
            ref["gpu_gflops"], round(res.gpu_gflops, 1),
            ref["mkl_gflops"], round(res.mkl_gflops, 1),
            f'{ref["speedup"]}x', f"{res.speedup:.1f}x", res.method,
        ])
    report = format_table(
        ["case", "size", "# matrices", "paper GPU", "GPU", "paper MKL", "MKL",
         "paper speedup", "speedup", "method"],
        rows,
        title="Table VII: RT_STAP single-precision complex QR",
    )
    return ExperimentResult(
        "table7", "STAP benchmark", report,
        {"rows": [dataclasses.asdict(r.case) | {
            "gpu_gflops": r.gpu_gflops, "mkl_gflops": r.mkl_gflops,
            "speedup": r.speedup, "method": r.method} for r in results]},
    )


#: Registry: experiment id -> runner.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig4": run_fig4,
    "fig7": run_fig7,
    "table5": run_table5,
    "fig8": run_fig8,
    "table6": run_table6,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "table7": run_table7_experiment,
}


def list_experiments() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
