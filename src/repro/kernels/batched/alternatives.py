"""Alternative QR algorithms (Section III-C's rejected candidates).

The paper: "one could use any of the following algorithms: Cholesky QR,
Gram-Schmidt, Givens rotations, or Householder reflectors.
Unfortunately, Cholesky QR and Gram-Schmidt are numerically unstable, so
we are limited to using either Givens rotations or Householder
reflectors."

This module implements all four so the claim is *testable* (see
``tests/kernels/test_alternatives.py``): on ill-conditioned batches the
orthogonality error of Cholesky-QR grows like kappa^2 and classical
Gram-Schmidt like kappa, while Givens and Householder stay at machine
precision.  A batched Cholesky factorization is included as the
Cholesky-QR building block (and a useful kernel in its own right).

All routines are batched/vectorized like the rest of the library and
honour the ``fast_math`` switch.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...errors import SingularMatrixError
from ._arith import arithmetic_mode
from .trsm import solve_lower
from .validate import as_batch, check_square_batch, check_tall_batch

__all__ = [
    "cholesky_factor",
    "cholesky_qr",
    "gram_schmidt_qr",
    "modified_gram_schmidt_qr",
    "givens_qr",
    "QrExplicit",
]


@dataclasses.dataclass(frozen=True)
class QrExplicit:
    """Explicit thin-QR output shared by the alternative algorithms."""

    q: np.ndarray
    r: np.ndarray


def cholesky_factor(a: np.ndarray, fast_math: bool = True) -> np.ndarray:
    """Batched Cholesky: lower L with ``A = L L^H`` for HPD matrices.

    Left-looking column sweep, vectorized over the batch.  Raises
    :class:`SingularMatrixError` if any matrix is not positive definite
    (non-positive pivot).
    """
    a = as_batch(a)
    check_square_batch(a)
    mode = arithmetic_mode(fast_math)
    batch, n, _ = a.shape
    chol = np.zeros_like(a)
    for j in range(n):
        if j:
            row = chol[:, j, :j]
            diag_acc = a[:, j, j].real - np.einsum(  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
                "bk,bk->b", row, row.conj()
            ).real
        else:
            diag_acc = a[:, j, j].real
        if np.any(diag_acc <= 0):
            bad = int(np.count_nonzero(diag_acc <= 0))
            raise SingularMatrixError(
                f"{bad} of {batch} matrices are not positive definite "
                f"(column {j})"
            )
        pivot = mode.sqrt(diag_acc.astype(a.real.dtype))
        chol[:, j, j] = pivot.astype(a.dtype)
        if j + 1 < n:
            if j:
                lower = a[:, j + 1 :, j] - np.einsum(  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
                    "bik,bk->bi", chol[:, j + 1 :, :j], chol[:, j, :j].conj()
                )
            else:
                lower = a[:, j + 1 :, j]
            chol[:, j + 1 :, j] = mode.divide(lower, pivot[:, None]).astype(a.dtype)
    return chol


def cholesky_qr(a: np.ndarray, fast_math: bool = True) -> QrExplicit:
    """Cholesky QR: ``R = chol(A^H A)^H``, ``Q = A R^{-1}``.

    One GEMM, one small Cholesky, one triangular solve -- beautifully
    GPU-friendly and, as the paper says, numerically unstable: the Gram
    matrix squares the condition number, so orthogonality degrades like
    kappa(A)^2.
    """
    a = as_batch(a)
    check_tall_batch(a)
    gram = np.einsum("bki,bkj->bij", a.conj(), a)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
    chol = cholesky_factor(gram, fast_math=fast_math)
    r = np.swapaxes(chol.conj(), 1, 2)
    # Q = A R^{-1}: transpose to R^T Q^T = A^T with lower-triangular R^T.
    qt = solve_lower(np.swapaxes(r, 1, 2), np.swapaxes(a, 1, 2), fast_math=fast_math)
    q = np.swapaxes(qt, 1, 2)
    return QrExplicit(q=np.ascontiguousarray(q), r=r)


def gram_schmidt_qr(a: np.ndarray, fast_math: bool = True) -> QrExplicit:
    """Classical Gram-Schmidt: project against all previous columns at
    once.  Orthogonality degrades like kappa(A) -- the paper's other
    rejected candidate."""
    a = as_batch(a)
    check_tall_batch(a)
    mode = arithmetic_mode(fast_math)
    batch, m, n = a.shape
    q = np.zeros_like(a)
    r = np.zeros((batch, n, n), dtype=a.dtype)
    for j in range(n):
        v = a[:, :, j].copy()
        if j:
            coeffs = np.einsum("bmk,bm->bk", q[:, :, :j].conj(), a[:, :, j])  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
            r[:, :j, j] = coeffs
            v = v - np.einsum("bmk,bk->bm", q[:, :, :j], coeffs)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        norm = _norm(v, mode)
        r[:, j, j] = norm.astype(a.dtype)
        q[:, :, j] = mode.divide(v, _safe(norm)[:, None]).astype(a.dtype)
    return QrExplicit(q=q, r=r)


def modified_gram_schmidt_qr(a: np.ndarray, fast_math: bool = True) -> QrExplicit:
    """Modified Gram-Schmidt: project sequentially (loses only ~kappa
    against CGS's kappa in the constant; still not backward stable)."""
    a = as_batch(a)
    check_tall_batch(a)
    mode = arithmetic_mode(fast_math)
    batch, m, n = a.shape
    v = a.copy()
    q = np.zeros_like(a)
    r = np.zeros((batch, n, n), dtype=a.dtype)
    for j in range(n):
        norm = _norm(v[:, :, j], mode)
        r[:, j, j] = norm.astype(a.dtype)
        q[:, :, j] = mode.divide(v[:, :, j], _safe(norm)[:, None]).astype(a.dtype)
        if j + 1 < n:
            coeffs = np.einsum("bm,bmk->bk", q[:, :, j].conj(), v[:, :, j + 1 :])  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
            r[:, j, j + 1 :] = coeffs
            v[:, :, j + 1 :] -= q[:, :, j][:, :, None] * coeffs[:, None, :]
    return QrExplicit(q=q, r=r)


def givens_qr(a: np.ndarray, fast_math: bool = True) -> QrExplicit:
    """Givens-rotation QR: zero the subdiagonal one rotation at a time.

    Numerically stable like Householder (each rotation is exactly
    orthogonal to rounding), at the price of ~50% more flops -- the
    trade the paper notes before choosing Householder for LAPACK
    compatibility.
    """
    a = as_batch(a)
    check_tall_batch(a)
    mode = arithmetic_mode(fast_math)
    batch, m, n = a.shape
    r = a.copy()
    q = np.zeros((batch, m, m), dtype=a.dtype)
    idx = np.arange(m)
    q[:, idx, idx] = 1
    for j in range(n):
        for i in range(m - 1, j, -1):
            f = r[:, i - 1, j]
            g = r[:, i, j]
            c, s = _givens_coeffs(f, g, mode)
            _apply_rotation(r, i - 1, i, c, s, col_start=j)
            _apply_rotation(q, i - 1, i, c, s, col_start=0)
    qthin = np.ascontiguousarray(np.swapaxes(q.conj(), 1, 2)[:, :, :n])
    return QrExplicit(q=qthin, r=np.triu(r[:, :n, :]))


def _norm(v: np.ndarray, mode) -> np.ndarray:
    sq = (v.real * v.real + v.imag * v.imag) if np.iscomplexobj(v) else v * v
    return mode.sqrt(sq.sum(axis=1).astype(v.real.dtype))


def _safe(x: np.ndarray) -> np.ndarray:
    return np.where(x == 0, np.ones_like(x), x)


def _givens_coeffs(f: np.ndarray, g: np.ndarray, mode):
    """(c, s) zeroing g against f: [c s; -conj(s) c]^H [f; g] = [r; 0]."""
    denom = _norm(np.stack([f, g], axis=1), mode)
    live = denom != 0
    safe = _safe(denom)
    c = mode.divide(np.abs(f), safe)
    c = np.where(live, c, np.ones_like(c))
    phase = np.where(f == 0, np.ones_like(f), f) / _safe(np.abs(f))
    s = mode.divide(phase * g.conj(), safe.astype(f.dtype))
    s = np.where(live, s, np.zeros_like(s))
    return c.astype(f.real.dtype), s.astype(f.dtype)


def _apply_rotation(mat: np.ndarray, i: int, k: int, c, s, col_start: int) -> None:
    """Left-apply the rotation to rows (i, k) of ``mat`` in place."""
    row_i = mat[:, i, col_start:].copy()
    row_k = mat[:, k, col_start:].copy()
    mat[:, i, col_start:] = c[:, None] * row_i + s[:, None] * row_k
    mat[:, k, col_start:] = -s.conj()[:, None] * row_i + c[:, None] * row_k
