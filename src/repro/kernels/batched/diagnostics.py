"""Numerical diagnostics for batched factorizations.

The paper's no-pivoting choice is safe only for well-behaved inputs
("the matrices tested were diagonally dominant so no pivoting was
necessary").  These diagnostics let a downstream user *check* that
assumption on their own batches instead of trusting it:

* :func:`lu_growth_factor` -- the element-growth of an unpivoted LU; a
  large value means the factorization amplified rounding error and
  pivoting (or QR) should be used instead;
* :func:`condition_estimate` -- a cheap per-problem estimate of
  ``cond_2(A)`` from a factorization's triangular factor, via a few
  rounds of inverse/forward power iteration with triangular solves --
  the standard trick for deciding whether a solve can be trusted.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ...observe.tracer import current_tracer
from .trsm import solve_lower, solve_upper
from .validate import as_batch, check_square_batch

__all__ = ["lu_growth_factor", "condition_estimate", "GROWTH_WARN_THRESHOLD"]

#: Growth beyond this is a strong "should have pivoted" signal -- benign
#: (diagonally dominant) inputs provably stay at or below 2.
GROWTH_WARN_THRESHOLD = 8.0


def lu_growth_factor(a: np.ndarray, lu: np.ndarray) -> np.ndarray:
    """Element growth ``max|U| / max|A|`` per problem.

    Near 1 for benign inputs (diagonally dominant: provably <= 2 for
    unpivoted LU); explodes when a small pivot was hit.  NaN/Inf factors
    report as ``inf``.
    """
    a_arr = np.asarray(a)
    lu_arr = np.asarray(lu)
    if a_arr.shape != lu_arr.shape:
        raise ShapeError(
            f"matrix and factor shapes differ: {a_arr.shape} vs {lu_arr.shape}"
        )
    if a_arr.ndim == 2:
        a_arr, lu_arr = a_arr[None], lu_arr[None]
    upper = np.triu(lu_arr)
    a_max = np.abs(a_arr).reshape(a_arr.shape[0], -1).max(axis=1)
    u_max = np.abs(upper).reshape(upper.shape[0], -1).max(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        growth = u_max / np.maximum(a_max, np.finfo(np.float64).tiny)
    growth = np.where(np.isfinite(growth), growth, np.inf)

    # Numerical health rides the same observability path as performance:
    # when a tracer is active, the batch's growth statistics land in the
    # counter registry (and the attribution/metrics exporters pick them
    # up like any other counter family).
    tracer = current_tracer()
    if tracer is not None:
        finite = growth[np.isfinite(growth)]
        c = tracer.counters
        c.observe("numerics.lu_growth", growth)
        c.add("numerics.lu_growth_problems", growth.size)
        c.add(
            "numerics.lu_growth_warnings",
            float((growth > GROWTH_WARN_THRESHOLD).sum()),  # noqa: RPR001 -- boolean count; integer accumulation is order-free
        )
        tracer.instant(
            "numerics.lu_growth", "numerics",
            problems=int(growth.size),
            max=float(finite.max()) if finite.size else float("inf"),
            warnings=int((growth > GROWTH_WARN_THRESHOLD).sum()),  # noqa: RPR001 -- boolean count; integer accumulation is order-free
        )
    return growth


def condition_estimate(
    r: np.ndarray, iterations: int = 6, seed: int = 0
) -> np.ndarray:
    """Estimate ``cond_2`` of the matrix behind a triangular factor.

    ``r``: ``(batch, n, n)`` upper-triangular (from QR of A, or U of a
    Cholesky of A^H A).  Since orthogonal factors do not change singular
    values, ``cond(A) = cond(R)``; both extreme singular values of R are
    estimated by power iteration -- the largest on ``R^H R``, the
    smallest on ``(R^H R)^{-1}`` via two triangular solves per step.

    Accurate to within a small factor (power iteration), which is all a
    "should I have pivoted?" decision needs.
    """
    r = as_batch(r)
    check_square_batch(r)
    if iterations < 1:
        raise ValueError("need at least one iteration")
    batch, n, _ = r.shape
    rng = np.random.default_rng(seed)
    rh = np.swapaxes(r.conj(), 1, 2)

    def normalize(v):
        norms = np.linalg.norm(v, axis=1, keepdims=True)
        return v / np.maximum(norms, np.finfo(np.float64).tiny)

    # sigma_max via power iteration on R^H R.
    v = normalize(rng.standard_normal((batch, n)).astype(r.real.dtype))
    if np.iscomplexobj(r):
        v = v.astype(r.dtype)
    for _ in range(iterations):
        w = np.einsum("bij,bj->bi", r, v)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        w = np.einsum("bij,bj->bi", rh, w)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        v = normalize(w)
    sigma_max = np.linalg.norm(np.einsum("bij,bj->bi", r, v), axis=1)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it

    # sigma_min via inverse iteration: solve R^H (R x) = v each round.
    u = normalize(rng.standard_normal((batch, n)).astype(r.real.dtype))
    if np.iscomplexobj(r):
        u = u.astype(r.dtype)
    for _ in range(iterations):
        y = solve_lower(rh, u, fast_math=False)
        x = solve_upper(r, y, fast_math=False)
        u = normalize(x)
    rx = np.einsum("bij,bj->bi", r, u)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
    sigma_min = np.linalg.norm(rx, axis=1)

    with np.errstate(divide="ignore"):
        cond = sigma_max / np.maximum(sigma_min, np.finfo(np.float64).tiny)
    return cond
