"""Batched Householder QR (Section III-C).

The paper uses Householder reflectors "because it is consistent with
LAPACK" (Cholesky-QR and Gram-Schmidt being unstable, Givens an
alternative).  This is the LAPACK ``geqrf`` formulation, vectorized over
the batch:

for each column j:
  * ``beta = -sign(Re(a_jj)) * ||A[j:, j]||``  (beta is real),
  * ``tau = (beta - a_jj) / beta``,
  * ``v = A[j:, j] / (a_jj - beta)`` with ``v_0 = 1`` implicit,
  * trailing update ``A[j:, j+1:] -= tau * v (v^H A[j:, j+1:])``,
  * store ``beta`` on the diagonal and ``v[1:]`` below it.

Norms and scale factors go through the fast-math (22-mantissa-bit) path
when ``fast_math=True``, matching the ``--use_fast_math`` builds of the
paper.  Real and complex single/double precision are supported.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ._arith import arithmetic_mode
from .trsm import solve_upper
from .validate import as_batch, check_tall_batch

__all__ = ["QrFactors", "qr_factor", "qr_unpack", "apply_qt", "qr_solve"]


@dataclasses.dataclass(frozen=True)
class QrFactors:
    """Packed QR: R in the upper triangle, reflectors below, taus aside."""

    packed: np.ndarray
    taus: np.ndarray

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.packed.shape

    def r(self) -> np.ndarray:
        """The (batch, n, n) upper-triangular factor."""
        n = self.packed.shape[2]
        return np.triu(self.packed[:, :n, :])

    def q(self) -> np.ndarray:
        """The thin (batch, m, n) orthonormal factor."""
        return qr_unpack(self)


def _column_norms(x: np.ndarray, mode) -> np.ndarray:
    """2-norms over axis 1, with the paper's fast square root if chosen."""
    sq = (x.real * x.real + x.imag * x.imag) if np.iscomplexobj(x) else x * x
    return mode.sqrt(sq.sum(axis=1).astype(x.real.dtype))


def qr_factor(a: np.ndarray, fast_math: bool = True) -> QrFactors:
    """Householder QR of a (batch, m, n) tall batch, packed LAPACK-style."""
    a = as_batch(a)
    check_tall_batch(a)
    aug, taus = _householder_sweep(a, a.shape[2], fast_math)
    return QrFactors(packed=aug, taus=taus)


def _householder_sweep(
    aug: np.ndarray, ncols: int, fast_math: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Factor the first ``ncols`` columns of ``aug`` in place.

    Reflector j is applied to *all* trailing columns of ``aug`` --
    including any right-hand sides appended past ``ncols`` (the
    least-squares trick of Section III-D).  Returns (aug, taus).
    """
    batch, m, _ = aug.shape
    dtype = aug.dtype
    real_dtype = aug.real.dtype
    mode = arithmetic_mode(fast_math)
    taus = np.zeros((batch, ncols), dtype=dtype)
    complex_input = np.iscomplexobj(aug)

    steps = ncols if m > ncols else ncols - 1  # no reflector for a 1-row tail
    for j in range(steps):
        x = aug[:, j:, j]
        alpha = x[:, 0].copy()
        norm = _column_norms(x, mode)
        live = norm != 0  # zero columns keep tau = 0

        sign = np.where(alpha.real >= 0, 1.0, -1.0).astype(real_dtype)
        beta = (-sign * norm).astype(real_dtype)
        denom = np.where(live, (alpha - beta).astype(dtype), np.asarray(1, dtype))
        beta_safe = np.where(live, beta, np.asarray(1, real_dtype))
        tau = np.where(live, ((beta - alpha) / beta_safe).astype(dtype), 0)
        taus[:, j] = tau

        # v = x / (alpha - beta), v0 = 1 implicit.
        v = mode.divide(x, denom[:, None]).astype(dtype)
        v[:, 0] = 1
        if not complex_input:
            v = v.real.astype(dtype)

        # Trailing update (and appended RHS columns) applies H^H =
        # I - conj(tau) v v^H, so that R = Q^H A with Q = H_0 ... H_{k-1}.
        trailing = aug[:, j:, j + 1 :]
        w = np.einsum("bi,bij->bj", v.conj(), trailing)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        trailing -= tau.conj()[:, None, None] * v[:, :, None] * w[:, None, :]

        # Store the packed factor: beta on the diagonal, v below it.
        aug[:, j, j] = np.where(live, beta.astype(dtype), alpha)
        aug[:, j + 1 :, j] = np.where(live[:, None], v[:, 1:], x[:, 1:])
    return aug, taus


def qr_unpack(factors: QrFactors) -> np.ndarray:
    """Form the thin Q (batch, m, n) by applying reflectors to I."""
    packed, taus = factors.packed, factors.taus
    batch, m, n = packed.shape
    q = np.zeros((batch, m, n), dtype=packed.dtype)
    idx = np.arange(n)
    q[:, idx, idx] = 1
    # Columns without a reflector carry tau = 0, so applying every j is safe.
    for j in range(n - 1, -1, -1):
        tau = taus[:, j]
        v = np.empty((batch, m - j), dtype=packed.dtype)
        v[:, 0] = 1
        v[:, 1:] = packed[:, j + 1 :, j]
        block = q[:, j:, j:]
        w = np.einsum("bi,bij->bj", v.conj(), block)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        block -= tau[:, None, None] * v[:, :, None] * w[:, None, :]
    return q


def apply_qt(factors: QrFactors, b: np.ndarray) -> np.ndarray:
    """Compute ``Q^H b`` from the packed reflectors (no explicit Q)."""
    packed, taus = factors.packed, factors.taus
    batch, m, n = packed.shape
    b_arr = np.asarray(b, dtype=packed.dtype)
    squeeze = b_arr.ndim == 2
    if squeeze:
        b_arr = b_arr[..., None]
    out = b_arr.copy()
    for j in range(n):
        tau = taus[:, j]
        v = np.empty((batch, m - j), dtype=packed.dtype)
        v[:, 0] = 1
        v[:, 1:] = packed[:, j + 1 :, j]
        block = out[:, j:, :]
        w = np.einsum("bi,bij->bj", v.conj(), block)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        block -= tau.conj()[:, None, None] * v[:, :, None] * w[:, None, :]
    return out[..., 0] if squeeze else out


def qr_solve(a: np.ndarray, b: np.ndarray, fast_math: bool = True) -> np.ndarray:
    """Solve square systems (or least squares for tall ``a``) via QR.

    Implements Section III-D: append ``b``, factor, and back-substitute
    ``R x = Q^H b``.
    """
    a = as_batch(a)
    check_tall_batch(a)
    batch, m, n = a.shape
    b_arr = np.asarray(b, dtype=a.dtype)
    squeeze = b_arr.ndim == 2
    if squeeze:
        b_arr = b_arr[..., None]
    aug = np.concatenate([a, b_arr], axis=2)
    aug, _ = _householder_sweep(aug, n, fast_math)
    r = aug[:, :n, :n]
    qtb = aug[:, :n, n:]
    x = solve_upper(np.triu(r), qtb, fast_math=fast_math)
    return x[..., 0] if squeeze else x
