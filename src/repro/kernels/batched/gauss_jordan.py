"""Batched Gauss-Jordan linear-system solver (Section III-A).

Follows the paper's algorithm exactly: the right-hand side is attached to
the right of the matrix, and the augmented system is swept left to right
-- each pivot row is scaled by the reciprocal of its diagonal element and
an outer-product update clears the pivot column everywhere else, driving
``A`` to reduced row echelon form.  **No pivoting** is performed; a zero
pivot sets the per-problem ``not_solved`` flag, mirroring Listing 5's
``*notsolved = 1``.

The batch dimension is fully vectorized: every problem executes the same
left-to-right schedule (the kernels are branch-free on the GPU for the
same reason).
"""

from __future__ import annotations

import dataclasses
from typing import Literal

import numpy as np

from ...errors import ShapeError, SingularMatrixError
from ._arith import arithmetic_mode
from .validate import as_batch, check_square_batch

__all__ = ["GaussJordanResult", "gauss_jordan_solve", "gauss_jordan_invert"]


@dataclasses.dataclass(frozen=True)
class GaussJordanResult:
    """Solution batch plus per-problem singularity flags."""

    x: np.ndarray
    not_solved: np.ndarray

    @property
    def all_solved(self) -> bool:
        return not bool(self.not_solved.any())


def gauss_jordan_solve(
    a: np.ndarray,
    b: np.ndarray,
    fast_math: bool = True,
    on_singular: Literal["flag", "raise"] = "flag",
) -> GaussJordanResult:
    """Solve ``A x = b`` for a batch of square systems, without pivoting.

    ``a``: ``(batch, n, n)``; ``b``: ``(batch, n)`` or ``(batch, n, nrhs)``.
    Problems that hit an exactly-zero pivot are flagged (their ``x`` is
    NaN) or, with ``on_singular="raise"``, abort the whole batch.
    """
    a = as_batch(a)
    check_square_batch(a)
    batch, n, _ = a.shape
    b_arr = np.asarray(b, dtype=a.dtype)
    squeeze = b_arr.ndim == 2
    if squeeze:
        b_arr = b_arr[..., None]
    if b_arr.shape[0] != batch or b_arr.shape[1] != n or b_arr.ndim != 3:
        raise ShapeError(
            f"rhs shape {np.asarray(b).shape} does not match systems {a.shape}"
        )

    mode = arithmetic_mode(fast_math)
    aug = np.concatenate([a, b_arr], axis=2)  # the paper attaches b to A
    not_solved = np.zeros(batch, dtype=bool)
    one = np.asarray(1.0, dtype=a.dtype)

    for j in range(n):
        diag = aug[:, j, j].copy()
        singular = diag == 0
        not_solved |= singular
        safe = np.where(singular, one, diag)
        scale = mode.divide(one, safe)
        # Scale the pivot row (only columns j..end change).
        aug[:, j, j:] = aug[:, j, j:] * scale[:, None]
        # Eliminate the pivot column from every other row.
        col = aug[:, :, j].copy()
        col[:, j] = 0
        aug[:, :, j:] -= col[:, :, None] * aug[:, j, None, j:]

    if on_singular == "raise" and not_solved.any():
        raise SingularMatrixError(
            f"{int(not_solved.sum())} of {batch} systems hit a zero pivot"  # noqa: RPR001 -- boolean count; integer accumulation is order-free
        )

    x = aug[:, :, n:]
    if not_solved.any():
        x = x.copy()
        x[not_solved] = np.nan
    if squeeze:
        x = x[..., 0]
    return GaussJordanResult(x=x, not_solved=not_solved)


def gauss_jordan_invert(
    a: np.ndarray,
    fast_math: bool = True,
    on_singular: Literal["flag", "raise"] = "flag",
) -> GaussJordanResult:
    """Invert a batch of square matrices by Gauss-Jordan (no pivoting).

    Equivalent to attaching the identity as ``n`` right-hand sides --
    the classic augmented-matrix inversion.  Returns ``x`` of shape
    ``(batch, n, n)`` with ``A @ x == I`` for every unflagged problem.
    """
    arr = as_batch(a)
    check_square_batch(arr)
    batch, n, _ = arr.shape
    eye = np.broadcast_to(np.eye(n, dtype=arr.dtype), (batch, n, n)).copy()
    return gauss_jordan_solve(
        arr, eye, fast_math=fast_math, on_singular=on_singular
    )
