"""Batched numerics: the algorithms of Section III, vectorized over the
problem dimension, plus the motivating-application extensions (batched
GEMM for speech, Jacobi eigensolver for MRI).

For executing a large batch for real -- sharded across worker processes
with merged counters and warm calibration caches -- use
:func:`run_batched` (re-exported from :mod:`repro.runtime`)::

    from repro.kernels.batched import run_batched

    report = run_batched("lu", matrices, workers=4)
"""

from .alternatives import (
    QrExplicit,
    cholesky_factor,
    cholesky_qr,
    givens_qr,
    gram_schmidt_qr,
    modified_gram_schmidt_qr,
)
from .blocked_qr import BlockedQrFactors, blocked_qr_factor, build_t_factor
from .diagnostics import condition_estimate, lu_growth_factor
from .eigen import EighResult, jacobi_eigh
from .gauss_jordan import (
    GaussJordanResult,
    gauss_jordan_invert,
    gauss_jordan_solve,
)
from .least_squares import LeastSquaresResult, least_squares
from .lu import (
    LuResult,
    PivotedLuResult,
    lu_factor,
    lu_factor_pivot,
    lu_solve,
    lu_solve_pivot,
)
from .matmul import batched_matmul
from .problems import (
    diagonally_dominant_batch,
    hermitian_batch,
    random_batch,
    rhs_batch,
)
from .qr import QrFactors, apply_qt, qr_factor, qr_solve, qr_unpack
from .svd import SvdResult, jacobi_svd
from .trsm import solve_lower, solve_lower_unit, solve_upper
from .validate import (
    lu_reconstruction_error,
    orthogonality_error,
    qr_reconstruction_error,
    solve_residual,
    triangular_error,
)

__all__ = [
    "QrExplicit",
    "cholesky_factor",
    "cholesky_qr",
    "givens_qr",
    "gram_schmidt_qr",
    "modified_gram_schmidt_qr",
    "BlockedQrFactors",
    "blocked_qr_factor",
    "build_t_factor",
    "condition_estimate",
    "lu_growth_factor",
    "EighResult",
    "jacobi_eigh",
    "GaussJordanResult",
    "gauss_jordan_invert",
    "gauss_jordan_solve",
    "LeastSquaresResult",
    "least_squares",
    "LuResult",
    "PivotedLuResult",
    "lu_factor",
    "lu_factor_pivot",
    "lu_solve",
    "lu_solve_pivot",
    "batched_matmul",
    "diagonally_dominant_batch",
    "hermitian_batch",
    "random_batch",
    "rhs_batch",
    "QrFactors",
    "SvdResult",
    "jacobi_svd",
    "apply_qt",
    "qr_factor",
    "qr_solve",
    "qr_unpack",
    "solve_lower",
    "solve_lower_unit",
    "solve_upper",
    "lu_reconstruction_error",
    "orthogonality_error",
    "qr_reconstruction_error",
    "solve_residual",
    "triangular_error",
    # lazily loaded from repro.runtime (see __getattr__)
    "run_batched",
]


def __getattr__(name: str):
    # The runtime imports the device kernels, which import this package;
    # loading it on first access keeps the import graph acyclic.
    if name == "run_batched":
        from ...runtime.executor import run_batched

        globals()[name] = run_batched
        return run_batched
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
