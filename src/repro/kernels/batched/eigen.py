"""Batched Hermitian eigensolver (cyclic Jacobi).

The MRI-reconstruction motivation from Section I: "up to a billion small
(8x8 or 32x32) complex eigenvalue problems, one for each voxel".  The
paper does not implement an eigensolver; this is the documented
extension, using the one algorithm whose schedule is data-independent --
cyclic Jacobi -- so the whole batch rotates in lockstep, exactly the
property that makes it GPU-register friendly.

Each sweep visits every (p, q) pair once; rotations with a negligible
off-diagonal element degenerate to the identity (branch-free masking, not
control flow).  Convergence is quadratic once the matrix is nearly
diagonal; 8-12 sweeps suffice for n <= 64 at single precision.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...errors import ShapeError
from .validate import as_batch, check_square_batch

__all__ = ["EighResult", "jacobi_eigh"]


@dataclasses.dataclass(frozen=True)
class EighResult:
    """Eigenvalues (ascending) and eigenvectors (columns)."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    sweeps_used: int
    off_diagonal_norm: float


def _rotate(a: np.ndarray, v: np.ndarray, p: int, q: int) -> None:
    """One batched Jacobi rotation zeroing A[p, q] (in place)."""
    app = a[:, p, p].real
    aqq = a[:, q, q].real
    apq = a[:, p, q]
    abs_apq = np.abs(apq)
    tiny = np.finfo(abs_apq.dtype).tiny
    live = abs_apq > tiny

    # Classic Jacobi angles, guarded so dead rotations become identity.
    # Angle arithmetic runs in float64: theta ~ 1/|a_pq| can overflow the
    # input precision, and for huge theta we use the t ~ 1/(2 theta) limit.
    safe_apq = np.where(live, abs_apq, 1.0).astype(np.float64)
    theta = (aqq.astype(np.float64) - app.astype(np.float64)) / (2.0 * safe_apq)
    sign_theta = np.where(theta >= 0, 1.0, -1.0)
    huge = np.abs(theta) > 1e100
    theta_safe = np.where(huge, 1.0, theta)
    t = np.where(
        huge,
        0.5 / np.where(huge, theta, 1.0),
        sign_theta / (np.abs(theta_safe) + np.sqrt(1.0 + theta_safe * theta_safe)),
    )
    c = 1.0 / np.sqrt(1.0 + t * t)
    s_mag = t * c
    c = np.where(live, c, 1.0)
    s_mag = np.where(live, s_mag, 0.0)

    # The rotation's off-diagonal phase carries arg(a_pq) -- for real
    # inputs this reduces to sign(a_pq), which is just as essential.
    phase = np.where(live, apq / np.where(live, abs_apq, 1.0), 1.0)
    s = (s_mag * phase).astype(a.dtype)
    c = c.astype(a.real.dtype)

    # A <- J^H A J with J = I except J[pp]=c, J[pq]=s, J[qp]=-conj(s), J[qq]=c.
    col_p = a[:, :, p].copy()
    col_q = a[:, :, q].copy()
    a[:, :, p] = c[:, None] * col_p - np.conj(s)[:, None] * col_q
    a[:, :, q] = s[:, None] * col_p + c[:, None] * col_q
    row_p = a[:, p, :].copy()
    row_q = a[:, q, :].copy()
    a[:, p, :] = c[:, None] * row_p - s[:, None] * row_q
    a[:, q, :] = np.conj(s)[:, None] * row_p + c[:, None] * row_q

    vcol_p = v[:, :, p].copy()
    vcol_q = v[:, :, q].copy()
    v[:, :, p] = c[:, None] * vcol_p - np.conj(s)[:, None] * vcol_q
    v[:, :, q] = s[:, None] * vcol_p + c[:, None] * vcol_q


def _off_norm(a: np.ndarray) -> float:
    n = a.shape[1]
    mask = ~np.eye(n, dtype=bool)
    return float(np.sqrt((np.abs(a[:, mask]) ** 2).sum(axis=1)).max())


def jacobi_eigh(
    a: np.ndarray, max_sweeps: int = 16, tol: float | None = None
) -> EighResult:
    """Eigendecomposition of a batch of Hermitian matrices.

    ``a``: ``(batch, n, n)`` Hermitian (symmetric for real dtypes).
    Returns ascending eigenvalues and the corresponding eigenvector
    columns; ``A @ V == V @ diag(w)`` up to the dtype's precision.
    """
    a = as_batch(a)
    check_square_batch(a)
    herm_err = np.abs(a - np.swapaxes(a.conj(), 1, 2)).max()
    scale = max(1.0, float(np.abs(a).max()))
    if herm_err > 1e-4 * scale:
        raise ShapeError(f"input is not Hermitian (asymmetry {herm_err:.2e})")
    if max_sweeps < 1:
        raise ValueError("need at least one sweep")

    batch, n, _ = a.shape
    v = np.zeros_like(a)
    idx = np.arange(n)
    v[:, idx, idx] = 1
    if tol is None:
        tol = 50 * np.finfo(a.real.dtype).eps * scale

    sweeps = 0
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        for p in range(n - 1):
            for q in range(p + 1, n):
                _rotate(a, v, p, q)
        if _off_norm(a) <= tol:
            break

    w = a[:, idx, idx].real.copy()
    order = np.argsort(w, axis=1)
    w_sorted = np.take_along_axis(w, order, axis=1)
    v_sorted = np.take_along_axis(v, order[:, None, :], axis=2)
    return EighResult(
        eigenvalues=w_sorted,
        eigenvectors=v_sorted,
        sweeps_used=sweeps,
        off_diagonal_norm=_off_norm(a),
    )
