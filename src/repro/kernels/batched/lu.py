"""Batched LU factorization (Section III-B).

The paper's LU does **not pivot**: "the output of the factorization is
simply the lower triangular L and the upper triangular U written over the
original matrix A".  The sweep scales each column below the diagonal by
the reciprocal of the pivot and applies a rank-1 Schur-complement update
-- exactly the column-operation / trailing-update split the per-block
kernel and the Table-VI model use.

A partial-pivoting variant (:func:`lu_factor_pivot`) is provided as the
stability extension the paper defers; it is what MKL/MAGMA do in the
Figure-11 comparison.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

import numpy as np

from ...errors import SingularMatrixError
from ._arith import arithmetic_mode
from .trsm import solve_lower_unit, solve_upper
from .validate import as_batch, check_square_batch

__all__ = [
    "LuResult",
    "PivotedLuResult",
    "lu_factor",
    "lu_solve",
    "lu_factor_pivot",
    "lu_solve_pivot",
]


@dataclasses.dataclass(frozen=True)
class LuResult:
    """Packed LU factors (L strictly below the diagonal, unit-implicit)."""

    lu: np.ndarray
    not_solved: np.ndarray

    @property
    def all_solved(self) -> bool:
        return not bool(self.not_solved.any())

    def lower(self) -> np.ndarray:
        n = self.lu.shape[1]
        return np.tril(self.lu, -1) + np.eye(n, dtype=self.lu.dtype)

    def upper(self) -> np.ndarray:
        return np.triu(self.lu)


@dataclasses.dataclass(frozen=True)
class PivotedLuResult(LuResult):
    """LU with a row-permutation: ``P A = L U`` (``perm`` row order)."""

    perm: np.ndarray = None  # type: ignore[assignment]


def lu_factor(
    a: np.ndarray,
    fast_math: bool = True,
    on_singular: Literal["flag", "raise"] = "flag",
) -> LuResult:
    """Unpivoted LU of a square batch, L and U packed over A."""
    a = as_batch(a)
    check_square_batch(a)
    batch, n, _ = a.shape
    mode = arithmetic_mode(fast_math)
    not_solved = np.zeros(batch, dtype=bool)
    one = np.asarray(1.0, dtype=a.dtype)

    for j in range(n - 1):
        pivot = a[:, j, j].copy()
        singular = pivot == 0
        not_solved |= singular
        safe = np.where(singular, one, pivot)
        scale = mode.divide(one, safe)
        # Column operation: l = A[j+1:, j] / pivot
        a[:, j + 1 :, j] = a[:, j + 1 :, j] * scale[:, None]
        # Trailing update: Schur complement -= outer(l, u)
        a[:, j + 1 :, j + 1 :] -= (
            a[:, j + 1 :, j, None] * a[:, j, None, j + 1 :]
        )

    not_solved |= a[:, n - 1, n - 1] == 0
    if on_singular == "raise" and not_solved.any():
        raise SingularMatrixError(
            f"{int(not_solved.sum())} of {batch} matrices hit a zero pivot"  # noqa: RPR001 -- boolean count; integer accumulation is order-free
        )
    return LuResult(lu=a, not_solved=not_solved)


def lu_solve(result: LuResult, b: np.ndarray, fast_math: bool = True) -> np.ndarray:
    """Solve ``A x = b`` from packed unpivoted factors (forward + back)."""
    y = solve_lower_unit(result.lu, b)
    return solve_upper(result.lu, y, fast_math=fast_math)


def lu_factor_pivot(a: np.ndarray, fast_math: bool = True) -> PivotedLuResult:
    """LU with partial (row) pivoting: the paper's deferred extension.

    Row swaps are data-dependent, which is why the paper's register-file
    kernels avoid them; here the batch is vectorized with per-problem
    ``argmax`` pivot selection.
    """
    a = as_batch(a)
    check_square_batch(a)
    batch, n, _ = a.shape
    mode = arithmetic_mode(fast_math)
    perm = np.tile(np.arange(n), (batch, 1))
    rows = np.arange(batch)
    not_solved = np.zeros(batch, dtype=bool)
    one = np.asarray(1.0, dtype=a.dtype)

    for j in range(n - 1):
        # Per-problem pivot row: largest magnitude at or below the diagonal.
        piv = j + np.abs(a[:, j:, j]).argmax(axis=1)
        # Swap rows j and piv in every problem (no-op where piv == j).
        row_j = a[rows, j, :].copy()
        a[rows, j, :] = a[rows, piv, :]
        a[rows, piv, :] = row_j
        perm_j = perm[rows, j].copy()
        perm[rows, j] = perm[rows, piv]
        perm[rows, piv] = perm_j
        pivot = a[:, j, j].copy()
        singular = pivot == 0
        not_solved |= singular
        safe = np.where(singular, one, pivot)
        scale = mode.divide(one, safe)
        a[:, j + 1 :, j] = a[:, j + 1 :, j] * scale[:, None]
        a[:, j + 1 :, j + 1 :] -= a[:, j + 1 :, j, None] * a[:, j, None, j + 1 :]

    not_solved |= a[:, n - 1, n - 1] == 0
    return PivotedLuResult(lu=a, not_solved=not_solved, perm=perm)


def lu_solve_pivot(
    result: PivotedLuResult, b: np.ndarray, fast_math: bool = True
) -> np.ndarray:
    """Solve ``A x = b`` from pivoted factors (apply P, then L, then U)."""
    b_arr = np.asarray(b)
    squeeze = b_arr.ndim == 2
    if squeeze:
        b_arr = b_arr[..., None]
    permuted = np.take_along_axis(b_arr, result.perm[:, :, None], axis=1)
    y = solve_lower_unit(result.lu, permuted)
    x = solve_upper(result.lu, y, fast_math=fast_math)
    return x[..., 0] if squeeze else x
