"""Blocked (WY / compact-WY) Householder QR.

Section IV sketches the path not taken: "We could extend the
one-problem-per-thread approach to larger problems ... by using blocked
algorithms within a thread [13]" (the Level-3 BLAS citation).  This is
that algorithm, batched: panels of ``nb`` columns are factored with the
unblocked sweep, their reflectors aggregated into the compact-WY form
``Q = I - V T V^H``, and the trailing matrix updated with two
matrix-matrix products instead of 2*nb rank-1 updates.

Same factors as :func:`~repro.kernels.batched.qr.qr_factor` (identical
reflectors and taus -- the blocking only reorganizes the *updates*), so
the equality is a strong cross-check of both implementations.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...errors import ShapeError
from .qr import QrFactors, _householder_sweep
from .validate import as_batch, check_tall_batch

__all__ = ["BlockedQrFactors", "blocked_qr_factor", "build_t_factor"]


@dataclasses.dataclass(frozen=True)
class BlockedQrFactors(QrFactors):
    """Packed factors plus the per-panel T matrices of the WY form."""

    t_factors: tuple[np.ndarray, ...] = ()
    panel_width: int = 0


def build_t_factor(v: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """The upper-triangular T with ``Q = I - V T V^H`` (LAPACK larft).

    ``v``: ``(batch, m, nb)`` unit-lower-trapezoidal reflectors;
    ``taus``: ``(batch, nb)``.  Built column by column:
    ``T[:j, j] = -tau_j * T[:j, :j] (V[:, :j]^H v_j)``, ``T[j, j] = tau_j``.
    """
    v = np.asarray(v)
    taus = np.asarray(taus)
    batch, _, nb = v.shape
    t = np.zeros((batch, nb, nb), dtype=v.dtype)
    for j in range(nb):
        tau = taus[:, j]
        t[:, j, j] = tau
        if j:
            z = np.einsum("bmk,bm->bk", v[:, :, :j].conj(), v[:, :, j])  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
            t[:, :j, j] = -tau[:, None] * np.einsum("bkl,bl->bk", t[:, :j, :j], z)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
    return t


def _panel_v(panel: np.ndarray) -> np.ndarray:
    """Unit-lower-trapezoidal V from a factored panel (reflectors below
    the diagonal, R above -- only the strict lower part is V)."""
    batch, rows, nb = panel.shape
    v = np.zeros((batch, rows, nb), dtype=panel.dtype)
    for k in range(nb):
        if k < rows:
            v[:, k, k] = 1
            v[:, k + 1 :, k] = panel[:, k + 1 :, k]
    return v


def blocked_qr_factor(
    a: np.ndarray, panel_width: int = 4, fast_math: bool = True
) -> BlockedQrFactors:
    """Blocked Householder QR of a tall batch.

    ``panel_width`` (nb) is the blocking factor; nb = n degenerates to
    the unblocked sweep.  Returns the same packing as ``qr_factor`` plus
    the T factors for applying ``Q``/``Q^H`` in block form.
    """
    a = as_batch(a)
    check_tall_batch(a)
    if panel_width < 1:
        raise ShapeError("panel width must be positive")
    batch, m, n = a.shape
    taus = np.zeros((batch, n), dtype=a.dtype)
    t_factors: list[np.ndarray] = []

    col = 0
    while col < n:
        nb = min(panel_width, n - col)
        # Factor the panel with the unblocked sweep (rows col..m).
        panel = a[:, col:, col : col + nb].copy()
        panel, panel_taus = _householder_sweep(panel, nb, fast_math)
        a[:, col:, col : col + nb] = panel
        taus[:, col : col + nb] = panel_taus

        # Aggregate the panel's reflectors and update the trailing matrix
        # with two GEMMs:  A -= V T^H (V^H A)   (applying Q^H).
        v = _panel_v(a[:, col:, col : col + nb])
        t = build_t_factor(v, panel_taus)
        t_factors.append(t)
        if col + nb < n:
            trailing = a[:, col:, col + nb :]
            w = np.einsum("bmk,bmj->bkj", v.conj(), trailing)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
            w = np.einsum("bkl,blj->bkj", np.swapaxes(t.conj(), 1, 2), w)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
            trailing -= np.einsum("bmk,bkj->bmj", v, w)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        col += nb

    return BlockedQrFactors(
        packed=a,
        taus=taus,
        t_factors=tuple(t_factors),
        panel_width=panel_width,
    )
