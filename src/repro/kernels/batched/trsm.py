"""Batched triangular solves (forward / backward substitution).

Building blocks for LU solves (Section III-B) and the least-squares
``R x = Q^H b`` step (Section III-D).  All routines are vectorized over
the batch and sweep rows serially, like the register-file kernels.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ._arith import arithmetic_mode

__all__ = ["solve_upper", "solve_lower", "solve_lower_unit"]


def _restore(x: np.ndarray, squeeze: bool, unbatch: bool) -> np.ndarray:
    """Undo the batch/vector promotions applied by :func:`_prep`."""
    if squeeze:
        x = x[..., 0]
    if unbatch:
        x = x[0]
    return x


def _prep(t: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray, bool, bool]:
    t = np.asarray(t)
    b = np.asarray(b)
    unbatch = t.ndim == 2
    if unbatch:
        # A single factor: its right-hand side is a vector or matrix,
        # promoted to a batch of one alongside it (and stripped again on
        # the way out).
        t = t[None]
        if b.ndim <= 2:
            b = b[None]
    if t.ndim != 3 or t.shape[1] != t.shape[2]:
        raise ShapeError(f"expected (batch, n, n) triangular factors, got {t.shape}")
    squeeze = b.ndim == t.ndim - 1
    if squeeze:
        b = b[..., None]
    if b.ndim != 3 or b.shape[0] != t.shape[0] or b.shape[1] != t.shape[1]:
        raise ShapeError(f"rhs shape {b.shape} does not match factors {t.shape}")
    dtype = np.result_type(t.dtype, b.dtype)
    return t.astype(dtype, copy=False), b.astype(dtype, copy=True), squeeze, unbatch


def solve_upper(r: np.ndarray, b: np.ndarray, fast_math: bool = True) -> np.ndarray:
    """Back substitution: solve ``R x = b`` with upper-triangular ``R``."""
    r, x, squeeze, unbatch = _prep(r, b)
    mode = arithmetic_mode(fast_math)
    n = r.shape[1]
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[:, i, :] -= np.einsum("bk,bkr->br", r[:, i, i + 1 :], x[:, i + 1 :, :])  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        x[:, i, :] = mode.divide(x[:, i, :], r[:, i, i][:, None])
    return _restore(x, squeeze, unbatch)


def solve_lower(lower: np.ndarray, b: np.ndarray, fast_math: bool = True) -> np.ndarray:
    """Forward substitution: solve ``L x = b`` with lower-triangular ``L``."""
    lower, x, squeeze, unbatch = _prep(lower, b)
    mode = arithmetic_mode(fast_math)
    n = lower.shape[1]
    for i in range(n):
        if i > 0:
            x[:, i, :] -= np.einsum("bk,bkr->br", lower[:, i, :i], x[:, :i, :])  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
        x[:, i, :] = mode.divide(x[:, i, :], lower[:, i, i][:, None])
    return _restore(x, squeeze, unbatch)


def solve_lower_unit(lower: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Forward substitution with an implicit unit diagonal (LU's ``L``).

    The strict lower triangle of ``lower`` is used; the diagonal is taken
    to be 1 (as stored by :func:`repro.kernels.batched.lu.lu_factor`), so
    no divisions are needed.
    """
    lower, x, squeeze, unbatch = _prep(lower, b)
    n = lower.shape[1]
    for i in range(1, n):
        x[:, i, :] -= np.einsum("bk,bkr->br", lower[:, i, :i], x[:, :i, :])  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
    return _restore(x, squeeze, unbatch)
