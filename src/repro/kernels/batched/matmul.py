"""Batched small matrix multiply.

The speech-recognition motivation from Section I: Gaussian-mixture
observation probabilities multiply "thousands of 79x16 matrices roughly
every one-tenth second".  A batched GEMM with optional transposes and
accumulation covers that workload and the tiled-QR inner products.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError

__all__ = ["batched_matmul"]


def batched_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    transpose_a: bool = False,
    transpose_b: bool = False,
    conjugate_a: bool = False,
    accumulate: np.ndarray | None = None,
    alpha: float = 1.0,
) -> np.ndarray:
    """``alpha * op(A) @ op(B) (+ C)`` over a shared batch dimension.

    ``op`` is transpose (optionally conjugated for ``a``).  Shapes are
    validated before any work happens; mismatches raise
    :class:`~repro.errors.ShapeError` with the offending dimensions.
    """
    a_arr, b_arr = np.asarray(a), np.asarray(b)
    if a_arr.ndim == 2:
        a_arr = a_arr[None]
    if b_arr.ndim == 2:
        b_arr = b_arr[None]
    if a_arr.ndim != 3 or b_arr.ndim != 3:
        raise ShapeError(
            f"expected (batch, m, n) operands, got {a_arr.shape} and {b_arr.shape}"
        )
    if a_arr.shape[0] != b_arr.shape[0]:
        if a_arr.shape[0] == 1:
            a_arr = np.broadcast_to(a_arr, (b_arr.shape[0],) + a_arr.shape[1:])
        elif b_arr.shape[0] == 1:
            b_arr = np.broadcast_to(b_arr, (a_arr.shape[0],) + b_arr.shape[1:])
        else:
            raise ShapeError(
                f"batch sizes differ: {a_arr.shape[0]} vs {b_arr.shape[0]}"
            )
    if conjugate_a:
        a_arr = a_arr.conj()
    if transpose_a:
        a_arr = np.swapaxes(a_arr, 1, 2)
    if transpose_b:
        b_arr = np.swapaxes(b_arr, 1, 2)
    if a_arr.shape[2] != b_arr.shape[1]:
        raise ShapeError(
            f"inner dimensions do not agree: {a_arr.shape} @ {b_arr.shape}"
        )
    out = a_arr @ b_arr
    if alpha != 1.0:  # noqa: RPR005 -- exact sentinel fast path, not a computed float
        out = out * np.asarray(alpha, dtype=out.dtype)
    if accumulate is not None:
        acc = np.asarray(accumulate)
        if acc.shape != out.shape:
            raise ShapeError(
                f"accumulator shape {acc.shape} does not match product {out.shape}"
            )
        out = out + acc
    return out
