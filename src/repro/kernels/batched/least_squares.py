"""Batched least squares via QR (Section III-D).

``min ||Ax - b||`` is solved by rewriting the normal equations in terms
of Q and R: factor A, apply ``Q^H`` to b (by appending b to the right of
the matrix during the factorization, as the paper does), and solve the
upper-triangular system ``R x = Q^H b``.  "Note that this is more
numerically stable than solving the normal equations directly."
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...errors import ShapeError
from .qr import _householder_sweep
from .trsm import solve_upper
from .validate import as_batch, check_tall_batch

__all__ = ["LeastSquaresResult", "least_squares"]


@dataclasses.dataclass(frozen=True)
class LeastSquaresResult:
    """Solution plus the residual norms the factorization yields for free."""

    x: np.ndarray
    #: Per-problem ||Ax - b||_2 (from the bottom of Q^H b), per RHS.
    residual_norms: np.ndarray


def least_squares(
    a: np.ndarray, b: np.ndarray, fast_math: bool = True
) -> LeastSquaresResult:
    """Solve tall least-squares problems ``min ||Ax - b||`` in a batch.

    ``a``: ``(batch, m, n)`` with ``m >= n``; ``b``: ``(batch, m)`` or
    ``(batch, m, nrhs)``.
    """
    a = as_batch(a)
    check_tall_batch(a)
    batch, m, n = a.shape
    b_arr = np.asarray(b, dtype=a.dtype)
    squeeze = b_arr.ndim == 2
    if squeeze:
        b_arr = b_arr[..., None]
    if b_arr.ndim != 3 or b_arr.shape[:2] != (batch, m):
        raise ShapeError(
            f"rhs shape {np.asarray(b).shape} does not match problems {a.shape}"
        )

    aug = np.concatenate([a, b_arr], axis=2)
    aug, _ = _householder_sweep(aug, n, fast_math)
    qtb = aug[:, :, n:]
    r = np.triu(aug[:, :n, :n])
    x = solve_upper(r, qtb[:, :n, :], fast_math=fast_math)
    # The trailing rows of Q^H b are the residual in the factored basis.
    tail = qtb[:, n:, :]
    residual_norms = np.linalg.norm(tail, axis=1) if m > n else np.zeros(
        (batch, qtb.shape[2]), dtype=a.real.dtype
    )
    if squeeze:
        x = x[..., 0]
        residual_norms = residual_norms[..., 0]
    return LeastSquaresResult(x=x, residual_norms=residual_norms)
