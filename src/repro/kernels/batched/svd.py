"""Batched singular value decomposition (one-sided Jacobi).

A further extension in the spirit of the paper's motivating applications:
one-sided Jacobi SVD shares the property that makes cyclic Jacobi
eigensolving GPU-friendly -- a *data-independent* rotation schedule, so a
whole batch sweeps in lockstep with no divergent control flow.

The method orthogonalizes the columns of ``A`` by plane rotations chosen
from each column pair's 2x2 Gram block; on convergence ``A V = U S``
with ``V`` the accumulated rotations, ``S = diag(column norms)`` and
``U`` the normalized columns.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ._arith import arithmetic_mode
from .validate import as_batch, check_tall_batch

__all__ = ["SvdResult", "jacobi_svd"]


@dataclasses.dataclass(frozen=True)
class SvdResult:
    """Thin SVD, singular values descending."""

    u: np.ndarray  # (batch, m, n)
    s: np.ndarray  # (batch, n) real, descending
    vh: np.ndarray  # (batch, n, n)
    sweeps_used: int

    def reconstruct(self) -> np.ndarray:
        return self.u * self.s[:, None, :] @ self.vh


def _rotate_columns(work: np.ndarray, v: np.ndarray, p: int, q: int) -> None:
    """One batched one-sided rotation making columns p and q orthogonal."""
    cp = work[:, :, p]
    cq = work[:, :, q]
    app = (np.abs(cp) ** 2).sum(axis=1)
    aqq = (np.abs(cq) ** 2).sum(axis=1)
    apq = np.einsum("bm,bm->b", cp.conj(), cq)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
    abs_apq = np.abs(apq)
    scale = np.maximum(app, aqq)
    live = abs_apq > 1e-30 * np.maximum(scale, 1e-300)

    safe_apq = np.where(live, abs_apq, 1.0).astype(np.float64)
    theta = (aqq.astype(np.float64) - app.astype(np.float64)) / (2.0 * safe_apq)
    sign_theta = np.where(theta >= 0, 1.0, -1.0)
    huge = np.abs(theta) > 1e100
    theta_safe = np.where(huge, 1.0, theta)
    t = np.where(
        huge,
        0.5 / np.where(huge, theta, 1.0),
        sign_theta / (np.abs(theta_safe) + np.sqrt(1.0 + theta_safe * theta_safe)),
    )
    c = 1.0 / np.sqrt(1.0 + t * t)
    s_mag = t * c
    c = np.where(live, c, 1.0).astype(work.real.dtype)
    s_mag = np.where(live, s_mag, 0.0)
    phase = np.where(live, apq / np.where(live, abs_apq, 1.0), 1.0)
    s = (s_mag * phase).astype(work.dtype)

    # Right-multiply by the plane rotation (same J as the eigensolver).
    col_p = work[:, :, p].copy()
    col_q = work[:, :, q].copy()
    work[:, :, p] = c[:, None] * col_p - np.conj(s)[:, None] * col_q
    work[:, :, q] = s[:, None] * col_p + c[:, None] * col_q
    vcol_p = v[:, :, p].copy()
    vcol_q = v[:, :, q].copy()
    v[:, :, p] = c[:, None] * vcol_p - np.conj(s)[:, None] * vcol_q
    v[:, :, q] = s[:, None] * vcol_p + c[:, None] * vcol_q


def _off_diagonal_coupling(work: np.ndarray) -> float:
    """Largest normalized |c_p^H c_q| over the batch."""
    gram = np.einsum("bmi,bmj->bij", work.conj(), work)  # noqa: RPR001 -- contracts a fixed per-problem axis; chunking the batch cannot reorder it
    n = gram.shape[1]
    diag = np.sqrt(np.abs(gram[:, np.arange(n), np.arange(n)]).clip(min=1e-300))
    norm = diag[:, :, None] * diag[:, None, :]
    coupling = np.abs(gram) / norm
    coupling[:, np.arange(n), np.arange(n)] = 0
    return float(coupling.max())


def jacobi_svd(
    a: np.ndarray,
    max_sweeps: int = 24,
    tol: float | None = None,
    fast_math: bool = True,
) -> SvdResult:
    """Thin SVD of a tall batch via one-sided Jacobi.

    ``a``: ``(batch, m, n)`` with ``m >= n``, real or complex.  Rank
    deficiency is tolerated (zero singular values come out as exact
    zeros with arbitrary orthonormal completion of ``U`` omitted -- the
    thin factor keeps the corresponding zero column).
    """
    a = as_batch(a)
    check_tall_batch(a)
    if max_sweeps < 1:
        raise ValueError("need at least one sweep")
    mode = arithmetic_mode(fast_math)
    batch, m, n = a.shape
    if tol is None:
        tol = 30 * np.finfo(a.real.dtype).eps

    work = a.copy()
    v = np.zeros((batch, n, n), dtype=a.dtype)
    v[:, np.arange(n), np.arange(n)] = 1

    sweeps = 0
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        for p in range(n - 1):
            for q in range(p + 1, n):
                _rotate_columns(work, v, p, q)
        if _off_diagonal_coupling(work) <= tol:
            break

    sq = (np.abs(work) ** 2).sum(axis=1).astype(a.real.dtype)
    s = mode.sqrt(sq)
    order = np.argsort(-s, axis=1)
    s = np.take_along_axis(s, order, axis=1)
    work = np.take_along_axis(work, order[:, None, :], axis=2)
    v = np.take_along_axis(v, order[:, None, :], axis=2)

    safe = np.where(s == 0, np.ones_like(s), s)
    u = (work * mode.divide(np.ones_like(safe), safe)[:, None, :]).astype(a.dtype)
    u[np.broadcast_to((s == 0)[:, None, :], u.shape)] = 0
    return SvdResult(
        u=u, s=s, vh=np.swapaxes(v.conj(), 1, 2), sweeps_used=sweeps
    )
