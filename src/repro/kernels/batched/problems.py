"""Deterministic batched test-problem generators.

The paper's LU and Gauss-Jordan kernels do not pivot, so their
correctness experiments use *diagonally dominant* matrices ("the matrices
tested were diagonally dominant so no pivoting was necessary").  These
generators produce the same classes of inputs for the tests, benchmarks,
and examples: diagonally dominant square batches, generic well-scaled
tall batches for QR/least-squares, and Hermitian batches for the
eigensolver extension.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError

__all__ = [
    "random_batch",
    "diagonally_dominant_batch",
    "hermitian_batch",
    "rhs_batch",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check(batch: int, m: int, n: int) -> None:
    if batch < 1 or m < 1 or n < 1:
        raise ShapeError(f"invalid batch shape ({batch}, {m}, {n})")


def random_batch(
    batch: int, m: int, n: int, dtype=np.float32, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """Well-scaled dense batch: i.i.d. standard normal entries."""
    _check(batch, m, n)
    rng = _rng(seed)
    dt = np.dtype(dtype)
    if dt.kind == "c":
        real = rng.standard_normal((batch, m, n))
        imag = rng.standard_normal((batch, m, n))
        return ((real + 1j * imag) / np.sqrt(2)).astype(dt)
    return rng.standard_normal((batch, m, n)).astype(dt)


def diagonally_dominant_batch(
    batch: int, n: int, dtype=np.float32, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """Strictly diagonally dominant square batch (safe without pivoting)."""
    _check(batch, n, n)
    a = random_batch(batch, n, n, dtype=dtype, seed=seed)
    row_sums = np.abs(a).sum(axis=2)
    bump = (row_sums + 1.0).astype(a.real.dtype)
    idx = np.arange(n)
    diag_sign = np.where(a[:, idx, idx].real >= 0, 1.0, -1.0).astype(a.real.dtype)
    a[:, idx, idx] += (diag_sign * bump).astype(a.dtype)
    return a


def hermitian_batch(
    batch: int, n: int, dtype=np.complex64, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """Hermitian (or symmetric, for real dtypes) square batch."""
    _check(batch, n, n)
    a = random_batch(batch, n, n, dtype=dtype, seed=seed)
    return ((a + np.swapaxes(a.conj(), 1, 2)) / 2).astype(np.dtype(dtype))


def rhs_batch(
    batch: int,
    n: int,
    nrhs: int = 1,
    dtype=np.float32,
    seed: int | np.random.Generator = 1,
) -> np.ndarray:
    """Right-hand sides matching a square batch: shape (batch, n, nrhs)."""
    return random_batch(batch, n, nrhs, dtype=dtype, seed=seed)
