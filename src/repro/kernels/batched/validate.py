"""Input validation and numerical-quality checks for batched kernels.

The residual helpers are the acceptance criteria used throughout the test
suite and the examples: factorizations are verified by reconstruction
(``||A - QR||``, ``||A - LU||``), orthogonality (``||Q^H Q - I||``), and
solve residuals (``||Ax - b||``), all relative and batch-reduced to the
worst problem.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError

__all__ = [
    "as_batch",
    "check_square_batch",
    "check_tall_batch",
    "qr_reconstruction_error",
    "orthogonality_error",
    "lu_reconstruction_error",
    "solve_residual",
    "triangular_error",
]

_SUPPORTED = (np.float32, np.float64, np.complex64, np.complex128)


def as_batch(matrices: np.ndarray) -> np.ndarray:
    """Coerce to a ``(batch, m, n)`` array of a supported dtype (copy)."""
    arr = np.asarray(matrices)
    if arr.dtype not in [np.dtype(d) for d in _SUPPORTED]:
        if arr.dtype.kind in "iu":
            arr = arr.astype(np.float64)
        else:
            raise ShapeError(f"unsupported dtype: {arr.dtype}")
    if arr.ndim == 2:
        arr = arr[None]
    if arr.ndim != 3:
        raise ShapeError(f"expected (batch, m, n) matrices, got shape {arr.shape}")
    if arr.shape[0] < 1 or arr.shape[1] < 1 or arr.shape[2] < 1:
        raise ShapeError(f"empty batch or matrix: shape {arr.shape}")
    return arr.copy()


def check_square_batch(arr: np.ndarray) -> None:
    if arr.shape[1] != arr.shape[2]:
        raise ShapeError(f"expected square matrices, got {arr.shape[1]}x{arr.shape[2]}")


def check_tall_batch(arr: np.ndarray) -> None:
    if arr.shape[1] < arr.shape[2]:
        raise ShapeError(
            f"expected m >= n matrices, got {arr.shape[1]}x{arr.shape[2]}"
        )


def _relative(err: np.ndarray, ref: np.ndarray) -> float:
    scale = np.maximum(ref, np.finfo(err.dtype).tiny)
    return float((err / scale).max())


def qr_reconstruction_error(a: np.ndarray, q: np.ndarray, r: np.ndarray) -> float:
    """Worst relative ``||A - QR||_F / ||A||_F`` over the batch."""
    a, q, r = (np.asarray(x) for x in (a, q, r))
    err = np.linalg.norm(a - q @ r, axis=(1, 2))
    return _relative(err, np.linalg.norm(a, axis=(1, 2)))


def orthogonality_error(q: np.ndarray) -> float:
    """Worst ``||Q^H Q - I||_F`` over the batch (absolute; I has norm sqrt(n))."""
    q = np.asarray(q)
    n = q.shape[2]
    eye = np.eye(n, dtype=q.dtype)
    gram = np.swapaxes(q.conj(), 1, 2) @ q
    return float(np.linalg.norm(gram - eye, axis=(1, 2)).max())


def lu_reconstruction_error(a: np.ndarray, lu: np.ndarray) -> float:
    """Worst relative ``||A - L U||`` from a packed LU factor."""
    a, lu = np.asarray(a), np.asarray(lu)
    n = lu.shape[1]
    lower = np.tril(lu, -1) + np.eye(n, dtype=lu.dtype)
    upper = np.triu(lu)
    err = np.linalg.norm(a - lower @ upper, axis=(1, 2))
    return _relative(err, np.linalg.norm(a, axis=(1, 2)))


def solve_residual(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """Worst relative ``||Ax - b|| / ||b||`` over the batch."""
    a, x, b = (np.asarray(v) for v in (a, x, b))
    if x.ndim == 2:
        x = x[..., None]
    if b.ndim == 2:
        b = b[..., None]
    err = np.linalg.norm(a @ x - b, axis=(1, 2))
    return _relative(err, np.linalg.norm(b, axis=(1, 2)))


def triangular_error(r: np.ndarray, lower: bool = False) -> float:
    """Largest magnitude found in the zero triangle of ``r``."""
    r = np.asarray(r)
    k = 1 if lower else -1
    tri = np.tril(r, -1) if not lower else np.triu(r, 1)
    return float(np.abs(tri).max()) if tri.size else 0.0
