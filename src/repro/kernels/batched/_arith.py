"""Arithmetic mode selection for the batched kernels.

Every kernel takes ``fast_math=True`` (the paper compiles with
``--use_fast_math``): division and square root then go through the
22-mantissa-bit hardware emulation of :mod:`repro.gpu.fastmath`; with
``fast_math=False`` they are IEEE-rounded.  Adds/multiplies/FMAs are
exact-rounded either way, as on the hardware.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from ...gpu import fastmath

__all__ = ["ArithmeticMode", "arithmetic_mode"]


@dataclasses.dataclass(frozen=True)
class ArithmeticMode:
    """Bundle of divide / sqrt / reciprocal implementations."""

    fast: bool
    divide: Callable[[np.ndarray, np.ndarray], np.ndarray]
    sqrt: Callable[[np.ndarray], np.ndarray]
    reciprocal: Callable[[np.ndarray], np.ndarray]


def _ieee_divide(a, b):
    return a / b


def _ieee_sqrt(x):
    return np.sqrt(x)


def _ieee_reciprocal(x):
    return 1.0 / x


def _fast_divide_any(a, b):
    """Fast divide that also accepts a complex numerator over a real or
    complex denominator (lowered to real reciprocals, like the compiler)."""
    b = np.asarray(b)
    if b.dtype.kind == "c":
        # z / w = z * conj(w) * rcp(|w|^2)
        denom = (b.real * b.real + b.imag * b.imag).astype(b.real.dtype)
        return np.asarray(a) * b.conj() * fastmath.fast_reciprocal(denom)
    return np.asarray(a) * fastmath.fast_reciprocal(b)


def arithmetic_mode(fast_math: bool) -> ArithmeticMode:
    if fast_math:
        return ArithmeticMode(
            fast=True,
            divide=_fast_divide_any,
            sqrt=fastmath.fast_sqrt,
            reciprocal=fastmath.fast_reciprocal,
        )
    return ArithmeticMode(
        fast=False,
        divide=_ieee_divide,
        sqrt=_ieee_sqrt,
        reciprocal=_ieee_reciprocal,
    )
