"""Instruction-level emulation of the per-thread register kernels.

The paper's one-problem-per-thread kernels are fully unrolled at compile
time ("Register array indices must be known at compile time, so we unroll
loops using ``#pragma unroll`` and C++ templates").  This module emulates
that compilation: :func:`build_lu_program` / :func:`build_qr_program`
emit the *straight-line instruction trace* such a kernel executes for one
``n x n`` problem -- every register index a compile-time constant -- and
:class:`ThreadInterpreter` runs the trace on a register file, vectorized
over the batch (all threads execute the identical trace; that is the
point of the mapping).

What this buys beyond the analytic per-thread model:

* **exact static counts** -- instructions, FLOPs, and the register
  footprint come from the program artifact itself, validating the
  Figure-4 spill threshold (7x7 fits the 64-register file; 8x8 does not)
  instruction by instruction;
* **a numerics cross-check** -- the interpreter's results match the
  vectorized batched kernels (bitwise for LU, to rounding for QR whose
  reductions may associate differently);
* an observable artifact where "the compiler ran out of registers" is a
  property you can inspect rather than a formula.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

import numpy as np

from ...gpu import fastmath
from ...gpu.device import DeviceSpec

__all__ = [
    "Instruction",
    "ThreadProgram",
    "ThreadInterpreter",
    "build_lu_program",
    "build_qr_program",
]

Opcode = Literal[
    "load", "store", "mov", "add", "sub", "mul", "fma", "mulacc",
    "rcp", "sqrt", "hbeta",
]

#: FLOPs credited per opcode (FMA-class ops do two).
_FLOPS = {"add": 1, "sub": 1, "mul": 1, "fma": 2, "mulacc": 2, "rcp": 1,
          "sqrt": 1, "hbeta": 1}


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One straight-line instruction; register indices are constants.

    Semantics (``r`` is the register file):

    ====== =====================================================
    load   ``r[dst] = mem[mem_index]``
    store  ``mem[mem_index] = r[dst]``
    mov    ``r[dst] = r[a]``
    add    ``r[dst] = r[a] + r[b]``
    sub    ``r[dst] = r[a] - r[b]``
    mul    ``r[dst] = r[a] * r[b]``
    fma    ``r[dst] = r[c] - r[a] * r[b]``   (the update FMA)
    mulacc ``r[dst] = r[c] + r[a] * r[b]``   (the reduction FMA)
    rcp    ``r[dst] = 1 / r[a]``             (fast-math truncated)
    sqrt   ``r[dst] = sqrt(r[a])``           (fast-math lowering)
    hbeta  ``r[dst] = -copysign(r[b], r[a])``  (Householder beta)
    ====== =====================================================
    """

    op: Opcode
    dst: int
    a: int = -1
    b: int = -1
    c: int = -1
    mem: int = -1

    def registers(self) -> tuple[int, ...]:
        return tuple(r for r in (self.dst, self.a, self.b, self.c) if r >= 0)


@dataclasses.dataclass(frozen=True)
class ThreadProgram:
    """A fully unrolled single-thread kernel."""

    name: str
    n: int
    instructions: tuple[Instruction, ...]
    #: Register index of matrix element (i, j): ``reg_of[i][j]``.
    reg_of: tuple[tuple[int, ...], ...]
    num_registers: int

    @property
    def length(self) -> int:
        return len(self.instructions)

    @property
    def flop_count(self) -> int:
        return sum(_FLOPS.get(i.op, 0) for i in self.instructions)

    @property
    def arithmetic_instructions(self) -> int:
        return sum(1 for i in self.instructions if i.op in _FLOPS)

    def spills_on(self, device: DeviceSpec) -> bool:
        return self.num_registers > device.max_registers_per_thread


class _Emitter:
    """Register allocator + instruction buffer for program builders."""

    def __init__(self, n: int):
        self.n = n
        self.instructions: list[Instruction] = []
        # Matrix elements occupy the first n*n registers, row-major --
        # the "register array" of the CUDA templates.
        self.reg_of = [[i * n + j for j in range(n)] for i in range(n)]
        self._next = n * n

    def temp(self) -> int:
        reg = self._next
        self._next += 1
        return reg

    def emit(self, op: Opcode, dst: int, a: int = -1, b: int = -1,
             c: int = -1, mem: int = -1) -> None:
        self.instructions.append(Instruction(op=op, dst=dst, a=a, b=b, c=c, mem=mem))

    def emit_loads(self) -> None:
        for i in range(self.n):
            for j in range(self.n):
                self.emit("load", self.reg_of[i][j], mem=i * self.n + j)

    def emit_stores(self) -> None:
        for i in range(self.n):
            for j in range(self.n):
                self.emit("store", self.reg_of[i][j], mem=i * self.n + j)

    def finish(self, name: str) -> ThreadProgram:
        return ThreadProgram(
            name=name,
            n=self.n,
            instructions=tuple(self.instructions),
            reg_of=tuple(tuple(r) for r in self.reg_of),
            num_registers=self._next,
        )


def build_lu_program(n: int) -> ThreadProgram:
    """Unrolled unpivoted LU for one n x n matrix in registers."""
    if n < 1:
        raise ValueError("matrix dimension must be positive")
    e = _Emitter(n)
    e.emit_loads()
    scale = e.temp()
    for k in range(n - 1):
        e.emit("rcp", scale, e.reg_of[k][k])
        for i in range(k + 1, n):
            e.emit("mul", e.reg_of[i][k], e.reg_of[i][k], scale)
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                # A[i][j] -= A[i][k] * A[k][j]
                e.emit("fma", e.reg_of[i][j],
                       e.reg_of[i][k], e.reg_of[k][j], e.reg_of[i][j])
    e.emit_stores()
    return e.finish("lu")


def build_qr_program(n: int) -> ThreadProgram:
    """Unrolled Householder QR for one n x n matrix in registers.

    Follows :func:`repro.kernels.batched.qr.qr_factor`'s arithmetic
    (LAPACK convention, v0 = 1 implicit, fast-math rcp/sqrt lowering).
    """
    if n < 1:
        raise ValueError("matrix dimension must be positive")
    e = _Emitter(n)
    e.emit_loads()
    # Persistent scalars, reused across columns like the CUDA kernel's.
    norm_sq = e.temp()
    beta = e.temp()
    tau = e.temp()
    inv_denom = e.temp()
    w = e.temp()
    tmp = e.temp()
    v = [e.temp() for _ in range(1, n)]  # v[1:] -- v0 is implicit 1

    for k in range(n - 1):
        alpha = e.reg_of[k][k]
        # norm_sq = sum_{i>=k} A[i][k]^2, then norm via the sqrt lowering.
        e.emit("mul", norm_sq, alpha, alpha)
        for i in range(k + 1, n):
            e.emit("mulacc", norm_sq, e.reg_of[i][k], e.reg_of[i][k], norm_sq)
        e.emit("sqrt", tmp, norm_sq)          # tmp = norm
        e.emit("hbeta", beta, alpha, tmp)     # beta = -copysign(norm, alpha)
        # tau = (beta - alpha) * rcp(beta)
        e.emit("sub", w, beta, alpha)
        e.emit("rcp", tau, beta)
        e.emit("mul", tau, w, tau)
        # inv_denom = rcp(alpha - beta)
        e.emit("sub", tmp, alpha, beta)
        e.emit("rcp", inv_denom, tmp)
        # v[i] = A[i][k] * inv_denom
        for i in range(k + 1, n):
            e.emit("mul", v[i - 1], e.reg_of[i][k], inv_denom)
        # Trailing update, one column at a time.
        for j in range(k + 1, n):
            e.emit("mov", w, e.reg_of[k][j])
            for i in range(k + 1, n):
                e.emit("mulacc", w, v[i - 1], e.reg_of[i][j], w)
            e.emit("mul", tmp, tau, w)
            e.emit("sub", e.reg_of[k][j], e.reg_of[k][j], tmp)
            for i in range(k + 1, n):
                e.emit("fma", e.reg_of[i][j], tmp, v[i - 1], e.reg_of[i][j])
        # Pack the factor: beta on the diagonal, v below it.
        e.emit("mov", alpha, beta)
        for i in range(k + 1, n):
            e.emit("mov", e.reg_of[i][k], v[i - 1])
    e.emit_stores()
    return e.finish("qr")


class ThreadInterpreter:
    """Execute a :class:`ThreadProgram` over a batch of problems.

    The register file is a ``(num_registers, batch)`` array: one lane per
    problem, exactly how the SIMT hardware runs the same trace across
    threads.  ``fast_math`` selects the truncated rcp/sqrt the paper's
    builds use.
    """

    def __init__(self, program: ThreadProgram, fast_math: bool = True):
        self.program = program
        self.fast_math = fast_math
        self.instructions_executed = 0

    def run(self, matrices: np.ndarray) -> np.ndarray:
        a = np.asarray(matrices)
        if a.ndim == 2:
            a = a[None]
        n = self.program.n
        if a.ndim != 3 or a.shape[1:] != (n, n):
            raise ValueError(
                f"program expects (batch, {n}, {n}) input, got {a.shape}"
            )
        batch = a.shape[0]
        dtype = a.dtype
        mem = a.reshape(batch, n * n).T.copy()  # (elements, batch)
        regs = np.zeros((self.program.num_registers, batch), dtype=dtype)
        out = np.empty_like(mem)

        if self.fast_math:
            rcp = fastmath.fast_reciprocal
            sqrt = fastmath.fast_sqrt
        else:

            def rcp(x):
                return (1.0 / x).astype(dtype)

            sqrt = np.sqrt

        for ins in self.program.instructions:
            op = ins.op
            if op == "load":
                regs[ins.dst] = mem[ins.mem]
            elif op == "store":
                out[ins.mem] = regs[ins.dst]
            elif op == "mov":
                regs[ins.dst] = regs[ins.a]
            elif op == "add":
                regs[ins.dst] = regs[ins.a] + regs[ins.b]
            elif op == "sub":
                regs[ins.dst] = regs[ins.a] - regs[ins.b]
            elif op == "mul":
                regs[ins.dst] = regs[ins.a] * regs[ins.b]
            elif op == "fma":
                regs[ins.dst] = regs[ins.c] - regs[ins.a] * regs[ins.b]
            elif op == "mulacc":
                regs[ins.dst] = regs[ins.c] + regs[ins.a] * regs[ins.b]
            elif op == "rcp":
                with np.errstate(divide="ignore"):
                    regs[ins.dst] = rcp(regs[ins.a])
            elif op == "sqrt":
                regs[ins.dst] = sqrt(regs[ins.a])
            elif op == "hbeta":
                regs[ins.dst] = -np.copysign(regs[ins.b], regs[ins.a])
            else:  # pragma: no cover - opcodes are a closed set
                raise ValueError(f"unknown opcode {op!r}")
            self.instructions_executed += 1

        return out.T.reshape(batch, n, n).copy()
