"""Device kernels: the Section IV/V implementations on the SIMT engine.

Each kernel computes real numerics (identical to :mod:`repro.kernels.batched`)
while charging every hardware event to the block engine -- the source of
this repo's "measured" curves.
"""

from .base import (
    BREAKDOWN_DETECTORS,
    BlockKernel,
    DeviceKernelResult,
    breakdown_detector,
    nonfinite_breakdowns,
)
from .per_block_cholesky import cholesky_flops, per_block_cholesky
from .per_block_gj import per_block_gauss_jordan
from .per_block_lstsq import per_block_least_squares
from .per_block_lu import per_block_lu
from .per_block_lu_pivot import per_block_lu_pivot
from .per_block_qr import per_block_qr, per_block_qr_solve
from .per_thread import PerThreadResult, per_thread_factor
from .thread_program import (
    Instruction,
    ThreadInterpreter,
    ThreadProgram,
    build_lu_program,
    build_qr_program,
)

__all__ = [
    "BREAKDOWN_DETECTORS",
    "BlockKernel",
    "DeviceKernelResult",
    "breakdown_detector",
    "nonfinite_breakdowns",
    "cholesky_flops",
    "per_block_cholesky",
    "per_block_gauss_jordan",
    "per_block_least_squares",
    "per_block_lu",
    "per_block_lu_pivot",
    "per_block_qr",
    "per_block_qr_solve",
    "PerThreadResult",
    "per_thread_factor",
    "Instruction",
    "ThreadInterpreter",
    "ThreadProgram",
    "build_lu_program",
    "build_qr_program",
]
