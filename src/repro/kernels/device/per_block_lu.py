"""One-problem-per-block LU (no pivoting) on the SIMT engine.

The Section V implementation: the matrix lives in 2D-cyclic register
tiles; each column step scales ``l`` by the reciprocal of the pivot
(computed by the diagonal thread and published through shared memory,
Listing 5), shares ``l`` and ``u`` through shared memory (Listing 6), and
applies the Listing-7 rank-1 update to the trailing tiles.  Every
hardware event is charged to the block engine, so the run produces both
the factors and the "measured" cycle counts of Table V / Figure 9.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gpu.device import QUADRO_6000, DeviceSpec
from ...model.block_config import BlockConfig
from ...model.flops import lu_flops
from ..batched._arith import arithmetic_mode
from .base import (
    BlockKernel,
    DeviceKernelResult,
    breakdown_detector,
    nonfinite_breakdowns,
)

__all__ = ["per_block_lu"]


@breakdown_detector("lu")
def _lu_breakdowns(output: np.ndarray, extra) -> dict:
    """Quarantine hook: ``extra`` is the kernel's zero-pivot flag array."""
    found = nonfinite_breakdowns(output)
    if extra is not None:
        for i in np.nonzero(np.asarray(extra, dtype=bool))[0]:
            found[int(i)] = "zero-pivot"
    return found


def per_block_lu(
    a: np.ndarray,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    account_overhead: bool = True,
    config: Optional[BlockConfig] = None,
) -> DeviceKernelResult:
    """Factor a batch of square matrices, one problem per thread block.

    Returns the packed LU (L strictly lower, unit-implicit; U upper) in
    ``output`` and the per-problem singularity flags in ``extra``.
    """
    kernel = BlockKernel(
        a,
        device=device,
        config=config,
        fast_math=fast_math,
        account_overhead=account_overhead,
    )
    if kernel.m != kernel.n:
        raise ValueError("LU expects square matrices")
    eng = kernel.engine
    mode = arithmetic_mode(fast_math)
    n = kernel.n
    # A complex MAC is 4 FMAs on 2 independent chains: with the
    # dual-issue pipeline its dependent cost is ~2 gamma, while the
    # algorithmic credit is 8 real FLOPs (4x the real MAC's 2).
    cost = 2 if kernel.complex else 1
    credit = 8.0 if kernel.complex else 2.0
    one = np.asarray(1.0, dtype=kernel.dtype)
    not_solved = np.zeros(kernel.batch, dtype=bool)

    for j in range(n - 1):
        panel = j // kernel.r
        N = kernel.column_tile_rows(j)
        with eng.phase(f"panel{panel}:Column Op"):
            # Diagonal thread computes the scale factor (Listing 5):
            # one division, a shared write, and a synchronization.
            pivot = kernel.extract_column(j, j)[:, 0].copy()
            singular = pivot == 0
            not_solved |= singular
            scale = mode.divide(one, np.where(singular, one, pivot))
            kernel.sh_scalar.write(0, scale)
            eng.charge_div(1, useful_flops=0)
            eng.charge_shared(2)  # write and read the scale factor
            eng.sync()

            # Scale l below the pivot and publish l and u to shared
            # memory (Listing 6): N gamma + 2N beta + a sync.
            scale_rd = kernel.sh_scalar.read(0)
            col = kernel.extract_column(j, j + 1)
            l_vec = col * scale_rd[:, None]
            kernel.deposit_column(j, j + 1, l_vec)
            lfull = np.zeros((kernel.batch, kernel.m), dtype=kernel.dtype)
            lfull[:, j + 1 :] = l_vec
            kernel.sh_col.write(np.arange(kernel.m), lfull)
            ufull = np.zeros((kernel.batch, kernel.n), dtype=kernel.dtype)
            ufull[:, j + 1 :] = kernel.extract_row(j, j + 1)
            kernel.sh_row.write(np.arange(kernel.n), ufull)
            eng.charge_flops(N * cost, useful_flops=credit / 2 * (n - 1 - j))
            eng.charge_shared(2 * N, writes=True)
            eng.sync()

        with eng.phase(f"panel{panel}:Rank-1 Update"):
            # Trailing update: read l & u from shared (2N beta), N^2
            # FMAs per thread, one synchronization (Listing 7).
            lread = kernel.sh_col.read(np.arange(kernel.m))
            uread = kernel.sh_row.read(np.arange(kernel.n))
            kernel.rank1_update(lread, uread, row_start=j + 1, col_start=j + 1)
            eng.charge_shared(2 * N)
            eng.charge_flops(
                N * N * cost, useful_flops=credit * (n - 1 - j) * (n - 1 - j)
            )
            eng.sync()

    not_solved |= kernel.extract_column(n - 1, n - 1)[:, 0] == 0
    out = kernel.store()
    return kernel.result(
        out,
        flops_per_problem=(4 if kernel.complex else 1) * lu_flops(n),
        extra=not_solved,
    )
