"""One-problem-per-block Cholesky factorization.

Not in the paper's evaluation, but the natural fourth member of the
family: Hermitian positive-definite systems (e.g. STAP covariance
matrices, normal equations) factor with half LU's flops and no pivoting
concerns at all.  The mapping mirrors the LU kernel: the diagonal thread
computes ``1/sqrt(pivot)`` (one rsqrt -- cheaper than LU's divide plus
QR's sqrt+divides), the scaled column is published through shared memory,
and the trailing Hermitian update touches only the lower triangle, which
is why its per-column estimate is about half of LU's rank-1 cost.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gpu.device import QUADRO_6000, DeviceSpec
from ...model.block_config import BlockConfig
from ..batched._arith import arithmetic_mode
from .base import (
    BlockKernel,
    DeviceKernelResult,
    breakdown_detector,
    nonfinite_breakdowns,
)

__all__ = ["per_block_cholesky", "cholesky_flops"]


@breakdown_detector("cholesky")
def _cholesky_breakdowns(output: np.ndarray, extra) -> dict:
    """Quarantine hook: ``extra`` flags problems that were not HPD."""
    found = nonfinite_breakdowns(output)
    if extra is not None:
        for i in np.nonzero(np.asarray(extra, dtype=bool))[0]:
            found[int(i)] = "not-positive-definite"
    return found


def cholesky_flops(n: int) -> float:
    """1/3 n^3, the usual convention (half of LU's 2/3 n^3)."""
    if n < 1:
        raise ValueError("matrix dimension must be positive")
    return float(n) ** 3 / 3.0


def per_block_cholesky(
    a: np.ndarray,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    account_overhead: bool = True,
    config: Optional[BlockConfig] = None,
) -> DeviceKernelResult:
    """Factor an HPD batch: ``A = L L^H``, one problem per block.

    ``output`` holds L in the lower triangle (upper triangle zeroed);
    ``extra`` flags problems that were not positive definite.
    """
    kernel = BlockKernel(
        a,
        device=device,
        config=config,
        fast_math=fast_math,
        account_overhead=account_overhead,
    )
    if kernel.m != kernel.n:
        raise ValueError("Cholesky expects square matrices")
    eng = kernel.engine
    mode = arithmetic_mode(fast_math)
    n = kernel.n
    cost = 2 if kernel.complex else 1
    credit = 8.0 if kernel.complex else 2.0
    not_spd = np.zeros(kernel.batch, dtype=bool)
    real_dtype = np.zeros(1, dtype=kernel.dtype).real.dtype

    for j in range(n):
        panel = j // kernel.r
        N = kernel.column_tile_rows(j)
        with eng.phase(f"panel{panel}:Column Op"):
            # Diagonal thread: pivot = A[j][j] (real for HPD), rsqrt,
            # publish the inverse square root.
            pivot = kernel.extract_column(j, j)[:, 0].real.astype(real_dtype)
            bad = pivot <= 0
            not_spd |= bad
            safe = np.where(bad, np.ones_like(pivot), pivot)
            root = mode.sqrt(safe)
            inv_root = mode.divide(np.ones_like(root), root)
            kernel.sh_scalar.write(0, inv_root.astype(kernel.dtype))
            eng.charge_sqrt(1, useful_flops=0)
            eng.charge_div(1, useful_flops=0)
            eng.charge_shared(2)
            eng.sync()

            # Scale the column: L[j:, j] = A[j:, j] / sqrt(pivot), and
            # publish it for the trailing update.
            scale_rd = kernel.sh_scalar.read(0)
            col = kernel.extract_column(j, j) * scale_rd[:, None]
            kernel.deposit_column(j, j, col)
            lfull = np.zeros((kernel.batch, kernel.m), dtype=kernel.dtype)
            lfull[:, j:] = col
            kernel.sh_col.write(np.arange(kernel.m), lfull)
            eng.charge_flops(N * cost, useful_flops=credit / 2 * (n - j))
            eng.charge_shared(N, writes=True)
            eng.sync()

        with eng.phase(f"panel{panel}:Hermitian Update"):
            # A[j+1:, j+1:] -= l l^H, lower triangle only: each thread
            # reads l once and does ~N^2/2 FMAs.
            lread = kernel.sh_col.read(np.arange(kernel.m))
            row_vec = np.zeros((kernel.batch, kernel.n), dtype=kernel.dtype)
            row_vec[:, j + 1 :] = lread[:, j + 1 :].conj()
            kernel.rank1_update(lread, row_vec, row_start=j + 1, col_start=j + 1)
            eng.charge_shared(N)
            eng.charge_flops(
                N * N * cost / 2.0,
                useful_flops=credit / 2 * (n - 1 - j) * (n - 1 - j),
            )
            eng.sync()

    out = kernel.store()
    out = np.tril(out)
    if not_spd.any():
        out = out.copy()
        out[not_spd] = np.nan
    return kernel.result(
        out,
        flops_per_problem=(4 if kernel.complex else 1) * cholesky_flops(n),
        extra=not_spd,
    )
