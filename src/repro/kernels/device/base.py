"""Shared infrastructure for the one-problem-per-block device kernels.

A device kernel holds the matrix batch in *register tiles* --
``tiles[b, ti, tj, ii, jj]`` is the element ``A[b, ti + ii*r, tj +
jj*r]`` owned by thread ``(ti, tj)`` of the ``r x r`` grid (the 2D cyclic
layout of Listing 4).  All blocks execute the same branch-free
instruction stream, so the batch axis is vectorized while the
:class:`~repro.gpu.simt.BlockEngine` accounts cycles once per block.

The helpers here implement the distributed primitives every
factorization uses:

* extracting/depositing a global column (or row) slice of the tiles,
* per-thread partial reductions followed by the serial cross-thread
  reduction of Table VI,
* the tile-space rank-1 update ``tiles[b,ti,tj,ii,jj] -= V[b,ti,ii] *
  W[b,tj,jj]`` (a broadcast of two shared-memory vectors).
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, Optional

import numpy as np

from ...gpu.clock import CycleBreakdown
from ...gpu.device import QUADRO_6000, DeviceSpec
from ...gpu.simt import BlockEngine, LaunchResult
from ...layouts.cyclic2d import Cyclic2D
from ...model.block_config import BlockConfig, block_config

__all__ = [
    "BREAKDOWN_DETECTORS",
    "BlockKernel",
    "DeviceKernelResult",
    "batch_dot",
    "block_engine_factory",
    "breakdown_detector",
    "nonfinite_breakdowns",
]

#: Override for the engine class a :class:`BlockKernel` constructs.
#: ``repro.analyze.costcheck`` swaps in a recording engine here to
#: interpret kernels abstractly without changing their call sites.
_ENGINE_FACTORY: ContextVar[Optional[Callable[..., BlockEngine]]] = ContextVar(
    "repro_block_engine_factory", default=None
)


@contextmanager
def block_engine_factory(factory: Callable[..., BlockEngine]) -> Iterator[None]:
    """Scope within which :class:`BlockKernel` builds engines via ``factory``.

    ``factory`` receives exactly the :class:`~repro.gpu.simt.BlockEngine`
    constructor arguments and must return an engine (typically a
    subclass).  The override is a contextvar, so concurrent kernels in
    other threads/tasks are unaffected.
    """
    token = _ENGINE_FACTORY.set(factory)
    try:
        yield
    finally:
        _ENGINE_FACTORY.reset(token)

#: Per-problem breakdown detectors keyed by runtime op name.  A detector
#: takes a kernel's raw ``(output, extra)`` and returns ``{batch index:
#: reason}`` for every problem whose factorization broke down (zero
#: pivot, non-PSD input, non-finite output...).  The runtime's numerical
#: quarantine (:mod:`repro.resilience.quarantine`) consults this registry
#: so one singular matrix fails *its slot*, never the batch.
BREAKDOWN_DETECTORS: Dict[str, Callable[..., Dict[int, str]]] = {}


def breakdown_detector(op: str):
    """Register a breakdown detector for runtime op ``op`` (decorator)."""

    def register(fn):
        BREAKDOWN_DETECTORS[op] = fn
        return fn

    return register


def nonfinite_breakdowns(output: np.ndarray, extra=None) -> Dict[int, str]:
    """Default detector: flag problems whose output holds Inf/NaN.

    A factorization that produced a non-finite entry is unusable no
    matter which algorithm ran, so this is the floor every per-op
    detector builds on.
    """
    flat = np.asarray(output).reshape(output.shape[0], -1)
    bad = ~np.isfinite(flat).all(axis=1)
    return {int(i): "non-finite" for i in np.nonzero(bad)[0]}


def batch_dot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-problem inner product ``sum_i x[b, i] * y[b, i]``.

    The reduction order must not depend on the batch size: ``np.einsum``
    picks stride-dependent inner loops whose accumulation order varies
    with the operands' shapes, so chunking a batch would perturb the
    last bits of the result.  Multiplying elementwise and reducing along
    the trailing axis keeps each problem's rounding identical no matter
    how the batch is sliced.
    """
    return (x * y).sum(axis=1)


@dataclasses.dataclass(frozen=True)
class DeviceKernelResult:
    """Output of a device-kernel run: numerics plus timing."""

    #: Gathered numerical output, shape (batch, m, n).
    output: np.ndarray
    #: Engine timing for one block (identical across the batch).
    launch: LaunchResult
    #: Problems in the batch.
    batch: int
    #: Algorithmic FLOPs per problem (paper conventions).
    flops_per_problem: float
    #: Optional second output (e.g. solution vectors, taus).
    extra: Optional[np.ndarray] = None

    @property
    def cycles(self) -> float:
        return self.launch.cycles

    @property
    def breakdown(self) -> CycleBreakdown:
        return self.launch.breakdown

    @property
    def gflops(self) -> float:
        """Whole-chip throughput over this batch (Section V-D recipe)."""
        return self.launch.throughput_gflops(self.batch)

    def phase_cycles(self, prefix: str = "") -> dict[str, float]:
        """Phase totals, optionally filtered by label prefix."""
        return {
            k: v
            for k, v in self.launch.phase_totals.items()
            if k.startswith(prefix)
        }

    def panel_breakdown(self) -> list[dict[str, float]]:
        """Per-panel cycles per operation (Figure 8 left, 'measured').

        Phase labels are ``panel{p}:{op name}``.
        """
        panels: dict[int, dict[str, float]] = {}
        for label, cycles in self.launch.phase_totals.items():
            if not label.startswith("panel"):
                continue
            head, _, op = label.partition(":")
            index = int(head[len("panel") :])
            panels.setdefault(index, {})[op] = (
                panels.get(index, {}).get(op, 0.0) + cycles
            )
        return [panels[k] for k in sorted(panels)]


class BlockKernel:
    """Execution context binding tiles, shared buffers, and the engine."""

    def __init__(
        self,
        a: np.ndarray,
        device: DeviceSpec = QUADRO_6000,
        config: Optional[BlockConfig] = None,
        fast_math: bool = True,
        account_overhead: bool = True,
        extra_shared_words: int = 0,
        sanitize: Optional[bool] = None,
    ) -> None:
        a = np.asarray(a)
        if a.ndim == 2:
            a = a[None]
        if a.ndim != 3:
            raise ValueError(f"expected (batch, m, n) input, got shape {a.shape}")
        self.batch, self.m, self.n = a.shape
        self.dtype = a.dtype
        self.complex = np.iscomplexobj(a)
        self.cfg = config or block_config(self.m, self.n, complex_dtype=self.complex)
        self.device = device
        self.fast_math = fast_math
        self.layout = Cyclic2D(self.m, self.n, self.cfg.threads)
        self.r = self.cfg.rdim

        engine_cls = _ENGINE_FACTORY.get() or BlockEngine
        self.engine = engine_cls(
            device,
            threads_per_block=self.cfg.threads,
            registers_per_thread=self.cfg.registers_per_thread,
            batch=self.batch,
            dtype=self.dtype,
            fast_math=fast_math,
            account_overhead=account_overhead,
            sanitize=sanitize,
        )
        # Shared memory: the l (column, length m) and u/w (row, length n)
        # vectors plus a scalar slot, as in Listings 5-7.
        self.sh_col = self.engine.allocate_shared(
            self.layout.hreg * self.r, name="sh_col"
        )
        self.sh_row = self.engine.allocate_shared(
            self.layout.wreg * self.r, name="sh_row"
        )
        self.sh_scalar = self.engine.allocate_shared(4, name="sh_scalar")
        if extra_shared_words:
            self.sh_extra = self.engine.allocate_shared(
                extra_shared_words, name="sh_extra"
            )

        # Load the matrix into the register tiles (Listing 4).
        # Loads and stores both run at the copy-stream rate: the loader's
        # strided pattern (Listing 4) does not reach the pure-read peak.
        with self.engine.phase("load"):
            self.tiles = self.layout.scatter(a)
            self.engine.charge_global(self._matrix_bytes(), kind="copy")
        # Global index helpers: i_of[ti, ii] = ti + ii*r.
        self.row_index = (
            np.arange(self.r)[:, None] + self.r * np.arange(self.layout.hreg)[None, :]
        )
        self.col_index = (
            np.arange(self.r)[:, None] + self.r * np.arange(self.layout.wreg)[None, :]
        )

    # ------------------------------------------------------------------
    def _matrix_bytes(self) -> int:
        word = 8 if self.complex else 4
        return self.m * self.n * word

    def column_tile_rows(self, j: int) -> int:
        """N: per-thread rows of the active column (Table VI's N)."""
        return max(1, self.layout.hreg - j // self.r)

    # ------------------------------------------------------------------
    # Distributed primitives (functional + cost in one place)
    # ------------------------------------------------------------------
    def extract_column(self, j: int, row_start: int) -> np.ndarray:
        """Column ``j`` entries with global row >= row_start, as a dense
        (batch, m') vector in global row order (m' = m - row_start)."""
        gathered = self.tiles[:, :, j % self.r, :, j // self.r]  # (b, ti, ii)
        flat = np.zeros((self.batch, self.layout.hreg * self.r), dtype=self.dtype)
        flat[:, self.row_index.ravel()] = gathered.reshape(self.batch, -1)
        return flat[:, row_start : self.m]

    def deposit_column(self, j: int, row_start: int, values: np.ndarray) -> None:
        """Write ``values`` back into column ``j`` from ``row_start`` down."""
        flat = np.zeros((self.batch, self.layout.hreg * self.r), dtype=self.dtype)
        gathered = self.tiles[:, :, j % self.r, :, j // self.r]
        flat[:, self.row_index.ravel()] = gathered.reshape(self.batch, -1)
        flat[:, row_start : self.m] = values
        self.tiles[:, :, j % self.r, :, j // self.r] = flat[
            :, self.row_index.ravel()
        ].reshape(self.batch, self.r, self.layout.hreg)

    def extract_row(self, i: int, col_start: int) -> np.ndarray:
        """Row ``i`` entries with global column >= col_start."""
        gathered = self.tiles[:, i % self.r, :, i // self.r, :]  # (b, tj, jj)
        flat = np.zeros((self.batch, self.layout.wreg * self.r), dtype=self.dtype)
        flat[:, self.col_index.ravel()] = gathered.reshape(self.batch, -1)
        return flat[:, col_start : self.n]

    def deposit_row(self, i: int, col_start: int, values: np.ndarray) -> None:
        """Write ``values`` back into row ``i`` from ``col_start`` right."""
        flat = np.zeros((self.batch, self.layout.wreg * self.r), dtype=self.dtype)
        gathered = self.tiles[:, i % self.r, :, i // self.r, :]
        flat[:, self.col_index.ravel()] = gathered.reshape(self.batch, -1)
        flat[:, col_start : self.n] = values
        self.tiles[:, i % self.r, :, i // self.r, :] = flat[
            :, self.col_index.ravel()
        ].reshape(self.batch, self.r, self.layout.wreg)

    def serial_reduction(self, partials: np.ndarray) -> np.ndarray:
        """Reduce per-thread partials (batch, r) serially, charging
        Table VI's ``(1 + sqrt p) beta + sqrt p gamma``."""
        cost = 2 if self.complex else 1
        self.engine.charge_shared(self.r + 1)
        self.engine.charge_flops(self.r * cost, useful_flops=0)
        acc = partials[:, 0].copy()
        for t in range(1, partials.shape[1]):
            acc = acc + partials[:, t]
        return acc

    def rank1_update(
        self,
        col_vec: np.ndarray,
        row_vec: np.ndarray,
        row_start: int,
        col_start: int,
        subtract: bool = True,
    ) -> None:
        """tiles[i, j] -= col_vec[i] * row_vec[j] for i >= row_start,
        j >= col_start -- the Listing-7 update, in tile space.

        ``col_vec``: (batch, m) in global row order (entries below
        ``row_start`` ignored); ``row_vec``: (batch, n) likewise.
        """
        vfull = np.zeros((self.batch, self.layout.hreg * self.r), dtype=self.dtype)
        vfull[:, row_start : self.m] = col_vec[:, row_start : self.m]
        wfull = np.zeros((self.batch, self.layout.wreg * self.r), dtype=self.dtype)
        wfull[:, col_start : self.n] = row_vec[:, col_start : self.n]
        vt = vfull[:, self.row_index]  # (b, ti, ii)
        wt = wfull[:, self.col_index]  # (b, tj, jj)
        update = np.einsum("bth,bcw->btchw", vt, wt)
        if subtract:
            self.tiles -= update
        else:
            self.tiles += update

    # ------------------------------------------------------------------
    def store(self) -> np.ndarray:
        """Gather the tiles back to (batch, m, n) and charge the store."""
        with self.engine.phase("store"):
            out = self.layout.gather(self.tiles)
            self.engine.charge_global(self._matrix_bytes(), kind="copy")
        return out

    def result(self, output: np.ndarray, flops_per_problem: float, extra=None
               ) -> DeviceKernelResult:
        from ...observe.metrics import counter_inc

        counter_inc(
            "repro_kernel_launches_total",
            m=self.m,
            n=self.n,
            threads=self.cfg.threads,
        )
        counter_inc("repro_kernel_problems_total", self.batch)
        counter_inc("repro_kernel_flops_total", flops_per_problem * self.batch)
        return DeviceKernelResult(
            output=output,
            launch=self.engine.result(flops_per_block=flops_per_problem),
            batch=self.batch,
            flops_per_problem=flops_per_problem,
            extra=extra,
        )
