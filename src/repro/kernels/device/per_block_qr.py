"""One-problem-per-block Householder QR on the SIMT engine.

The Section V QR: per column, the owning threads compute the column norm
with per-thread partials and a serial sqrt(p)-thread reduction (done by
thread 0), the diagonal thread forms the scale factor (one sqrt, two
divides), the scaled Householder vector is published through shared
memory, and the trailing update runs as matrix-vector multiply (with its
own reduction) followed by a rank-1 update -- the three operations of
Figure 8.  Costs are charged per Table VI's rows, plus the engine's
bookkeeping overhead (the "Meas. Overhead" wedge).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gpu.device import QUADRO_6000, DeviceSpec
from ...model.block_config import BlockConfig
from ...model.flops import qr_flops, qr_flops_complex
from ..batched._arith import arithmetic_mode
from .base import (
    BlockKernel,
    DeviceKernelResult,
    batch_dot,
    breakdown_detector,
    nonfinite_breakdowns,
)

__all__ = ["per_block_qr", "per_block_qr_solve"]


@breakdown_detector("qr")
def _qr_breakdowns(output: np.ndarray, extra) -> dict:
    """Quarantine hook: non-finite factors *or* taus fail the slot.

    Householder QR has no pivot to hit zero -- a breakdown surfaces as
    Inf/NaN from an overflowed norm or a degenerate reflector.
    """
    found = nonfinite_breakdowns(output)
    if extra is not None:
        taus = np.asarray(extra).reshape(extra.shape[0], -1)
        for i in np.nonzero(~np.isfinite(taus).all(axis=1))[0]:
            found.setdefault(int(i), "non-finite")
    return found


def _factor_columns(kernel: BlockKernel, ncols: int) -> np.ndarray:
    """Householder-sweep the first ``ncols`` columns of the tiles.

    Trailing updates span the full tile width, so right-hand-side columns
    appended past ``ncols`` accumulate ``Q^H b`` for free (Section III-D).
    Returns the taus; the packed factors replace the tiles.
    """
    eng = kernel.engine
    mode = arithmetic_mode(kernel.fast_math)
    m, n, r = kernel.m, kernel.n, kernel.r
    # A complex MAC is 4 FMAs on 2 independent chains: with the
    # dual-issue pipeline its dependent cost is ~2 gamma, while the
    # algorithmic credit is 8 real FLOPs (4x the real MAC's 2).
    cost = 2 if kernel.complex else 1
    credit = 8.0 if kernel.complex else 2.0
    real_dtype = np.zeros(1, dtype=kernel.dtype).real.dtype
    taus = np.zeros((kernel.batch, ncols), dtype=kernel.dtype)

    steps = ncols if m > ncols else ncols - 1  # no reflector for a 1-row tail
    for j in range(steps):
        panel = j // r
        N = kernel.column_tile_rows(j)
        with eng.phase(f"panel{panel}:Form HH Vector"):
            # Column norm: per-thread partials (N gamma) + serial
            # reduction across the sqrt(p) threads of the column.
            x = kernel.extract_column(j, j)
            sq = (x.real * x.real + x.imag * x.imag) if kernel.complex else x * x
            eng.charge_flops(N * cost, useful_flops=credit / 2 * (m - j))
            partial_count = min(r, x.shape[1])
            partials = np.stack(
                [sq[:, t::r].sum(axis=1) for t in range(partial_count)], axis=1
            ).astype(real_dtype)
            norm = mode.sqrt(kernel.serial_reduction(partials))

            # Diagonal thread: beta, tau, 1/(alpha - beta) -- one sqrt,
            # two divides, two flops, scale factor through shared memory.
            alpha = x[:, 0].copy()
            live = norm != 0
            sign = np.where(alpha.real >= 0, 1.0, -1.0).astype(real_dtype)
            beta = (-sign * norm).astype(real_dtype)
            denom = np.where(
                live, (alpha - beta).astype(kernel.dtype), np.asarray(1, kernel.dtype)
            )
            tau = np.where(
                live,
                mode.divide(
                    (beta - alpha).astype(kernel.dtype), beta.astype(kernel.dtype)
                ),
                0,
            )
            taus[:, j] = tau
            inv_denom = mode.divide(np.asarray(1.0, dtype=kernel.dtype), denom)
            eng.charge_sqrt(1, useful_flops=0)
            eng.charge_div(2, useful_flops=0)
            eng.charge_flops(2 * cost, useful_flops=0)
            eng.charge_shared(2)  # write + read the scale factor

            # Scale the column into v (v0 = 1) and publish it.
            v = (x * inv_denom[:, None]).astype(kernel.dtype)
            v[:, 0] = 1
            v = np.where(live[:, None], v, x)
            vfull = np.zeros((kernel.batch, m), dtype=kernel.dtype)
            vfull[:, j:] = v
            kernel.sh_col.write(np.arange(m), vfull)
            eng.charge_flops(N * cost, useful_flops=credit / 2 * (m - j))
            eng.charge_shared(N, writes=True)
            eng.sync()

            # Store the packed factor (beta on the diagonal, v below).
            packed = v.copy()
            packed[:, 0] = np.where(live, beta.astype(kernel.dtype), alpha)
            kernel.deposit_column(j, j, packed)

        with eng.phase(f"panel{panel}:Matrix-Vector Multiply"):
            # w = conj(tau) (v^H A[j:, j+1:]): read v (N beta), N^2 FMAs,
            # then the cross-thread reduction bracketed by two syncs.
            vread = kernel.sh_col.read(np.arange(m))
            wfull = np.zeros((kernel.batch, n), dtype=kernel.dtype)
            for jj in range(j + 1, n):
                colv = kernel.extract_column(jj, j)
                wfull[:, jj] = batch_dot(vread[:, j:].conj(), colv)
            eng.charge_shared(N)
            eng.charge_flops(N * N * cost, useful_flops=credit * (m - j) * (n - 1 - j))
            eng.sync()
            kernel.serial_reduction(np.zeros((kernel.batch, r), dtype=real_dtype))
            # w must be published before the closing barrier: the rank-1
            # phase reads it from shared, and a write->read in one sync
            # epoch is a race (the sanitizer flags it).  Same charges,
            # same cycle totals -- only the barrier placement moves.
            wfull *= taus[:, j][:, None].conj()
            kernel.sh_row.write(np.arange(n), wfull)
            eng.sync()

        with eng.phase(f"panel{panel}:Rank-1 Update"):
            # A[j:, j+1:] -= v w: read w (N beta), N^2 FMAs, one sync.
            # wread is zero at and left of column j, so the packed column
            # is not disturbed.
            wread = kernel.sh_row.read(np.arange(n))
            kernel.rank1_update(vread, wread, row_start=j, col_start=j + 1)
            eng.charge_shared(N)
            eng.charge_flops(N * N * cost, useful_flops=credit * (m - j) * (n - 1 - j))
            eng.sync()
    return taus


def per_block_qr(
    a: np.ndarray,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    account_overhead: bool = True,
    config: Optional[BlockConfig] = None,
) -> DeviceKernelResult:
    """Householder-QR a batch, one problem per block.

    ``output`` is the packed factorization (R upper, reflectors below),
    ``extra`` the taus -- the same packing as
    :func:`repro.kernels.batched.qr.qr_factor`.
    """
    kernel = BlockKernel(
        a,
        device=device,
        config=config,
        fast_math=fast_math,
        account_overhead=account_overhead,
    )
    if kernel.m < kernel.n:
        raise ValueError("QR expects m >= n")
    taus = _factor_columns(kernel, kernel.n)
    out = kernel.store()
    flops = (
        qr_flops_complex(kernel.m, kernel.n)
        if kernel.complex
        else qr_flops(kernel.m, kernel.n)
    )
    return kernel.result(out, flops_per_problem=flops, extra=taus)


def per_block_qr_solve(
    a: np.ndarray,
    b: np.ndarray,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    account_overhead: bool = True,
) -> DeviceKernelResult:
    """Solve square systems with QR + back substitution, per block.

    This is the Figure 7 / Figure 12 workload: the right-hand side rides
    along as an appended matrix column, and the resulting triangular
    system is solved with row operations inside the block.  ``output`` is
    the solution batch ``(batch, n)``; ``extra`` the taus.
    """
    a_arr = np.asarray(a)
    if a_arr.ndim == 2:
        a_arr = a_arr[None]
    if a_arr.ndim != 3 or a_arr.shape[1] != a_arr.shape[2]:
        raise ValueError("QR solve expects square systems")
    b_arr = np.asarray(b, dtype=a_arr.dtype)
    if b_arr.ndim == 1:
        b_arr = b_arr[None]
    if b_arr.ndim == 2:
        b_arr = b_arr[..., None]
    if b_arr.shape[:2] != a_arr.shape[:2]:
        raise ValueError(
            f"rhs shape {np.asarray(b).shape} does not match systems {a_arr.shape}"
        )
    n = a_arr.shape[2]
    aug = np.concatenate([a_arr, b_arr], axis=2)

    kernel = BlockKernel(
        aug, device=device, fast_math=fast_math, account_overhead=account_overhead
    )
    eng = kernel.engine
    mode = arithmetic_mode(fast_math)
    # A complex MAC is 4 FMAs on 2 independent chains: with the
    # dual-issue pipeline its dependent cost is ~2 gamma, while the
    # algorithmic credit is 8 real FLOPs (4x the real MAC's 2).
    cost = 2 if kernel.complex else 1
    credit = 8.0 if kernel.complex else 2.0
    taus = _factor_columns(kernel, n)

    # Back substitution on R x = Q^H b: one divide by the diagonal plus a
    # broadcast axpy per row, innermost rows first.
    with eng.phase("back-substitution"):
        packed = kernel.layout.gather(kernel.tiles)
        r_mat = np.triu(packed[:, :n, :n])
        y = packed[:, :n, n].copy()
        x = np.empty_like(y)
        for i in range(n - 1, -1, -1):
            acc = y[:, i]
            if i + 1 < n:
                acc = acc - batch_dot(r_mat[:, i, i + 1 :], x[:, i + 1 :])
            x[:, i] = mode.divide(acc, r_mat[:, i, i])
            N = kernel.column_tile_rows(i)
            eng.charge_div(1, useful_flops=credit / 2)
            eng.charge_shared(2)
            eng.charge_flops(N * cost, useful_flops=credit * (n - 1 - i))
            eng.sync()
    with eng.phase("store"):
        eng.charge_global(n * (8 if kernel.complex else 4), kind="copy")

    flops = (
        qr_flops_complex(n, n) + 4 * n * n
        if kernel.complex
        else qr_flops(n, n) + n * n
    )
    return kernel.result(x, flops_per_problem=flops, extra=taus)
