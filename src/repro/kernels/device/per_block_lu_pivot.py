"""One-problem-per-block LU *with* partial pivoting: the price of stability.

The paper deliberately does not pivot ("we do not pivot for stability")
and evaluates on diagonally dominant matrices where pivoting is
unnecessary.  This extension quantifies what that choice bought: a
pivoted per-block LU pays, per column,

* a max-magnitude **pivot search** down the column -- per-thread partials
  plus the same serial sqrt(p)-thread reduction as a norm, plus the
  argmax bookkeeping;
* a **row swap** through shared memory -- both rows traverse the
  scratchpad (2 x WREG accesses per owning thread) with a synchronization
  on each side, because the swap is a cross-thread permutation of
  register-resident data.

The ``bench_ablation_pivoting`` benchmark reports the resulting slowdown:
roughly **2x** at the paper's sizes (the pivot search + swap machinery is
comparable to LU's own per-column work when N is this small), shrinking
slowly as the O(N^2) rank-1 update grows.  That factor is the concrete
cost the paper's "we do not pivot" choice avoided -- and the quantitative
justification for it.

Numerics: data-dependent row swaps break the lockstep tile layout, so
the factorization itself runs through the batched pivoted kernel on the
gathered matrix (documented substitution: identical arithmetic, same
results); the engine charges the distributed implementation's costs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gpu.device import QUADRO_6000, DeviceSpec
from ...model.block_config import BlockConfig
from ...model.flops import lu_flops
from ..batched.lu import lu_factor_pivot
from .base import (
    BlockKernel,
    DeviceKernelResult,
    breakdown_detector,
    nonfinite_breakdowns,
)

__all__ = ["per_block_lu_pivot"]


@breakdown_detector("lu_pivot")
def _lu_pivot_breakdowns(output: np.ndarray, extra) -> dict:
    """Quarantine hook: a zero on U's diagonal means rank deficiency.

    ``extra`` is the permutation (not a flag array), so singularity is
    read off the packed factor itself: partial pivoting only leaves a
    zero pivot when the whole remaining column was zero.
    """
    found = nonfinite_breakdowns(output)
    diag = np.diagonal(np.asarray(output), axis1=-2, axis2=-1)
    for i in np.nonzero((diag == 0).any(axis=-1))[0]:
        found[int(i)] = "zero-pivot"
    return found


def per_block_lu_pivot(
    a: np.ndarray,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    account_overhead: bool = True,
    config: Optional[BlockConfig] = None,
) -> DeviceKernelResult:
    """Partial-pivoting LU, one problem per block.

    ``output`` is the packed pivoted LU; ``extra`` the permutation array
    ``(batch, n)`` (row order, as in
    :func:`repro.kernels.batched.lu.lu_factor_pivot`).
    """
    kernel = BlockKernel(
        a,
        device=device,
        config=config,
        fast_math=fast_math,
        account_overhead=account_overhead,
    )
    if kernel.m != kernel.n:
        raise ValueError("LU expects square matrices")
    eng = kernel.engine
    n = kernel.n
    cost = 2 if kernel.complex else 1
    credit = 8.0 if kernel.complex else 2.0

    for j in range(n - 1):
        panel = j // kernel.r
        N = kernel.column_tile_rows(j)
        with eng.phase(f"panel{panel}:Pivot Search"):
            # |A[i][j]| partials per owning thread (N compares ~ N ops),
            # then the serial cross-thread max reduction with its argmax
            # bookkeeping (one extra op per step), published + sync.
            eng.charge_flops(N * cost, useful_flops=0)
            kernel.serial_reduction(
                np.zeros((kernel.batch, kernel.r), dtype=np.float32)
            )
            eng.charge_flops(kernel.r, useful_flops=0)  # argmax bookkeeping
            eng.charge_shared(2)
            eng.sync()

        with eng.phase(f"panel{panel}:Row Swap"):
            # Rows j and piv trade places through shared memory: each
            # owning thread writes its WREG elements of both rows and
            # reads the other's, with syncs separating the two halves.
            wreg = kernel.layout.wreg
            eng.charge_shared(2 * wreg, writes=True)
            eng.sync()
            eng.charge_shared(2 * wreg)
            eng.sync()

        with eng.phase(f"panel{panel}:Column Op"):
            eng.charge_div(1, useful_flops=0)
            eng.charge_shared(2)
            eng.sync()
            eng.charge_flops(N * cost, useful_flops=credit / 2 * (n - 1 - j))
            eng.charge_shared(2 * N, writes=True)
            eng.sync()

        with eng.phase(f"panel{panel}:Rank-1 Update"):
            eng.charge_shared(2 * N)
            eng.charge_flops(
                N * N * cost, useful_flops=credit * (n - 1 - j) * (n - 1 - j)
            )
            eng.sync()

    # Numerics: the batched pivoted kernel on the gathered matrix (see
    # module docstring for why the swaps are not done in tile space).
    gathered = kernel.layout.gather(kernel.tiles)
    result = lu_factor_pivot(gathered, fast_math=fast_math)
    kernel.tiles = kernel.layout.scatter(result.lu)
    out = kernel.store()
    factor = 4 if kernel.complex else 1
    return kernel.result(
        out, flops_per_problem=factor * lu_flops(n), extra=result.perm
    )
