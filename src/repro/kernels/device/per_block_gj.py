"""One-problem-per-block Gauss-Jordan solver on the SIMT engine.

Section III-A's algorithm in the Section V mapping: the right-hand side
is attached to the matrix, and each column step scales the pivot row by
the reciprocal of the diagonal (Listing 5 verbatim -- including the
``notsolved`` flag) and applies an outer-product update to *every* other
row.  Unlike LU, rows never drop out, so the per-thread tile height N
stays at HREG for the whole sweep; that is why Gauss-Jordan performs
``n^3`` FLOPs against LU's ``2/3 n^3``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gpu.device import QUADRO_6000, DeviceSpec
from ...model.block_config import BlockConfig
from ...model.flops import gauss_jordan_flops
from ..batched._arith import arithmetic_mode
from .base import BlockKernel, DeviceKernelResult

__all__ = ["per_block_gauss_jordan"]


def per_block_gauss_jordan(
    a: np.ndarray,
    b: np.ndarray,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    account_overhead: bool = True,
    config: Optional[BlockConfig] = None,
) -> DeviceKernelResult:
    """Solve square systems by Gauss-Jordan, one problem per block.

    ``output`` is the solution batch ``(batch, n)``; ``extra`` the
    per-problem ``not_solved`` flags (zero pivot encountered).
    """
    a_arr = np.asarray(a)
    if a_arr.ndim == 2:
        a_arr = a_arr[None]
    if a_arr.ndim != 3 or a_arr.shape[1] != a_arr.shape[2]:
        raise ValueError("Gauss-Jordan expects square systems")
    b_arr = np.asarray(b, dtype=a_arr.dtype)
    if b_arr.ndim == 1:
        b_arr = b_arr[None]
    if b_arr.ndim == 2:
        b_arr = b_arr[..., None]
    if b_arr.shape[:2] != a_arr.shape[:2]:
        raise ValueError(
            f"rhs shape {np.asarray(b).shape} does not match systems {a_arr.shape}"
        )
    n = a_arr.shape[2]
    aug = np.concatenate([a_arr, b_arr], axis=2)

    kernel = BlockKernel(
        aug,
        device=device,
        config=config,
        fast_math=fast_math,
        account_overhead=account_overhead,
    )
    eng = kernel.engine
    mode = arithmetic_mode(fast_math)
    cost = 2 if kernel.complex else 1
    credit = 8.0 if kernel.complex else 2.0
    one = np.asarray(1.0, dtype=kernel.dtype)
    not_solved = np.zeros(kernel.batch, dtype=bool)
    n_aug = kernel.n  # n + nrhs
    N = kernel.layout.hreg  # rows never drop out in Gauss-Jordan

    for j in range(n):
        panel = j // kernel.r
        with eng.phase(f"panel{panel}:Column Op"):
            # Listing 5: the diagonal thread publishes 1/A[j,j] (or flags
            # the problem as unsolvable on a zero pivot).
            pivot = kernel.extract_row(j, j)[:, 0].copy()
            singular = pivot == 0
            not_solved |= singular
            scale = mode.divide(one, np.where(singular, one, pivot))
            kernel.sh_scalar.write(0, scale)
            eng.charge_div(1, useful_flops=0)
            eng.charge_shared(2)
            eng.sync()

            # Scale the pivot row (columns j..end, including the RHS) and
            # publish it, together with the pivot column, to shared.
            scale_rd = kernel.sh_scalar.read(0)
            row = kernel.extract_row(j, j) * scale_rd[:, None]
            rowfull = np.zeros((kernel.batch, n_aug), dtype=kernel.dtype)
            rowfull[:, j:] = row
            kernel.sh_row.write(np.arange(n_aug), rowfull)
            colfull = kernel.extract_column(j, 0).copy()
            colfull[:, j] = 0  # the pivot row is replaced, not updated
            kernel.sh_col.write(np.arange(kernel.m), colfull)
            eng.charge_flops(N * cost, useful_flops=credit / 2 * (n_aug - j))
            eng.charge_shared(2 * N, writes=True)
            eng.sync()

        with eng.phase(f"panel{panel}:Rank-1 Update"):
            # Every row i != j: A[i, j:] -= A[i, j] * scaled_row[j:].
            lread = kernel.sh_col.read(np.arange(kernel.m))
            uread = kernel.sh_row.read(np.arange(n_aug))
            kernel.rank1_update(lread, uread, row_start=0, col_start=j)
            # Deposit the scaled pivot row (the rank-1 left it untouched
            # because its shared-column entry was zeroed).
            kernel.deposit_row(j, j, row)
            eng.charge_shared(2 * N)
            eng.charge_flops(
                N * N * cost, useful_flops=credit / 2 * (n - 1) * (n_aug - j)
            )
            eng.sync()

    with eng.phase("gather-x"):
        x = kernel.extract_column(n, 0)[:, :n].copy()

    # Only the solution vector returns to DRAM, not the reduced matrix.
    with eng.phase("store"):
        eng.charge_global(n * (8 if kernel.complex else 4), kind="copy")
    factor = 4 if kernel.complex else 1
    if not_solved.any():
        x = x.copy()
        x[not_solved] = np.nan
    return kernel.result(
        x, flops_per_problem=factor * gauss_jordan_flops(n), extra=not_solved
    )
