"""One-problem-per-block least squares (Section III-D on the engine).

Tall ``min ||Ax - b||`` problems solved the paper's way: append ``b`` to
the right of the matrix, run the Householder sweep over the first ``n``
columns (the RHS column collects ``Q^H b`` for free), then back-
substitute the top ``n x n`` triangle.  The block also extracts the
residual norm from the tail of ``Q^H b`` -- the least-squares freebie.
"""

from __future__ import annotations

import numpy as np

from ...gpu.device import QUADRO_6000, DeviceSpec
from ...model.flops import least_squares_flops
from ..batched._arith import arithmetic_mode
from .base import BlockKernel, DeviceKernelResult, batch_dot
from .per_block_qr import _factor_columns

__all__ = ["per_block_least_squares"]


def per_block_least_squares(
    a: np.ndarray,
    b: np.ndarray,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    account_overhead: bool = True,
) -> DeviceKernelResult:
    """Solve tall least-squares problems, one per thread block.

    ``a``: ``(batch, m, n)`` with ``m >= n``; ``b``: ``(batch, m)``.
    ``output`` is the solution batch ``(batch, n)``; ``extra`` the
    per-problem residual 2-norms.
    """
    a_arr = np.asarray(a)
    if a_arr.ndim == 2:
        a_arr = a_arr[None]
    if a_arr.ndim != 3 or a_arr.shape[1] < a_arr.shape[2]:
        raise ValueError(
            f"least squares expects tall (batch, m, n) input, got {a_arr.shape}"
        )
    b_arr = np.asarray(b, dtype=a_arr.dtype)
    if b_arr.ndim == 1:
        b_arr = b_arr[None]
    if b_arr.ndim == 2:
        b_arr = b_arr[..., None]
    if b_arr.shape[:2] != a_arr.shape[:2]:
        raise ValueError(
            f"rhs shape {np.asarray(b).shape} does not match problems {a_arr.shape}"
        )
    batch, m, n = a_arr.shape
    aug = np.concatenate([a_arr, b_arr], axis=2)

    kernel = BlockKernel(
        aug, device=device, fast_math=fast_math, account_overhead=account_overhead
    )
    eng = kernel.engine
    mode = arithmetic_mode(fast_math)
    cost = 2 if kernel.complex else 1
    credit = 8.0 if kernel.complex else 2.0
    _factor_columns(kernel, n)

    with eng.phase("back-substitution"):
        packed = kernel.layout.gather(kernel.tiles)
        r_mat = np.triu(packed[:, :n, :n])
        qtb = packed[:, :, n]
        x = np.empty((batch, n), dtype=kernel.dtype)
        for i in range(n - 1, -1, -1):
            acc = qtb[:, i]
            if i + 1 < n:
                acc = acc - batch_dot(r_mat[:, i, i + 1 :], x[:, i + 1 :])
            x[:, i] = mode.divide(acc, r_mat[:, i, i])
            N = kernel.column_tile_rows(i)
            eng.charge_div(1, useful_flops=credit / 2)
            eng.charge_shared(2)
            eng.charge_flops(N * cost, useful_flops=credit * (n - 1 - i))
            eng.sync()

        # Residual norm from the tail of Q^H b (free in the factored basis).
        if m > n:
            tail = qtb[:, n:]
            sq = (
                (tail.real**2 + tail.imag**2) if kernel.complex else tail * tail
            ).sum(axis=1)
            residual = mode.sqrt(sq.astype(packed.real.dtype))
            eng.charge_flops(
                kernel.column_tile_rows(n - 1) * cost, useful_flops=credit / 2 * (m - n)
            )
            eng.charge_sqrt(1, useful_flops=0)
        else:
            residual = np.zeros(batch, dtype=packed.real.dtype)

    with eng.phase("store"):
        eng.charge_global((n + 1) * (8 if kernel.complex else 4), kind="copy")

    factor = 4 if kernel.complex else 1
    flops = factor * least_squares_flops(m, n)
    return kernel.result(x, flops_per_problem=flops, extra=residual)
