"""One-problem-per-thread execution (Section IV).

Each thread register-allocates its entire matrix and factors it
serially; there is no inter-thread communication at all.  The regime is
therefore:

* performance is bounded by DRAM traffic (read + write of the batch) at
  the achieved copy bandwidth -- the arithmetic-intensity roofline;
* FLOPs are effectively free while enough threads are in flight to hide
  both the memory and the pipeline latency;
* once the per-thread matrix (plus workspace) exceeds the 63 usable
  registers, the spilled slots live in L1/DRAM and are *re-touched* on
  every column sweep, multiplying the traffic -- the post-n=8 collapse of
  Figure 4 that the roofline model deliberately ignores.

Numerics run through the batched kernels (a thread's serial loop computes
exactly the same values); the timing model here prices the launch.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

import numpy as np

from ...gpu.device import QUADRO_6000, DeviceSpec
from ...gpu.memory_system import MemorySystem
from ...gpu.occupancy import occupancy
from ...gpu.registers import RegisterAllocation, registers_for_matrix
from ...model.flops import lu_flops, matrix_bytes, qr_flops, qr_flops_complex
from ..batched.lu import lu_factor
from ..batched.qr import qr_factor
from ..batched.validate import as_batch, check_square_batch

__all__ = ["PerThreadResult", "per_thread_factor", "spill_touches"]

Kind = Literal["qr", "lu"]


def spill_touches(n: int) -> int:
    """Times a spilled slot is re-read/re-written during a factorization.

    Each of the n column sweeps touches the trailing matrix once, and a
    given element sits in the trailing matrix for about half of them.
    """
    return max(1, n // 2)


@dataclasses.dataclass(frozen=True)
class PerThreadResult:
    """Numerics plus the per-thread launch timing."""

    output: np.ndarray
    extra: np.ndarray
    kind: str
    batch: int
    n: int
    device: DeviceSpec
    flops_per_problem: float
    seconds: float
    dram_bytes: float
    registers: RegisterAllocation

    @property
    def gflops(self) -> float:
        return self.flops_per_problem * self.batch / self.seconds / 1e9

    @property
    def spilled(self) -> bool:
        return self.registers.spills


def per_thread_factor(
    a: np.ndarray,
    kind: Kind = "qr",
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
    threads_per_block: int = 256,
) -> PerThreadResult:
    """Factor a batch with one problem per thread.

    ``output``/``extra`` are the packed factors exactly as the batched
    kernels return them (QR: packed + taus; LU: packed + flags).
    """
    a = as_batch(a)
    check_square_batch(a)
    batch, n, _ = a.shape
    is_complex = np.iscomplexobj(a)

    if kind == "qr":
        factors = qr_factor(a, fast_math=fast_math)
        output, extra = factors.packed, factors.taus
        flops = qr_flops_complex(n, n) if is_complex else qr_flops(n, n)
    elif kind == "lu":
        result = lu_factor(a, fast_math=fast_math)
        output, extra = result.lu, result.not_solved
        flops = (4 if is_complex else 1) * lu_flops(n)
    else:
        raise ValueError(f"unknown factorization kind: {kind!r}")

    # --- Timing -------------------------------------------------------
    memory = MemorySystem(device)
    regs = RegisterAllocation(
        device, registers_for_matrix(n, n, complex_dtype=is_complex)
    )

    # DRAM traffic: the matrix in and out, plus spill re-touches.  The
    # spilled fraction of the matrix bounces through L1 to DRAM (the L1
    # is far too small for a full batch) spill_touches(n) times.
    base = 2 * matrix_bytes(n, n, is_complex)
    spill = regs.spill_fraction * spill_touches(n) * matrix_bytes(n, n, is_complex)
    per_problem_bytes = base + spill
    bw_seconds = batch * per_problem_bytes / memory.stream_bandwidth("copy")

    # Compute bound: all FPUs at peak, derated by the occupancy the
    # register demand allows (latency is hidden by multithreading).
    occ = occupancy(
        device,
        threads_per_block,
        min(regs.granted(), device.max_registers_per_thread),
    )
    efficiency = min(1.0, occ.occupancy_fraction * 2.0)  # >=50% occupancy is enough
    compute_seconds = batch * flops / (device.peak_sp_flops * efficiency)

    seconds = max(bw_seconds, compute_seconds)
    return PerThreadResult(
        output=output,
        extra=extra,
        kind=kind,
        batch=batch,
        n=n,
        device=device,
        flops_per_problem=flops,
        seconds=seconds,
        dram_bytes=batch * per_problem_bytes,
        registers=regs,
    )
