"""Linear-algebra kernels: batched NumPy numerics (:mod:`.batched`) and
device kernels with cycle accounting (:mod:`.device`)."""
