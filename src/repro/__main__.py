"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # show the experiment ids
    python -m repro run fig9             # regenerate one artefact
    python -m repro all                  # regenerate everything
    python -m repro all -o EXPERIMENTS   # also write per-artefact reports
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .reporting import list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures on the "
        "simulated Quadro 6000.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment_id", choices=list_experiments())
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument(
        "-o", "--output-dir", type=Path, default=None,
        help="also write one report file per experiment",
    )
    sub.add_parser(
        "accuracy",
        help="model-vs-measured MAPE across the Figure-9 size range",
    )
    export_p = sub.add_parser(
        "export", help="write every experiment's data as JSON/CSV"
    )
    export_p.add_argument("-o", "--output-dir", type=Path, default=Path("artifacts"))
    args = parser.parse_args(argv)

    if args.command == "list":
        for eid in list_experiments():
            doc = (run_experiment.__globals__["EXPERIMENTS"][eid].__doc__ or "").strip()
            print(f"{eid:10s} {doc.splitlines()[0] if doc else ''}")
        return 0

    if args.command == "run":
        result = run_experiment(args.experiment_id)
        print(result.report)
        return 0

    if args.command == "accuracy":
        from .model import model_accuracy
        from .reporting import format_table

        report = model_accuracy()
        rows = [
            [p.kind, p.n, f"{p.measured_gflops:.1f}", f"{p.predicted_gflops:.1f}",
             f"{p.error * 100:+.1f}%", "spill" if p.spills else ""]
            for p in report.points
        ]
        print(format_table(
            ["kind", "n", "measured", "predicted", "error", ""], rows,
            title="Model accuracy across Figure 9's size range",
        ))
        print(f"\nMAPE (no spilling): {report.mape_no_spill:.1%}")
        print(f"MAPE (spilling, knowingly unmodeled): {report.mape_spill:.1%}")
        return 0

    if args.command == "export":
        from .reporting import export_experiment

        for eid in list_experiments():
            result = run_experiment(eid)
            files = export_experiment(result, args.output_dir)
            print(f"{eid}: " + ", ".join(f.name for f in files))
        return 0

    # all
    failures = 0
    for eid in list_experiments():
        start = time.time()
        try:
            result = run_experiment(eid)
        except Exception as exc:  # pragma: no cover - defensive CLI path
            print(f"!! {eid} failed: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(result.report)
        print(f"[{eid}: {time.time() - start:.1f}s]\n")
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{eid}.txt").write_text(result.report + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
