"""Batch-execution runtime: sharding, process pools, persistent caches.

The paper's premise is throughput on thousands of small problems at
once; this package is the layer that actually delivers a batch to the
machine.  It shards a :class:`ProblemBatch` across a process pool with
size-aware chunking (:mod:`~repro.runtime.sharding`), merges per-shard
outputs, hardware counters, and trace events deterministically back into
one :class:`BatchReport` (:mod:`~repro.runtime.merge`), and keeps two
persistent caches (:mod:`~repro.runtime.cache`) so calibration runs
once per device and dispatch rankings are memoized.

Entry points: :func:`run_batched` for one-call use (also re-exported
from :mod:`repro.kernels.batched`), :class:`BatchRuntime` for configured
reuse.  See ``docs/runtime.md``.
"""

from .cache import (
    CACHE_SCHEMA,
    CalibrationCache,
    DispatchCache,
    cache_dir,
    device_fingerprint,
)
from .executor import BatchRuntime, default_workers, run_batched, supported_ops
from .merge import BatchReport, ChunkOutcome, GroupResult, merge_outcomes
from .sharding import (
    DEFAULT_CHUNK_COST,
    Chunk,
    ProblemBatch,
    ProblemGroup,
    plan_chunks,
    problem_cost,
)

__all__ = [
    "BatchReport",
    "BatchRuntime",
    "CACHE_SCHEMA",
    "CalibrationCache",
    "Chunk",
    "ChunkOutcome",
    "DEFAULT_CHUNK_COST",
    "DispatchCache",
    "GroupResult",
    "ProblemBatch",
    "ProblemGroup",
    "cache_dir",
    "default_workers",
    "device_fingerprint",
    "merge_outcomes",
    "plan_chunks",
    "problem_cost",
    "run_batched",
    "supported_ops",
]
