"""Sharded multi-process batch execution.

:class:`BatchRuntime` turns the serial one-launch-per-batch story into a
real execution runtime: a :class:`~repro.runtime.sharding.ProblemBatch`
is split into size-aware chunks, the chunks run on a
:class:`concurrent.futures.ProcessPoolExecutor`, and the per-chunk
outputs, hardware counters, and trace events merge back -- in submission
order -- into a single :class:`~repro.runtime.merge.BatchReport`.

Guarantees the tests pin down:

* **bitwise determinism** -- chunk boundaries never depend on the worker
  count, every kernel is element-wise independent along the batch axis,
  and the merge is submission-ordered, so ``workers=4`` returns exactly
  the bytes ``workers=1`` does;
* **exact counters** -- merged registries equal the serial path's, by
  construction (same launches, same fold order);
* **graceful degradation** -- if the pool cannot be built or a worker
  dies, the launch falls back to in-process execution with a
  ``RuntimeWarning`` instead of crashing;
* **warm caches** -- the runtime's :class:`CalibrationCache` makes
  :func:`~repro.microbench.calibrate.calibrate` a once-per-device cost
  and its :class:`DispatchCache` memoizes approach rankings.

The convenience entry point :func:`run_batched` (re-exported from
:mod:`repro.kernels.batched`) covers the common one-op case::

    report = run_batched("lu", matrices, workers=4)
    report.output          # (batch, n, n) packed LU, identical to serial
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
import warnings
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..gpu.device import QUADRO_6000, DeviceSpec
from ..model.parameters import ModelParameters
from ..observe import metrics as _metrics
from ..observe.history import RunHistory, run_record
from ..observe.tracer import current_tracer, tracing
from .cache import CalibrationCache, DispatchCache
from .merge import BatchReport, ChunkOutcome, merge_outcomes
from .sharding import DEFAULT_CHUNK_COST, ProblemBatch, plan_chunks

__all__ = ["BatchRuntime", "default_workers", "run_batched", "supported_ops"]


def _kernel_registry() -> dict:
    # Deferred: repro.kernels.device pulls in the whole kernel stack.
    from ..kernels import device as dk

    return {
        "lu": dk.per_block_lu,
        "lu_pivot": dk.per_block_lu_pivot,
        "qr": dk.per_block_qr,
        "cholesky": dk.per_block_cholesky,
    }


def supported_ops() -> list[str]:
    """Kernel names :func:`run_batched` accepts."""
    return sorted(_kernel_registry())


def default_workers() -> int:
    """Pool size when none is requested: the smaller of 4 and the CPUs."""
    return max(1, min(4, os.cpu_count() or 1))


def _execute_chunk(
    op: str, data: np.ndarray, kwargs: dict, traced: bool
) -> ChunkOutcome:
    """Run one chunk (in a worker or inline) and package the outcome.

    When fleet metrics are enabled, the chunk runs against a private
    :class:`~repro.observe.metrics.MetricsRegistry` that ships back with
    the outcome -- inline execution takes the same detour, so the
    launch-level fold (and therefore every metric total) is identical
    between the serial and sharded paths.
    """
    kernel = _kernel_registry().get(op)
    if kernel is None:
        raise ValueError(f"unknown batched op {op!r}; supported: {supported_ops()}")
    local_metrics = previous_metrics = None
    if _metrics.metrics_enabled():
        local_metrics = _metrics.MetricsRegistry()
        previous_metrics = _metrics.set_default_registry(local_metrics)
    start = time.perf_counter()
    dropped = 0
    try:
        if traced:
            with tracing() as tracer:
                result = kernel(data, **kwargs)
            events = list(tracer.events)
            registry = tracer.counters
            dropped = tracer.dropped
        else:
            result = kernel(data, **kwargs)
            events = []
            registry = None
    finally:
        if local_metrics is not None:
            _metrics.set_default_registry(previous_metrics)
    return ChunkOutcome(
        output=result.output,
        extra=result.extra,
        launch=result.launch,
        wall_s=time.perf_counter() - start,
        events=events,
        registry=registry,
        pid=os.getpid(),
        dropped=dropped,
        metrics=local_metrics,
    )


class BatchRuntime:
    """Sharded executor with persistent calibration/dispatch caches.

    Parameters
    ----------
    workers:
        Process-pool size; ``None`` means :func:`default_workers`, and
        ``1`` executes the identical chunk plan in-process (the "serial
        path" every parallel guarantee is defined against).
    chunk_cost:
        Per-chunk FLOP budget handed to
        :func:`~repro.runtime.sharding.plan_chunks`.
    device:
        Simulated device kernels run against (also the cache key).
    use_caches:
        When ``False``, no cache files are read or written (calibration
        runs every time and dispatch rankings are not memoized).
    history:
        Run-history destination.  The default (``None``) co-locates a
        ``history.jsonl`` with the caches when ``use_caches`` is on and
        records nothing otherwise; pass ``False`` to disable, ``True``
        for the default location, a path, or a ready
        :class:`~repro.observe.history.RunHistory`.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` for
        its negligible startup cost, falling back to the platform
        default where unavailable.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_cost: float = DEFAULT_CHUNK_COST,
        device: DeviceSpec = QUADRO_6000,
        use_caches: bool = True,
        cache_directory=None,
        history=None,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.chunk_cost = float(chunk_cost)
        self.device = device
        self.calibration_cache = (
            CalibrationCache(cache_directory) if use_caches else None
        )
        self.dispatch_cache = (
            DispatchCache(device, directory=cache_directory) if use_caches else None
        )
        self.history = self._resolve_history(history, use_caches, cache_directory)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._params: Optional[ModelParameters] = None

    @staticmethod
    def _resolve_history(
        history, use_caches: bool, cache_directory
    ) -> Optional[RunHistory]:
        if history is False:
            return None
        if isinstance(history, RunHistory):
            return history
        if history is True:
            return RunHistory()
        if history is not None:  # a path
            return RunHistory(history)
        # Default: ride with the caches (hermetic cache dir -> hermetic
        # history), and stay silent when caching is off entirely.
        if not use_caches:
            return None
        if cache_directory is not None:
            return RunHistory(Path(cache_directory) / "history.jsonl")
        return RunHistory()

    # ------------------------------------------------------------------
    # Cached decision products
    # ------------------------------------------------------------------
    def parameters(self) -> ModelParameters:
        """Table-IV parameters for this device, calibrating at most once.

        A warm :class:`CalibrationCache` skips the microbenchmark sweep
        entirely (no ``calibrate`` span is emitted); the result is also
        memoized on the runtime instance.
        """
        if self._params is None:
            from ..microbench.calibrate import calibrate

            self._params = calibrate(self.device, cache=self.calibration_cache)
        return self._params

    def rank(self, work):
        """Approach ranking for ``work`` through the dispatch cache.

        The cache is first scoped to this runtime's calibrated
        parameters, so a recalibration (new device spec, hand-edited
        latencies) invalidates memos ranked under the old numbers.
        """
        from ..approaches.dispatch import rank_approaches

        if self.dispatch_cache is not None:
            self.dispatch_cache.bind_params(self.parameters())
        return rank_approaches(work, cache=self.dispatch_cache)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, batch: ProblemBatch, **kernel_kwargs) -> BatchReport:
        """Execute ``batch`` and merge everything into one report.

        ``kernel_kwargs`` (e.g. ``fast_math=False``) pass through to
        every kernel launch.  When a tracer is active in the calling
        thread, worker-side events and counters are folded back into it
        with per-chunk ``shard``/``worker`` tags.
        """
        kwargs = dict(kernel_kwargs)
        kwargs.setdefault("device", self.device)
        chunks = plan_chunks(batch, self.chunk_cost)
        tracer = current_tracer()
        traced = tracer is not None
        payloads = [
            (
                batch.groups[chunk.group].op,
                batch.groups[chunk.group].data[chunk.start : chunk.stop],
                kwargs,
                traced,
            )
            for chunk in chunks
        ]

        start = time.perf_counter()
        outcomes: Optional[list[ChunkOutcome]] = None
        mode = "serial"
        if self.workers > 1 and len(chunks) > 1:
            try:
                outcomes = self._run_pool(payloads)
                mode = "process"
            except Exception as exc:
                warnings.warn(
                    f"sharded execution failed ({exc!r}); "
                    "degrading to serial in-process execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                outcomes = None
                mode = "serial-fallback"
        if outcomes is None:
            outcomes = [_execute_chunk(*payload) for payload in payloads]
        wall_s = time.perf_counter() - start

        if traced:
            for chunk, outcome in zip(chunks, outcomes):
                if outcome.registry is not None:
                    tracer.counters.merge(outcome.registry)
                tracer.ingest(
                    outcome.events,
                    dropped=outcome.dropped,
                    shard=chunk.index,
                    worker=outcome.pid,
                )
            tracer.instant(
                "runtime.launch",
                "runtime",
                chunks=len(chunks),
                workers=self.workers,
                mode=mode,
                problems=batch.total_problems,
            )

        report = merge_outcomes(
            batch, chunks, outcomes, workers=self.workers, mode=mode, wall_s=wall_s
        )
        report.params = self.parameters()
        self._observe_run(batch, chunks, outcomes, report)
        return report

    def _observe_run(self, batch, chunks, outcomes, report: BatchReport) -> None:
        """Fold chunk telemetry into the fleet registry + run history.

        Regime classification always lands on the report (it is part of
        the result); registry writes honor the global metrics flag, and
        the history append happens whenever this runtime carries a
        :class:`RunHistory`.  Telemetry failures never fail the launch.
        """
        from ..observe.regime import classify_regime, record_regime

        attributions = []
        try:
            from ..observe.attribution import attribute_launch

            for group_result in report.results:
                attributions.append(
                    attribute_launch(
                        report.params, group_result.launch, label=group_result.op
                    )
                )
            report.regimes = [classify_regime(a) for a in attributions]
        except (ValueError, KeyError, AttributeError):
            attributions = []

        if _metrics.metrics_enabled():
            registry = _metrics.default_registry()
            # Worker registries fold in submission order -- the same
            # fold the inline path takes, so serial == sharded totals.
            for outcome in outcomes:
                if outcome.metrics is not None:
                    registry.merge(outcome.metrics)
            registry.inc(
                "repro_runtime_launches_total",
                help="Batch launches by execution mode.",
                mode=report.mode,
            )
            if report.mode == "serial-fallback":
                registry.inc(
                    "repro_runtime_serial_fallback_total",
                    help="Launches degraded from the pool to in-process.",
                )
            dropped = sum(o.dropped for o in outcomes)
            if dropped:
                registry.inc(
                    "repro_trace_dropped_events_total",
                    dropped,
                    help="Worker trace events lost to ring-buffer overflow.",
                )
            registry.set(
                "repro_runtime_workers",
                report.workers,
                help="Pool size of the most recent launch.",
            )
            registry.set(
                "repro_runtime_wall_seconds",
                report.wall_s,
                help="Wall time of the most recent launch.",
            )
            for chunk, outcome in zip(chunks, outcomes):
                op = batch.groups[chunk.group].op
                registry.inc(
                    "repro_runtime_chunks_total",
                    help="Chunks executed, by op/mode/worker pid.",
                    op=op,
                    mode=report.mode,
                    worker=outcome.pid,
                )
                registry.observe(
                    "repro_chunk_wall_seconds",
                    outcome.wall_s,
                    help="Per-chunk kernel wall time.",
                    op=op,
                )
                registry.observe(
                    "repro_chunk_queue_wait_seconds",
                    outcome.queue_wait_s,
                    help="Per-chunk time between submission and execution.",
                    op=op,
                )
                registry.inc(
                    "repro_chunk_problems_total",
                    chunk.problems,
                    help="Problems executed per chunk, by op and shard.",
                    op=op,
                    shard=chunk.index,
                )
            for group_result, group in zip(report.results, batch.groups):
                registry.inc(
                    "repro_runtime_problems_total",
                    group_result.problems,
                    help="Problems factored, by op.",
                    op=group_result.op,
                )
                registry.inc(
                    "repro_runtime_flops_total",
                    group.cost,
                    help="Useful FLOPs executed, by op.",
                    op=group_result.op,
                )
                registry.inc(
                    "repro_runtime_bytes_total",
                    float(group.data.nbytes) * 2.0,
                    help="Operand bytes moved (read + write), by op.",
                    op=group_result.op,
                )
                registry.set(
                    "repro_runtime_gflops",
                    group_result.gflops,
                    help="Simulated throughput of the latest launch, by op.",
                    op=group_result.op,
                )
            for classification in report.regimes:
                record_regime(classification, registry=registry, op=classification.label)

        if self.history is not None:
            try:
                self.history.append(
                    run_record(
                        report.summary(),
                        regimes=report.regimes,
                        attribution=[
                            {
                                "label": a.label,
                                "residual_total": a.residual_total,
                                "measured_total": a.measured_total,
                                "eq_total": a.eq_total,
                            }
                            for a in attributions
                        ],
                        device=self.device.name,
                    )
                )
            except OSError:
                pass

    def _run_pool(self, payloads: list) -> list[ChunkOutcome]:
        context = multiprocessing.get_context(self.start_method)
        max_workers = min(self.workers, len(payloads))
        done_at: dict = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=context
        ) as pool:
            futures = []
            submitted_at = []
            for payload in payloads:
                future = pool.submit(_execute_chunk, *payload)
                submitted_at.append(time.perf_counter())
                future.add_done_callback(
                    lambda f: done_at.setdefault(id(f), time.perf_counter())
                )
                futures.append(future)
            # Collect in submission order; completion order is irrelevant.
            outcomes = [future.result() for future in futures]
        for future, submit_ts, outcome in zip(futures, submitted_at, outcomes):
            turnaround = done_at.get(id(future), submit_ts) - submit_ts
            # Time not spent executing the kernel = pool queueing (plus
            # pickling, which rides along -- both are scheduling cost).
            outcome.queue_wait_s = max(0.0, turnaround - outcome.wall_s)
        return outcomes


def run_batched(
    op: str,
    problems: Union[np.ndarray, Sequence[np.ndarray]],
    runtime: Optional[BatchRuntime] = None,
    workers: Optional[int] = None,
    **kernel_kwargs,
) -> BatchReport:
    """Factor ``problems`` under kernel ``op`` on a sharded runtime.

    ``problems`` is one ``(batch, m, n)`` array or a sequence of them
    (mixed sizes -> one group each).  Supply a configured ``runtime`` to
    reuse its pool settings and caches, or just a ``workers`` count for
    a throwaway runtime.
    """
    if runtime is None:
        runtime = BatchRuntime(workers=workers)
    elif workers is not None:
        raise ValueError("pass either runtime or workers, not both")
    if isinstance(problems, np.ndarray):
        batch = ProblemBatch.single(op, problems)
    else:
        batch = ProblemBatch.mixed(op, list(problems))
    return runtime.run(batch, **kernel_kwargs)
