"""Sharded multi-process batch execution.

:class:`BatchRuntime` turns the serial one-launch-per-batch story into a
real execution runtime: a :class:`~repro.runtime.sharding.ProblemBatch`
is split into size-aware chunks, the chunks run on a
:class:`concurrent.futures.ProcessPoolExecutor`, and the per-chunk
outputs, hardware counters, and trace events merge back -- in submission
order -- into a single :class:`~repro.runtime.merge.BatchReport`.

Guarantees the tests pin down:

* **bitwise determinism** -- chunk boundaries never depend on the worker
  count, every kernel is element-wise independent along the batch axis,
  and the merge is submission-ordered, so ``workers=4`` returns exactly
  the bytes ``workers=1`` does;
* **exact counters** -- merged registries equal the serial path's, by
  construction (same launches, same fold order);
* **graceful degradation** -- if the pool cannot be built or a worker
  dies, the launch falls back to in-process execution with a
  ``RuntimeWarning`` instead of crashing;
* **warm caches** -- the runtime's :class:`CalibrationCache` makes
  :func:`~repro.microbench.calibrate.calibrate` a once-per-device cost
  and its :class:`DispatchCache` memoizes approach rankings.

The convenience entry point :func:`run_batched` (re-exported from
:mod:`repro.kernels.batched`) covers the common one-op case::

    report = run_batched("lu", matrices, workers=4)
    report.output          # (batch, n, n) packed LU, identical to serial
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
import time
import warnings
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..gpu.device import QUADRO_6000, DeviceSpec
from ..model.parameters import ModelParameters
from ..observe import log as _log
from ..observe import metrics as _metrics
from ..observe import profile as _profile
from ..observe.history import RunHistory, run_record
from ..observe.tracer import current_tracer, tracing
from ..resilience.checkpoint import CheckpointStore, batch_fingerprint
from ..resilience.faults import resolve_faults
from ..resilience.policy import DEFAULT_RETRY_POLICY, RetryPolicy
from ..resilience.quarantine import quarantine_outcomes
from ..resilience.supervisor import (
    ChunkFailedError,
    SuperviseStats,
    ChunkSpans,
    outcome_checksum,
    supervise_pool,
    supervise_serial,
)
from .cache import CalibrationCache, DispatchCache, cache_dir
from .merge import BatchReport, ChunkOutcome, merge_outcomes
from .sharding import DEFAULT_CHUNK_COST, ProblemBatch, plan_chunks

__all__ = ["BatchRuntime", "default_workers", "run_batched", "supported_ops"]


def _kernel_registry() -> dict:
    # Deferred: repro.kernels.device pulls in the whole kernel stack.
    from ..kernels import device as dk

    return {
        "lu": dk.per_block_lu,
        "lu_pivot": dk.per_block_lu_pivot,
        "qr": dk.per_block_qr,
        "cholesky": dk.per_block_cholesky,
    }


def supported_ops() -> list[str]:
    """Kernel names :func:`run_batched` accepts."""
    return sorted(_kernel_registry())


def default_workers() -> int:
    """Pool size when none is requested: the smaller of 4 and the CPUs."""
    return max(1, min(4, os.cpu_count() or 1))


#: Monotone batch sequence: every traced launch in this process gets a
#: unique profile scope (``batch:N``), so span ids never collide when
#: several launches fold into one tracer.
_BATCH_SEQ = itertools.count()


def _execute_chunk(
    op: str,
    data: np.ndarray,
    kwargs: dict,
    traced: Union[bool, str],
    chunk_index: int = 0,
    attempt: int = 0,
    nchunks: int = 1,
    faults=None,
    checksum: bool = True,
) -> ChunkOutcome:
    """Run one chunk (in a worker or inline) and package the outcome.

    When fleet metrics are enabled, the chunk runs against a private
    :class:`~repro.observe.metrics.MetricsRegistry` that ships back with
    the outcome -- inline execution takes the same detour, so the
    launch-level fold (and therefore every metric total) is identical
    between the serial and sharded paths.

    ``traced`` is falsy (untraced), ``True`` (trace, no profile spans),
    or the batch's profile scope string: the worker then emits its side
    of the span tree -- a ``deserialize`` setup span and the ``attempt``
    span around the kernel -- stamped on the worker tracer's own clock,
    and ships the tracer's :class:`~repro.observe.tracer.ClockOrigin`
    back so the launch process can align the timelines at ingest.

    ``chunk_index``/``attempt`` identify this execution to the optional
    :class:`~repro.resilience.faults.FaultPlan`, which fires its seeded
    crash/hang/corrupt injectors here -- in the worker, where the real
    failure would happen.  ``checksum`` ships a content hash of the
    numerical payload so the supervisor can detect transport corruption.
    """
    entry = time.perf_counter()
    kernel = _kernel_registry().get(op)
    if kernel is None:
        raise ValueError(f"unknown batched op {op!r}; supported: {supported_ops()}")
    if faults is not None:
        faults.apply_pre(chunk_index, attempt, nchunks)
    scope = traced if isinstance(traced, str) else None
    local_metrics = previous_metrics = None
    if _metrics.metrics_enabled():
        local_metrics = _metrics.MetricsRegistry()
        previous_metrics = _metrics.set_default_registry(local_metrics)
    start = time.perf_counter()
    dropped = 0
    clock = None
    try:
        if traced:
            with tracing() as tracer:
                kernel_start = tracer.now()
                result = kernel(data, **kwargs)
                if scope is not None:
                    _emit_worker_spans(
                        tracer,
                        scope,
                        chunk_index,
                        attempt,
                        op,
                        entry=entry,
                        start=start,
                        kernel_start=kernel_start,
                    )
            events = list(tracer.events)
            registry = tracer.counters
            dropped = tracer.dropped
            clock = tracer.origin
        else:
            result = kernel(data, **kwargs)
            events = []
            registry = None
    finally:
        if local_metrics is not None:
            _metrics.set_default_registry(previous_metrics)
    digest = outcome_checksum(result.output, result.extra) if checksum else None
    wall_s = time.perf_counter() - start
    if _log.log_enabled():
        # One record per attempt, stamped with the same span ids the
        # profile spans carry, so a log line joins its flamegraph span.
        chunk_id = f"{scope}/chunk:{chunk_index}" if scope else None
        _log.log_event(
            "worker.attempt",
            span_id=f"{chunk_id}/attempt:{attempt}" if chunk_id else None,
            parent_id=chunk_id,
            op=op,
            chunk=chunk_index,
            attempt=attempt,
            wall_s=wall_s,
            dropped=dropped,
        )
    output = result.output
    if faults is not None:
        # Corruption is injected *after* the checksum, simulating a
        # payload mangled in transit; the supervisor must catch it.
        output = faults.apply_corrupt(chunk_index, attempt, nchunks, output)
    return ChunkOutcome(
        output=output,
        extra=result.extra,
        launch=result.launch,
        wall_s=wall_s,
        events=events,
        registry=registry,
        pid=os.getpid(),
        dropped=dropped,
        metrics=local_metrics,
        checksum=digest,
        clock=clock,
    )


def _emit_worker_spans(
    tracer,
    scope: str,
    chunk_index: int,
    attempt: int,
    op: str,
    *,
    entry: float,
    start: float,
    kernel_start: float,
) -> None:
    """The worker's side of the batch span tree, on its own clock.

    ``deserialize`` covers chunk setup (fault hooks, metrics registry
    swap) from function entry to the traced block; ``attempt`` covers
    the kernel proper.  Both carry explicit ids under the chunk span, so
    retries land as sibling ``attempt:{k}`` spans.
    """
    pid = os.getpid()
    chunk_id = f"{scope}/chunk:{chunk_index}"
    attempt_id = f"{chunk_id}/attempt:{attempt}"
    origin = tracer.origin.perf
    tracer.complete(
        "deserialize",
        _profile.PROFILE_CATEGORY,
        ts=entry - origin,
        dur=max(0.0, start - entry),
        span_id=f"{chunk_id}/deserialize:{attempt}",
        parent_id=chunk_id,
        chunk=chunk_index,
        attempt=attempt,
        worker=pid,
    )
    tracer.complete(
        "attempt",
        _profile.PROFILE_CATEGORY,
        ts=kernel_start,
        dur=max(0.0, tracer.now() - kernel_start),
        span_id=attempt_id,
        parent_id=chunk_id,
        chunk=chunk_index,
        attempt=attempt,
        op=op,
        worker=pid,
    )


class BatchRuntime:
    """Sharded executor with persistent calibration/dispatch caches.

    Parameters
    ----------
    workers:
        Process-pool size; ``None`` means :func:`default_workers`, and
        ``1`` executes the identical chunk plan in-process (the "serial
        path" every parallel guarantee is defined against).
    chunk_cost:
        Per-chunk FLOP budget handed to
        :func:`~repro.runtime.sharding.plan_chunks`.
    device:
        Simulated device kernels run against (also the cache key).
    use_caches:
        When ``False``, no cache files are read or written (calibration
        runs every time and dispatch rankings are not memoized).
    history:
        Run-history destination.  The default (``None``) co-locates a
        ``history.jsonl`` with the caches when ``use_caches`` is on and
        records nothing otherwise; pass ``False`` to disable, ``True``
        for the default location, a path, or a ready
        :class:`~repro.observe.history.RunHistory`.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` for
        its negligible startup cost, falling back to the platform
        default where unavailable.
    retry_policy:
        Per-chunk :class:`~repro.resilience.policy.RetryPolicy`
        (deadline, retry count, backoff); the default retries twice with
        no deadline.
    faults:
        Deterministic fault injection: a
        :class:`~repro.resilience.faults.FaultPlan`, a single
        :class:`~repro.resilience.faults.FaultSpec`, or a spec string
        (``"crash@0;hang@2:sleep=30"``).  ``None`` reads
        ``REPRO_FAULTS`` from the environment; no faults otherwise.
    checkpoint:
        Opt-in chunk journal for resumable runs: ``True`` (under the
        cache root), a directory path, or a ready
        :class:`~repro.resilience.checkpoint.CheckpointStore`.
    resilience:
        ``False`` bypasses the supervisor, checksums, and quarantine
        entirely (the pre-resilience pool) -- the escape hatch the
        overhead tripwire in ``bench_runtime_scaling`` measures against.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_cost: float = DEFAULT_CHUNK_COST,
        device: DeviceSpec = QUADRO_6000,
        use_caches: bool = True,
        cache_directory=None,
        history=None,
        start_method: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        faults=None,
        checkpoint=None,
        resilience: bool = True,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.chunk_cost = float(chunk_cost)
        self.device = device
        self.calibration_cache = (
            CalibrationCache(cache_directory) if use_caches else None
        )
        self.dispatch_cache = (
            DispatchCache(device, directory=cache_directory) if use_caches else None
        )
        self.history = self._resolve_history(history, use_caches, cache_directory)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.retry_policy = (
            DEFAULT_RETRY_POLICY if retry_policy is None else retry_policy
        )
        self.faults = resolve_faults(faults)
        self.resilience = bool(resilience)
        self.checkpoint = self._resolve_checkpoint(
            checkpoint, cache_directory, self.faults
        )
        self._params: Optional[ModelParameters] = None

    @staticmethod
    def _resolve_checkpoint(
        checkpoint, cache_directory, faults
    ) -> Optional[CheckpointStore]:
        if checkpoint in (None, False):
            return None
        if isinstance(checkpoint, CheckpointStore):
            return checkpoint
        if checkpoint is True:
            root = Path(cache_directory) if cache_directory else cache_dir()
            return CheckpointStore(root / "checkpoints", faults=faults)
        return CheckpointStore(Path(checkpoint), faults=faults)

    @staticmethod
    def _resolve_history(
        history, use_caches: bool, cache_directory
    ) -> Optional[RunHistory]:
        if history is False:
            return None
        if isinstance(history, RunHistory):
            return history
        if history is True:
            return RunHistory()
        if history is not None:  # a path
            return RunHistory(history)
        # Default: ride with the caches (hermetic cache dir -> hermetic
        # history), and stay silent when caching is off entirely.
        if not use_caches:
            return None
        if cache_directory is not None:
            return RunHistory(Path(cache_directory) / "history.jsonl")
        return RunHistory()

    # ------------------------------------------------------------------
    # Cached decision products
    # ------------------------------------------------------------------
    def parameters(self) -> ModelParameters:
        """Table-IV parameters for this device, calibrating at most once.

        A warm :class:`CalibrationCache` skips the microbenchmark sweep
        entirely (no ``calibrate`` span is emitted); the result is also
        memoized on the runtime instance.
        """
        if self._params is None:
            from ..microbench.calibrate import calibrate

            self._params = calibrate(self.device, cache=self.calibration_cache)
        return self._params

    def rank(self, work):
        """Approach ranking for ``work`` through the dispatch cache.

        The cache is first scoped to this runtime's calibrated
        parameters, so a recalibration (new device spec, hand-edited
        latencies) invalidates memos ranked under the old numbers.
        """
        from ..approaches.dispatch import rank_approaches

        if self.dispatch_cache is not None:
            self.dispatch_cache.bind_params(self.parameters())
        return rank_approaches(work, cache=self.dispatch_cache)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, batch: ProblemBatch, **kernel_kwargs) -> BatchReport:
        """Execute ``batch`` and merge everything into one report.

        ``kernel_kwargs`` (e.g. ``fast_math=False``) pass through to
        every kernel launch.  When a tracer is active in the calling
        thread, worker-side events and counters are folded back into it
        with per-chunk ``shard``/``worker`` tags.

        Failure handling (see :mod:`repro.resilience`): chunk attempts
        are supervised (deadline + retries + pool rebuild), numerical
        breakdowns quarantine their problem slot onto
        ``report.failures``, and an attached checkpoint store lets a
        killed run resume from its last journaled chunk.
        """
        known = supported_ops()
        for group in batch.groups:
            # Validate before submission: an unknown op must fail the
            # caller with a clean ValueError, not surface as a pickled
            # worker exception (and a spurious serial-fallback warning).
            if group.op not in known:
                raise ValueError(
                    f"unknown batched op {group.op!r}; supported: {known}"
                )
        kwargs = dict(kernel_kwargs)
        kwargs.setdefault("device", self.device)
        tracer = current_tracer()
        traced = tracer is not None
        emitter = None
        if traced and _profile.profiling_enabled():
            emitter = _profile.ProfileEmitter(tracer, f"batch:{next(_BATCH_SEQ)}")
        batch_start = emitter.now() if emitter is not None else 0.0
        chunks = plan_chunks(batch, self.chunk_cost)
        # Workers receive the profile scope (a string) so their attempt
        # spans carry fully-scoped ids; plain ``True`` traces without
        # profile spans, ``False`` is the untraced hot path.
        trace_token: Union[bool, str] = (
            emitter.scope if emitter is not None else traced
        )
        payloads = [
            (
                batch.groups[chunk.group].op,
                batch.groups[chunk.group].data[chunk.start : chunk.stop],
                kwargs,
                trace_token,
            )
            for chunk in chunks
        ]
        if emitter is not None:
            emitter.emit(
                "plan",
                batch_start,
                span_id=emitter.span_id("plan"),
                parent_id=emitter.scope,
                chunks=len(chunks),
                problems=batch.total_problems,
            )
        log_scope = emitter.scope if emitter is not None else None
        if _log.log_enabled():
            _log.log_event(
                "runtime.plan",
                span_id=(
                    emitter.span_id("plan") if emitter is not None else None
                ),
                parent_id=log_scope,
                chunks=len(chunks),
                problems=batch.total_problems,
                workers=self.workers,
            )

        resumed: dict[int, ChunkOutcome] = {}
        record = None
        if self.resilience and self.checkpoint is not None:
            fingerprint = batch_fingerprint(batch, self.chunk_cost, kwargs)
            resumed = {
                index: outcome
                for index, outcome in self.checkpoint.resume(fingerprint).items()
                if index < len(chunks)
            }

            def record(index: int, outcome: ChunkOutcome) -> None:
                self.checkpoint.record(fingerprint, index, outcome)
                _log.log_event(
                    "checkpoint.record",
                    level="debug",
                    span_id=(
                        f"{log_scope}/chunk:{index}" if log_scope else None
                    ),
                    parent_id=log_scope,
                    chunk=index,
                )

        entries = [
            (index, payloads[index])
            for index in range(len(chunks))
            if index not in resumed
        ]

        execute_start = emitter.now() if emitter is not None else 0.0
        start = time.perf_counter()
        stats = SuperviseStats()
        by_index: Optional[dict[int, ChunkOutcome]] = None
        mode = "serial"
        if not self.resilience:
            by_index, mode = self._run_unsupervised(payloads, emitter)
        elif not entries:
            by_index = {}
            mode = "resumed"
        else:
            if self.workers > 1 and len(entries) > 1:
                try:
                    by_index, stats = self._run_pool(
                        entries, record, nchunks=len(chunks), profile=emitter
                    )
                    mode = "process"
                except ChunkFailedError:
                    # Retries and the inline rescue are already spent;
                    # a serial re-run cannot fix this chunk and would
                    # re-execute completed ones.
                    raise
                except Exception as exc:
                    warnings.warn(
                        f"sharded execution failed ({exc!r}); "
                        "degrading to serial in-process execution",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    by_index = None
                    mode = "serial-fallback"
            if by_index is None:
                if record is not None and mode == "serial-fallback":
                    # The failed pool pass may have journaled chunks.
                    more = {
                        index: outcome
                        for index, outcome in self.checkpoint.resume(
                            fingerprint
                        ).items()
                        if index < len(chunks)
                    }
                    resumed.update(more)
                    entries = [e for e in entries if e[0] not in resumed]
                by_index, serial_stats = supervise_serial(
                    entries,
                    execute=_execute_chunk,
                    policy=self.retry_policy,
                    faults=self.faults,
                    nchunks=len(chunks),
                    on_complete=record,
                    profile=emitter,
                )
                stats.events.extend(serial_stats.events)
        by_index.update(resumed)
        outcomes = [by_index[index] for index in range(len(chunks))]
        if emitter is not None:
            emitter.emit(
                "execute",
                execute_start,
                span_id=emitter.span_id("execute"),
                parent_id=emitter.scope,
                chunks=len(chunks),
                mode=mode,
            )
        merge_start = emitter.now() if emitter is not None else 0.0
        failures = (
            quarantine_outcomes(batch, chunks, outcomes) if self.resilience else []
        )
        wall_s = time.perf_counter() - start
        if self.resilience and self.checkpoint is not None:
            # The merge below is pure; once every outcome is in hand the
            # journal has served its purpose.
            self.checkpoint.clear()

        if _log.log_enabled():
            if resumed:
                _log.log_event(
                    "resilience.resume",
                    span_id=log_scope,
                    skipped=len(resumed),
                    chunks=len(chunks),
                )
            if failures:
                _log.log_event(
                    "runtime.quarantine",
                    level="warning",
                    span_id=log_scope,
                    problems=len(failures),
                    ops=sorted({f.op for f in failures}),
                )
            _log.log_event(
                "runtime.launch",
                span_id=log_scope,
                mode=mode,
                chunks=len(chunks),
                workers=self.workers,
                problems=batch.total_problems,
                failures=len(failures),
                wall_s=wall_s,
            )

        if traced:
            for chunk, outcome in zip(chunks, outcomes):
                if outcome.registry is not None:
                    tracer.counters.merge(outcome.registry)
                tracer.ingest(
                    outcome.events,
                    dropped=outcome.dropped,
                    clock=outcome.clock,
                    shard=chunk.index,
                    worker=outcome.pid,
                )
            for kind, args in stats.events:
                tracer.instant(f"resilience.{kind}", "resilience", **args)
            if resumed:
                tracer.instant(
                    "resilience.resume",
                    "resilience",
                    skipped=len(resumed),
                    chunks=len(chunks),
                )
            if failures:
                tracer.instant(
                    "resilience.quarantine",
                    "resilience",
                    problems=len(failures),
                )
            tracer.instant(
                "runtime.launch",
                "runtime",
                chunks=len(chunks),
                workers=self.workers,
                mode=mode,
                problems=batch.total_problems,
            )

        report = merge_outcomes(
            batch, chunks, outcomes, workers=self.workers, mode=mode, wall_s=wall_s
        )
        if emitter is not None:
            merge_end = emitter.now()
            emitter.emit(
                "merge",
                merge_start,
                merge_end,
                span_id=emitter.span_id("merge"),
                parent_id=emitter.scope,
                chunks=len(chunks),
            )
            emitter.emit(
                "batch",
                batch_start,
                merge_end,
                span_id=emitter.scope,
                parent_id=None,
                problems=batch.total_problems,
                chunks=len(chunks),
                workers=self.workers,
                mode=mode,
            )
            roots = _profile.build_span_trees(tracer.events, scope=emitter.scope)
            batch_root = next((r for r in roots if r.name == "batch"), None)
            if batch_root is not None:
                report.profile = _profile.compute_profile(batch_root)
        report.failures = failures
        report.params = self.parameters()
        self._observe_run(
            batch, chunks, outcomes, report, stats=stats, resumed=len(resumed)
        )
        return report

    def _run_unsupervised(
        self, payloads: list, profile=None
    ) -> tuple[dict[int, ChunkOutcome], str]:
        """The pre-resilience path: bare pool, no checksums/retries."""
        outcomes: Optional[list[ChunkOutcome]] = None
        mode = "serial"
        if self.workers > 1 and len(payloads) > 1:
            try:
                outcomes = self._run_pool_plain(payloads, profile)
                mode = "process"
            except Exception as exc:
                warnings.warn(
                    f"sharded execution failed ({exc!r}); "
                    "degrading to serial in-process execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                outcomes = None
                mode = "serial-fallback"
        if outcomes is None:
            spans = ChunkSpans(profile)
            outcomes = []
            for index, payload in enumerate(payloads):
                hand_off = spans.now()
                spans.submit(index, hand_off, hand_off, attempt=0, op=payload[0])
                outcome = _execute_chunk(
                    *payload,
                    chunk_index=index,
                    nchunks=len(payloads),
                    checksum=False,
                )
                spans.complete(index, spans.now(), op=payload[0], attempts=1)
                outcomes.append(outcome)
        return dict(enumerate(outcomes)), mode

    def _observe_run(
        self,
        batch,
        chunks,
        outcomes,
        report: BatchReport,
        stats: Optional[SuperviseStats] = None,
        resumed: int = 0,
    ) -> None:
        """Fold chunk telemetry into the fleet registry + run history.

        Regime classification always lands on the report (it is part of
        the result); registry writes honor the global metrics flag, and
        the history append happens whenever this runtime carries a
        :class:`RunHistory`.  Telemetry failures never fail the launch.
        """
        from ..observe.regime import classify_regime, record_regime

        attributions = []
        try:
            from ..observe.attribution import attribute_launch

            for group_result in report.results:
                attributions.append(
                    attribute_launch(
                        report.params, group_result.launch, label=group_result.op
                    )
                )
            report.regimes = [classify_regime(a) for a in attributions]
        except (ValueError, KeyError, AttributeError) as exc:
            # Attribution is best-effort decoration, but a launch losing
            # its regimes must be *visible*, not silently blank.
            attributions = []
            _metrics.counter_inc(
                "repro_attribution_errors_total",
                help="Launches whose model attribution failed.",
                error=type(exc).__name__,
            )
            tracer = current_tracer()
            if tracer is not None:
                tracer.instant(
                    "observe.attribution_error",
                    "observe",
                    error=type(exc).__name__,
                    detail=str(exc)[:200],
                )

        if _metrics.metrics_enabled():
            registry = _metrics.default_registry()
            # Worker registries fold in submission order -- the same
            # fold the inline path takes, so serial == sharded totals.
            for outcome in outcomes:
                if outcome.metrics is not None:
                    registry.merge(outcome.metrics)
            registry.inc(
                "repro_runtime_launches_total",
                help="Batch launches by execution mode.",
                mode=report.mode,
            )
            if report.mode == "serial-fallback":
                registry.inc(
                    "repro_runtime_serial_fallback_total",
                    help="Launches degraded from the pool to in-process.",
                )
            # Recovery events only: a clean launch adds nothing here, so
            # the failure-free path's metric totals are exactly the
            # pre-resilience ones.
            if stats is not None:
                for kind, args in stats.events:
                    if kind == "retry":
                        registry.inc(
                            "repro_chunk_retries_total",
                            help="Chunk attempts retried, by op and reason.",
                            op=args.get("op", ""),
                            reason=args.get("reason", ""),
                        )
                    elif kind == "timeout":
                        registry.inc(
                            "repro_chunk_timeouts_total",
                            help="Chunk attempts cancelled at their deadline.",
                            op=args.get("op", ""),
                        )
                    elif kind == "inline":
                        registry.inc(
                            "repro_chunk_inline_total",
                            help="Chunks rescued inline after pool retries.",
                            op=args.get("op", ""),
                        )
                    elif kind == "rebuild":
                        registry.inc(
                            "repro_pool_rebuilds_total",
                            help="Worker pools torn down and rebuilt.",
                            reason=args.get("reason", ""),
                        )
            if resumed:
                registry.inc(
                    "repro_resume_chunks_skipped_total",
                    resumed,
                    help="Chunks restored from a checkpoint journal.",
                )
            for failure in report.failures:
                registry.inc(
                    "repro_problem_failures_total",
                    help="Problems quarantined for numerical breakdown.",
                    op=failure.op,
                    reason=failure.reason,
                )
            dropped = sum(o.dropped for o in outcomes)
            if dropped:
                registry.inc(
                    "repro_trace_dropped_events_total",
                    dropped,
                    help="Worker trace events lost to ring-buffer overflow.",
                )
            registry.set(
                "repro_runtime_workers",
                report.workers,
                help="Pool size of the most recent launch.",
            )
            registry.set(
                "repro_runtime_wall_seconds",
                report.wall_s,
                help="Wall time of the most recent launch.",
            )
            for chunk, outcome in zip(chunks, outcomes):
                op = batch.groups[chunk.group].op
                registry.inc(
                    "repro_runtime_chunks_total",
                    help="Chunks executed, by op/mode/worker pid.",
                    op=op,
                    mode=report.mode,
                    worker=outcome.pid,
                )
                registry.observe(
                    "repro_chunk_wall_seconds",
                    outcome.wall_s,
                    help="Per-chunk kernel wall time.",
                    op=op,
                )
                registry.observe(
                    "repro_chunk_queue_wait_seconds",
                    outcome.queue_wait_s,
                    help="Per-chunk time between submission and execution.",
                    op=op,
                )
                registry.inc(
                    "repro_chunk_problems_total",
                    chunk.problems,
                    help="Problems executed per chunk, by op and shard.",
                    op=op,
                    shard=chunk.index,
                )
            for group_result, group in zip(report.results, batch.groups):
                registry.inc(
                    "repro_runtime_problems_total",
                    group_result.problems,
                    help="Problems factored, by op.",
                    op=group_result.op,
                )
                registry.inc(
                    "repro_runtime_flops_total",
                    group.cost,
                    help="Useful FLOPs executed, by op.",
                    op=group_result.op,
                )
                registry.inc(
                    "repro_runtime_bytes_total",
                    float(group.data.nbytes) * 2.0,
                    help="Operand bytes moved (read + write), by op.",
                    op=group_result.op,
                )
                registry.set(
                    "repro_runtime_gflops",
                    group_result.gflops,
                    help="Simulated throughput of the latest launch, by op.",
                    op=group_result.op,
                )
            for classification in report.regimes:
                record_regime(
                    classification, registry=registry, op=classification.label
                )
            if report.profile is not None:
                for phase, seconds in report.profile.phases.items():
                    registry.observe(
                        "repro_batch_phase_seconds",
                        max(0.0, seconds),
                        help="Batch latency decomposition, by phase.",
                        phase=phase,
                    )
                registry.set(
                    "repro_batch_straggler_index",
                    report.profile.straggler_index,
                    help="Max/median chunk compute time of the latest launch.",
                )
                registry.set(
                    "repro_batch_queue_share",
                    report.profile.queue_share,
                    help="Share of chunk time spent queued, latest launch.",
                )

        if self.history is not None:
            try:
                self.history.append(
                    run_record(
                        report.summary(),
                        regimes=report.regimes,
                        attribution=[
                            {
                                "label": a.label,
                                "residual_total": a.residual_total,
                                "measured_total": a.measured_total,
                                "eq_total": a.eq_total,
                            }
                            for a in attributions
                        ],
                        device=self.device.name,
                        # The profiler scope joins this record to its
                        # trace tree, log lines, and any alert raised
                        # over it -- one id across all three.
                        span_id=(
                            report.profile.scope
                            if report.profile is not None
                            else None
                        ),
                        profile=(
                            report.profile.summary()
                            if report.profile is not None
                            else None
                        ),
                    )
                )
            except OSError:
                pass

    def _run_pool(
        self,
        entries: list,
        record=None,
        nchunks: Optional[int] = None,
        profile=None,
    ) -> tuple[dict[int, ChunkOutcome], SuperviseStats]:
        """Supervised pool execution of ``(index, payload)`` entries."""
        context = multiprocessing.get_context(self.start_method)
        if nchunks is None:
            nchunks = max(index for index, _ in entries) + 1
        return supervise_pool(
            entries,
            execute=_execute_chunk,
            mp_context=context,
            max_workers=self.workers,
            policy=self.retry_policy,
            faults=self.faults,
            nchunks=nchunks,
            on_complete=record,
            profile=profile,
        )

    def _run_pool_plain(self, payloads: list, profile=None) -> list[ChunkOutcome]:
        """The unsupervised pool (``resilience=False``): fail-together."""
        context = multiprocessing.get_context(self.start_method)
        max_workers = min(self.workers, len(payloads))
        spans = ChunkSpans(profile)
        done_at: dict = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=context
        ) as pool:
            futures = []
            submitted_at = []
            for index, payload in enumerate(payloads):
                submit_start = spans.now()
                future = pool.submit(
                    _execute_chunk,
                    *payload,
                    chunk_index=index,
                    nchunks=len(payloads),
                    checksum=False,
                )
                submitted_at.append(time.perf_counter())
                spans.submit(
                    index, submit_start, spans.now(), attempt=0, op=payload[0]
                )
                future.add_done_callback(
                    lambda f: done_at.setdefault(id(f), time.perf_counter())
                )
                futures.append(future)
            # Collect in submission order; completion order is irrelevant.
            outcomes = [future.result() for future in futures]
        for index, (future, submit_ts, outcome) in enumerate(
            zip(futures, submitted_at, outcomes)
        ):
            done_ts = done_at.get(id(future), submit_ts)
            turnaround = done_ts - submit_ts
            # Time not spent executing the kernel = pool queueing (plus
            # pickling, which rides along -- both are scheduling cost).
            outcome.queue_wait_s = max(0.0, turnaround - outcome.wall_s)
            if profile is not None:
                spans.complete(
                    index,
                    profile.at(done_ts),
                    op=payloads[index][0],
                    attempts=1,
                    worker=getattr(outcome, "pid", 0),
                )
        return outcomes


def run_batched(
    op: str,
    problems: Union[np.ndarray, Sequence[np.ndarray]],
    runtime: Optional[BatchRuntime] = None,
    workers: Optional[int] = None,
    **kernel_kwargs,
) -> BatchReport:
    """Factor ``problems`` under kernel ``op`` on a sharded runtime.

    ``problems`` is one ``(batch, m, n)`` array or a sequence of them
    (mixed sizes -> one group each).  Supply a configured ``runtime`` to
    reuse its pool settings and caches, or just a ``workers`` count for
    a throwaway runtime.
    """
    if runtime is None:
        runtime = BatchRuntime(workers=workers)
    elif workers is not None:
        raise ValueError("pass either runtime or workers, not both")
    if isinstance(problems, np.ndarray):
        batch = ProblemBatch.single(op, problems)
    else:
        batch = ProblemBatch.mixed(op, list(problems))
    return runtime.run(batch, **kernel_kwargs)
