"""Persistent calibration and dispatch caches.

Two decision products are pure functions of the device and the code
version, yet the stack recomputed them on every run:

* :func:`repro.microbench.calibrate` -- the Table-IV microbenchmark
  sweep.  :class:`CalibrationCache` stores the resulting
  :class:`~repro.model.parameters.ModelParameters` keyed by a hash of
  the full :class:`~repro.gpu.device.DeviceSpec`, so calibration drops
  from every-run to once-per-device.
* :func:`repro.approaches.rank_approaches` -- the Figure-10 ranking.
  :class:`DispatchCache` memoizes the ranked ``(approach, gflops)``
  decision per ``(op, m, n, batch, complex, device)`` key, in memory and
  on disk.

Cache files live under :func:`cache_dir` (``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``).  Every file carries
a version stamp (library version + schema revision) and the device
fingerprint; a mismatch on either -- a code upgrade or a changed device
spec -- invalidates the entry rather than serving stale parameters.  All
writes go through the atomic write-temp-then-rename helper, so parallel
runs and killed jobs can never leave a truncated cache behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from .. import __version__
from ..gpu.device import QUADRO_6000, DeviceSpec
from ..model.parameters import ModelParameters
from ..observe.export import atomic_write_text
from ..observe.metrics import counter_inc

__all__ = [
    "CACHE_SCHEMA",
    "CalibrationCache",
    "DispatchCache",
    "cache_dir",
    "device_fingerprint",
    "params_fingerprint",
]

#: Bump when the on-disk layout of either cache changes.
#: 2: dispatch keys carry the ModelParameters content hash, so a
#: recalibration invalidates rankings computed under old latencies.
CACHE_SCHEMA = 2

#: The six measured Table-IV fields persisted per device.
_PARAM_FIELDS = (
    "alpha_glb",
    "global_bandwidth",
    "alpha_sh",
    "shared_bandwidth",
    "alpha_sync",
    "gamma",
)


def cache_dir() -> Path:
    """Root directory for persistent caches (not created until written)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def device_fingerprint(device: DeviceSpec) -> str:
    """Stable hash of every architectural field of ``device``.

    Any change to the spec -- clocks, cache sizes, latency constants --
    produces a new fingerprint and therefore a cold cache for it.
    """
    payload = json.dumps(dataclasses.asdict(device), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def params_fingerprint(params: ModelParameters) -> str:
    """Stable hash of the measured Table-IV values (plus the device).

    The dispatch ranking is a function of the *latencies*, not just the
    device: hand-edited parameters or a recalibration under a changed
    microbenchmark must produce a different fingerprint so stale
    ``rank_approaches`` memos die with the numbers that produced them.
    """
    payload = json.dumps(
        {
            "device": device_fingerprint(params.device),
            **{field: getattr(params, field) for field in _PARAM_FIELDS},
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _version_stamp() -> str:
    return f"{__version__}/schema{CACHE_SCHEMA}"


class _JsonStore:
    """One atomic JSON document: load-validate, replace-on-write."""

    def __init__(self, path: Path, cache: str = "") -> None:
        self.path = path
        #: Label for ``repro_cache_corrupt_total`` when the file is
        #: undecodable (empty string for unlabeled ad-hoc stores).
        self.cache = cache

    def load(self) -> Optional[dict]:
        return self.load_status()[0]

    def load_status(self) -> tuple[Optional[dict], str]:
        """``(doc, outcome)`` where outcome is ``hit``/``miss``/``stale``.

        A *miss* is an absent file (cold cache) **or** an undecodable
        one -- truncated JSON, binary garbage -- which additionally
        counts into ``repro_cache_corrupt_total``; *stale* is a valid
        document written by a different library version / schema
        revision.  No outcome ever raises to the caller.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return None, "miss"
        except UnicodeDecodeError:
            return None, self._corrupt()
        try:
            doc = json.loads(text)
        except ValueError:
            return None, self._corrupt()
        if not isinstance(doc, dict) or doc.get("version") != _version_stamp():
            return None, "stale"
        return doc, "hit"

    def _corrupt(self) -> str:
        counter_inc("repro_cache_corrupt_total", cache=self.cache)
        return "miss"

    def store(self, body: dict) -> None:
        doc = {"version": _version_stamp(), **body}
        try:
            atomic_write_text(
                self.path, json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
        except OSError:
            # A read-only cache directory degrades to memoization-only.
            pass

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


class CalibrationCache:
    """Persistent ``DeviceSpec -> ModelParameters`` store.

    One file per device fingerprint, so concurrent runs on different
    simulated devices never contend on a shared document.
    """

    def __init__(self, directory: Optional[Path | str] = None) -> None:
        self.directory = Path(directory) if directory else cache_dir()

    def _store(self, device: DeviceSpec) -> tuple[_JsonStore, str]:
        fp = device_fingerprint(device)
        path = self.directory / f"calibration-{fp[:16]}.json"
        return _JsonStore(path, cache="calibration"), fp

    def path_for(self, device: DeviceSpec) -> Path:
        """Where this device's calibration lands on disk."""
        return self._store(device)[0].path

    def load(self, device: DeviceSpec) -> Optional[ModelParameters]:
        """The cached Table-IV parameters, or ``None`` on a cold/stale cache."""
        store, fp = self._store(device)
        doc, outcome = store.load_status()
        params = doc.get("parameters") if doc else None
        values = None
        if doc is not None:
            if doc.get("device_fingerprint") != fp or not isinstance(params, dict):
                outcome = "stale"
            else:
                try:
                    values = {
                        field: float(params[field]) for field in _PARAM_FIELDS
                    }
                except (KeyError, TypeError, ValueError):
                    outcome = "stale"
        counter_inc("repro_cache_requests_total", cache="calibration", outcome=outcome)
        if values is None:
            return None
        return ModelParameters(device=device, **values)

    def store(self, device: DeviceSpec, params: ModelParameters) -> Path:
        """Persist ``params`` for ``device``; returns the file written."""
        store, fp = self._store(device)
        store.store(
            {
                "device_fingerprint": fp,
                "device_name": device.name,
                "parameters": {
                    field: getattr(params, field) for field in _PARAM_FIELDS
                },
            }
        )
        counter_inc("repro_cache_writes_total", cache="calibration")
        return store.path

    def clear(self, device: DeviceSpec) -> None:
        self._store(device)[0].clear()


class DispatchCache:
    """Memoized ``rank_approaches`` decisions for one device.

    Entries are plain ``[[approach_name, gflops], ...]`` lists keyed by
    the workload tuple; :func:`repro.approaches.rank_approaches` turns
    them back into :class:`~repro.approaches.dispatch.Ranking` objects by
    matching names against its candidate set (an unknown name is treated
    as a miss, so a cache written by a different approach roster can
    never inject a wrong winner).
    """

    def __init__(
        self,
        device: DeviceSpec = QUADRO_6000,
        directory: Optional[Path | str] = None,
        persistent: bool = True,
    ) -> None:
        self.device = device
        self.directory = Path(directory) if directory else cache_dir()
        self.persistent = persistent
        self._fingerprint = device_fingerprint(device)
        self._disk = _JsonStore(
            self.directory / f"dispatch-{self._fingerprint[:16]}.json",
            cache="dispatch",
        )
        self._memory: Optional[dict] = None
        self._params_fp = "unbound"
        self.hits = 0
        self.misses = 0
        self.stale = 0

    @property
    def path(self) -> Path:
        return self._disk.path

    def bind_params(self, params: Optional[ModelParameters]) -> None:
        """Scope subsequent keys to a calibration's content hash.

        Rankings memoized under one set of Table-IV latencies must not be
        served under another: after (re)calibration the runtime binds the
        resulting parameters here, and every key minted before the bind
        (or under different values) simply stops matching.  ``None``
        resets to the unbound scope.
        """
        if params is None:
            self._params_fp = "unbound"
        else:
            self._params_fp = params_fingerprint(params)[:12]

    def key(self, work) -> str:
        """The ``(op, m, n, batch, complex, device, params)`` key for ``work``."""
        return (
            f"{work.kind}:{work.m}x{work.n}:b{work.batch}"
            f":c{int(work.complex_dtype)}:{self._fingerprint[:16]}"
            f":p{self._params_fp}"
        )

    def _entries(self) -> dict:
        if self._memory is None:
            entries: dict = {}
            if self.persistent:
                doc = self._disk.load()
                if doc and doc.get("device_fingerprint") == self._fingerprint:
                    loaded = doc.get("entries")
                    if isinstance(loaded, dict):
                        entries = dict(loaded)
            self._memory = entries
        return self._memory

    def lookup(self, work) -> Optional[list[tuple[str, float]]]:
        """Cached ``(approach name, gflops)`` ranking, or ``None``."""
        entry = self._entries().get(self.key(work))
        if entry is None:
            self.misses += 1
            counter_inc("repro_cache_requests_total", cache="dispatch", outcome="miss")
            return None
        try:
            decoded = [(str(name), float(gflops)) for name, gflops in entry]
        except (TypeError, ValueError):
            # Present but undecodable: stale by content, miss by effect.
            self.misses += 1
            self.stale += 1
            counter_inc("repro_cache_requests_total", cache="dispatch", outcome="stale")
            return None
        self.hits += 1
        counter_inc("repro_cache_requests_total", cache="dispatch", outcome="hit")
        return decoded

    def store(self, work, ranking: list[tuple[str, float]]) -> None:
        """Record a ranking and persist the cache (when persistent)."""
        entries = self._entries()
        entries[self.key(work)] = [[name, gflops] for name, gflops in ranking]
        counter_inc("repro_cache_writes_total", cache="dispatch")
        if self.persistent:
            self._disk.store(
                {
                    "device_fingerprint": self._fingerprint,
                    "device_name": self.device.name,
                    "entries": entries,
                }
            )

    def clear(self) -> None:
        self._memory = {}
        self._disk.clear()

    def __len__(self) -> int:
        return len(self._entries())
