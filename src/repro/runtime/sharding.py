"""Problem batches and size-aware shard planning.

A :class:`ProblemBatch` is the unit of work the runtime executes: one or
more *groups*, each a dense ``(batch, m, n)`` array to be factored by a
named device kernel.  Mixed problem sizes live in separate groups (the
device kernels vectorize over a homogeneous batch), and the planner
splits every group into contiguous *chunks* whose estimated cost is
balanced -- a 4096-problem 56x56 group shards fine while a 4096-problem
8x8 group stays whole, so mixed-``n`` batches keep every worker busy.

Chunk boundaries depend only on the batch and the cost target, **never**
on the worker count: the same plan executed serially, or by 2 or 4
workers, runs the identical sequence of kernel launches, which is what
makes sharded results bitwise-identical to serial and merged counters
exactly equal (see :mod:`repro.runtime.merge`).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from ..errors import ShapeError
from ..model.flops import (
    gauss_jordan_flops,
    least_squares_flops,
    lu_flops,
    qr_flops,
    qr_flops_complex,
)

__all__ = [
    "DEFAULT_CHUNK_COST",
    "Chunk",
    "ProblemBatch",
    "ProblemGroup",
    "plan_chunks",
    "problem_cost",
]

#: Default per-chunk cost budget, in algorithmic FLOPs.  Chosen so the
#: headline 4096-problem 56x56 batch splits into ~16 chunks (good balance
#: on 4 workers) while small-n batches stay in one launch, where the
#: Python per-launch overhead would otherwise dominate.
DEFAULT_CHUNK_COST = 32e6


def problem_cost(op: str, m: int, n: int, complex_dtype: bool = False) -> float:
    """Estimated FLOPs for one ``m x n`` problem under kernel ``op``."""
    if op == "lu":
        return lu_flops(n)
    if op == "qr":
        if complex_dtype:
            return qr_flops_complex(m, n)
        return qr_flops(m, n)
    if op == "gauss_jordan":
        return gauss_jordan_flops(n)
    if op == "least_squares":
        return least_squares_flops(m, n)
    if op == "cholesky":
        return lu_flops(n) / 2.0
    # Unknown kernels: a generic dense O(m n^2) factorization estimate.
    return float(m) * n * n


@dataclasses.dataclass(frozen=True)
class ProblemGroup:
    """One homogeneous sub-batch: ``data[batch, m, n]`` under kernel ``op``."""

    op: str
    data: np.ndarray

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.ndim == 2:
            data = data[None]
        if data.ndim != 3:
            raise ShapeError(f"expected (batch, m, n) input, got {data.shape}")
        object.__setattr__(self, "data", data)

    @property
    def batch(self) -> int:
        return self.data.shape[0]

    @property
    def m(self) -> int:
        return self.data.shape[1]

    @property
    def n(self) -> int:
        return self.data.shape[2]

    @property
    def cost_per_problem(self) -> float:
        return problem_cost(self.op, self.m, self.n, bool(np.iscomplexobj(self.data)))

    @property
    def cost(self) -> float:
        return self.cost_per_problem * self.batch


class ProblemBatch:
    """An ordered collection of :class:`ProblemGroup` to execute together."""

    def __init__(self, groups: Iterable[ProblemGroup]) -> None:
        self.groups: tuple[ProblemGroup, ...] = tuple(groups)
        if not self.groups:
            raise ValueError("a ProblemBatch needs at least one group")

    @classmethod
    def single(cls, op: str, data: np.ndarray) -> "ProblemBatch":
        """A batch holding one homogeneous group."""
        return cls([ProblemGroup(op=op, data=data)])

    @classmethod
    def mixed(cls, op: str, arrays: Sequence[np.ndarray]) -> "ProblemBatch":
        """One group per array, all under the same kernel ``op``."""
        return cls([ProblemGroup(op=op, data=a) for a in arrays])

    @property
    def total_problems(self) -> int:
        return sum(g.batch for g in self.groups)

    @property
    def total_cost(self) -> float:
        return sum(g.cost for g in self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shapes = ", ".join(f"{g.op}[{g.batch}x{g.m}x{g.n}]" for g in self.groups)
        return f"ProblemBatch({shapes})"


@dataclasses.dataclass(frozen=True)
class Chunk:
    """A contiguous slice ``[start, stop)`` of one group -- one launch."""

    index: int
    group: int
    start: int
    stop: int
    cost: float

    @property
    def problems(self) -> int:
        return self.stop - self.start


def plan_chunks(
    batch: ProblemBatch, chunk_cost: float = DEFAULT_CHUNK_COST
) -> list[Chunk]:
    """Split every group into contiguous chunks of ~``chunk_cost`` FLOPs.

    Deterministic and worker-count independent: chunks are emitted in
    group order, and within a group each chunk takes as many problems as
    fit the budget (always at least one).  Expensive groups therefore
    shard finely while cheap groups stay whole -- the "size-aware" part
    of the balancing; the executor's dynamic scheduling does the rest.
    """
    if chunk_cost <= 0:
        raise ValueError("chunk_cost must be positive")
    chunks: list[Chunk] = []
    for gi, group in enumerate(batch.groups):
        per_problem = max(group.cost_per_problem, 1.0)
        stride = max(1, int(chunk_cost // per_problem))
        for start in range(0, group.batch, stride):
            stop = min(start + stride, group.batch)
            chunks.append(
                Chunk(
                    index=len(chunks),
                    group=gi,
                    start=start,
                    stop=stop,
                    cost=per_problem * (stop - start),
                )
            )
    return chunks
