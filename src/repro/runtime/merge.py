"""Deterministic merge of per-chunk results into one launch report.

Workers return :class:`ChunkOutcome` records in whatever order they
finish; the merge consumes them **in submission (chunk-index) order**
regardless, so every derived artifact -- concatenated outputs, folded
counter registries, replayed trace events -- is identical whether the
plan ran serially, on 2 workers, or on 4.  Counter folding is plain
addition in that fixed order (see
:meth:`repro.observe.counters.CounterRegistry.merge`), which makes the
merged totals *exactly* equal to the serial path's, not just close.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..gpu.simt import LaunchResult
from ..model.parameters import ModelParameters
from ..observe.counters import CounterRegistry
from ..observe.metrics import MetricsRegistry
from ..observe.tracer import Event
from .sharding import Chunk, ProblemBatch

__all__ = ["BatchReport", "ChunkOutcome", "GroupResult", "merge_outcomes"]


@dataclasses.dataclass
class ChunkOutcome:
    """Everything one chunk execution ships back to the launch process."""

    output: np.ndarray
    extra: Optional[np.ndarray]
    launch: LaunchResult
    wall_s: float
    #: Worker-local trace events (empty when the launch was untraced).
    events: list[Event]
    #: Worker-local tracer registry (None when untraced).
    registry: Optional[CounterRegistry]
    #: Populated by the executor with the worker's pid.
    pid: int = 0
    #: Trace events the worker's ring buffer overflowed past.
    dropped: int = 0
    #: Worker-local fleet metrics (None when metrics are disabled);
    #: folded into the launch registry in submission order.
    metrics: Optional[MetricsRegistry] = None
    #: Seconds between submission and the worker picking the chunk up
    #: (0 for inline execution); measured by the executor.
    queue_wait_s: float = 0.0
    #: Content hash of ``output``/``extra`` computed worker-side before
    #: the outcome crossed the process boundary; the supervisor verifies
    #: it to catch transport corruption (``None`` when unsupervised).
    checksum: Optional[str] = None
    #: The worker tracer's clock origin (``None`` when untraced) -- the
    #: handshake :meth:`repro.observe.tracer.Tracer.ingest` uses to
    #: align worker event timestamps onto the launch timeline.
    clock: Optional[object] = None


@dataclasses.dataclass
class GroupResult:
    """Merged result of one :class:`~repro.runtime.sharding.ProblemGroup`."""

    op: str
    output: np.ndarray
    extra: Optional[np.ndarray]
    #: Timing of one block -- identical for every chunk of the group
    #: (branch-free kernels account cycles once per block), so the first
    #: chunk's launch speaks for the whole group.
    launch: LaunchResult
    problems: int
    chunks: int

    @property
    def gflops(self) -> float:
        """Simulated whole-chip throughput over this group's batch."""
        return self.launch.throughput_gflops(self.problems)


@dataclasses.dataclass
class BatchReport:
    """One sharded (or serial) batch execution, merged."""

    results: list[GroupResult]
    #: Engine launch counters folded across every chunk in submission
    #: order -- exactly the serial path's totals.
    counters: CounterRegistry
    chunks: int
    workers: int
    #: ``"process"``, ``"serial"``, ``"serial-fallback"`` (a worker
    #: failure degraded the launch to in-process execution), or
    #: ``"resumed"`` (every chunk came back from a checkpoint journal).
    mode: str
    wall_s: float
    params: Optional[ModelParameters] = None
    #: Per-group :class:`~repro.observe.regime.RegimeClassification`
    #: verdicts (populated by the runtime when counters are available).
    regimes: list = dataclasses.field(default_factory=list)
    #: Quarantined problems: per-problem
    #: :class:`~repro.resilience.quarantine.ProblemFailure` records for
    #: numerical breakdowns (zero pivot, non-PSD input, non-finite
    #: output).  Their output slots are NaN-masked; the batch completes.
    failures: list = dataclasses.field(default_factory=list)
    #: Latency decomposition of this launch
    #: (:class:`~repro.observe.profile.BatchProfile`); populated by the
    #: runtime when the launch ran under an active tracer, else ``None``.
    profile: Optional[object] = None

    @property
    def problems(self) -> int:
        return sum(g.problems for g in self.results)

    @property
    def output(self) -> np.ndarray:
        """The single-group output (convenience for the common case)."""
        if len(self.results) != 1:
            raise ValueError(f"report holds {len(self.results)} groups; use .results")
        return self.results[0].output

    @property
    def extra(self) -> Optional[np.ndarray]:
        if len(self.results) != 1:
            raise ValueError(f"report holds {len(self.results)} groups; use .results")
        return self.results[0].extra

    def summary(self) -> dict:
        """Flat record for the metrics exporter."""
        return {
            "problems": self.problems,
            "chunks": self.chunks,
            "workers": self.workers,
            "mode": self.mode,
            "wall_s": self.wall_s,
            "failures": len(self.failures),
            "groups": [
                {
                    "op": g.op,
                    "problems": g.problems,
                    "chunks": g.chunks,
                    "gflops": g.gflops,
                }
                for g in self.results
            ],
        }


def merge_outcomes(
    batch: ProblemBatch,
    chunks: Sequence[Chunk],
    outcomes: Sequence[ChunkOutcome],
    workers: int,
    mode: str,
    wall_s: float,
) -> BatchReport:
    """Fold per-chunk outcomes into a :class:`BatchReport`.

    ``chunks`` and ``outcomes`` are parallel sequences in submission
    order; chunk slices of one group are contiguous and ordered, so a
    plain concatenation restores the group's batch axis bit-for-bit.
    """
    if len(chunks) != len(outcomes):
        raise ValueError(f"{len(chunks)} chunks but {len(outcomes)} outcomes")
    counters = CounterRegistry()
    per_group: dict[int, list[tuple[Chunk, ChunkOutcome]]] = {}
    for chunk, outcome in zip(chunks, outcomes):
        if outcome.launch.counters is not None:
            counters.merge(outcome.launch.counters)
        per_group.setdefault(chunk.group, []).append((chunk, outcome))

    results: list[GroupResult] = []
    for gi, group in enumerate(batch.groups):
        members = per_group.get(gi, [])
        if not members:
            raise ValueError(f"group {gi} received no chunk outcomes")
        covered = sum(c.problems for c, _ in members)
        if covered != group.batch:
            raise ValueError(f"group {gi} covered {covered}/{group.batch} problems")
        outputs = [o.output for _, o in members]
        extras = [o.extra for _, o in members]
        results.append(
            GroupResult(
                op=group.op,
                output=outputs[0] if len(outputs) == 1 else np.concatenate(outputs),
                extra=_merge_extras(extras),
                launch=members[0][1].launch,
                problems=group.batch,
                chunks=len(members),
            )
        )
    return BatchReport(
        results=results,
        counters=counters,
        chunks=len(chunks),
        workers=workers,
        mode=mode,
        wall_s=wall_s,
    )


def _merge_extras(extras: list[Optional[np.ndarray]]) -> Optional[np.ndarray]:
    if any(e is None for e in extras):
        return None
    if len(extras) == 1:
        return extras[0]
    return np.concatenate(extras)
