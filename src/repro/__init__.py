"""repro: reproduction of Anderson, Sheffield & Keutzer (IPDPS 2012),
"A Predictive Model for Solving Small Linear Algebra Problems in GPU
Registers".

Public API re-exports the most commonly used entry points; see the
subpackages for the full surface:

* :mod:`repro.gpu`        -- simulated GF100 substrate
* :mod:`repro.microbench` -- Section II microbenchmarks
* :mod:`repro.model`      -- the paper's analytical performance model
* :mod:`repro.layouts`    -- distributed register-file data layouts
* :mod:`repro.kernels`    -- batched numerics + device kernels
* :mod:`repro.approaches` -- per-thread / per-block / hybrid / CPU solvers
* :mod:`repro.tiled`      -- tiled QR for problems too big for one block
* :mod:`repro.stap`       -- space-time adaptive processing application
* :mod:`repro.reporting`  -- experiment registry and table/series output
"""

__version__ = "1.0.0"

from .gpu import QUADRO_6000, DeviceSpec

__all__ = ["QUADRO_6000", "DeviceSpec", "__version__"]
