"""The paper's analytical GPU performance model and baselines.

* :mod:`.parameters`      -- Table IV parameter set
* :mod:`.logp`            -- Equations 1 and 2
* :mod:`.flops`           -- Section III FLOP conventions
* :mod:`.intensity`       -- arithmetic intensity + bandwidth roofline
* :mod:`.block_config`    -- launch-shape rule (64 vs 256 threads)
* :mod:`.per_thread_model`-- Section IV prediction (Figure 4 dashed lines)
* :mod:`.per_block_model` -- Table VI estimates (Figures 8/9 dashed lines)
* :mod:`.cpu_model`       -- MKL-on-i7-2600 baseline
* :mod:`.hybrid_model`    -- MAGMA-style hybrid CPU+GPU baseline
* :mod:`.streams_model`   -- CUBLAS + streams composition (Section VI-C)
"""

from .accuracy import AccuracyPoint, AccuracyReport, model_accuracy
from .block_config import BlockConfig, block_config
from .cpu_model import I7_2600, CpuModel, CpuSpec, MklKernelModel
from .flops import (
    gauss_jordan_flops,
    least_squares_flops,
    lu_flops,
    matmul_flops,
    matrix_bytes,
    matrix_words,
    qr_flops,
    qr_flops_complex,
)
from .hybrid_model import HybridConfig, HybridModel
from .intensity import arithmetic_intensity, factorization_intensity, roofline_gflops
from .logp import GlobalPhase, LocalPhase, global_time, local_time, total_time
from .parameters import ModelParameters
from .per_block_model import (
    ColumnEstimate,
    OpEstimate,
    PerBlockPrediction,
    estimate_lu_column,
    estimate_qr_column,
    panel_breakdown,
    predict_per_block,
)
from .per_thread_model import PerThreadPrediction, predict_per_thread
from .streams_model import StreamsConfig, StreamsModel
from .whatif import Sensitivity, scale_parameters, whatif

__all__ = [
    "AccuracyPoint",
    "AccuracyReport",
    "model_accuracy",
    "BlockConfig",
    "block_config",
    "CpuModel",
    "CpuSpec",
    "I7_2600",
    "MklKernelModel",
    "gauss_jordan_flops",
    "least_squares_flops",
    "lu_flops",
    "matmul_flops",
    "matrix_bytes",
    "matrix_words",
    "qr_flops",
    "qr_flops_complex",
    "HybridConfig",
    "HybridModel",
    "arithmetic_intensity",
    "factorization_intensity",
    "roofline_gflops",
    "GlobalPhase",
    "LocalPhase",
    "global_time",
    "local_time",
    "total_time",
    "ModelParameters",
    "ColumnEstimate",
    "OpEstimate",
    "PerBlockPrediction",
    "estimate_lu_column",
    "estimate_qr_column",
    "panel_breakdown",
    "predict_per_block",
    "PerThreadPrediction",
    "predict_per_thread",
    "StreamsConfig",
    "StreamsModel",
    "Sensitivity",
    "scale_parameters",
    "whatif",
]
