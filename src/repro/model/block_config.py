"""Launch-shape selection for the one-problem-per-block approach.

The 2D cyclic layout requires a perfect-square thread count (Section V:
"the number of threads must be a perfect square").  The paper uses 64
threads (an 8x8 grid) for matrices narrower than 80 columns and 256
threads (16x16) from 80 up -- the switch is the sharp performance step in
Figure 9.  :func:`block_config` encodes that rule so the analytic model,
the device kernels, and the benchmarks all agree on the launch shape.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import LaunchConfigurationError
from ..gpu.device import DeviceSpec
from ..gpu.registers import registers_for_matrix

__all__ = ["BlockConfig", "block_config"]

#: Column count at which the paper switches from 64 to 256 threads.
THREAD_SWITCH_AT = 80


@dataclasses.dataclass(frozen=True)
class BlockConfig:
    """One-problem-per-block launch shape for an m x n matrix."""

    m: int
    n: int
    threads: int
    complex_dtype: bool = False

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise LaunchConfigurationError("matrix dimensions must be positive")
        root = math.isqrt(self.threads)
        if root * root != self.threads:
            raise LaunchConfigurationError(
                f"2D cyclic layout needs a square thread count, got {self.threads}"
            )

    @property
    def rdim(self) -> int:
        """sqrt(p): the side of the thread grid (RDIM in Listing 4)."""
        return math.isqrt(self.threads)

    @property
    def hreg(self) -> int:
        """Rows of the per-thread register tile (HREG)."""
        return -(-self.m // self.rdim)

    @property
    def wreg(self) -> int:
        """Columns of the per-thread register tile (WREG)."""
        return -(-self.n // self.rdim)

    @property
    def registers_per_thread(self) -> int:
        return registers_for_matrix(
            self.hreg, self.wreg, complex_dtype=self.complex_dtype
        )

    @property
    def panels(self) -> int:
        """Column panels: each panel holds sqrt(p) columns."""
        return -(-self.n // self.rdim)

    def column_tile_rows(self, column: int) -> int:
        """N for ``column``: per-thread rows of the active column.

        The active part of the matrix shrinks by one row-panel and one
        column-panel per panel, so N = HREG - (panel index), floored at 1.
        """
        if not 0 <= column < self.n:
            raise ValueError(f"column {column} out of range for n={self.n}")
        return max(1, self.hreg - column // self.rdim)


def block_config(
    m: int, n: int, complex_dtype: bool = False, device: DeviceSpec | None = None
) -> BlockConfig:
    """The paper's launch-shape rule for an m x n problem."""
    threads = 64 if n < THREAD_SWITCH_AT else 256
    return BlockConfig(m=m, n=n, threads=threads, complex_dtype=complex_dtype)
