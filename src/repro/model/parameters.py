"""Model parameters (the paper's Table IV).

The LogP-style model of Equations 1 and 2 needs six numbers:

======================  =====================================  ============
symbol                  meaning                                Quadro 6000
======================  =====================================  ============
``alpha_glb``           global (DRAM) latency                  570 cycles
``beta_glb``            inverse global bandwidth               1/108 s/GB
``alpha_sh``            shared-memory latency                  27 cycles
``beta_sh``             inverse shared bandwidth (aggregate)   1/880 s/GB
``alpha_sync``          sync of 64 threads in a SIMT unit      46 cycles
``gamma``               FP pipeline latency                    18 cycles
======================  =====================================  ============

Parameters are *measured*, not assumed: :func:`repro.microbench.calibrate`
recovers them by running the Section-II microbenchmarks against the
simulated device, exactly as the paper recovers them from silicon.
:func:`ModelParameters.paper_table_iv` provides the published values for
comparison.
"""

from __future__ import annotations

import dataclasses

from ..gpu.device import QUADRO_6000, DeviceSpec
from ..gpu.instructions import InstructionCosts, costs_for

__all__ = ["ModelParameters"]


@dataclasses.dataclass(frozen=True)
class ModelParameters:
    """Measured parameters of the GPU performance model (Table IV)."""

    device: DeviceSpec
    #: Global memory latency, cycles.
    alpha_glb: float
    #: Achieved global bandwidth, bytes/second (beta_glb = 1/this).
    global_bandwidth: float
    #: Shared memory latency, cycles (per dependent access).
    alpha_sh: float
    #: Achieved aggregate shared bandwidth, bytes/second.
    shared_bandwidth: float
    #: Synchronization latency for a 64-thread block, cycles.
    alpha_sync: float
    #: FP pipeline latency, cycles per dependent FLOP (FMA = 1).
    gamma: float

    @property
    def beta_glb(self) -> float:
        """Inverse global bandwidth, seconds/byte."""
        return 1.0 / self.global_bandwidth

    @property
    def beta_sh(self) -> float:
        """Inverse aggregate shared bandwidth, seconds/byte."""
        return 1.0 / self.shared_bandwidth

    @property
    def instruction_costs(self) -> InstructionCosts:
        return costs_for(self.device)

    def sync_latency(self, threads: int) -> float:
        """alpha_sync generalized to other block sizes (Figure 2 curve)."""
        return self.device.sync_latency(threads)

    @classmethod
    def paper_table_iv(cls) -> "ModelParameters":
        """The exact values published in Table IV of the paper."""
        return cls(
            device=QUADRO_6000,
            alpha_glb=570.0,
            global_bandwidth=108e9,
            alpha_sh=27.0,
            shared_bandwidth=880e9,
            alpha_sync=46.0,
            gamma=18.0,
        )

    def as_rows(self) -> list[tuple[str, str]]:
        """Human-readable rows in the order Table IV prints them."""
        return [
            ("Global memory latency (alpha_gbl)", f"{self.alpha_glb:.0f} cycles"),
            (
                "Global memory inverse bandwidth (beta_gbl)",
                f"1/{self.global_bandwidth / 1e9:.0f} s/GB",
            ),
            ("Shared memory latency (alpha_sh)", f"{self.alpha_sh:.0f} cycles"),
            (
                "Shared memory inverse bandwidth (beta_sh)",
                f"1/{self.shared_bandwidth / 1e9:.0f} s/GB",
            ),
            (
                "Synchronization of 64 threads in a SIMT (alpha_sync)",
                f"{self.alpha_sync:.0f} cycles",
            ),
            ("Pipeline latency for FP operations (gamma)", f"{self.gamma:.0f} cycles"),
        ]
