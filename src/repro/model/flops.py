"""FLOP counts for each factorization, following the paper's conventions.

Section III gives the counts the paper uses throughout; we keep them
verbatim (including the least-squares expression of Section III-D) so
GFLOPS figures are comparable:

* Gauss-Jordan solve:          ``n^3``
* LU (no pivoting):            ``2/3 n^3``
* Householder QR (real):       ``2 m n^2 - 2/3 n^3``
* Householder QR (complex):    ``8 m n^2 - 8/3 n^3``  (Section VII)
* Least squares via QR:        ``2 m n^2 - 2/3 n^3 + 1/3 n^3``
* Matrix multiply (m,k)x(k,n): ``2 m k n``

Sanity anchor: Section IV's worked example evaluates a 7x7 QR to 457
FLOPs, which is exactly ``2 m n^2 - 2/3 n^3`` at m = n = 7.
"""

from __future__ import annotations

__all__ = [
    "gauss_jordan_flops",
    "lu_flops",
    "qr_flops",
    "qr_flops_complex",
    "least_squares_flops",
    "matmul_flops",
    "matrix_words",
    "matrix_bytes",
]


def _check_dims(m: int, n: int) -> None:
    if m < 1 or n < 1:
        raise ValueError(f"matrix dimensions must be positive, got {m}x{n}")


def gauss_jordan_flops(n: int) -> float:
    """FLOPs to solve ``Ax = b`` by Gauss-Jordan elimination (n^3)."""
    _check_dims(n, n)
    return float(n) ** 3


def lu_flops(n: int) -> float:
    """FLOPs of an unpivoted LU factorization (2/3 n^3)."""
    _check_dims(n, n)
    return 2.0 / 3.0 * float(n) ** 3


def qr_flops(m: int, n: int) -> float:
    """FLOPs of a real Householder QR of an m x n matrix."""
    _check_dims(m, n)
    if m < n:
        raise ValueError("QR expects m >= n")
    return 2.0 * m * n * n - 2.0 / 3.0 * float(n) ** 3


def qr_flops_complex(m: int, n: int) -> float:
    """FLOPs of a complex Householder QR (Section VII: 8mn^2 - 8/3 n^3)."""
    _check_dims(m, n)
    if m < n:
        raise ValueError("QR expects m >= n")
    return 8.0 * m * n * n - 8.0 / 3.0 * float(n) ** 3


def least_squares_flops(m: int, n: int) -> float:
    """FLOPs of least squares via QR (Section III-D)."""
    _check_dims(m, n)
    if m < n:
        raise ValueError("least squares expects m >= n")
    return 2.0 * m * n * n - 2.0 / 3.0 * float(n) ** 3 + 1.0 / 3.0 * float(n) ** 3


def matmul_flops(m: int, k: int, n: int) -> float:
    """FLOPs of a real (m,k) x (k,n) matrix multiply."""
    if m < 1 or k < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")
    return 2.0 * m * k * n


def matrix_words(m: int, n: int, complex_dtype: bool = False) -> int:
    """32-bit words occupied by an m x n single-precision matrix."""
    _check_dims(m, n)
    return m * n * (2 if complex_dtype else 1)


def matrix_bytes(m: int, n: int, complex_dtype: bool = False) -> int:
    """Bytes occupied by an m x n single-precision matrix."""
    return 4 * matrix_words(m, n, complex_dtype)
