"""The paper's LogP-derived timing equations (Section II, Eqs. 1 and 2).

Global (Eq. 1)::

    tau_gbl = #msg * alpha_glb + msize * beta_glb + flops * gamma

Shared (Eq. 2)::

    tau_lcl = #msg * alpha_sh + nsync * alpha_sync
              + msize * beta_sh + flops * gamma

Latencies and gamma are in cycles; message size is in bytes and is
converted through the measured inverse bandwidths (seconds/byte) to
cycles at the device clock.  The paper evaluates the two equations
*separately* -- global and local phases of these kernels do not overlap
(Section VIII) -- and so do we: :func:`total_time` is their plain sum.
"""

from __future__ import annotations

import dataclasses

from .parameters import ModelParameters

__all__ = ["GlobalPhase", "LocalPhase", "global_time", "local_time", "total_time"]


@dataclasses.dataclass(frozen=True)
class GlobalPhase:
    """Inputs to Equation 1."""

    messages: int = 0
    bytes: float = 0.0
    flops: float = 0.0

    def __post_init__(self) -> None:
        if self.messages < 0 or self.bytes < 0 or self.flops < 0:
            raise ValueError("phase quantities must be non-negative")


@dataclasses.dataclass(frozen=True)
class LocalPhase:
    """Inputs to Equation 2."""

    messages: int = 0
    syncs: int = 0
    bytes: float = 0.0
    flops: float = 0.0
    #: Block size used for the alpha_sync lookup (the paper tabulates 64).
    threads: int = 64

    def __post_init__(self) -> None:
        if min(self.messages, self.syncs) < 0 or self.bytes < 0 or self.flops < 0:
            raise ValueError("phase quantities must be non-negative")


def global_time(params: ModelParameters, phase: GlobalPhase) -> float:
    """Equation 1, in cycles."""
    bandwidth_cycles = params.device.seconds_to_cycles(phase.bytes * params.beta_glb)
    return (
        phase.messages * params.alpha_glb
        + bandwidth_cycles
        + phase.flops * params.gamma
    )


def local_time(params: ModelParameters, phase: LocalPhase) -> float:
    """Equation 2, in cycles."""
    bandwidth_cycles = params.device.seconds_to_cycles(phase.bytes * params.beta_sh)
    return (
        phase.messages * params.alpha_sh
        + phase.syncs * params.sync_latency(phase.threads)
        + bandwidth_cycles
        + phase.flops * params.gamma
    )


def total_time(
    params: ModelParameters, glb: GlobalPhase, lcl: LocalPhase
) -> float:
    """Non-overlapped sum of the two phases, in cycles.

    The factorizations considered here spend far longer computing than
    loading/storing, so the paper treats the two models separately and
    adds them; overlap would only matter for bandwidth-bound kernels.
    """
    return global_time(params, glb) + local_time(params, lcl)
