"""Quantifying the model's predictive accuracy.

The paper's core claim is that the analytical model "accurately predicts
and explains our performance across different problem sizes".  This
module turns that into a number: the mean absolute percentage error
(MAPE) between the Table-VI prediction and the engine-measured
throughput, split into the region the model covers (no register
spilling) and the region it deliberately does not.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..approaches.base import Workload
from ..approaches.per_block import PerBlockApproach
from ..gpu.device import QUADRO_6000, DeviceSpec
from ..gpu.registers import RegisterAllocation
from .block_config import block_config
from .parameters import ModelParameters
from .per_block_model import predict_per_block

__all__ = ["AccuracyPoint", "AccuracyReport", "model_accuracy"]


@dataclasses.dataclass(frozen=True)
class AccuracyPoint:
    n: int
    kind: str
    measured_gflops: float
    predicted_gflops: float
    spills: bool

    @property
    def error(self) -> float:
        """Signed relative error of the prediction."""
        return (self.predicted_gflops - self.measured_gflops) / self.measured_gflops


@dataclasses.dataclass(frozen=True)
class AccuracyReport:
    points: tuple[AccuracyPoint, ...]

    def _mape(self, points: Sequence[AccuracyPoint]) -> float:
        if not points:
            return float("nan")
        return sum(abs(p.error) for p in points) / len(points)

    @property
    def mape_no_spill(self) -> float:
        """MAPE where the model claims validity (no register spilling)."""
        return self._mape([p for p in self.points if not p.spills])

    @property
    def mape_spill(self) -> float:
        """MAPE where the model knowingly ignores spilling (Figure 9's
        'false predictions')."""
        return self._mape([p for p in self.points if p.spills])

    @property
    def worst_no_spill(self) -> float:
        vals = [abs(p.error) for p in self.points if not p.spills]
        return max(vals) if vals else float("nan")


def model_accuracy(
    kinds: Sequence[str] = ("qr", "lu"),
    sizes: Sequence[int] = tuple(range(8, 145, 8)),
    device: DeviceSpec = QUADRO_6000,
    batch: int = 8000,
    params: ModelParameters | None = None,
) -> AccuracyReport:
    """Compare prediction vs engine measurement across a size sweep."""
    params = params or ModelParameters.paper_table_iv()
    replay = PerBlockApproach(device)
    points = []
    for kind in kinds:
        for n in sizes:
            cfg = block_config(n, n)
            spills = RegisterAllocation(device, cfg.registers_per_thread).spills
            measured = replay.launch(Workload.square(kind, n, batch)).throughput_gflops(
                batch
            )
            predicted = predict_per_block(params, kind, n).gflops
            points.append(
                AccuracyPoint(
                    n=n,
                    kind=kind,
                    measured_gflops=measured,
                    predicted_gflops=predicted,
                    spills=spills,
                )
            )
    return AccuracyReport(points=tuple(points))
