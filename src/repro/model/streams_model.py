"""The CUBLAS + CUDA-streams approach (Section VI-C).

Composing a factorization from global-memory BLAS-1/BLAS-2 calls (column
norms, scals, gemv, ger) keeps all operands in DRAM and pays a kernel
launch per call; streams could in principle overlap problems, but the
paper found the hardware "not fine-grained enough" and measured *no
benefit* from multiple streams -- the CPU was faster.  The model charges

* one launch overhead per BLAS call (4 calls per column for QR, 2 for
  LU),
* global-memory traffic for every operand touched (no reuse above DRAM
  except the trailing GEMM's modest blocking), and
* an effective stream concurrency that caps how many problems overlap.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

from .flops import lu_flops, qr_flops
from .parameters import ModelParameters

__all__ = ["StreamsConfig", "StreamsModel"]

Kind = Literal["qr", "lu"]


@dataclasses.dataclass(frozen=True)
class StreamsConfig:
    #: Kernel launch + dispatch overhead per BLAS call, seconds.
    launch_overhead: float = 5e-6
    #: BLAS calls per factored column (norm, scal, gemv, ger for QR).
    calls_per_column_qr: int = 4
    calls_per_column_lu: int = 2
    #: Effective number of problems the streams actually overlap
    #: (Section VI-C: fine-grained concurrency did not materialize).
    effective_concurrency: float = 1.0


class StreamsModel:
    """Timing for the CUBLAS-per-column composition."""

    def __init__(self, params: ModelParameters, config: StreamsConfig | None = None):
        self.params = params
        self.config = config or StreamsConfig()

    def seconds_per_problem(self, kind: Kind, m: int, n: int | None = None) -> float:
        n = m if n is None else n
        if m < 1 or n < 1:
            raise ValueError("matrix dimensions must be positive")
        cfg = self.config
        if kind == "qr":
            calls = cfg.calls_per_column_qr * n
            flops = qr_flops(m, n)
            # Each column's gemv+ger re-reads the trailing matrix from DRAM.
            traffic = 2.0 * sum(
                2 * (m - j) * (n - j) * 4 for j in range(n)
            )
        elif kind == "lu":
            calls = cfg.calls_per_column_lu * n
            flops = lu_flops(n)
            traffic = 2.0 * sum((n - j) * (n - j) * 4 for j in range(n))
        else:
            raise ValueError(f"unknown factorization kind: {kind!r}")
        launch = calls * cfg.launch_overhead
        bandwidth = traffic / self.params.global_bandwidth
        compute = flops / self.params.device.peak_sp_flops
        return launch + bandwidth + compute

    def gflops(
        self, kind: Kind, m: int, n: int | None = None, batch: int = 1
    ) -> float:
        """Aggregate rate over the batch with the measured concurrency."""
        n = m if n is None else n
        if batch < 1:
            raise ValueError("batch must be positive")
        per = self.seconds_per_problem(kind, m, n)
        concurrency = max(1.0, self.config.effective_concurrency)
        total = per * batch / concurrency
        flops = qr_flops(m, n) if kind == "qr" else lu_flops(n)
        return batch * flops / total / 1e9
