"""What-if analysis: the predictive model as a design tool.

A model that "accurately predicts and explains" performance is most
useful when you turn the knobs: what would a GPU with twice the shared
bandwidth, half the sync latency, or a deeper pipeline do to these
kernels?  :func:`whatif` rescales any subset of the Table-IV parameters
and reruns the per-block/per-thread predictions, reporting the
sensitivity of each workload to each knob.

Findings this reproduces (each asserted by test):

* per-*thread* throughput scales linearly with **global bandwidth** and
  is indifferent to everything else (the Section IV roofline);
* per-*block* throughput cares about **gamma** and **shared latency**
  (the Table VI terms) and barely about global bandwidth -- the entire
  reason the one-problem-per-block mapping exists.
"""

from __future__ import annotations

import dataclasses

from .parameters import ModelParameters
from .per_block_model import predict_per_block
from .per_thread_model import predict_per_thread

__all__ = ["scale_parameters", "Sensitivity", "whatif"]


def scale_parameters(
    params: ModelParameters,
    *,
    alpha_glb: float = 1.0,
    global_bandwidth: float = 1.0,
    alpha_sh: float = 1.0,
    shared_bandwidth: float = 1.0,
    alpha_sync: float = 1.0,
    gamma: float = 1.0,
) -> ModelParameters:
    """A copy of ``params`` with each parameter multiplied by its factor.

    ``alpha_sync`` scaling is applied through a rescaled device sync
    curve; since :class:`ModelParameters` keeps the 64-thread figure, the
    scalar field is scaled directly (the per-block model reads the device
    curve, so only uniform scalings are supported -- which is what a
    what-if needs).
    """
    for name, factor in (
        ("alpha_glb", alpha_glb),
        ("global_bandwidth", global_bandwidth),
        ("alpha_sh", alpha_sh),
        ("shared_bandwidth", shared_bandwidth),
        ("alpha_sync", alpha_sync),
        ("gamma", gamma),
    ):
        if factor <= 0:
            raise ValueError(f"{name} scale factor must be positive, got {factor}")
    device = params.device
    if alpha_sync != 1.0:  # noqa: RPR005 -- exact sentinel fast path, not a computed float
        device = dataclasses.replace(
            device,
            sync_base=int(round(device.sync_base * alpha_sync)),
            sync_per_warp=max(1, int(round(device.sync_per_warp * alpha_sync))),
        )
    if gamma != 1.0:  # noqa: RPR005 -- exact sentinel fast path, not a computed float
        device = dataclasses.replace(
            device, pipeline_latency=int(round(device.pipeline_latency * gamma))
        )
    return ModelParameters(
        device=device,
        alpha_glb=params.alpha_glb * alpha_glb,
        global_bandwidth=params.global_bandwidth * global_bandwidth,
        alpha_sh=params.alpha_sh * alpha_sh,
        shared_bandwidth=params.shared_bandwidth * shared_bandwidth,
        alpha_sync=params.alpha_sync * alpha_sync,
        gamma=params.gamma * gamma,
    )


@dataclasses.dataclass(frozen=True)
class Sensitivity:
    """Predicted speedups from doubling each machine resource."""

    workload: str
    baseline_gflops: float
    #: knob name -> predicted GFLOPS with that knob improved 2x
    #: (bandwidths doubled, latencies halved).
    improved: dict[str, float]

    def speedup(self, knob: str) -> float:
        return self.improved[knob] / self.baseline_gflops

    def dominant_knob(self) -> str:
        return max(self.improved, key=lambda k: self.improved[k])


def whatif(
    params: ModelParameters, approach: str, kind: str, n: int
) -> Sensitivity:
    """Double every resource, one at a time, and report the speedups.

    ``approach`` is ``"per-thread"`` or ``"per-block"``.  Latency knobs
    are *halved* (improvement), bandwidth knobs doubled.
    """
    knobs = {
        "global_bandwidth": dict(global_bandwidth=2.0),
        "shared_latency": dict(alpha_sh=0.5),
        "sync_latency": dict(alpha_sync=0.5),
        "gamma": dict(gamma=0.5),
    }

    def predict(p: ModelParameters) -> float:
        if approach == "per-thread":
            return predict_per_thread(p, kind, n).gflops
        if approach == "per-block":
            return predict_per_block(p, kind, n).gflops
        raise ValueError(f"unknown approach {approach!r}")

    baseline = predict(params)
    improved = {
        name: predict(scale_parameters(params, **scales))
        for name, scales in knobs.items()
    }
    return Sensitivity(
        workload=f"{approach} {kind} n={n}",
        baseline_gflops=baseline,
        improved=improved,
    )
