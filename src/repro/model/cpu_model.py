"""Multicore-CPU (Intel MKL on a Core i7-2600) performance model.

The paper's CPU baseline runs MKL factorizations on 4 Sandy Bridge cores,
one subset of the batch per core (pthreads).  We have neither the chip
nor MKL, so the baseline is an analytic model with two regimes:

* a *blocked-kernel* regime whose throughput saturates like
  ``G(w) = Gmax * w / (w + w_half)`` in the per-problem work ``w``
  (FLOPs) -- LAPACK's blocked codes only approach their asymptotic rate
  once the problem amortizes panel and threading overhead; and
* a *small-problem* path (LAPACK's unblocked code) with a fixed per-call
  overhead and a low flat rate, which wins for tiny matrices.

Per problem, the model takes whichever path is faster -- mirroring how
MKL dispatches internally.

The constants are **calibrated to the paper's published MKL
measurements** (Figure 11/12 and Table VII): real QR hits ~6 GFLOP/s at
56x56 (the paper's 29x headline), complex QR hits ~5.7 / ~34 / ~27
GFLOP/s at the three RT_STAP sizes (25x / 2.8x / 3.6x speedups).  This
is a *substitution*, recorded in DESIGN.md: the comparison's shape is
reproduced; the CPU side encodes the paper's own measurements rather
than re-measuring silicon we don't have.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

from .flops import (
    gauss_jordan_flops,
    least_squares_flops,
    lu_flops,
    qr_flops,
    qr_flops_complex,
)

__all__ = ["CpuSpec", "I7_2600", "MklKernelModel", "CpuModel"]

Kind = Literal["qr", "lu", "gauss_jordan", "least_squares"]


@dataclasses.dataclass(frozen=True)
class CpuSpec:
    """The host CPU of the paper's baseline."""

    name: str
    cores: int
    clock_hz: float
    #: SP FLOPs per cycle per core (AVX: 8-wide add + 8-wide mul).
    flops_per_cycle: int

    @property
    def peak_sp_flops(self) -> float:
        return self.cores * self.clock_hz * self.flops_per_cycle


I7_2600 = CpuSpec(
    name="Intel Core i7-2600 (Sandy Bridge)",
    cores=4,
    clock_hz=3.4e9,
    flops_per_cycle=16,
)


@dataclasses.dataclass(frozen=True)
class MklKernelModel:
    """Two-regime throughput model for one MKL kernel family.

    All rates aggregate the whole 4-core batch run.
    """

    #: Asymptotic aggregate rate of the blocked code, FLOP/s.
    gmax: float
    #: Work (FLOPs) at which the blocked code reaches half of ``gmax``.
    w_half: float
    #: Per-call overhead of the unblocked small path, seconds.
    small_overhead: float
    #: Flat aggregate rate of the unblocked small path, FLOP/s.
    small_rate: float

    def seconds_per_problem(self, work_flops: float) -> float:
        """Faster of the blocked and unblocked paths for one problem."""
        if work_flops <= 0:
            raise ValueError("work must be positive")
        blocked = (work_flops + self.w_half) / self.gmax
        unblocked = self.small_overhead + work_flops / self.small_rate
        return min(blocked, unblocked)

    def gflops(self, work_flops: float) -> float:
        return work_flops / self.seconds_per_problem(work_flops) / 1e9


#: Calibration targets (see module docstring).
_KERNELS_REAL = {
    "qr": MklKernelModel(
        gmax=26.2e9, w_half=0.75e6, small_overhead=3e-6, small_rate=2.0e9
    ),
    "lu": MklKernelModel(
        gmax=30.0e9, w_half=0.60e6, small_overhead=3e-6, small_rate=2.5e9
    ),
    "gauss_jordan": MklKernelModel(
        gmax=30.0e9, w_half=0.60e6, small_overhead=3e-6, small_rate=2.5e9
    ),
    "least_squares": MklKernelModel(
        gmax=26.2e9, w_half=0.75e6, small_overhead=3.5e-6, small_rate=2.0e9
    ),
}
_KERNELS_COMPLEX = {
    "qr": MklKernelModel(
        gmax=28.4e9, w_half=0.61e6, small_overhead=3e-6, small_rate=2.5e9
    ),
    "lu": MklKernelModel(
        gmax=32.0e9, w_half=0.55e6, small_overhead=3e-6, small_rate=3.0e9
    ),
    "gauss_jordan": MklKernelModel(
        gmax=32.0e9, w_half=0.55e6, small_overhead=3e-6, small_rate=3.0e9
    ),
    "least_squares": MklKernelModel(
        gmax=28.4e9, w_half=0.61e6, small_overhead=3.5e-6, small_rate=2.5e9
    ),
}


class CpuModel:
    """Batched-factorization timing for the MKL-on-i7-2600 baseline."""

    def __init__(self, spec: CpuSpec = I7_2600):
        self.spec = spec
        self._scale = spec.peak_sp_flops / I7_2600.peak_sp_flops

    def _kernel(self, kind: Kind, complex_dtype: bool) -> MklKernelModel:
        table = _KERNELS_COMPLEX if complex_dtype else _KERNELS_REAL
        try:
            base = table[kind]
        except KeyError:
            raise ValueError(f"unknown factorization kind: {kind!r}") from None
        if self._scale == 1.0:  # noqa: RPR005 -- exact sentinel fast path, not a computed float
            return base
        return dataclasses.replace(
            base,
            gmax=base.gmax * self._scale,
            small_rate=base.small_rate * self._scale,
        )

    def work_flops(self, kind: Kind, m: int, n: int, complex_dtype: bool) -> float:
        if kind == "qr":
            return qr_flops_complex(m, n) if complex_dtype else qr_flops(m, n)
        factor = 4 if complex_dtype else 1
        if kind == "lu":
            return factor * lu_flops(n)
        if kind == "gauss_jordan":
            return factor * gauss_jordan_flops(n)
        if kind == "least_squares":
            return factor * least_squares_flops(m, n)
        raise ValueError(f"unknown factorization kind: {kind!r}")

    def seconds(
        self,
        kind: Kind,
        m: int,
        n: int | None = None,
        batch: int = 1,
        complex_dtype: bool = False,
    ) -> float:
        """Wall time to factor ``batch`` m x n problems on all cores.

        The batch is split evenly over cores (the paper's pthreads
        scheme), so a batch smaller than the core count loses parallelism.
        """
        n = m if n is None else n
        if batch < 1:
            raise ValueError("batch must be positive")
        work = self.work_flops(kind, m, n, complex_dtype)
        # The kernel model's rates are aggregate over all cores, so one
        # problem at the single-core rate takes `cores` times longer.
        per_problem_aggregate = self._kernel(kind, complex_dtype).seconds_per_problem(
            work
        )
        per_problem_single_core = per_problem_aggregate * self.spec.cores
        critical_core_problems = -(-batch // self.spec.cores)
        return critical_core_problems * per_problem_single_core

    def gflops(
        self,
        kind: Kind,
        m: int,
        n: int | None = None,
        batch: int = 1000,
        complex_dtype: bool = False,
    ) -> float:
        """Aggregate GFLOP/s over the batch."""
        n = m if n is None else n
        work = self.work_flops(kind, m, n, complex_dtype)
        secs = self.seconds(kind, m, n, batch, complex_dtype)
        return work * batch / secs / 1e9
