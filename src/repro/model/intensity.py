"""Arithmetic intensity and the bandwidth roofline (Section IV's model).

The one-problem-per-thread prediction is pure roofline (Williams et al.,
cited by the paper): FLOPs are free, DRAM latency is hidden by
multithreading, so expected performance is::

    GFLOPS = arithmetic_intensity [flops/byte] * achieved_bandwidth [GB/s]

capped at the device's peak arithmetic throughput.  The worked example in
the paper: a 7x7 SP QR does 457 FLOPs over 392 bytes of traffic (read +
write), intensity 1.17 flops/byte, and 1.17 x 108 GB/s ~ 126 GFLOPS.
"""

from __future__ import annotations

from .flops import matrix_bytes
from .parameters import ModelParameters

__all__ = ["arithmetic_intensity", "roofline_gflops", "factorization_intensity"]


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte of DRAM traffic."""
    if bytes_moved <= 0:
        raise ValueError("traffic must be positive")
    if flops < 0:
        raise ValueError("flops must be non-negative")
    return flops / bytes_moved


def factorization_intensity(
    flops: float, m: int, n: int, complex_dtype: bool = False
) -> float:
    """Intensity of an in-place factorization: the matrix is read+written."""
    traffic = 2 * matrix_bytes(m, n, complex_dtype)
    return arithmetic_intensity(flops, traffic)


def roofline_gflops(params: ModelParameters, intensity: float) -> float:
    """Bandwidth-roofline performance in GFLOP/s, capped at compute peak."""
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    bandwidth_bound = intensity * params.global_bandwidth
    return min(bandwidth_bound, params.device.peak_sp_flops) / 1e9
