"""Analytic model of the one-problem-per-block approach (Table VI).

The paper estimates LU and QR cost by counting, per column operation and
per trailing-matrix update, the FLOPs (``gamma`` each, FMA = 1), shared
memory accesses (``beta`` each, where ``beta`` is the per-access shared
latency), and synchronizations (``alpha_sync`` each).  Reductions are
serial across the sqrt(p) threads of a column: ``(1 + sqrt(p)) beta +
sqrt(p) gamma``.  This module reproduces those counts *verbatim* from
Table VI, generalized to

* non-square matrices (N follows the shrinking row panels),
* complex arithmetic (one complex FMA = 4 dependent real instructions,
  8 flops of credit -- the Section VII STAP runs), and
* precise-vs-fast division/square root (the 30% penalty quoted in
  Section V-C).

Whole-chip GFLOPS adds the DRAM read+write of the matrix at the achieved
global bandwidth, fair-shared across the resident blocks given by the
occupancy calculator -- exactly the recipe of Section V-D.  Register
spilling is deliberately NOT modelled: Figure 9's "false predictions at
64 and above 112" are the reproduction target, and the divergence from
the engine-measured curves is the evidence.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

from ..gpu.instructions import costs_for
from ..gpu.occupancy import Occupancy, occupancy
from .block_config import BlockConfig, block_config
from .flops import (
    gauss_jordan_flops,
    least_squares_flops,
    lu_flops,
    matrix_bytes,
    qr_flops,
    qr_flops_complex,
)
from .parameters import ModelParameters

__all__ = [
    "OpEstimate",
    "ColumnEstimate",
    "OpCounts",
    "BlockCounts",
    "COUNT_KINDS",
    "PerBlockPrediction",
    "estimate_lu_column",
    "estimate_qr_column",
    "predict_per_block",
    "per_block_counts",
    "panel_breakdown",
]

Kind = Literal["qr", "lu", "gauss_jordan", "least_squares"]

#: Display names for the per-operation breakdown, as in Figure 8.
QR_OPS = ("Form HH Vector", "Matrix-Vector Multiply", "Rank-1 Update")
LU_OPS = ("Column Op", "Rank-1 Update")


@dataclasses.dataclass(frozen=True)
class OpEstimate:
    """Cycles of one named operation within a column step."""

    name: str
    flops_cycles: float
    shared_cycles: float
    sync_cycles: float

    @property
    def total(self) -> float:
        return self.flops_cycles + self.shared_cycles + self.sync_cycles


@dataclasses.dataclass(frozen=True)
class ColumnEstimate:
    """All operations of one column step (column op + trailing update)."""

    column: int
    n_tile: int
    ops: tuple[OpEstimate, ...]

    @property
    def total(self) -> float:
        return sum(op.total for op in self.ops)


def _reduction_cycles(
    params: ModelParameters, rdim: int, op_factor: int
) -> tuple[float, float]:
    """(shared, flops) cycles of one serial cross-thread reduction.

    Table VI: ``(1 + sqrt(p)) beta + sqrt(p) gamma``.
    """
    shared = (1 + rdim) * params.alpha_sh
    flops = rdim * params.gamma * op_factor
    return shared, flops


def estimate_lu_column(
    params: ModelParameters,
    config: BlockConfig,
    column: int,
    fast_math: bool = True,
) -> ColumnEstimate:
    """Table VI, LU rows, for one column step."""
    costs = costs_for(params.device)
    rdim = config.rdim
    n_tile = config.column_tile_rows(column)
    op_factor = 2 if config.complex_dtype else 1
    beta = params.alpha_sh
    gamma = params.gamma * op_factor
    sync = params.sync_latency(config.threads)

    col = OpEstimate(
        name=LU_OPS[0],
        # gamma_div (thread 0 scale factor) + N gamma (scale l vector)
        flops_cycles=costs.div(fast_math) * op_factor + n_tile * gamma,
        # 2 beta (write+read scale) + 2N beta (write l & u to shared)
        shared_cycles=2 * beta + 2 * n_tile * beta,
        # alpha_sync after the scale factor, alpha_sync after l & u
        sync_cycles=2 * sync,
    )
    trailing = OpEstimate(
        name=LU_OPS[1],
        flops_cycles=n_tile * n_tile * gamma,  # N^2 gamma rank-1 update
        shared_cycles=2 * n_tile * beta,  # read l & u from shared
        sync_cycles=sync,
    )
    return ColumnEstimate(column=column, n_tile=n_tile, ops=(col, trailing))


def estimate_qr_column(
    params: ModelParameters,
    config: BlockConfig,
    column: int,
    fast_math: bool = True,
) -> ColumnEstimate:
    """Table VI, QR rows, for one column step."""
    costs = costs_for(params.device)
    rdim = config.rdim
    n_tile = config.column_tile_rows(column)
    op_factor = 2 if config.complex_dtype else 1
    beta = params.alpha_sh
    gamma = params.gamma * op_factor
    sync = params.sync_latency(config.threads)
    red_shared, red_flops = _reduction_cycles(params, rdim, op_factor)

    form_hh = OpEstimate(
        name=QR_OPS[0],
        flops_cycles=(
            n_tile * gamma  # column norm partial sums
            + red_flops  # thread-0 norm reduction
            + costs.sqrt(fast_math) * op_factor
            + 2 * costs.div(fast_math) * op_factor
            + 2 * gamma  # scale-factor arithmetic
            + n_tile * gamma  # column scale
        ),
        shared_cycles=(
            red_shared  # norm reduction traffic
            + 2 * beta  # write and read scale factor
            + n_tile * beta  # write scaled column to shared
        ),
        sync_cycles=sync,
    )
    mv = OpEstimate(
        name=QR_OPS[1],
        flops_cycles=n_tile * n_tile * gamma + red_flops,
        shared_cycles=n_tile * beta + red_shared,  # read HH vector + reduction
        sync_cycles=2 * sync,
    )
    rank1 = OpEstimate(
        name=QR_OPS[2],
        flops_cycles=n_tile * n_tile * gamma,
        shared_cycles=n_tile * beta,  # read the w vector
        sync_cycles=sync,
    )
    return ColumnEstimate(column=column, n_tile=n_tile, ops=(form_hh, mv, rank1))


def _gj_column(
    params: ModelParameters, config: BlockConfig, column: int, fast_math: bool
) -> ColumnEstimate:
    """Gauss-Jordan: like LU's column, but the rank-1 update spans all
    HREG rows (the eliminated rows keep updating) and all trailing
    columns including the appended right-hand side."""
    costs = costs_for(params.device)
    n_tile = config.hreg  # rows never drop out in Gauss-Jordan
    op_factor = 2 if config.complex_dtype else 1
    beta = params.alpha_sh
    gamma = params.gamma * op_factor
    sync = params.sync_latency(config.threads)
    col = OpEstimate(
        name=LU_OPS[0],
        flops_cycles=costs.div(fast_math) * op_factor + n_tile * gamma,
        shared_cycles=2 * beta + 2 * n_tile * beta,
        sync_cycles=2 * sync,
    )
    trailing = OpEstimate(
        name=LU_OPS[1],
        flops_cycles=n_tile * n_tile * gamma,
        shared_cycles=2 * n_tile * beta,
        sync_cycles=sync,
    )
    return ColumnEstimate(column=column, n_tile=n_tile, ops=(col, trailing))


@dataclasses.dataclass(frozen=True)
class PerBlockPrediction:
    """Model output for one problem shape."""

    kind: str
    config: BlockConfig
    columns: tuple[ColumnEstimate, ...]
    compute_cycles: float
    dram_cycles: float
    flops_per_problem: float
    occupancy: Occupancy

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.dram_cycles

    @property
    def gflops(self) -> float:
        """Whole-chip throughput, Section V-D's recipe."""
        blocks = self.occupancy.blocks_per_chip
        seconds = self.occupancy.device.cycles_to_seconds(self.total_cycles)
        return self.flops_per_problem * blocks / seconds / 1e9


def _flops_for(kind: str, m: int, n: int, complex_dtype: bool) -> float:
    if kind == "qr":
        return qr_flops_complex(m, n) if complex_dtype else qr_flops(m, n)
    if kind == "lu":
        factor = 4 if complex_dtype else 1
        return factor * lu_flops(n)
    if kind == "gauss_jordan":
        factor = 4 if complex_dtype else 1
        return factor * gauss_jordan_flops(n)
    if kind == "least_squares":
        factor = 4 if complex_dtype else 1
        return factor * least_squares_flops(m, n)
    raise ValueError(f"unknown factorization kind: {kind!r}")


def predict_per_block(
    params: ModelParameters,
    kind: Kind,
    m: int,
    n: int | None = None,
    *,
    complex_dtype: bool = False,
    fast_math: bool = True,
    config: BlockConfig | None = None,
) -> PerBlockPrediction:
    """Full Table-VI prediction for an m x n problem.

    ``n`` defaults to ``m`` (square).  ``config`` overrides the paper's
    launch-shape rule (used by the Figure-7 layout comparison).
    """
    n = m if n is None else n
    cfg = config or block_config(m, n, complex_dtype=complex_dtype)

    if kind == "qr":
        column_fn = estimate_qr_column
    elif kind in ("lu",):
        column_fn = estimate_lu_column
    elif kind == "gauss_jordan":
        column_fn = _gj_column
    elif kind == "least_squares":
        # Least squares = QR on [A|b] plus a triangular solve whose cost
        # the paper folds into the same column machinery.
        column_fn = estimate_qr_column
    else:
        raise ValueError(f"unknown factorization kind: {kind!r}")

    columns = tuple(
        column_fn(params, cfg, j, fast_math) for j in range(n - 1)
    )
    compute = sum(c.total for c in columns)

    # Occupancy: the model caps registers at the architectural limit and
    # ignores spilling entirely (Section V-D / Figure 9 caption).
    regs = min(cfg.registers_per_thread, params.device.max_registers_per_thread)
    shared_bytes = 4 * (cfg.m + cfg.n) * (2 if complex_dtype else 1) + 64
    occ = occupancy(params.device, cfg.threads, regs, shared_bytes)

    # DRAM: read + write the matrix, fair-shared across resident blocks.
    nbytes = 2 * matrix_bytes(m, n, complex_dtype)
    dram_seconds = nbytes * occ.blocks_per_chip / params.global_bandwidth
    dram_cycles = params.device.seconds_to_cycles(dram_seconds)

    return PerBlockPrediction(
        kind=kind,
        config=cfg,
        columns=columns,
        compute_cycles=compute,
        dram_cycles=dram_cycles,
        flops_per_problem=_flops_for(kind, m, n, complex_dtype),
        occupancy=occ,
    )


# ----------------------------------------------------------------------
# Closed-form hardware-event counts
#
# The cycle estimates above weight each event by a latency parameter;
# the counts below are the *unweighted* event totals -- exactly what the
# engine's charge_* accumulators record when the corresponding kernel in
# ``repro.kernels.device`` runs.  ``repro.analyze.costcheck`` certifies
# that equality over the whole kernel registry, so any kernel edit that
# changes its cost profile must update these formulas in the same change.
# ----------------------------------------------------------------------

COUNT_KINDS = (
    "lu",
    "lu_pivot",
    "qr",
    "qr_solve",
    "gauss_jordan",
    "cholesky",
    "least_squares",
)


@dataclasses.dataclass(frozen=True)
class OpCounts:
    """Hardware-event counts of one named operation (charge_* units)."""

    name: str
    #: Dependent FP ops per thread (``charge_flops`` units; FMA = 1).
    flop_ops: float = 0.0
    divs: int = 0
    sqrts: int = 0
    #: Shared words per thread (``charge_shared`` units), total and the
    #: write subset.
    shared: float = 0.0
    shared_writes: float = 0.0
    syncs: int = 0


@dataclasses.dataclass(frozen=True)
class BlockCounts:
    """Closed-form static footprint of one per-block kernel launch."""

    kind: str
    m: int
    n: int
    config: BlockConfig
    ops: tuple[OpCounts, ...]
    load_bytes: float
    store_bytes: float

    @property
    def flop_ops(self) -> float:
        return sum(op.flop_ops for op in self.ops)

    @property
    def divs(self) -> int:
        return sum(op.divs for op in self.ops)

    @property
    def sqrts(self) -> int:
        return sum(op.sqrts for op in self.ops)

    @property
    def shared(self) -> float:
        return sum(op.shared for op in self.ops)

    @property
    def shared_writes(self) -> float:
        return sum(op.shared_writes for op in self.ops)

    @property
    def syncs(self) -> int:
        return sum(op.syncs for op in self.ops)

    @property
    def global_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    @property
    def shared_bytes(self) -> int:
        """Engine scratchpad footprint: sh_col + sh_row + sh_scalar."""
        cfg = self.config
        words = cfg.hreg * cfg.rdim + cfg.wreg * cfg.rdim + 4
        return 4 * words * (2 if cfg.complex_dtype else 1)

    @property
    def registers_per_thread(self) -> int:
        return self.config.registers_per_thread


def _count_lu_column(cfg: BlockConfig, j: int, cost: int) -> tuple[OpCounts, ...]:
    """One LU column step: Listing 5/6 column op + Listing 7 update."""
    n_tile = cfg.column_tile_rows(j)
    col = OpCounts(
        name=LU_OPS[0],
        flop_ops=n_tile * cost,
        divs=1,
        shared=2 + 2 * n_tile,
        shared_writes=2 * n_tile,
        syncs=2,
    )
    trailing = OpCounts(
        name=LU_OPS[1],
        flop_ops=n_tile * n_tile * cost,
        shared=2 * n_tile,
        syncs=1,
    )
    return (col, trailing)


def _count_qr_column(cfg: BlockConfig, j: int, cost: int) -> tuple[OpCounts, ...]:
    """One Householder column: the three operations of Figure 8."""
    n_tile = cfg.column_tile_rows(j)
    rdim = cfg.rdim
    form_hh = OpCounts(
        name=QR_OPS[0],
        # norm partials + serial reduction + scale-factor arithmetic +
        # column scale (the sqrt and the two divides are counted apart)
        flop_ops=(2 * n_tile + rdim + 2) * cost,
        divs=2,
        sqrts=1,
        shared=n_tile + rdim + 3,
        shared_writes=n_tile,
        syncs=1,
    )
    mv = OpCounts(
        name=QR_OPS[1],
        flop_ops=n_tile * n_tile * cost + rdim * cost,
        shared=n_tile + rdim + 1,
        syncs=2,
    )
    rank1 = OpCounts(
        name=QR_OPS[2],
        flop_ops=n_tile * n_tile * cost,
        shared=n_tile,
        syncs=1,
    )
    return (form_hh, mv, rank1)


def _qr_steps(m: int, ncols: int) -> int:
    """Reflector columns of a Householder sweep (no tail reflector when
    the last column has a single row)."""
    return ncols if m > ncols else ncols - 1


def _count_back_substitution(
    cfg: BlockConfig, n: int, cost: int
) -> tuple[OpCounts, ...]:
    """Row-wise triangular solve: one divide + broadcast axpy per row."""
    return tuple(
        OpCounts(
            name="Back Substitution",
            flop_ops=cfg.column_tile_rows(i) * cost,
            divs=1,
            shared=2,
            syncs=1,
        )
        for i in range(n - 1, -1, -1)
    )


def per_block_counts(
    kind: str,
    m: int,
    n: int | None = None,
    *,
    complex_dtype: bool = False,
) -> BlockCounts:
    """Static hardware-event counts for an m x n per-block launch.

    Mirrors every ``charge_*`` call of the matching device kernel --
    including the augmented launch shape of the solve variants
    (``gauss_jordan``/``qr_solve`` append the right-hand side,
    ``least_squares`` appends it to a tall matrix) and their
    solution-only store traffic.  ``repro.analyze.costcheck`` holds this
    equal to the abstract interpreter's measurements.
    """
    n = m if n is None else n
    if kind not in COUNT_KINDS:
        raise ValueError(f"unknown factorization kind: {kind!r}")
    if kind in ("lu", "lu_pivot", "cholesky", "gauss_jordan", "qr_solve") and m != n:
        raise ValueError(f"{kind} expects square matrices, got {m}x{n}")
    if kind in ("qr", "least_squares") and m < n:
        raise ValueError(f"{kind} expects m >= n, got {m}x{n}")
    cost = 2 if complex_dtype else 1
    word = 8 if complex_dtype else 4

    if kind in ("gauss_jordan", "qr_solve"):
        cfg = block_config(n, n + 1, complex_dtype=complex_dtype)
    elif kind == "least_squares":
        cfg = block_config(m, n + 1, complex_dtype=complex_dtype)
    else:
        cfg = block_config(m, n, complex_dtype=complex_dtype)

    ops: list[OpCounts] = []
    if kind == "lu":
        for j in range(n - 1):
            ops.extend(_count_lu_column(cfg, j, cost))
        load, store = m * n * word, m * n * word
    elif kind == "lu_pivot":
        rdim, wreg = cfg.rdim, cfg.wreg
        for j in range(n - 1):
            n_tile = cfg.column_tile_rows(j)
            ops.append(
                OpCounts(
                    name="Pivot Search",
                    # magnitude partials + serial max reduction + the
                    # unscaled argmax bookkeeping op per reduction step
                    flop_ops=n_tile * cost + rdim * cost + rdim,
                    shared=rdim + 3,
                    syncs=1,
                )
            )
            ops.append(
                OpCounts(
                    name="Row Swap",
                    shared=4 * wreg,
                    shared_writes=2 * wreg,
                    syncs=2,
                )
            )
            ops.extend(_count_lu_column(cfg, j, cost))
        load, store = m * n * word, m * n * word
    elif kind == "qr":
        for j in range(_qr_steps(m, n)):
            ops.extend(_count_qr_column(cfg, j, cost))
        load, store = m * n * word, m * n * word
    elif kind == "qr_solve":
        for j in range(_qr_steps(n, n)):
            ops.extend(_count_qr_column(cfg, j, cost))
        ops.extend(_count_back_substitution(cfg, n, cost))
        load, store = n * (n + 1) * word, n * word
    elif kind == "gauss_jordan":
        n_tile = cfg.hreg  # rows never drop out in Gauss-Jordan
        for _ in range(n):
            ops.append(
                OpCounts(
                    name=LU_OPS[0],
                    flop_ops=n_tile * cost,
                    divs=1,
                    shared=2 + 2 * n_tile,
                    shared_writes=2 * n_tile,
                    syncs=2,
                )
            )
            ops.append(
                OpCounts(
                    name=LU_OPS[1],
                    flop_ops=n_tile * n_tile * cost,
                    shared=2 * n_tile,
                    syncs=1,
                )
            )
        load, store = n * (n + 1) * word, n * word
    elif kind == "cholesky":
        for j in range(n):
            n_tile = cfg.column_tile_rows(j)
            ops.append(
                OpCounts(
                    name=LU_OPS[0],
                    flop_ops=n_tile * cost,
                    divs=1,
                    sqrts=1,
                    shared=2 + n_tile,
                    shared_writes=n_tile,
                    syncs=2,
                )
            )
            ops.append(
                OpCounts(
                    name="Hermitian Update",
                    flop_ops=n_tile * n_tile * cost / 2.0,
                    shared=n_tile,
                    syncs=1,
                )
            )
        load, store = n * n * word, n * n * word
    else:  # least_squares
        for j in range(_qr_steps(m, n)):
            ops.extend(_count_qr_column(cfg, j, cost))
        ops.extend(_count_back_substitution(cfg, n, cost))
        if m > n:
            ops.append(
                OpCounts(
                    name="Residual Norm",
                    flop_ops=cfg.column_tile_rows(n - 1) * cost,
                    sqrts=1,
                )
            )
        load, store = m * (n + 1) * word, (n + 1) * word

    return BlockCounts(
        kind=kind,
        m=m,
        n=n,
        config=cfg,
        ops=tuple(ops),
        load_bytes=float(load),
        store_bytes=float(store),
    )


def panel_breakdown(prediction: PerBlockPrediction) -> list[dict[str, float]]:
    """Per-panel cycles per operation -- the right half of Figure 8.

    Returns one dict per panel mapping operation name to cycles.
    """
    cfg = prediction.config
    panels: list[dict[str, float]] = []
    for p in range(cfg.panels):
        agg: dict[str, float] = {}
        for col in prediction.columns[p * cfg.rdim : (p + 1) * cfg.rdim]:
            for op in col.ops:
                agg[op.name] = agg.get(op.name, 0.0) + op.total
        if agg:
            panels.append(agg)
    return panels
