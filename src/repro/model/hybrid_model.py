"""Hybrid CPU+GPU blocked baseline (the MAGMA/CULA approach, Section VI-A).

MAGMA factors panels of fixed width (96 columns in the release the paper
used) on the CPU and updates the trailing matrix on the GPU with
matrix-matrix multiply, overlapping the two.  Consequences the model
reproduces:

* problems narrower than the panel width run *entirely on the CPU* --
  small problems see CPU speed plus, for the GPU-resident variant, PCIe
  transfers each way (Figure 11's "MAGMA GPU Start" sits below "CPU
  Start");
* the library exposes no batching, so the paper loops over problems
  sequentially -- per-problem launch/synchronization overhead is paid
  every time;
* for large single problems the trailing GEMM dominates and performance
  climbs toward the GPU's matrix-multiply rate (Figure 10's crossover).
"""

from __future__ import annotations

import dataclasses
from typing import Literal

from .cpu_model import CpuModel
from .flops import lu_flops, matrix_bytes, qr_flops
from .parameters import ModelParameters

__all__ = ["HybridConfig", "HybridModel"]

Kind = Literal["qr", "lu"]


@dataclasses.dataclass(frozen=True)
class HybridConfig:
    """Constants of the hybrid library being modelled."""

    #: Panel width: everything narrower runs on the CPU (MAGMA: 96).
    panel_width: int = 96
    #: Sustained PCIe bandwidth for host<->device copies, bytes/s.
    pcie_bandwidth: float = 5.2e9
    #: Fixed per-call overhead (launches, sync, dispatcher), seconds.
    call_overhead: float = 25e-6
    #: Asymptotic GPU SGEMM rate for the trailing updates, FLOP/s.
    gemm_peak: float = 550e9
    #: Trailing-matrix width at which GEMM reaches half its peak.
    gemm_n_half: float = 2000.0
    #: Aggregate CPU rate for panel factorization (large panels), FLOP/s.
    panel_cpu_rate: float = 35e9


class HybridModel:
    """Per-problem timing of the hybrid blocked approach."""

    def __init__(
        self,
        params: ModelParameters,
        config: HybridConfig | None = None,
        cpu: CpuModel | None = None,
    ):
        self.params = params
        self.config = config or HybridConfig()
        self.cpu = cpu or CpuModel()

    # ------------------------------------------------------------------
    def _flops(self, kind: Kind, m: int, n: int) -> float:
        if kind == "qr":
            return qr_flops(m, n)
        if kind == "lu":
            return lu_flops(n)
        raise ValueError(f"unknown factorization kind: {kind!r}")

    def gemm_rate(self, n: int) -> float:
        """Effective trailing-update rate for an n-wide problem."""
        cfg = self.config
        return cfg.gemm_peak * n / (n + cfg.gemm_n_half)

    def seconds_per_problem(
        self, kind: Kind, m: int, n: int | None = None, gpu_start: bool = True
    ) -> float:
        """One factorization through the hybrid path.

        ``gpu_start`` mirrors the paper's two MAGMA variants: data
        starting (and ending) on the GPU pays PCIe both ways for the
        CPU-side work; CPU-start skips the transfers the CPU path would
        need (and is faster for small problems, as the paper observes).
        """
        n = m if n is None else n
        if m < 1 or n < 1:
            raise ValueError("matrix dimensions must be positive")
        cfg = self.config
        transfer = 2 * matrix_bytes(m, n) / cfg.pcie_bandwidth

        if n < cfg.panel_width:
            # Entire problem on the CPU (single problem: one core's rate
            # only -- the sequential MAGMA loop is not batched).
            cpu_seconds = self.cpu.seconds(kind, m, n, batch=1)
            total = cfg.call_overhead + cpu_seconds
            if gpu_start:
                total += transfer
            return total

        # Blocked path: panels on CPU, trailing updates on GPU, with the
        # classic lookahead overlapping one against the other.
        total_flops = self._flops(kind, m, n)
        panels = -(-n // cfg.panel_width)
        panel_flops = min(total_flops, 2.0 * m * n * cfg.panel_width)
        gemm_flops = max(0.0, total_flops - panel_flops)
        cpu_time = panel_flops / cfg.panel_cpu_rate
        gpu_time = gemm_flops / self.gemm_rate(n)
        overlapped = max(cpu_time, gpu_time) + panels * cfg.call_overhead
        if not gpu_start:
            overlapped += transfer  # panels must reach the GPU and back
        return overlapped

    def gflops(
        self,
        kind: Kind,
        m: int,
        n: int | None = None,
        batch: int = 1,
        gpu_start: bool = True,
    ) -> float:
        """Aggregate rate over a sequential loop of ``batch`` problems."""
        n = m if n is None else n
        if batch < 1:
            raise ValueError("batch must be positive")
        seconds = batch * self.seconds_per_problem(kind, m, n, gpu_start)
        return batch * self._flops(kind, m, n) / seconds / 1e9
