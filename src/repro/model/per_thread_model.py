"""Predictive model for the one-problem-per-thread approach (Section IV).

The paper's model here is deliberately minimal (Figure 3): FLOPs are free
(gamma = 0), DRAM latency is hidden by multithreading (alpha_glb = 0),
and the register file is infinite -- performance is the bandwidth
roofline at the problem's arithmetic intensity.  The model *does not*
capture register spilling; the measured curves (from the device kernels)
fall off past n = 8 where the matrix no longer fits in 64 registers, and
the divergence is exactly Figure 4's story.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

from .flops import lu_flops, matrix_bytes, qr_flops
from .intensity import arithmetic_intensity, roofline_gflops
from .parameters import ModelParameters

__all__ = ["PerThreadPrediction", "predict_per_thread"]

Kind = Literal["qr", "lu"]


@dataclasses.dataclass(frozen=True)
class PerThreadPrediction:
    kind: str
    n: int
    flops_per_problem: float
    bytes_per_problem: float
    intensity: float
    gflops: float


def predict_per_thread(
    params: ModelParameters, kind: Kind, n: int
) -> PerThreadPrediction:
    """Roofline prediction for one n x n factorization per thread.

    Matches the worked example of Section IV: a 7x7 QR has intensity
    457/392 = 1.17 flops/byte, predicting ~126 GFLOPS at 108 GB/s.
    """
    if kind == "qr":
        flops = qr_flops(n, n)
    elif kind == "lu":
        flops = lu_flops(n)
    else:
        raise ValueError(f"unknown factorization kind: {kind!r}")
    traffic = 2 * matrix_bytes(n, n)  # read once, write once
    intensity = arithmetic_intensity(flops, traffic)
    return PerThreadPrediction(
        kind=kind,
        n=n,
        flops_per_problem=flops,
        bytes_per_problem=traffic,
        intensity=intensity,
        gflops=roofline_gflops(params, intensity),
    )
