"""Distributed register-file data layouts and their costs (Section V-A)."""

from .base import Layout
from .column_cyclic import ColumnCyclic
from .comm_volume import CommVolume, compare_volumes, qr_communication_volume
from .cyclic2d import Cyclic2D
from .qr_cost import LayoutCostEstimate, compare_layouts, estimate_qr_solve
from .row_cyclic import RowCyclic

__all__ = [
    "Layout",
    "Cyclic2D",
    "RowCyclic",
    "ColumnCyclic",
    "CommVolume",
    "compare_volumes",
    "qr_communication_volume",
    "LayoutCostEstimate",
    "compare_layouts",
    "estimate_qr_solve",
]
