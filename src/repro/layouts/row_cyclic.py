"""1D row-cyclic layout: thread ``t`` owns rows ``t, t+p, t+2p, ...``."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .base import Layout

__all__ = ["RowCyclic"]


class RowCyclic(Layout):
    """1D row-cyclic distribution."""

    def __init__(self, m: int, n: int, threads: int) -> None:
        super().__init__(m, n, threads)
        self.rows_per_thread = -(-m // threads)

    def owner(self, i: int, j: int) -> int:
        if not (0 <= i < self.m and 0 <= j < self.n):
            raise ShapeError(f"element ({i}, {j}) out of range")
        return i % self.threads

    def elements_per_thread(self) -> int:
        return self.rows_per_thread * self.n

    def scatter(self, matrices: np.ndarray) -> np.ndarray:
        """(batch, m, n) -> (batch, threads, rows_per_thread, n), zero-padded."""
        arr = self._check_input(matrices)
        batch = arr.shape[0]
        p = self.threads
        padded = np.zeros((batch, self.rows_per_thread * p, self.n), dtype=arr.dtype)
        padded[:, : self.m] = arr
        tiles = padded.reshape(batch, self.rows_per_thread, p, self.n)
        return np.ascontiguousarray(tiles.transpose(0, 2, 1, 3))

    def gather(self, storage: np.ndarray) -> np.ndarray:
        tiles = np.asarray(storage)
        if tiles.ndim == 3:
            tiles = tiles[None]
        expected = (self.threads, self.rows_per_thread, self.n)
        if tiles.ndim != 4 or tiles.shape[1:] != expected:
            raise ShapeError(
                f"expected (batch, {', '.join(map(str, expected))}) storage, "
                f"got {tiles.shape}"
            )
        batch = tiles.shape[0]
        padded = tiles.transpose(0, 2, 1, 3).reshape(batch, -1, self.n)
        return np.ascontiguousarray(padded[:, : self.m])
