"""Layout comparison for the QR linear-system solver (Figure 7).

The paper measures 10,000 single-precision QR solves under the three
layouts and finds

* **2D cyclic dominates everywhere** -- it splits both row and column
  operations sqrt(p) ways at the price of sqrt(p)-thread reductions;
* **1D column cyclic beats 1D row cyclic** -- Householder QR is built
  from column operations (norms, scaled columns), which are local to a
  column's owner under a column layout but need full ``p``-thread
  reductions under a row layout;
* 1D layouts also suffer the load imbalance of left-to-right
  factorizations (owners of finished columns/rows drop out).

This module prices one QR solve under each layout with the same
accounting style as Table VI (gamma per dependent FLOP, the shared
latency per shared access, alpha_sync per barrier), then converts to
whole-chip GFLOPS through the occupancy calculator.  The constants are
shared with :mod:`repro.model.per_block_model`, so the 2D line of
Figure 7 is consistent with Figure 9.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Literal

from ..gpu.instructions import costs_for
from ..gpu.occupancy import occupancy
from ..gpu.registers import registers_for_matrix
from ..model.flops import qr_flops
from ..model.parameters import ModelParameters

__all__ = ["LayoutKind", "LayoutCostEstimate", "estimate_qr_solve", "compare_layouts"]

LayoutKind = Literal["cyclic2d", "column_cyclic", "row_cyclic"]


@dataclasses.dataclass(frozen=True)
class LayoutCostEstimate:
    layout: str
    n: int
    threads: int
    cycles: float
    gflops: float


def _qr_solve_cycles_2d(params: ModelParameters, n: int, p: int, fast: bool) -> float:
    """2D cyclic: Table VI's QR rows plus the triangular solve."""
    costs = costs_for(params.device)
    r = math.isqrt(p)
    beta, gamma = params.alpha_sh, params.gamma
    sync = params.sync_latency(p)
    red = (1 + r) * beta + r * gamma
    hreg = -(-n // r)
    total = 0.0
    for j in range(n - 1):
        N = max(1, hreg - j // r)
        total += N * gamma + red + costs.sqrt(fast) + 2 * costs.div(fast) + 2 * gamma
        total += 2 * beta + N * gamma + N * beta + sync  # scale & share column
        total += N * beta + N * N * gamma + 2 * sync + red  # MV multiply
        total += N * beta + N * N * gamma + sync  # rank-1
    # Back substitution: n rows, each a broadcast + local update.
    for j in range(n):
        N = max(1, hreg - j // r)
        total += costs.div(fast) + 2 * beta + N * gamma + N * beta + sync
    return total


def _qr_solve_cycles_column(
    params: ModelParameters, n: int, p: int, fast: bool
) -> float:
    """1D column cyclic: column ops are local to the owner (serial over
    the full column height), trailing updates are column-local, but the
    Householder vector must cross shared memory to every thread."""
    costs = costs_for(params.device)
    beta, gamma = params.alpha_sh, params.gamma
    sync = params.sync_latency(p)
    total = 0.0
    for j in range(n - 1):
        h = n - j  # active column height
        cols_left = n - j - 1
        per_thread_cols = -(-cols_left // p)
        # Owner computes the norm and scales its column serially.
        total += h * gamma + costs.sqrt(fast) + 2 * costs.div(fast) + 2 * gamma
        total += h * gamma  # scale
        total += h * beta + sync  # publish v to shared memory
        # Every thread: dot(v, own columns) then rank-1 on own columns.
        total += h * beta  # read v
        total += per_thread_cols * (2 * h * gamma)  # dot + axpy per column
        total += per_thread_cols * beta + sync  # publish dot results
        total += sync
    for j in range(n):  # back substitution, owner-serial
        total += costs.div(fast) + 2 * beta + gamma + sync
    return total


def _qr_solve_cycles_row(params: ModelParameters, n: int, p: int, fast: bool) -> float:
    """1D row cyclic: row ops are local, but every column norm and every
    matrix-vector product needs a reduction across all p threads."""
    costs = costs_for(params.device)
    beta, gamma = params.alpha_sh, params.gamma
    sync = params.sync_latency(p)
    full_reduction = (1 + p) * beta + p * gamma  # serial across ALL threads
    total = 0.0
    for j in range(n - 1):
        h = n - j
        rows_per_thread = max(1, -(-h // p))
        cols_left = n - j - 1
        # Column norm: local partials then a p-thread reduction.
        total += rows_per_thread * gamma + full_reduction
        total += costs.sqrt(fast) + 2 * costs.div(fast) + 2 * gamma
        total += rows_per_thread * gamma + rows_per_thread * beta + sync  # scale+share
        # MV multiply: one p-thread reduction per batch of p trailing
        # columns (each thread drives one column's reduction).
        reduction_rounds = -(-cols_left // p)
        total += rows_per_thread * cols_left * gamma
        total += reduction_rounds * full_reduction + 2 * sync
        # Rank-1 update: local.
        total += rows_per_thread * cols_left * gamma + cols_left * beta + sync
    for j in range(n):
        total += costs.div(fast) + 2 * beta + gamma + sync
    return total


_ESTIMATORS = {
    "cyclic2d": _qr_solve_cycles_2d,
    "column_cyclic": _qr_solve_cycles_column,
    "row_cyclic": _qr_solve_cycles_row,
}


def estimate_qr_solve(
    params: ModelParameters,
    layout: LayoutKind,
    n: int,
    threads: int = 64,
    fast_math: bool = True,
) -> LayoutCostEstimate:
    """Cycles and whole-chip GFLOPS of one n x n QR solve under ``layout``."""
    try:
        fn = _ESTIMATORS[layout]
    except KeyError:
        raise ValueError(f"unknown layout: {layout!r}") from None
    if n < 2:
        raise ValueError("need at least a 2x2 system")
    cycles = fn(params, n, threads, fast_math)
    # Same register/occupancy accounting for all layouts: storage per
    # thread is the layout's tile, capped at the architectural limit.
    if layout == "cyclic2d":
        r = math.isqrt(threads)
        tile = (-(-n // r)) ** 2
    else:
        tile = n * (-(-n // threads))
    requested = registers_for_matrix(tile, 1)
    limit = params.device.max_registers_per_thread
    regs = min(requested, limit)
    # Tiles past the register file spill: every spilled-operand access
    # trades a register read for an L1-throughput access.  Unlike the
    # per-block *model* (which ignores spilling by design), the layout
    # comparison covers n up to 96 with 64 threads, where all three
    # layouts spill and the comparison would otherwise be meaningless.
    if requested > limit:
        spill_fraction = (requested - limit) / requested
        cycles *= 1.0 + spill_fraction * 24.0 / params.gamma
    occ = occupancy(params.device, threads, regs, shared_bytes_per_block=4 * 2 * n + 64)
    # DRAM in/out, fair-shared, as in the per-block model.
    dram = params.device.seconds_to_cycles(
        2 * n * n * 4 * occ.blocks_per_chip / params.global_bandwidth
    )
    cycles += dram
    flops = qr_flops(n, n) + n * n  # factorization + triangular solve
    gflops = (
        flops * occ.blocks_per_chip
        / params.device.cycles_to_seconds(cycles)
        / 1e9
    )
    return LayoutCostEstimate(
        layout=layout, n=n, threads=threads, cycles=cycles, gflops=gflops
    )


def compare_layouts(
    params: ModelParameters, n: int, threads: int = 64
) -> dict[str, LayoutCostEstimate]:
    """All three layouts at one problem size -- one x-slice of Figure 7."""
    return {
        kind: estimate_qr_solve(params, kind, n, threads) for kind in _ESTIMATORS
    }
