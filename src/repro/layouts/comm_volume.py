"""Communication-volume analysis of the distributed layouts.

Independent of the cycle model, the layouts can be compared by *words
communicated* per factorization -- the classic distributed-memory metric
the paper's Section V-A reasoning rests on: "The traditional advantages
of 1D layouts are that either row or column operations ... can be carried
out within a thread without any communication", versus the 2D layout's
sqrt(p)-thread reductions.

A word counts as communicated when it crosses a thread boundary through
shared memory: broadcast payloads are counted once per distinct reader,
reduction traffic once per hop of the serial chain.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Literal

__all__ = ["CommVolume", "qr_communication_volume", "compare_volumes"]

LayoutKind = Literal["cyclic2d", "column_cyclic", "row_cyclic"]


@dataclasses.dataclass(frozen=True)
class CommVolume:
    """Words crossing thread boundaries during one n x n Householder QR."""

    layout: str
    n: int
    threads: int
    broadcast_words: float
    reduction_words: float

    @property
    def total_words(self) -> float:
        return self.broadcast_words + self.reduction_words

    @property
    def words_per_flop(self) -> float:
        flops = 2.0 * self.n**3 - 2.0 / 3.0 * self.n**3
        return self.total_words / flops


def qr_communication_volume(
    layout: LayoutKind, n: int, threads: int = 64
) -> CommVolume:
    """Count the shared-memory words one QR factorization moves."""
    if n < 2:
        raise ValueError("need at least a 2x2 matrix")
    if threads < 1:
        raise ValueError("need at least one thread")

    broadcast = 0.0
    reduction = 0.0
    if layout == "cyclic2d":
        r = math.isqrt(threads)
        if r * r != threads:
            raise ValueError("2D cyclic layout needs a square thread count")
        for j in range(n - 1):
            h = n - j
            # Householder vector published once, read by the r column
            # groups that update the trailing matrix.
            broadcast += h * 2  # write + read by consumers (amortized)
            # Norm reduction + matrix-vector reduction across r threads.
            reduction += 2 * (r + 1)
            # w row published and read back.
            broadcast += 2 * (n - 1 - j)
    elif layout == "column_cyclic":
        for j in range(n - 1):
            h = n - j
            # v computed locally by the owner, broadcast to all threads.
            broadcast += h * 2
            # No cross-thread reductions: column dots are owner-local.
    elif layout == "row_cyclic":
        for j in range(n - 1):
            h = n - j
            cols_left = n - 1 - j
            # Column norm: a full p-thread reduction.
            reduction += threads + 1
            # Every trailing column's dot product crosses all p threads.
            reduction += cols_left * (threads + 1) / max(1, threads) * threads
            # Scaled column elements published back.
            broadcast += h
    else:
        raise ValueError(f"unknown layout: {layout!r}")

    return CommVolume(
        layout=layout,
        n=n,
        threads=threads,
        broadcast_words=broadcast,
        reduction_words=reduction,
    )


def compare_volumes(n: int, threads: int = 64) -> dict[str, CommVolume]:
    """All three layouts' volumes at one size."""
    return {
        kind: qr_communication_volume(kind, n, threads)
        for kind in ("cyclic2d", "column_cyclic", "row_cyclic")
    }
