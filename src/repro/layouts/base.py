"""Distributed register-file data layouts (Section V-A).

A thread block "is essentially a distributed system": each thread's
register file is private memory, and the matrix must be partitioned
across threads before any factorization can start.  The paper considers
the three classic layouts (Figure 6):

* 1D row cyclic    -- thread ``t`` owns rows ``t, t+p, t+2p, ...``
* 1D column cyclic -- thread ``t`` owns columns ``t, t+p, ...``
* 2D cyclic        -- thread ``(ti, tj)`` owns elements ``(ti + a*r,
  tj + b*r)`` for the ``r x r`` thread grid

:class:`Layout` fixes the interface: ownership queries, functional
scatter/gather between the global matrix and per-thread storage (batched,
because the engine runs many problems in lockstep), and the element
counts that determine register pressure and load balance.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ShapeError

__all__ = ["Layout"]


class Layout(abc.ABC):
    """Partition of an ``m x n`` matrix over ``threads`` threads."""

    def __init__(self, m: int, n: int, threads: int) -> None:
        if m < 1 or n < 1:
            raise ShapeError(f"matrix dimensions must be positive, got {m}x{n}")
        if threads < 1:
            raise ShapeError("need at least one thread")
        self.m = m
        self.n = n
        self.threads = threads

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def owner(self, i: int, j: int) -> int:
        """Flat thread id owning element ``(i, j)``."""

    @abc.abstractmethod
    def scatter(self, matrices: np.ndarray) -> np.ndarray:
        """Distribute ``(batch, m, n)`` matrices into per-thread storage."""

    @abc.abstractmethod
    def gather(self, storage: np.ndarray) -> np.ndarray:
        """Reassemble ``(batch, m, n)`` matrices from per-thread storage."""

    @abc.abstractmethod
    def elements_per_thread(self) -> int:
        """Register-tile capacity each thread must provide (the maximum)."""

    # ------------------------------------------------------------------
    def _check_input(self, matrices: np.ndarray) -> np.ndarray:
        arr = np.asarray(matrices)
        if arr.ndim == 2:
            arr = arr[None]
        if arr.ndim != 3 or arr.shape[1] != self.m or arr.shape[2] != self.n:
            raise ShapeError(
                f"expected (batch, {self.m}, {self.n}) matrices, got {arr.shape}"
            )
        return arr

    def ownership_map(self) -> np.ndarray:
        """``(m, n)`` array of flat owner ids (Figure 6's numbers)."""
        out = np.empty((self.m, self.n), dtype=np.int64)
        for i in range(self.m):
            for j in range(self.n):
                out[i, j] = self.owner(i, j)
        return out

    def load_balance(self) -> float:
        """min/max elements over threads: 1.0 means perfectly balanced."""
        counts = np.bincount(
            self.ownership_map().ravel(), minlength=self.threads
        )
        return counts.min() / counts.max() if counts.max() else 1.0

    def column_owners(self, j: int) -> np.ndarray:
        """Distinct threads holding parts of column ``j``."""
        if not 0 <= j < self.n:
            raise ShapeError(f"column {j} out of range")
        return np.unique([self.owner(i, j) for i in range(self.m)])

    def row_owners(self, i: int) -> np.ndarray:
        """Distinct threads holding parts of row ``i``."""
        if not 0 <= i < self.m:
            raise ShapeError(f"row {i} out of range")
        return np.unique([self.owner(i, j) for j in range(self.n)])
