"""2D cyclic layout -- the layout the paper's kernels use.

Thread ``(ti, tj)`` of an ``r x r`` grid owns elements
``A[ti + ii*r, tj + jj*r]`` -- Listing 4's load loop.  Matrices whose
dimensions are not multiples of ``r`` are zero-padded up to the tile
grid; zero padding is invariant under the factorizations' updates, so
kernels can ignore it until the final gather.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import LaunchConfigurationError, ShapeError
from .base import Layout

__all__ = ["Cyclic2D"]


class Cyclic2D(Layout):
    """2D cyclic distribution over a square thread grid."""

    def __init__(self, m: int, n: int, threads: int) -> None:
        super().__init__(m, n, threads)
        r = math.isqrt(threads)
        if r * r != threads:
            raise LaunchConfigurationError(
                f"2D cyclic layout needs a square thread count, got {threads}"
            )
        self.rdim = r
        self.hreg = -(-m // r)
        self.wreg = -(-n // r)

    # ------------------------------------------------------------------
    def owner(self, i: int, j: int) -> int:
        if not (0 <= i < self.m and 0 <= j < self.n):
            raise ShapeError(f"element ({i}, {j}) out of range")
        return (i % self.rdim) * self.rdim + (j % self.rdim)

    def owner_coords(self, i: int, j: int) -> tuple[int, int]:
        """(tid, col) grid coordinates, the paper's naming in Listing 5."""
        return i % self.rdim, j % self.rdim

    def local_index(self, i: int, j: int) -> tuple[int, int]:
        """(ii, jj) register-tile indices of element ``(i, j)``."""
        return i // self.rdim, j // self.rdim

    def elements_per_thread(self) -> int:
        return self.hreg * self.wreg

    # ------------------------------------------------------------------
    def scatter(self, matrices: np.ndarray) -> np.ndarray:
        """(batch, m, n) -> (batch, rdim, rdim, hreg, wreg) register tiles."""
        arr = self._check_input(matrices)
        batch = arr.shape[0]
        r = self.rdim
        padded = np.zeros((batch, self.hreg * r, self.wreg * r), dtype=arr.dtype)
        padded[:, : self.m, : self.n] = arr
        # padded[b, ti + ii*r, tj + jj*r] -> tiles[b, ti, tj, ii, jj]
        tiles = padded.reshape(batch, self.hreg, r, self.wreg, r)
        return np.ascontiguousarray(tiles.transpose(0, 2, 4, 1, 3))

    def gather(self, storage: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`scatter`."""
        tiles = np.asarray(storage)
        r = self.rdim
        expected = (r, r, self.hreg, self.wreg)
        if tiles.ndim == 4:
            tiles = tiles[None]
        if tiles.ndim != 5 or tiles.shape[1:] != expected:
            raise ShapeError(
                f"expected (batch, {', '.join(map(str, expected))}) tiles, "
                f"got {tiles.shape}"
            )
        batch = tiles.shape[0]
        padded = tiles.transpose(0, 3, 1, 4, 2).reshape(
            batch, self.hreg * r, self.wreg * r
        )
        return np.ascontiguousarray(padded[:, : self.m, : self.n])
