"""1D column-cyclic layout: thread ``t`` owns columns ``t, t+p, ...``."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .base import Layout

__all__ = ["ColumnCyclic"]


class ColumnCyclic(Layout):
    """1D column-cyclic distribution."""

    def __init__(self, m: int, n: int, threads: int) -> None:
        super().__init__(m, n, threads)
        self.cols_per_thread = -(-n // threads)

    def owner(self, i: int, j: int) -> int:
        if not (0 <= i < self.m and 0 <= j < self.n):
            raise ShapeError(f"element ({i}, {j}) out of range")
        return j % self.threads

    def elements_per_thread(self) -> int:
        return self.cols_per_thread * self.m

    def scatter(self, matrices: np.ndarray) -> np.ndarray:
        """(batch, m, n) -> (batch, threads, m, cols_per_thread), zero-padded."""
        arr = self._check_input(matrices)
        batch = arr.shape[0]
        p = self.threads
        padded = np.zeros((batch, self.m, self.cols_per_thread * p), dtype=arr.dtype)
        padded[:, :, : self.n] = arr
        tiles = padded.reshape(batch, self.m, self.cols_per_thread, p)
        return np.ascontiguousarray(tiles.transpose(0, 3, 1, 2))

    def gather(self, storage: np.ndarray) -> np.ndarray:
        tiles = np.asarray(storage)
        if tiles.ndim == 3:
            tiles = tiles[None]
        expected = (self.threads, self.m, self.cols_per_thread)
        if tiles.ndim != 4 or tiles.shape[1:] != expected:
            raise ShapeError(
                f"expected (batch, {', '.join(map(str, expected))}) storage, "
                f"got {tiles.shape}"
            )
        batch = tiles.shape[0]
        padded = tiles.transpose(0, 2, 3, 1).reshape(batch, self.m, -1)
        return np.ascontiguousarray(padded[:, :, : self.n])
