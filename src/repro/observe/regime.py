"""Roofline regime classification from Eq. 1/Eq. 2 term shares.

The paper's narrative is a two-regime story: the one-problem-per-thread
approach streams every operand through DRAM and rides the bandwidth
roofline (Section IV), while the one-problem-per-block approach keeps
the matrix in registers and is limited by the FP pipeline (Section V) --
with synchronization and shared-memory latency eating the difference at
small block sizes (Figure 2, Table VI).  A LogP-style model makes that
narrative *queryable*: the attribution report already splits a launch's
measured cycles across the model terms, so the dominant term names the
regime the launch actually ran in.

:func:`classify_regime` maps an
:class:`~repro.observe.attribution.AttributionReport` onto one of four
regimes and reports every regime's share of measured cycles;
:func:`record_regime` exports the result as labeled gauges on the
metrics registry so regime mix is monitorable across a fleet of runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from .attribution import AttributionReport

__all__ = [
    "REGIMES",
    "TERM_REGIME",
    "RegimeClassification",
    "classify_regime",
    "record_regime",
]

#: The four execution regimes, in tie-break priority order.
REGIMES = (
    "compute-bound",
    "dram-bandwidth-bound",
    "latency-bound",
    "sync-bound",
)

#: Eq. 1/Eq. 2 term -> the regime its measured cycles argue for.
#: Shared-memory traffic is latency-dominated at register-tile sizes
#: (alpha_sh per message, not beta_sh), so it groups with overhead under
#: "latency-bound" rather than with DRAM bandwidth.
TERM_REGIME = {
    "flops*gamma": "compute-bound",
    "msize*beta_glb": "dram-bandwidth-bound",
    "#msg*alpha_sh": "latency-bound",
    "overhead": "latency-bound",
    "nsync*alpha_sync": "sync-bound",
}


@dataclasses.dataclass(frozen=True)
class RegimeClassification:
    """One launch's regime verdict plus the full share breakdown."""

    #: Label carried over from the attribution report (e.g. the op name).
    label: str
    #: The winning regime (largest share; ties break in REGIMES order).
    regime: str
    #: Every regime's share of measured cycles (sums to 1 when any ran).
    shares: Dict[str, float]
    #: The single Eq. 1/Eq. 2 term with the most measured cycles.
    dominant_term: str
    #: Total measured cycles the shares are normalized against.
    measured_cycles: float

    def to_dict(self) -> dict:
        """Flat JSON-ready payload (for the run-history store)."""
        return {
            "label": self.label,
            "regime": self.regime,
            "shares": dict(self.shares),
            "dominant_term": self.dominant_term,
            "measured_cycles": self.measured_cycles,
        }


def classify_regime(report: AttributionReport) -> RegimeClassification:
    """Label a launch from the dominant Eq. 1/Eq. 2 term shares.

    An all-zero launch (nothing measured) degrades to ``latency-bound``
    with zero shares: with no useful work, overhead is by definition what
    the launch spent its time on.
    """
    totals = {regime: 0.0 for regime in REGIMES}
    per_term: Dict[str, float] = {}
    for term in report.terms:
        cycles = max(term.measured_cycles, 0.0)
        totals[TERM_REGIME.get(term.term, "latency-bound")] += cycles
        per_term[term.term] = cycles
    measured = sum(totals.values())
    if measured > 0:
        shares = {regime: totals[regime] / measured for regime in REGIMES}
        winner = max(REGIMES, key=lambda regime: shares[regime])
        dominant = max(per_term, key=lambda term: per_term[term])
    else:
        shares = {regime: 0.0 for regime in REGIMES}
        winner = "latency-bound"
        dominant = "overhead"
    return RegimeClassification(
        label=report.label,
        regime=winner,
        shares=shares,
        dominant_term=dominant,
        measured_cycles=measured,
    )


def record_regime(
    classification: RegimeClassification, registry=None, **labels
) -> None:
    """Export a classification as labeled metrics.

    Writes ``repro_regime_share{regime=...}`` gauges (one per regime) and
    bumps ``repro_launch_regime_total{regime=<winner>}``.  With no
    explicit ``registry`` the process default is used, respecting the
    global enable flag; passing a registry records unconditionally.
    """
    from . import metrics as _metrics

    if registry is None:
        if not _metrics.metrics_enabled():
            return
        registry = _metrics.default_registry()
    for regime, share in classification.shares.items():
        registry.set(
            "repro_regime_share",
            share,
            help="Share of measured cycles per execution regime.",
            regime=regime,
            **labels,
        )
    registry.inc(
        "repro_launch_regime_total",
        1.0,
        help="Launches classified into each execution regime.",
        regime=classification.regime,
        **labels,
    )
