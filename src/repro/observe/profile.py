"""Critical-path profiler: cross-process span trees over the tracer.

The paper's whole argument is a latency decomposition -- Eq. 1/Eq. 2
split a kernel's time into message latency, bandwidth, sync, and FLOP
terms.  This module applies the same discipline to the *runtime*: every
traced batch run emits a causally-linked span tree

``batch -> {plan, execute -> chunk[i] -> {submit[k], attempt[k]}, merge}``

with explicit ``span_id``/``parent_id`` edges, worker-side attempt spans
aligned onto the launch timeline via the tracer's clock-origin handshake
(:meth:`repro.observe.tracer.Tracer.ingest` with ``clock=``), and -- on
top of the tree -- three consumers:

* :func:`compute_profile` -- a :class:`BatchProfile`: the wall-clock
  **latency decomposition** (``plan`` / ``serialize`` / ``queue`` /
  ``compute`` / ``transfer`` / ``merge`` / ``other``, summing to the
  batch wall by construction), per-worker utilization, and the
  **straggler index** (max / median chunk compute time);
* :func:`critical_path` -- the chain of spans (and synthesized
  queue/transfer gaps) that determined the batch wall time;
* :func:`collapsed_stacks` / :func:`flow_events` -- flamegraph text
  (collapsed-stack format) and Chrome ``trace_event`` flow arrows
  linking each chunk's submit -> worker attempt -> completion.

Everything here is **pay-for-use**: span emission happens only when a
tracer is active *and* profiling is enabled (:func:`profiling_enabled`,
``REPRO_PROFILE=0`` to veto), so the untraced hot path keeps its single
``None`` check.  Profile spans are ordinary :class:`Event` records of
category ``"profile"`` stamped in real seconds on the tracer's
:meth:`~repro.observe.tracer.Tracer.now` clock -- they coexist with the
engine's simulated-cycle events and survive the Chrome trace round trip,
which is what lets ``python -m repro.observe.timeline`` rebuild the tree
from a trace file alone.
"""

from __future__ import annotations

import dataclasses
import os
import statistics
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .tracer import Event, Tracer

__all__ = [
    "PROFILE_CATEGORY",
    "PHASES",
    "BatchProfile",
    "CriticalStep",
    "ProfileEmitter",
    "SpanNode",
    "build_span_trees",
    "collapsed_stacks",
    "compute_profile",
    "critical_path",
    "flow_events",
    "profiling_enabled",
    "set_profiling_enabled",
]

#: Trace-event category profile spans are emitted (and filtered) under.
PROFILE_CATEGORY = "profile"

#: Decomposition phases, in timeline order.  ``plan`` and ``merge`` are
#: their spans; ``serialize``/``queue``/``compute``/``transfer`` classify
#: every instant of the execute window by what gated it (see
#: :func:`compute_profile`); ``other`` is the residual (supervisor
#: slack, idle gaps) so the phases sum to the batch wall exactly.
PHASES = ("plan", "serialize", "queue", "compute", "transfer", "merge", "other")

_enabled = os.environ.get("REPRO_PROFILE", "1").lower() not in ("0", "false", "off")


def profiling_enabled() -> bool:
    """Whether traced runs emit profile spans (on by default)."""
    return _enabled


def set_profiling_enabled(flag: bool) -> bool:
    """Toggle profile-span emission; returns the previous setting.

    Also settable at import time with ``REPRO_PROFILE=0``.  This gates
    *emission only* -- consumers still work on any trace that already
    holds profile events.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


class ProfileEmitter:
    """Scoped emitter of profile spans onto one tracer.

    The runtime builds one per traced batch (``scope`` is the batch's
    span id, e.g. ``"batch:3"``) and threads it through the supervisor;
    a ``None`` emitter is the disabled path everywhere.  Span ids are
    deterministic paths under the scope (``batch:3/chunk:7/submit:0``),
    so serial and sharded runs of the same plan produce structurally
    identical trees.
    """

    __slots__ = ("tracer", "scope")

    def __init__(self, tracer: Tracer, scope: str) -> None:
        self.tracer = tracer
        self.scope = scope

    def now(self) -> float:
        return self.tracer.now()

    def at(self, perf_ts: float) -> float:
        """A raw :func:`time.perf_counter` stamp on this profile clock."""
        return perf_ts - self.tracer.origin.perf

    def span_id(self, *parts: str) -> str:
        return "/".join((self.scope,) + parts)

    def emit(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        *,
        span_id: str,
        parent_id: Optional[str],
        **args: Any,
    ) -> None:
        """Record one finished profile span with explicit tree edges."""
        if end is None:
            end = self.tracer.now()
        payload = dict(args)
        payload["span_id"] = span_id
        if parent_id is not None:
            payload["parent_id"] = parent_id
        self.tracer.complete(
            name,
            PROFILE_CATEGORY,
            ts=start,
            dur=max(0.0, end - start),
            **payload,
        )


# ----------------------------------------------------------------------
# Span tree reconstruction
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpanNode:
    """One profile span, linked into its batch tree."""

    span_id: str
    name: str
    start: float
    dur: float
    parent_id: Optional[str]
    args: Dict[str, Any]
    children: List["SpanNode"] = dataclasses.field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.dur

    def walk(self):
        """This node and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["SpanNode"]:
        """First descendant (or self) with ``name``, depth first."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def signature(self) -> tuple:
        """Structure-only view: ``(name, sorted child signatures)``.

        Timing, worker pids, and span ids are erased, so a serial and a
        sharded execution of the same chunk plan compare equal.
        """
        return (self.name, tuple(sorted(c.signature() for c in self.children)))


def build_span_trees(
    events: Iterable[Event], scope: Optional[str] = None
) -> List[SpanNode]:
    """Reconstruct span trees from profile events.

    Keeps complete (``"X"``) events of category ``"profile"`` whose args
    carry a ``span_id``; with ``scope``, only spans under that batch id.
    Returns the roots (spans whose parent is absent), each with children
    sorted by ``(start, span_id)``.  Orphans -- a ``parent_id`` naming a
    span that never arrived (ring-buffer overflow) -- become roots too,
    so a truncated trace degrades visibly instead of crashing.
    """
    nodes: Dict[str, SpanNode] = {}
    for ev in events:
        if ev.ph != "X" or ev.category != PROFILE_CATEGORY or not ev.args:
            continue
        span_id = ev.args.get("span_id")
        if not isinstance(span_id, str):
            continue
        if scope is not None and not (
            span_id == scope or span_id.startswith(scope + "/")
        ):
            continue
        nodes[span_id] = SpanNode(
            span_id=span_id,
            name=ev.name,
            start=float(ev.ts),
            dur=float(ev.dur),
            parent_id=ev.args.get("parent_id"),
            args=dict(ev.args),
        )
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start, n.span_id))
    roots.sort(key=lambda n: (n.start, n.span_id))
    return roots


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CriticalStep:
    """One segment of the chain that determined the batch wall time."""

    name: str
    span_id: str
    start: float
    dur: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _last_attempt(chunk: SpanNode) -> Optional[SpanNode]:
    attempts = [c for c in chunk.children if c.name == "attempt"]
    return max(attempts, key=lambda a: a.end) if attempts else None


def _chunk_index(chunk: SpanNode) -> int:
    try:
        return int(chunk.args.get("chunk", -1))
    except (TypeError, ValueError):
        return -1


def critical_path(root: SpanNode) -> List[CriticalStep]:
    """The span chain that determined ``root``'s end time.

    For a batch tree this is ``plan -> (critical chunk: submit, queue,
    attempt, transfer) -> merge`` where the critical chunk is the one
    whose completion gated the execute window; ``queue`` and ``transfer``
    are synthesized from the measured gaps submit-end -> attempt-start
    and attempt-end -> chunk-end.  For an unfamiliar tree it falls back
    to repeatedly descending into the child that finished last.
    """
    execute = root.find("execute")
    chunks = (
        [c for c in execute.children if c.name == "chunk"] if execute else []
    )
    if not chunks:
        return _generic_critical_path(root)

    steps: List[CriticalStep] = []
    plan = next((c for c in root.children if c.name == "plan"), None)
    if plan is not None:
        steps.append(CriticalStep("plan", plan.span_id, plan.start, plan.dur))
    winner = max(chunks, key=lambda c: (c.end, c.start))
    submits = sorted(
        (c for c in winner.children if c.name == "submit"),
        key=lambda c: c.start,
    )
    attempt = _last_attempt(winner)
    if submits:
        last_submit = submits[-1]
        steps.append(
            CriticalStep(
                "submit", last_submit.span_id, last_submit.start, last_submit.dur
            )
        )
        if attempt is not None and attempt.start > last_submit.end:
            steps.append(
                CriticalStep(
                    "queue",
                    winner.span_id + "/queue",
                    last_submit.end,
                    attempt.start - last_submit.end,
                )
            )
    if attempt is not None:
        steps.append(
            CriticalStep("attempt", attempt.span_id, attempt.start, attempt.dur)
        )
        if winner.end > attempt.end:
            steps.append(
                CriticalStep(
                    "transfer",
                    winner.span_id + "/transfer",
                    attempt.end,
                    winner.end - attempt.end,
                )
            )
    else:
        steps.append(
            CriticalStep("chunk", winner.span_id, winner.start, winner.dur)
        )
    merge = next((c for c in root.children if c.name == "merge"), None)
    if merge is not None:
        steps.append(CriticalStep("merge", merge.span_id, merge.start, merge.dur))
    return steps


def _generic_critical_path(root: SpanNode) -> List[CriticalStep]:
    steps = [CriticalStep(root.name, root.span_id, root.start, root.dur)]
    node = root
    while node.children:
        node = max(node.children, key=lambda c: (c.end, c.start))
        steps.append(CriticalStep(node.name, node.span_id, node.start, node.dur))
    return steps


# ----------------------------------------------------------------------
# Latency decomposition
# ----------------------------------------------------------------------
@dataclasses.dataclass
class BatchProfile:
    """Latency decomposition of one traced batch run.

    ``phases`` maps every name in :data:`PHASES` to seconds on the
    launch timeline; they sum to ``wall_s`` by construction (``other``
    is the measured residual).  ``chunk_walls``/``chunk_queues`` are per
    chunk index; ``worker_busy_s`` is attempt time summed per worker
    pid over the execute window.
    """

    wall_s: float
    phases: Dict[str, float]
    critical_path: List[CriticalStep]
    chunk_walls: Dict[int, float]
    chunk_queues: Dict[int, float]
    worker_busy_s: Dict[int, float]
    execute_s: float
    attempts: int
    scope: str = ""

    @property
    def straggler_index(self) -> float:
        """Max over median chunk compute time (1.0 = perfectly even)."""
        walls = [w for w in self.chunk_walls.values() if w > 0.0]
        if not walls:
            return 1.0
        median = statistics.median(walls)
        return max(walls) / median if median > 0 else 1.0

    @property
    def queue_share(self) -> float:
        """Chunk time spent queued, as a share of queued + computing."""
        queued = sum(self.chunk_queues.values())
        busy = sum(self.chunk_walls.values())
        total = queued + busy
        return queued / total if total > 0 else 0.0

    @property
    def utilization(self) -> Dict[int, float]:
        """Per-worker busy share of the execute window."""
        if self.execute_s <= 0:
            return {pid: 0.0 for pid in self.worker_busy_s}
        return {
            pid: min(1.0, busy / self.execute_s)
            for pid, busy in sorted(self.worker_busy_s.items())
        }

    @property
    def coverage(self) -> float:
        """Share of the wall attributed to a named (non-``other``) phase."""
        if self.wall_s <= 0:
            return 0.0
        named = sum(v for k, v in self.phases.items() if k != "other")
        return named / self.wall_s

    def phase_shares(self) -> Dict[str, float]:
        """Each phase as a fraction of the wall (0 when wall is 0)."""
        if self.wall_s <= 0:
            return {k: 0.0 for k in self.phases}
        return {k: v / self.wall_s for k, v in self.phases.items()}

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "wall_s": self.wall_s,
            "phases": dict(self.phases),
            "phase_shares": self.phase_shares(),
            "critical_path": [s.to_dict() for s in self.critical_path],
            "chunk_walls": {str(k): v for k, v in sorted(self.chunk_walls.items())},
            "chunk_queues": {
                str(k): v for k, v in sorted(self.chunk_queues.items())
            },
            "worker_utilization": {
                str(k): v for k, v in self.utilization.items()
            },
            "execute_s": self.execute_s,
            "attempts": self.attempts,
            "straggler_index": self.straggler_index,
            "queue_share": self.queue_share,
            "coverage": self.coverage,
        }

    def summary(self) -> dict:
        """Compact record for run history / drift detection."""
        return {
            "phases": dict(self.phases),
            "wall_s": self.wall_s,
            "straggler_index": self.straggler_index,
            "queue_share": self.queue_share,
            "coverage": self.coverage,
        }


def _interval_active(intervals: List[Tuple[float, float]], a: float, b: float) -> bool:
    return any(s < b and e > a for s, e in intervals)


def _execute_partition(
    execute: SpanNode, chunks: List[SpanNode]
) -> Dict[str, float]:
    """Classify every instant of the execute window by what gated it.

    Sweep over the union of span boundaries: a segment counts as
    ``compute`` when any attempt is running, else ``serialize`` when the
    launch thread is submitting, else ``transfer`` when a finished
    attempt's chunk has not completed yet (result crossing back), else
    ``queue`` when a submitted chunk is waiting for a worker, else idle
    (left for the ``other`` residual).  The classification is a true
    partition, so it is exact for serial *and* overlapped execution --
    unlike a critical-chunk-only account, which strands every
    non-critical chunk's compute time in the residual.
    """
    e0, e1 = execute.start, execute.end
    submits: List[Tuple[float, float]] = []
    attempts: List[Tuple[float, float]] = []
    transfers: List[Tuple[float, float]] = []
    pending: List[Tuple[float, float]] = []
    for chunk in chunks:
        for child in chunk.children:
            if child.name == "submit":
                submits.append((child.start, child.end))
            elif child.name == "attempt":
                attempts.append((child.start, child.end))
        last = _last_attempt(chunk)
        if last is not None and chunk.end > last.end:
            transfers.append((last.end, chunk.end))
        pending.append((chunk.start, chunk.end))
    points = {e0, e1}
    for intervals in (submits, attempts, transfers, pending):
        for a, b in intervals:
            if e0 < a < e1:
                points.add(a)
            if e0 < b < e1:
                points.add(b)
    bounds = sorted(points)
    out = {"serialize": 0.0, "queue": 0.0, "compute": 0.0, "transfer": 0.0}
    for a, b in zip(bounds, bounds[1:]):
        width = b - a
        if _interval_active(attempts, a, b):
            out["compute"] += width
        elif _interval_active(submits, a, b):
            out["serialize"] += width
        elif _interval_active(transfers, a, b):
            out["transfer"] += width
        elif _interval_active(pending, a, b):
            out["queue"] += width
    return out


def compute_profile(root: SpanNode) -> BatchProfile:
    """Decompose a batch span tree into a :class:`BatchProfile`.

    The named phases partition the launch timeline: ``plan`` and
    ``merge`` are their spans, the execute window splits into
    ``serialize``/``queue``/``compute``/``transfer`` by sweeping its
    span boundaries (:func:`_execute_partition`), and ``other`` is the
    measured residual -- so the seven phases sum to the batch wall
    exactly, whether the chunks ran serially or overlapped on a pool.
    """
    wall = root.dur
    phases = {name: 0.0 for name in PHASES}
    path = critical_path(root)
    for step in path:
        if step.name == "plan":
            phases["plan"] = step.dur
        elif step.name == "merge":
            phases["merge"] = step.dur

    execute = root.find("execute")
    execute_s = execute.dur if execute is not None else 0.0
    chunk_walls: Dict[int, float] = {}
    chunk_queues: Dict[int, float] = {}
    worker_busy: Dict[int, float] = {}
    attempts = 0
    chunks = (
        [c for c in execute.children if c.name == "chunk"]
        if execute is not None
        else []
    )
    if execute is not None:
        phases.update(_execute_partition(execute, chunks))
    for chunk in chunks:
        index = _chunk_index(chunk)
        submits = sorted(
            (c for c in chunk.children if c.name == "submit"),
            key=lambda c: c.start,
        )
        attempt = _last_attempt(chunk)
        attempt_nodes = [c for c in chunk.children if c.name == "attempt"]
        attempts += len(attempt_nodes)
        for node in attempt_nodes:
            pid = node.args.get("worker", node.args.get("pid", 0))
            try:
                pid = int(pid)
            except (TypeError, ValueError):
                pid = 0
            worker_busy[pid] = worker_busy.get(pid, 0.0) + node.dur
        if attempt is not None:
            chunk_walls[index] = attempt.dur
            if submits:
                chunk_queues[index] = max(0.0, attempt.start - submits[-1].end)
            else:
                chunk_queues[index] = 0.0
        else:
            chunk_walls[index] = chunk.dur
            chunk_queues[index] = 0.0
    named = sum(phases[name] for name in PHASES if name != "other")
    phases["other"] = wall - named

    return BatchProfile(
        wall_s=wall,
        phases=phases,
        critical_path=path,
        chunk_walls=chunk_walls,
        chunk_queues=chunk_queues,
        worker_busy_s=worker_busy,
        execute_s=execute_s,
        attempts=attempts,
        scope=root.span_id,
    )


# ----------------------------------------------------------------------
# Flamegraph + Chrome flow arrows
# ----------------------------------------------------------------------
def collapsed_stacks(
    roots: Iterable[SpanNode], scale: float = 1e6
) -> str:
    """The trees in collapsed-stack (flamegraph.pl / speedscope) format.

    One ``a;b;c <value>`` line per span, where the value is the span's
    *self* time (duration minus child durations) in microseconds
    (``scale=1e6``).  Feed to any flamegraph renderer.
    """
    lines: List[str] = []

    def emit(node: SpanNode, stack: Tuple[str, ...]) -> None:
        frames = stack + (node.name,)
        self_time = node.dur - sum(c.dur for c in node.children)
        value = int(round(max(0.0, self_time) * scale))
        lines.append(";".join(frames) + f" {value}")
        for child in node.children:
            emit(child, frames)

    for root in roots:
        emit(root, ())
    return "\n".join(lines) + "\n" if lines else ""


def flow_events(events: Iterable[Event]) -> List[dict]:
    """Chrome ``trace_event`` flow arrows for every chunk's journey.

    For each chunk span with at least one submit and one attempt child,
    emits an ``s`` (start) record at the submit, a ``t`` (step) at the
    worker attempt, and an ``f`` (finish) at chunk completion -- the
    arrows that make the submit -> worker -> merge hand-off legible in
    Perfetto.  Returns plain dicts ready to append to ``traceEvents``.
    """
    arrows: List[dict] = []
    flow_id = 0
    for root in build_span_trees(events):
        execute = root.find("execute")
        if execute is None:
            continue
        for chunk in execute.children:
            if chunk.name != "chunk":
                continue
            submits = [c for c in chunk.children if c.name == "submit"]
            attempt = _last_attempt(chunk)
            if not submits or attempt is None:
                continue
            flow_id += 1
            pid = attempt.args.get("worker", attempt.args.get("pid", 0))
            common = {"cat": PROFILE_CATEGORY, "name": "chunk-flow", "pid": 0}
            arrows.append(
                dict(common, ph="s", id=flow_id, ts=float(submits[0].start), tid=0)
            )
            arrows.append(
                dict(
                    common,
                    ph="t",
                    id=flow_id,
                    ts=float(attempt.start),
                    tid=_safe_int(pid),
                )
            )
            arrows.append(
                dict(common, ph="f", bp="e", id=flow_id, ts=float(chunk.end), tid=0)
            )
    return arrows


def _safe_int(value: Any) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return 0
