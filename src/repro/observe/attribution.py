"""Model-vs-measured attribution: put names on the Figure-8 wedge.

The paper's Equations 1 and 2 predict a launch's cycles as a sum of
terms -- ``#msg*alpha``, ``msize*beta``, ``flops*gamma``,
``nsync*alpha_sync``.  The engine's :class:`~repro.gpu.clock.CycleClock`
measures the same launch as a sum of categories -- ``compute``,
``shared``, ``sync``, ``global``, ``overhead``.  The two decompositions
align one-to-one, so any model/measurement gap can be attributed *per
term* instead of inspected as one opaque total:

==================  ==================  =================================
Eq. 1/2 term        measured category   residual's physical meaning
==================  ==================  =================================
``flops*gamma``     ``compute``         pipeline effects the FMA-chain
                                        calibration missed
``#msg*alpha_sh``   ``shared``          bank-conflict replays
``nsync*alpha_sync``  ``sync``          barrier latency vs the Fig. 2 fit
``msize*beta_glb``  ``global``          DRAM contention overlap (the
                                        Table-V 0.59 factor)
``overhead``        ``overhead``        bookkeeping + spills + clock()
                                        reads -- the Figure 8 wedge; the
                                        model predicts 0 here by design
==================  ==================  =================================

:func:`attribute_launch` evaluates each term at the launch's *measured*
event counts (from the engine's counter registry) and reports predicted
vs measured cycles with per-term residuals.  Passing the analytic
:class:`~repro.model.per_block_model.PerBlockPrediction` adds a third
column -- the a-priori Table-VI estimate -- so the report shows both
"the model formula at observed counts" and "the model's own counts".
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..gpu.simt import LaunchResult
from ..model.parameters import ModelParameters

__all__ = [
    "TermAttribution",
    "AttributionReport",
    "attribute_launch",
    "format_attribution",
]


@dataclasses.dataclass(frozen=True)
class TermAttribution:
    """One Eq. 1/Eq. 2 term evaluated against its measured category."""

    #: Model-term label, e.g. ``"flops*gamma"``.
    term: str
    #: CycleClock category the term is measured from.
    category: str
    #: The raw event count driving the term (threads-relative units).
    count: float
    #: Term evaluated at the measured count with Table-IV parameters.
    eq_cycles: float
    #: Cycles the engine actually charged under the category.
    measured_cycles: float
    #: The analytic model's own a-priori estimate (None when no
    #: prediction was supplied).
    model_cycles: Optional[float] = None

    @property
    def residual(self) -> float:
        """Measured minus the equation term at measured counts."""
        return self.measured_cycles - self.eq_cycles

    @property
    def model_residual(self) -> Optional[float]:
        """Measured minus the a-priori model estimate."""
        if self.model_cycles is None:
            return None
        return self.measured_cycles - self.model_cycles


@dataclasses.dataclass(frozen=True)
class AttributionReport:
    """Per-term residual table for one launch."""

    label: str
    threads: int
    terms: tuple[TermAttribution, ...]

    @property
    def measured_total(self) -> float:
        return sum(t.measured_cycles for t in self.terms)

    @property
    def eq_total(self) -> float:
        return sum(t.eq_cycles for t in self.terms)

    @property
    def model_total(self) -> Optional[float]:
        if any(t.model_cycles is None for t in self.terms):
            return None
        return sum(t.model_cycles for t in self.terms)

    @property
    def residual_total(self) -> float:
        return self.measured_total - self.eq_total

    def term(self, name: str) -> TermAttribution:
        for t in self.terms:
            if t.term == name:
                return t
        raise KeyError(f"no term {name!r} in report {self.label!r}")

    def to_dict(self) -> dict:
        """Flat JSON-ready payload (for the metrics exporter)."""
        return {
            "label": self.label,
            "threads": self.threads,
            "measured_total": self.measured_total,
            "eq_total": self.eq_total,
            "residual_total": self.residual_total,
            "model_total": self.model_total,
            "terms": [
                {
                    "term": t.term,
                    "category": t.category,
                    "count": t.count,
                    "eq_cycles": t.eq_cycles,
                    "measured_cycles": t.measured_cycles,
                    "model_cycles": t.model_cycles,
                    "residual": t.residual,
                    "model_residual": t.model_residual,
                }
                for t in self.terms
            ],
        }


def attribute_launch(
    params: ModelParameters,
    launch: LaunchResult,
    label: str = "launch",
    prediction=None,
) -> AttributionReport:
    """Build the per-term residual table for an engine launch.

    ``prediction`` is an optional
    :class:`~repro.model.per_block_model.PerBlockPrediction`; when given,
    its per-operation totals populate the ``model_cycles`` column.
    """
    counters = launch.counters
    if counters is None:
        raise ValueError(
            "launch carries no counter registry; run it on a BlockEngine "
            "from this version of the library"
        )
    breakdown = launch.breakdown
    device = params.device
    threads = launch.threads

    model = {}
    if prediction is not None:
        model = {
            "flops*gamma": sum(
                op.flops_cycles for col in prediction.columns for op in col.ops
            ),
            "#msg*alpha_sh": sum(
                op.shared_cycles for col in prediction.columns for op in col.ops
            ),
            "nsync*alpha_sync": sum(
                op.sync_cycles for col in prediction.columns for op in col.ops
            ),
            "msize*beta_glb": prediction.dram_cycles,
            "overhead": 0.0,
        }

    issue_ops = counters.value("flops.issue_ops")
    eq_compute = (
        issue_ops * params.gamma
        + counters.value("div.cycles")
        + counters.value("sqrt.cycles")
    )

    shared_msgs = counters.value("shared.transactions")
    eq_shared = shared_msgs * params.alpha_sh

    nsync = counters.value("sync.count")
    eq_sync = nsync * params.sync_latency(threads)

    # Section V-D's recipe: the block's bytes cost a fair share of the
    # achieved bandwidth across all resident blocks.  The engine applies
    # the empirically observed overlap factor instead; the residual is
    # the overlap benefit.
    global_bytes = counters.value("global.bytes")
    resident = launch.occupancy.blocks_per_chip
    eq_global = device.seconds_to_cycles(
        global_bytes * resident * params.beta_glb
    )

    terms = (
        TermAttribution(
            term="flops*gamma",
            category="compute",
            count=issue_ops,
            eq_cycles=eq_compute,
            measured_cycles=breakdown.get("compute", 0.0),
            model_cycles=model.get("flops*gamma"),
        ),
        TermAttribution(
            term="#msg*alpha_sh",
            category="shared",
            count=shared_msgs,
            eq_cycles=eq_shared,
            measured_cycles=breakdown.get("shared", 0.0),
            model_cycles=model.get("#msg*alpha_sh"),
        ),
        TermAttribution(
            term="nsync*alpha_sync",
            category="sync",
            count=nsync,
            eq_cycles=eq_sync,
            measured_cycles=breakdown.get("sync", 0.0),
            model_cycles=model.get("nsync*alpha_sync"),
        ),
        TermAttribution(
            term="msize*beta_glb",
            category="global",
            count=global_bytes,
            eq_cycles=eq_global,
            measured_cycles=breakdown.get("global", 0.0),
            model_cycles=model.get("msize*beta_glb"),
        ),
        TermAttribution(
            term="overhead",
            category="overhead",
            count=counters.value("overhead.events")
            + counters.value("spill.accesses"),
            eq_cycles=0.0,
            measured_cycles=breakdown.get("overhead", 0.0),
            model_cycles=model.get("overhead"),
        ),
    )
    return AttributionReport(label=label, threads=threads, terms=terms)


def format_attribution(report: AttributionReport) -> str:
    """Render the residual table as plain text (repro.reporting style)."""
    from ..reporting.tables import format_table

    with_model = report.model_total is not None
    headers = ["term", "count", "Eq. cycles", "measured", "residual"]
    if with_model:
        headers.insert(3, "model cycles")
    rows = []
    for t in report.terms:
        row = [
            t.term,
            f"{t.count:,.0f}",
            f"{t.eq_cycles:,.0f}",
            f"{t.measured_cycles:,.0f}",
            f"{t.residual:+,.0f}",
        ]
        if with_model:
            row.insert(3, f"{t.model_cycles:,.0f}")
        rows.append(row)
    total_row = [
        "TOTAL",
        "",
        f"{report.eq_total:,.0f}",
        f"{report.measured_total:,.0f}",
        f"{report.residual_total:+,.0f}",
    ]
    if with_model:
        total_row.insert(3, f"{report.model_total:,.0f}")
    rows.append(total_row)
    return format_table(
        headers, rows,
        title=f"Model-vs-measured attribution: {report.label} "
        f"({report.threads} threads)",
    )
