"""Hardware-event counter registry.

The engine and the instrumented subsystems report raw event *counts*
(FLOP groups, shared transactions, bank-conflict replays, syncs, spill
accesses, DRAM row hits/misses, cache hits...) into a
:class:`CounterRegistry`.  Counters are the quantities the paper's
Equations 1 and 2 multiply by the Table-IV latencies, so a registry
snapshot is exactly the input the attribution layer
(:mod:`repro.observe.attribution`) needs to evaluate the model against a
measured launch.

A registry aggregates three ways at once:

* **flat** -- every ``add`` lands under its counter name;
* **per stage** -- inside a ``with registry.stage("doppler"):`` scope the
  same adds are also credited to the active stage, giving the
  per-pipeline-stage totals the STAP pipeline reports;
* **statistics** -- each counter tracks total, event count, and maximum,
  so value-like observations (e.g. LU element growth) ride the same path
  as pure counts.

The registry is plain dictionaries and floats: cheap enough that the
:class:`~repro.gpu.simt.BlockEngine` keeps one per launch unconditionally.
"""

from __future__ import annotations

import dataclasses
import math
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

import numpy as np

__all__ = ["CounterStat", "CounterRegistry"]


@dataclasses.dataclass
class CounterStat:
    """Running statistics of one counter."""

    total: float = 0.0
    count: int = 0
    maximum: float = float("-inf")

    def add(self, value: float, events: int = 1) -> None:
        self.total += value
        self.count += events
        if value > self.maximum:
            self.maximum = value

    def as_dict(self) -> dict:
        """JSON-strict view: a never-observed maximum reports as ``None``.

        ``maximum`` starts at ``-inf`` (and stays there when every update
        came through :meth:`CounterRegistry.add_aggregate` without one);
        ``-Infinity`` is not valid strict JSON, so it must not reach the
        exporters.
        """
        maximum = self.maximum if math.isfinite(self.maximum) else None
        return {"total": self.total, "count": self.count, "max": maximum}


class CounterRegistry:
    """Named event counters with optional per-stage aggregation."""

    def __init__(self) -> None:
        self._stats: Dict[str, CounterStat] = {}
        self._stage_stack: list[str] = []
        self._by_stage: Dict[str, Dict[str, CounterStat]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` under ``name`` (and the active stage)."""
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = CounterStat()
        stat.add(value)
        if self._stage_stack:
            stage = self._by_stage.setdefault(self._stage_stack[-1], {})
            sstat = stage.get(name)
            if sstat is None:
                sstat = stage[name] = CounterStat()
            sstat.add(value)

    def observe(self, name: str, values) -> None:
        """Record a batch of value observations in one update.

        Unlike repeated :meth:`add` calls this is O(1) in Python work for
        an array: total/count/max are folded with NumPy.
        """
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        finite = arr[np.isfinite(arr)]
        if finite.size < arr.size:
            self.add(name + ".nonfinite", float(arr.size - finite.size))
        if finite.size == 0:
            return
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = CounterStat()
        stat.total += float(finite.sum())
        stat.count += int(finite.size)
        peak = float(finite.max())
        if peak > stat.maximum:
            stat.maximum = peak

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Credit all adds inside the body to pipeline stage ``name``."""
        self._stage_stack.append(name)
        try:
            yield
        finally:
            self._stage_stack.pop()

    def add_aggregate(
        self,
        name: str,
        total: float,
        events: int = 1,
        maximum: Optional[float] = None,
    ) -> None:
        """Install a pre-aggregated statistic in one update.

        Hot producers (the SIMT engine) accumulate plain scalars during a
        launch and ingest them here once at the end, instead of paying a
        registry update per hardware event.  ``maximum`` is recorded only
        when the producer actually tracked it.
        """
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = CounterStat()
        stat.total += total
        stat.count += int(events)
        if maximum is not None and maximum > stat.maximum:
            stat.maximum = maximum

    def merge(self, other: "CounterRegistry", prefix: str = "") -> None:
        """Fold ``other``'s totals into this registry (stages included).

        Merging is plain addition in iteration order, so folding the
        per-shard registries of a sharded launch **in submission order**
        reproduces the serial path's totals exactly -- the invariant the
        :mod:`repro.runtime` merge layer is tested against.
        """
        for name, stat in other._stats.items():
            dest = self._stats.get(prefix + name)
            if dest is None:
                dest = self._stats[prefix + name] = CounterStat()
            dest.total += stat.total
            dest.count += stat.count
            if stat.maximum > dest.maximum:
                dest.maximum = stat.maximum
        for stage, counters in other._by_stage.items():
            dest_stage = self._by_stage.setdefault(stage, {})
            for name, stat in counters.items():
                dest = dest_stage.get(prefix + name)
                if dest is None:
                    dest = dest_stage[prefix + name] = CounterStat()
                dest.total += stat.total
                dest.count += stat.count
                if stat.maximum > dest.maximum:
                    dest.maximum = stat.maximum

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, default: float = 0.0) -> float:
        stat = self._stats.get(name)
        return stat.total if stat is not None else default

    def count(self, name: str) -> int:
        stat = self._stats.get(name)
        return stat.count if stat is not None else 0

    def maximum(self, name: str, default: float = float("nan")) -> float:
        stat = self._stats.get(name)
        return stat.maximum if stat is not None and stat.count else default

    def mean(self, name: str, default: float = float("nan")) -> float:
        stat = self._stats.get(name)
        if stat is None or stat.count == 0:
            return default
        return stat.total / stat.count

    def names(self) -> list[str]:
        return sorted(self._stats)

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{name: total}`` view (sorted for stable output)."""
        return {name: self._stats[name].total for name in sorted(self._stats)}

    def snapshot(self) -> Dict[str, dict]:
        """Full per-counter statistics view."""
        return {name: self._stats[name].as_dict() for name in sorted(self._stats)}

    def stages(self) -> Dict[str, Dict[str, float]]:
        """Per-stage ``{stage: {name: total}}`` totals."""
        return {
            stage: {name: stat.total for name, stat in sorted(counters.items())}
            for stage, counters in self._by_stage.items()
        }

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v.total:g}" for k, v in sorted(self._stats.items()))
        return f"CounterRegistry({parts})"
