"""Run-history store (JSONL) with rolling-window drift detection.

Every sharded launch appends one line to ``~/.cache/repro/history.jsonl``
(same root as the calibration/dispatch caches, ``REPRO_CACHE_DIR`` to
override): the :meth:`~repro.runtime.merge.BatchReport.summary` payload,
the per-group regime classification, and the per-term attribution
residuals.  Appends are version-stamped single ``write(2)`` calls with an
fsync, so concurrent runs interleave whole lines and a killed process
never leaves a torn record; readers skip lines that fail to parse or
carry a different schema stamp.

On top of the store, :func:`detect_drift` applies the same policy as
``scripts/check_bench_regression.py`` -- a direction-aware relative
tolerance -- continuously: the latest run's gauges are compared against
the *median* of their trailing window, and a gauge that moved beyond the
tolerance in its bad direction (throughput down, wall time up, residuals
up...) is flagged.  This is the monitoring loop the model enables: the
simulated engine is deterministic, so sustained movement in these gauges
means the code changed, the calibration changed, or the model stopped
explaining the measurement.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = [
    "DEFAULT_MAX_BYTES",
    "HISTORY_SCHEMA",
    "DriftFlag",
    "RunHistory",
    "default_history_path",
    "detect_drift",
    "gauge_direction",
    "record_gauges",
    "run_record",
]

#: Bump when the record layout changes; mismatched lines are skipped.
HISTORY_SCHEMA = 1

#: Size cap that triggers automatic compaction after an append.  16 MiB
#: of ~1 KiB records is years of launches; the cap exists so a pinned
#: cache directory on a long-lived host cannot grow without bound.
DEFAULT_MAX_BYTES = 16 << 20

#: Substrings marking a gauge as lower-is-better; everything else is
#: higher-is-better (throughput-like).  Mirrors the CI gate's
#: direction-aware policy.
_LOWER_IS_BETTER = (
    "wall",
    "wait",
    "residual",
    "err",
    "miss",
    "stale",
    "dropped",
    "fallback",
    "nonfinite",
    "failure",
    "retr",
    "timeout",
    "corrupt",
    # Profiler gauges: queued share, straggler spread, and every phase of
    # the latency decomposition ("phases." prefix) shrink when healthy.
    "queue",
    "straggler",
    "phases.",
)


def default_history_path() -> Path:
    """``history.jsonl`` under the persistent cache root."""
    from ..runtime.cache import cache_dir

    return cache_dir() / "history.jsonl"


class RunHistory:
    """Append-only JSONL store of per-launch telemetry records.

    ``max_records`` is the retention target compaction trims to;
    ``max_bytes`` is the size cap that *triggers* an automatic
    :meth:`compact` after an append (checked with one ``fstat`` on the
    already-open descriptor, so the common append stays one write + one
    fsync).  With ``max_records`` unset, rotation keeps the newest half
    of the valid records.  ``max_bytes=None`` disables rotation.
    """

    def __init__(
        self,
        path: Optional[Path | str] = None,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    ) -> None:
        self.path = Path(path) if path else default_history_path()
        self.max_records = max_records
        self.max_bytes = max_bytes

    def append(self, record: dict) -> Path:
        """Stamp and append ``record`` as one JSONL line; returns the path.

        The line is written with a single ``os.write`` on an
        ``O_APPEND`` descriptor and fsynced, so parallel writers cannot
        interleave partial lines.
        """
        from .export import _jsonable

        doc = {"schema": HISTORY_SCHEMA, "ts": time.time()}
        doc.update(_jsonable(record))
        line = json.dumps(doc, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
            size = os.fstat(fd).st_size
        finally:
            os.close(fd)
        if self.max_bytes is not None and size > self.max_bytes:
            keep = self.max_records
            if keep is None:
                keep = max(1, len(self.load()) // 2)
            self.compact(keep)
        return self.path

    def compact(self, max_records: Optional[int] = None) -> int:
        """Rewrite the store keeping the newest ``max_records`` lines.

        Valid lines are kept *verbatim* (schema stamp and all), so a
        compacted store loads identically to one that was never larger;
        torn/corrupt/foreign lines are dropped along the way.  The
        rewrite is atomic (tmp file + fsync + ``os.replace``) and counted
        in ``repro_history_compactions_total``.  Returns the number of
        lines dropped; the store is untouched when nothing would be.

        Rotation is a single-writer affair: a line appended by a
        concurrent process between the read and the replace would be
        lost, the standard logrotate caveat.
        """
        if max_records is None:
            max_records = self.max_records
        try:
            text = self.path.read_text()
        except OSError:
            return 0
        lines = [line for line in text.splitlines() if line.strip()]
        kept = []
        for line in lines:
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict) and doc.get("schema") == HISTORY_SCHEMA:
                kept.append(line)
        if max_records is not None:
            if max_records < 0:
                raise ValueError("max_records must be non-negative")
            kept = kept[max(0, len(kept) - max_records) :] if max_records else []
        dropped = len(lines) - len(kept)
        if dropped <= 0:
            return 0
        from . import metrics as _metrics
        from .export import atomic_write_text

        body = "\n".join(kept) + "\n" if kept else ""
        atomic_write_text(self.path, body)
        _metrics.counter_inc(
            "repro_history_compactions_total",
            help="Run-history rewrites that dropped old/corrupt lines.",
        )
        return dropped

    def load(self, limit: Optional[int] = None) -> List[dict]:
        """All valid records, oldest first (last ``limit`` when given).

        Torn, corrupt, or schema-mismatched lines are skipped rather
        than raised: a history file must survive version upgrades and
        interrupted writers.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if not isinstance(doc, dict) or doc.get("schema") != HISTORY_SCHEMA:
                continue
            records.append(doc)
        if limit is not None:
            records = records[-limit:]
        return records

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunHistory({self.path})"


def run_record(
    summary: dict,
    regimes: Optional[Sequence] = None,
    attribution: Optional[Sequence[dict]] = None,
    **meta,
) -> dict:
    """Build one history record from a launch's artifacts.

    ``summary`` is :meth:`BatchReport.summary`; ``regimes`` is a sequence
    of :class:`~repro.observe.regime.RegimeClassification`; ``attribution``
    holds per-group residual summaries.  ``meta`` adds identity fields
    (device name, git rev...).
    """
    record: dict = dict(meta)
    record["summary"] = summary
    if regimes:
        record["regimes"] = [
            r.to_dict() if hasattr(r, "to_dict") else dict(r) for r in regimes
        ]
    if attribution:
        record["attribution"] = list(attribution)
    return record


def record_gauges(record: dict) -> Dict[str, float]:
    """Flatten a record's finite numeric leaves into dotted gauge names.

    List items keyed by an identifying field (``op``, ``regime``,
    ``term``, ``label``) use it instead of their position, so gauges stay
    comparable across runs whose group order differs.  ``ts`` and
    ``schema`` are bookkeeping, not gauges.
    """
    gauges: Dict[str, float] = {}

    def walk(prefix: str, value) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            if math.isfinite(value):
                gauges[prefix] = float(value)
            return
        if isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}" if prefix else str(key), value[key])
            return
        if isinstance(value, list):
            for index, item in enumerate(value):
                key = str(index)
                if isinstance(item, dict):
                    for id_field in ("op", "regime", "term", "label"):
                        if isinstance(item.get(id_field), str):
                            key = item[id_field]
                            break
                walk(f"{prefix}.{key}" if prefix else key, item)

    walk("", record)
    gauges.pop("ts", None)
    gauges.pop("schema", None)
    return gauges


def gauge_direction(name: str) -> str:
    """``"higher"`` or ``"lower"`` -- which way is *better* for ``name``."""
    lowered = name.lower()
    if any(token in lowered for token in _LOWER_IS_BETTER):
        return "lower"
    return "higher"


@dataclasses.dataclass(frozen=True)
class DriftFlag:
    """One gauge that moved beyond tolerance in its bad direction."""

    gauge: str
    value: float
    median: float
    #: Signed relative deviation from the window median.
    deviation: float
    #: Which direction is better for this gauge.
    direction: str
    #: Number of prior records the median was taken over.
    window: int

    def __str__(self) -> str:
        return (
            f"{self.gauge}: {self.value:.4g} vs median {self.median:.4g} "
            f"({self.deviation:+.1%}, {self.direction} is better)"
        )


def detect_drift(
    records: Sequence[dict],
    window: int = 8,
    tolerance: float = 0.10,
    min_history: int = 3,
) -> List[DriftFlag]:
    """Flag gauges in the latest record that drifted from their median.

    The latest record's gauges are compared against the median of the
    up-to-``window`` prior records (needing at least ``min_history``
    samples per gauge).  A flag is raised only for movement beyond
    ``tolerance`` in the gauge's *bad* direction -- the policy of the CI
    bench gate, applied per run instead of per commit.  Gauges whose
    median is ~0 are skipped (relative drift is undefined there).
    """
    if len(records) < min_history + 1:
        return []
    latest = record_gauges(records[-1])
    prior = [record_gauges(r) for r in records[-(window + 1):-1]]
    flags: List[DriftFlag] = []
    for name in sorted(latest):
        history = [g[name] for g in prior if name in g]
        if len(history) < min_history:
            continue
        median = statistics.median(history)
        if abs(median) < 1e-12:
            continue
        deviation = (latest[name] - median) / abs(median)
        direction = gauge_direction(name)
        drifted = (
            deviation < -tolerance
            if direction == "higher"
            else deviation > tolerance
        )
        if drifted:
            flags.append(
                DriftFlag(
                    gauge=name,
                    value=latest[name],
                    median=median,
                    deviation=deviation,
                    direction=direction,
                    window=len(history),
                )
            )
    flags.sort(key=lambda f: -abs(f.deviation))
    return flags
