"""Timeline reconstruction and phase-budget gating from a trace file.

``python -m repro.observe.timeline trace.json`` rebuilds the batch span
tree a traced run left in its Chrome trace (the profile-category events
round-trip through :func:`repro.observe.export.chrome_trace`) and
renders, per batch:

* the **latency decomposition** -- each phase's seconds and share of the
  batch wall;
* the **critical path** -- the span chain that determined the wall time;
* the **stragglers** -- chunks ranked by compute time against the
  median, with their worker pid;
* **per-worker utilization** over the execute window, and chunk-wall
  quantiles (p50/p95/p99) via
  :meth:`~repro.observe.metrics.MetricsRegistry.histogram_quantile`.

``--strict`` turns phase budgets into a CI gate: the default budget
caps ``merge`` at 10% of the wall, and repeatable ``--budget
phase=frac`` flags override or extend it.  A truncated trace (ring
buffer overflowed the early spans away) degrades to a warning, never a
crash -- a gate must not fail because the evidence was evicted.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional

from ..reporting.tables import format_table
from .export import PROFILE_TS_SCALE, atomic_write_text
from .metrics import MetricsRegistry
from .profile import (
    PHASES,
    PROFILE_CATEGORY,
    BatchProfile,
    SpanNode,
    build_span_trees,
    collapsed_stacks,
    compute_profile,
)
from .tracer import Event

__all__ = [
    "DEFAULT_BUDGETS",
    "check_budgets",
    "load_profile_events",
    "main",
    "render_timeline",
]

#: Default ``--strict`` phase budgets: fraction of the batch wall each
#: phase may consume.  The merge is bookkeeping -- it folding more than
#: a tenth of the wall means the runtime is moving bytes, not solving.
DEFAULT_BUDGETS: Dict[str, float] = {"merge": 0.10}


def load_profile_events(path: Path | str) -> List[Event]:
    """Profile-category events parsed back from a Chrome trace file.

    Inverts the exporter's second -> microsecond scaling, so the events
    carry the same real-second timestamps the tracer recorded.  Flow
    arrows and metadata records are skipped; malformed entries raise
    ``ValueError`` (a trace either parses or fails loudly).
    """
    doc = json.loads(Path(path).read_text())
    raw = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    events: List[Event] = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise ValueError(f"malformed trace entry: {entry!r}")
        if entry.get("cat") != PROFILE_CATEGORY or entry.get("ph") != "X":
            continue
        events.append(
            Event(
                name=str(entry.get("name", "?")),
                category=PROFILE_CATEGORY,
                ph="X",
                ts=float(entry.get("ts", 0.0)) / PROFILE_TS_SCALE,
                dur=float(entry.get("dur", 0.0)) / PROFILE_TS_SCALE,
                args=entry.get("args") or None,
            )
        )
    return events


def check_budgets(
    profile: BatchProfile, budgets: Dict[str, float]
) -> List[str]:
    """Budget violations as human-readable strings (empty = within)."""
    violations = []
    shares = profile.phase_shares()
    for phase, budget in sorted(budgets.items()):
        share = shares.get(phase, 0.0)
        if share > budget:
            violations.append(
                f"{profile.scope}: phase {phase!r} used {share:.1%} of the "
                f"wall (budget {budget:.1%})"
            )
    return violations


def _parse_budget(text: str) -> tuple:
    phase, _, frac = text.partition("=")
    phase = phase.strip()
    if phase not in PHASES:
        raise argparse.ArgumentTypeError(
            f"unknown phase {phase!r}; choose from {', '.join(PHASES)}"
        )
    try:
        value = float(frac)
    except ValueError:
        raise argparse.ArgumentTypeError(f"budget fraction {frac!r} is not a number")
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"budget must be in (0, 1], got {value}")
    return phase, value


def _straggler_rows(profile: BatchProfile, root: SpanNode, top: int) -> List[list]:
    workers: Dict[int, int] = {}
    execute = root.find("execute")
    if execute is not None:
        for chunk in execute.children:
            if chunk.name != "chunk":
                continue
            attempts = [c for c in chunk.children if c.name == "attempt"]
            if attempts:
                last = max(attempts, key=lambda a: a.end)
                try:
                    pid = int(last.args.get("worker", 0))
                except (TypeError, ValueError):
                    pid = 0
                try:
                    workers[int(chunk.args.get("chunk", -1))] = pid
                except (TypeError, ValueError):
                    pass
    walls = [w for w in profile.chunk_walls.values() if w > 0.0]
    median = statistics.median(walls) if walls else 0.0
    ranked = sorted(
        profile.chunk_walls.items(), key=lambda kv: -kv[1]
    )[: max(1, top)]
    rows = []
    for index, wall in ranked:
        ratio = wall / median if median > 0 else 1.0
        rows.append(
            [
                index,
                f"{wall * 1e3:.3f}",
                f"{profile.chunk_queues.get(index, 0.0) * 1e3:.3f}",
                f"{ratio:.2f}x",
                workers.get(index, "-"),
            ]
        )
    return rows


def render_timeline(
    roots: List[SpanNode], top: int = 5
) -> tuple:
    """The timeline report text plus the computed profiles, per batch."""
    sections: List[str] = []
    profiles: List[BatchProfile] = []
    batches = [r for r in roots if r.name == "batch"]
    orphans = len(roots) - len(batches)
    if orphans:
        sections.append(
            f"warning: {orphans} span(s) without a batch root -- the trace "
            "ring buffer likely evicted early events; analysis covers the "
            "complete batches only"
        )
    for root in batches:
        profile = compute_profile(root)
        profiles.append(profile)
        shares = profile.phase_shares()
        sections.append(
            format_table(
                ["phase", "seconds", "share"],
                [
                    [phase, f"{profile.phases[phase]:.6f}", f"{shares[phase]:.1%}"]
                    for phase in PHASES
                ],
                title=(
                    f"Latency decomposition -- {profile.scope} "
                    f"(wall {profile.wall_s:.4f}s, coverage {profile.coverage:.0%})"
                ),
            )
        )
        sections.append(
            format_table(
                ["step", "start_ms", "dur_ms", "span"],
                [
                    [
                        step.name,
                        f"{step.start * 1e3:.3f}",
                        f"{step.dur * 1e3:.3f}",
                        step.span_id,
                    ]
                    for step in profile.critical_path
                ],
                title="Critical path",
            )
        )
        if profile.chunk_walls:
            sections.append(
                format_table(
                    ["chunk", "compute_ms", "queued_ms", "vs median", "worker"],
                    _straggler_rows(profile, root, top),
                    title=(
                        f"Stragglers (index {profile.straggler_index:.2f}, "
                        f"queue share {profile.queue_share:.0%})"
                    ),
                )
            )
            registry = MetricsRegistry()
            for wall in profile.chunk_walls.values():
                registry.observe("chunk_wall_seconds", wall)
            quantiles = []
            for q in (0.5, 0.95, 0.99):
                value = registry.histogram_quantile("chunk_wall_seconds", q)
                quantiles.append(
                    [f"p{int(q * 100)}", f"{(value or 0.0) * 1e3:.3f}"]
                )
            sections.append(
                format_table(
                    ["quantile", "chunk_wall_ms"],
                    quantiles,
                    title="Chunk wall quantiles (bucket-interpolated)",
                )
            )
        if profile.worker_busy_s:
            sections.append(
                format_table(
                    ["worker", "busy_s", "utilization"],
                    [
                        [pid, f"{profile.worker_busy_s[pid]:.4f}", f"{share:.0%}"]
                        for pid, share in profile.utilization.items()
                    ],
                    title=f"Worker utilization (execute {profile.execute_s:.4f}s)",
                )
            )
    if not batches:
        sections.append(
            "no batch span tree in this trace -- was the run traced with "
            "profiling enabled (REPRO_PROFILE)?"
        )
    return "\n\n".join(sections) + "\n", profiles


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe.timeline",
        description=(
            "Rebuild the batch timeline from a trace file: latency "
            "decomposition, critical path, stragglers, phase budgets."
        ),
    )
    parser.add_argument("trace", type=Path, help="Chrome trace JSON file")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any phase exceeds its budget",
    )
    parser.add_argument(
        "--budget",
        action="append",
        type=_parse_budget,
        default=None,
        metavar="PHASE=FRAC",
        help=(
            "phase budget as a wall fraction (repeatable; default merge=0.10)"
        ),
    )
    parser.add_argument(
        "--top", type=int, default=5, help="stragglers to list (default 5)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write profiles + verdicts here"
    )
    parser.add_argument(
        "--flamegraph",
        type=Path,
        default=None,
        help="write collapsed stacks (flamegraph.pl format) here",
    )
    args = parser.parse_args(argv)

    try:
        events = load_profile_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2

    roots = build_span_trees(events)
    text, profiles = render_timeline(roots, top=args.top)
    print(text, end="")

    budgets = dict(DEFAULT_BUDGETS)
    if args.budget:
        budgets.update(args.budget)
    violations: List[str] = []
    for profile in profiles:
        violations.extend(check_budgets(profile, budgets))
    if violations:
        print()
        for violation in violations:
            print(f"budget violation: {violation}")
    elif profiles:
        named = ", ".join(f"{k}<={v:.0%}" for k, v in sorted(budgets.items()))
        print(f"\nphase budgets satisfied ({named})")

    if args.flamegraph is not None:
        atomic_write_text(args.flamegraph, collapsed_stacks(roots))
        print(f"flamegraph stacks -> {args.flamegraph}")
    if args.json is not None:
        doc = {
            "trace": str(args.trace),
            "batches": [p.to_dict() for p in profiles],
            "budgets": budgets,
            "violations": violations,
        }
        atomic_write_text(args.json, json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"timeline json -> {args.json}")

    if args.strict and violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
