"""Labeled fleet metrics: counters, gauges, and fixed-bucket histograms.

Where :class:`~repro.observe.counters.CounterRegistry` aggregates the
*hardware events of one launch* (the Eq. 1/Eq. 2 inputs), a
:class:`MetricsRegistry` aggregates the *fleet*: how many chunks ran on
which worker, how long they queued, how often the dispatch and
calibration caches hit, which roofline regime each launch landed in.
Metric families are Prometheus-shaped -- a name, a kind (``counter`` /
``gauge`` / ``histogram``), and a set of label-keyed series -- so one
exposition (:func:`prometheus_text`) serves both a scrape endpoint and
the golden-file tests, and :func:`parse_prometheus_text` round-trips it.

Design points, mirroring the rest of :mod:`repro.observe`:

* **zero-dependency** -- plain dicts and floats, stdlib only;
* **process-global default registry** -- instrumented call-sites use the
  module-level helpers (:func:`counter_inc`, :func:`gauge_set`,
  :func:`histogram_observe`), which cost one flag check when metrics are
  disabled (:func:`set_metrics_enabled`, or ``REPRO_METRICS=0``);
* **mergeable** -- per-worker registries fold into the launch registry
  with :meth:`MetricsRegistry.merge` (plain addition in submission
  order), exactly how the runtime folds ``CounterRegistry`` snapshots;
* **fixed buckets** -- histograms never rebucket, so merged histograms
  are exact, not approximate.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
import math
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "counter_inc",
    "default_registry",
    "default_snapshot_path",
    "gauge_set",
    "histogram_observe",
    "load_metrics_snapshot",
    "metrics_enabled",
    "parse_prometheus_text",
    "prometheus_text",
    "set_default_registry",
    "set_metrics_enabled",
    "write_metrics_snapshot",
    "write_prometheus",
]

#: Default histogram buckets (seconds): spans sub-millisecond chunk
#: launches to multi-second batch walls.  Upper bounds, ``le`` semantics.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
)

#: Schema stamp written into JSON snapshots.
SNAPSHOT_SCHEMA = 1

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: A label set, normalized: sorted tuple of ``(name, value)`` strings.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclasses.dataclass
class HistogramValue:
    """One histogram series: per-bucket counts plus sum/count.

    ``counts[i]`` holds observations with ``value <= buckets[i]`` (and
    above the previous bound); the final slot is the ``+Inf`` overflow.
    Counts are stored *non-cumulative* and only cumulated at exposition,
    which keeps :meth:`merge` plain addition.
    """

    buckets: Tuple[float, ...]
    counts: list
    total: float = 0.0
    count: int = 0

    @classmethod
    def empty(cls, buckets: Tuple[float, ...]) -> "HistogramValue":
        return cls(buckets=buckets, counts=[0] * (len(buckets) + 1))

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            return
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list:
        """Cumulative counts per bound, Prometheus ``le`` convention."""
        out, running = [], 0
        for c in self.counts[:-1]:
            running += c
            out.append(running)
        return out

    def merge(self, other: "HistogramValue") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with buckets {self.buckets} "
                f"and {other.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile, Prometheus ``histogram_quantile``.

        Finds the bucket holding the ``q``-th observation and
        interpolates linearly inside it, assuming observations are
        uniform within a bucket.  The first bucket's lower bound is 0
        (these histograms hold non-negative latencies); a quantile
        landing in the ``+Inf`` overflow clamps to the highest finite
        bound.  Returns ``None`` when the series is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        running = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if running + bucket_count >= rank:
                if i >= len(self.buckets):
                    # Overflow bucket: no finite upper bound to
                    # interpolate toward; report the largest bound.
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                within = (rank - running) / bucket_count
                return lower + (upper - lower) * max(0.0, min(1.0, within))
            running += bucket_count
        return self.buckets[-1]


@dataclasses.dataclass
class _Family:
    """One metric family: a name, a kind, and its labeled series."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    buckets: Optional[Tuple[float, ...]] = None
    series: Dict[LabelKey, Any] = dataclasses.field(default_factory=dict)


class MetricsRegistry:
    """Labeled metric families with Prometheus-style semantics.

    Counters only increase, gauges hold the last value set, histograms
    bucket observations against fixed bounds.  All three are keyed by a
    normalized label set, so ``inc("x", op="lu")`` and ``inc("x",
    op="qr")`` are independent series of one family.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Family management
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            bounds = None
            if kind == "histogram":
                bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
                if list(bounds) != sorted(set(bounds)):
                    raise ValueError(f"histogram buckets must be increasing: {bounds}")
            fam = self._families[name] = _Family(
                name=name, kind=kind, help=help, buckets=bounds
            )
            return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {fam.kind}, not a {kind}"
            )
        if kind == "histogram" and buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if bounds != fam.buckets:
                raise ValueError(
                    f"histogram {name!r} has fixed buckets {fam.buckets}; "
                    f"got {bounds}"
                )
        if help and not fam.help:
            fam.help = help
        return fam

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, help: str = "", **labels) -> None:
        """Increase counter ``name`` (for the given label set)."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (amount={amount})")
        fam = self._family(name, "counter", help)
        key = _label_key(labels)
        fam.series[key] = fam.series.get(key, 0.0) + float(amount)

    def set(self, name: str, value: float, help: str = "", **labels) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        value = float(value)
        if not math.isfinite(value):
            return
        fam = self._family(name, "gauge", help)
        fam.series[_label_key(labels)] = value

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels,
    ) -> None:
        """Record ``value`` into histogram ``name``."""
        fam = self._family(name, "histogram", help, buckets)
        key = _label_key(labels)
        hist = fam.series.get(key)
        if hist is None:
            hist = fam.series[key] = HistogramValue.empty(fam.buckets)
        hist.observe(float(value))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (the worker -> launch fold).

        Counters and histogram buckets add; gauges take ``other``'s value
        (last write wins, as if the sets had happened here).  Folding the
        per-worker registries of a sharded launch in submission order
        therefore reproduces the serial path's totals exactly.
        """
        for name, ofam in other._families.items():
            fam = self._family(name, ofam.kind, ofam.help, ofam.buckets)
            for key, value in ofam.series.items():
                if ofam.kind == "counter":
                    fam.series[key] = fam.series.get(key, 0.0) + value
                elif ofam.kind == "gauge":
                    fam.series[key] = value
                else:
                    hist = fam.series.get(key)
                    if hist is None:
                        fam.series[key] = HistogramValue.empty(fam.buckets)
                        hist = fam.series[key]
                    hist.merge(value)

    def clear(self) -> None:
        self._families.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """A counter/gauge series' value (``default`` when absent)."""
        fam = self._families.get(name)
        if fam is None or fam.kind == "histogram":
            return default
        return fam.series.get(_label_key(labels), default)

    def histogram_value(self, name: str, **labels) -> Optional[HistogramValue]:
        fam = self._families.get(name)
        if fam is None or fam.kind != "histogram":
            return None
        return fam.series.get(_label_key(labels))

    def histogram_quantile(
        self, name: str, q: float, **labels
    ) -> Optional[float]:
        """Interpolated quantile of histogram ``name`` for one label set.

        ``q`` is a fraction (``0.5`` = median, ``0.99`` = p99); see
        :meth:`HistogramValue.quantile` for the interpolation rules.
        Returns ``None`` when the series is absent or empty.
        """
        hist = self.histogram_value(name, **labels)
        if hist is None:
            return None
        return hist.quantile(q)

    def sum_series(self, name: str, **match) -> float:
        """Sum of every counter/gauge series whose labels contain ``match``."""
        fam = self._families.get(name)
        if fam is None or fam.kind == "histogram":
            return 0.0
        want = set(_label_key(match))
        return sum(v for key, v in fam.series.items() if want <= set(key))

    def merged_histogram(self, name: str, **match) -> Optional[HistogramValue]:
        """Every histogram series whose labels contain ``match``, merged.

        Buckets are fixed per family, so the merge is exact -- the result
        is the histogram that would have been recorded had all matching
        series shared one label set.  Returns ``None`` when the family is
        absent, not a histogram, or nothing matches.
        """
        fam = self._families.get(name)
        if fam is None or fam.kind != "histogram":
            return None
        want = set(_label_key(match))
        merged: Optional[HistogramValue] = None
        for key, hist in fam.series.items():
            if not want <= set(key):
                continue
            if merged is None:
                merged = HistogramValue.empty(hist.buckets)
            merged.merge(hist)
        return merged

    def label_values(self, name: str, label: str) -> list:
        """Sorted distinct values of ``label`` across ``name``'s series."""
        fam = self._families.get(name)
        if fam is None:
            return []
        values = set()
        for key in fam.series:
            for k, v in key:
                if k == label:
                    values.add(v)
        return sorted(values)

    def families(self) -> list:
        return sorted(self._families)

    def kind(self, name: str) -> Optional[str]:
        fam = self._families.get(name)
        return fam.kind if fam else None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        series = sum(len(f.series) for f in self._families.values())
        return f"MetricsRegistry({len(self._families)} families, {series} series)"

    # ------------------------------------------------------------------
    # Snapshots (JSON)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe ``{family: {kind, help, series: [...]}}`` view."""
        out: dict = {}
        for name in sorted(self._families):
            fam = self._families[name]
            entry: dict = {"kind": fam.kind, "help": fam.help, "series": []}
            if fam.kind == "histogram":
                entry["buckets"] = list(fam.buckets)
            for key in sorted(fam.series):
                value = fam.series[key]
                record: dict = {"labels": dict(key)}
                if fam.kind == "histogram":
                    record["counts"] = list(value.counts)
                    record["sum"] = value.total
                    record["count"] = value.count
                else:
                    record["value"] = value
                entry["series"].append(record)
            out[name] = entry
        return out

    @classmethod
    def from_snapshot(cls, doc: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for name, entry in doc.items():
            kind = entry.get("kind")
            fam = registry._family(
                name, kind, entry.get("help", ""), entry.get("buckets")
            )
            for record in entry.get("series", []):
                key = _label_key(record.get("labels", {}))
                if kind == "histogram":
                    hist = HistogramValue.empty(fam.buckets)
                    hist.counts = [int(c) for c in record["counts"]]
                    hist.total = float(record["sum"])
                    hist.count = int(record["count"])
                    fam.series[key] = hist
                else:
                    fam.series[key] = float(record["value"])
        return registry


# ----------------------------------------------------------------------
# Process-global default registry
# ----------------------------------------------------------------------
_default = MetricsRegistry()
_enabled = os.environ.get("REPRO_METRICS", "1").lower() not in ("0", "false", "off")


def default_registry() -> MetricsRegistry:
    """The process-global registry instrumented call-sites write to."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the old one.

    The sharded runtime uses this to give each chunk execution a private
    registry that ships back with the outcome and folds into the launch
    registry in submission order.
    """
    global _default
    previous = _default
    _default = registry
    return previous


def metrics_enabled() -> bool:
    """Whether the module-level helpers record anything."""
    return _enabled


def set_metrics_enabled(flag: bool) -> bool:
    """Toggle the helpers on/off; returns the previous setting.

    Also settable at import time with ``REPRO_METRICS=0``.  Disabled
    helpers cost a single flag check -- the benchmark suite holds the
    enabled/disabled wall-time gap under 5%.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def counter_inc(name: str, amount: float = 1.0, **labels) -> None:
    """Increase a counter on the default registry; no-op when disabled."""
    if _enabled:
        _default.inc(name, amount, **labels)


def gauge_set(name: str, value: float, **labels) -> None:
    """Set a gauge on the default registry; no-op when disabled."""
    if _enabled:
        _default.set(name, value, **labels)


def histogram_observe(
    name: str, value: float, buckets: Optional[Iterable[float]] = None, **labels
) -> None:
    """Observe into a histogram on the default registry; no-op when disabled."""
    if _enabled:
        _default.observe(name, value, buckets=buckets, **labels)


# ----------------------------------------------------------------------
# Prometheus text exposition + parser
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Families sorted by name, series sorted by label set, so the output
    is byte-stable for a given registry state -- the property the
    golden-file test pins down.
    """
    lines = []
    for name in sorted(registry._families):
        fam = registry._families[name]
        if fam.help:
            lines.append(f"# HELP {name} {_escape_label(fam.help)}")
        lines.append(f"# TYPE {name} {fam.kind}")
        for key in sorted(fam.series):
            value = fam.series[key]
            if fam.kind == "histogram":
                cumulative = value.cumulative()
                for bound, cum in zip(fam.buckets, cumulative):
                    le = ("le", _format_value(bound))
                    lines.append(
                        f"{name}_bucket{_render_labels(key, le)} {cum}"
                    )
                lines.append(
                    f'{name}_bucket{_render_labels(key, ("le", "+Inf"))} '
                    f"{value.count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(key)} {_format_value(value.total)}"
                )
                lines.append(f"{name}_count{_render_labels(key)} {value.count}")
            else:
                lines.append(
                    f"{name}{_render_labels(key)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from :func:`prometheus_text` output.

    Supports the subset this module emits: ``counter``, ``gauge``, and
    ``histogram`` families with ``_bucket``/``_sum``/``_count`` samples.
    Unknown or malformed lines raise ``ValueError`` -- a scrape either
    parses completely or fails loudly.
    """
    registry = MetricsRegistry()
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    # Histogram series accumulate across lines before reconstruction.
    hist: Dict[Tuple[str, LabelKey], dict] = {}

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            helps[name] = _unescape_label(help_text)
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            kinds[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        sample, label_body, value_text = match.groups()
        labels = {
            k: _unescape_label(v)
            for k, v in _LABEL_RE.findall(label_body or "")
        }
        value = float(value_text)

        base, part = sample, "value"
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = sample[: -len(suffix)] if sample.endswith(suffix) else None
            if candidate and kinds.get(candidate) == "histogram":
                base, part = candidate, suffix[1:]
                break
        kind = kinds.get(base)
        if kind is None:
            raise ValueError(f"sample {sample!r} has no # TYPE line")

        if kind == "histogram":
            le = labels.pop("le", None)
            key = _label_key(labels)
            state = hist.setdefault(
                (base, key), {"bounds": [], "cum": [], "sum": 0.0, "count": 0}
            )
            if part == "bucket":
                if le is None:
                    raise ValueError(f"histogram bucket without le: {raw!r}")
                if le != "+Inf":
                    state["bounds"].append(float(le))
                    state["cum"].append(int(value))
            elif part == "sum":
                state["sum"] = value
            elif part == "count":
                state["count"] = int(value)
        elif kind == "counter":
            registry.inc(base, value, help=helps.get(base, ""), **labels)
        elif kind == "gauge":
            registry.set(base, value, help=helps.get(base, ""), **labels)
        else:
            raise ValueError(f"unsupported metric kind {kind!r} for {base!r}")

    for (name, key), state in hist.items():
        bounds = tuple(state["bounds"])
        fam = registry._family(
            name, "histogram", helps.get(name, ""), bounds or None
        )
        value = HistogramValue.empty(fam.buckets)
        previous = 0
        for i, cum in enumerate(state["cum"]):
            value.counts[i] = cum - previous
            previous = cum
        value.counts[-1] = state["count"] - previous
        value.total = state["sum"]
        value.count = state["count"]
        fam.series[key] = value
    return registry


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def default_snapshot_path() -> Path:
    """Where :func:`write_metrics_snapshot` lands without an explicit path."""
    from ..runtime.cache import cache_dir

    return cache_dir() / "metrics.json"


def write_prometheus(registry: MetricsRegistry, path=None) -> Path:
    """Write the Prometheus text exposition atomically; returns the path."""
    from .export import atomic_write_text

    if path is None:
        path = default_snapshot_path().with_suffix(".prom")
    return atomic_write_text(path, prometheus_text(registry))


def write_metrics_snapshot(registry: MetricsRegistry, path=None) -> Path:
    """Write the JSON snapshot atomically; returns the path."""
    from .export import atomic_write_text

    if path is None:
        path = default_snapshot_path()
    doc = {"schema": SNAPSHOT_SCHEMA, "families": registry.snapshot()}
    return atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_metrics_snapshot(path) -> Optional[MetricsRegistry]:
    """Read a snapshot written by either exporter (``None`` on a miss).

    ``.prom`` files go through :func:`parse_prometheus_text`; anything
    else is treated as the JSON snapshot format.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        if path.suffix == ".prom":
            return parse_prometheus_text(text)
        doc = json.loads(text)
        if not isinstance(doc, dict) or doc.get("schema") != SNAPSHOT_SCHEMA:
            return None
        return MetricsRegistry.from_snapshot(doc.get("families", {}))
    except (ValueError, KeyError, TypeError):
        return None
