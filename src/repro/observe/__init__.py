"""Observability for the simulated GPU stack.

Three layers, all zero-dependency and off-by-default:

* **event tracing** (:mod:`repro.observe.tracer`) -- a thread-local,
  ring-buffer-backed structured tracer that the block engine, memory
  system, dispatch ranking, microbenchmarks, and the STAP pipeline emit
  into when (and only when) one is activated with :func:`tracing`;
* **hardware counters** (:mod:`repro.observe.counters`) -- FLOP groups,
  shared/global transactions, bank-conflict replays, syncs, spill
  accesses, cache and DRAM-row hits, aggregated per launch and per
  pipeline stage;
* **attribution** (:mod:`repro.observe.attribution`) -- the measured
  counters mapped back onto the Eq. 1/Eq. 2 model terms, with a per-term
  residual table that makes the Figure-8 "overhead wedge" a first-class
  artifact.

Exporters (:mod:`repro.observe.export`) write Chrome ``trace_event``
JSON (chrome://tracing, Perfetto) and flat metrics records for the
benchmark trajectory.

On top of the per-launch layers sits the fleet telemetry added in PR 3:

* **labeled metrics** (:mod:`repro.observe.metrics`) -- a mergeable
  Prometheus-shaped registry of counters/gauges/histograms the sharded
  runtime, caches, and kernels write into;
* **regime classification** (:mod:`repro.observe.regime`) -- each
  launch labeled compute-/DRAM-bandwidth-/latency-/sync-bound from its
  attribution term shares;
* **run history + drift** (:mod:`repro.observe.history`) -- a JSONL
  store of per-launch summaries with a rolling-window drift detector,
  rendered by ``python -m repro.observe.report``;
* **critical-path profiling** (:mod:`repro.observe.profile`) -- every
  traced batch run emits a cross-process span tree
  (``batch -> plan/execute -> chunk -> submit/attempt -> merge``) whose
  latency decomposition, critical path, straggler index, and flamegraph
  land on :attr:`BatchReport.profile <repro.runtime.merge.BatchReport>`
  and replay from a trace file via ``python -m repro.observe.timeline``.
* **SLOs, alerts, and structured logs** (:mod:`repro.observe.alerts`,
  :mod:`repro.observe.log`) -- declarative threshold / delta /
  burn-rate rules over the registry and history, compiled into a
  fingerprinted :class:`AlertPlan` and exit-coded by
  ``python -m repro.observe.alerts``; plus a ``REPRO_LOG``-gated JSONL
  logger whose records carry the profiler's span ids, so an alert, a
  log line, and a flamegraph span join on one id.

See ``docs/observability.md`` for a walkthrough.
"""

from .counters import CounterRegistry, CounterStat
from .tracer import (
    DEFAULT_CAPACITY,
    ClockOrigin,
    Event,
    Span,
    Tracer,
    add_counter,
    current_tracer,
    instant,
    observe_counter,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "ClockOrigin",
    "CounterRegistry",
    "CounterStat",
    "DEFAULT_CAPACITY",
    "Event",
    "Span",
    "Tracer",
    "add_counter",
    "current_tracer",
    "instant",
    "observe_counter",
    "set_tracer",
    "span",
    "tracing",
    # lazily loaded (see __getattr__): attribution + exporters
    "TermAttribution",
    "AttributionReport",
    "attribute_launch",
    "format_attribution",
    "atomic_write_text",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_record",
    "read_metrics",
    "write_metrics",
    # lazily loaded: fleet metrics / regimes / history
    "DEFAULT_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "counter_inc",
    "default_registry",
    "default_snapshot_path",
    "gauge_set",
    "histogram_observe",
    "load_metrics_snapshot",
    "metrics_enabled",
    "parse_prometheus_text",
    "prometheus_text",
    "set_default_registry",
    "set_metrics_enabled",
    "write_metrics_snapshot",
    "write_prometheus",
    "REGIMES",
    "RegimeClassification",
    "classify_regime",
    "record_regime",
    "HISTORY_SCHEMA",
    "DriftFlag",
    "RunHistory",
    "default_history_path",
    "detect_drift",
    "gauge_direction",
    "record_gauges",
    "run_record",
    # lazily loaded: critical-path profiler + timeline/flamegraph export
    "PHASES",
    "PROFILE_CATEGORY",
    "BatchProfile",
    "CriticalStep",
    "ProfileEmitter",
    "SpanNode",
    "build_span_trees",
    "collapsed_stacks",
    "compute_profile",
    "critical_path",
    "flow_events",
    "profiling_enabled",
    "set_profiling_enabled",
    "write_flamegraph",
    # lazily loaded: structured logging + SLO/alert engine
    "LOG_SCHEMA",
    "StructuredLogger",
    "current_span",
    "default_log_path",
    "default_logger",
    "log_enabled",
    "log_event",
    "read_log",
    "set_default_logger",
    "set_log_enabled",
    "span_context",
    "ALERTS_SCHEMA",
    "AlertEvent",
    "AlertPlan",
    "AlertRule",
    "AlertSpecError",
    "Evaluation",
    "RuleResult",
    "alert_spec_from_dict",
    "compile_plan",
    "default_state_path",
    "evaluate",
    "load_alert_spec",
    "load_alert_state",
    "write_alert_state",
]

#: Attribution pulls in the model layer and exporters pull in json/numpy;
#: both are loaded on first access so that importing the engine (which
#: imports this package for the tracer hooks) stays cycle-free and cheap.
_LAZY = {
    "TermAttribution": "attribution",
    "AttributionReport": "attribution",
    "attribute_launch": "attribution",
    "format_attribution": "attribution",
    "atomic_write_text": "export",
    "chrome_trace": "export",
    "write_chrome_trace": "export",
    "metrics_record": "export",
    "read_metrics": "export",
    "write_metrics": "export",
    "DEFAULT_BUCKETS": "metrics",
    "HistogramValue": "metrics",
    "MetricsRegistry": "metrics",
    "counter_inc": "metrics",
    "default_registry": "metrics",
    "default_snapshot_path": "metrics",
    "gauge_set": "metrics",
    "histogram_observe": "metrics",
    "load_metrics_snapshot": "metrics",
    "metrics_enabled": "metrics",
    "parse_prometheus_text": "metrics",
    "prometheus_text": "metrics",
    "set_default_registry": "metrics",
    "set_metrics_enabled": "metrics",
    "write_metrics_snapshot": "metrics",
    "write_prometheus": "metrics",
    "REGIMES": "regime",
    "RegimeClassification": "regime",
    "classify_regime": "regime",
    "record_regime": "regime",
    "HISTORY_SCHEMA": "history",
    "DriftFlag": "history",
    "RunHistory": "history",
    "default_history_path": "history",
    "detect_drift": "history",
    "gauge_direction": "history",
    "record_gauges": "history",
    "run_record": "history",
    "PHASES": "profile",
    "PROFILE_CATEGORY": "profile",
    "BatchProfile": "profile",
    "CriticalStep": "profile",
    "ProfileEmitter": "profile",
    "SpanNode": "profile",
    "build_span_trees": "profile",
    "collapsed_stacks": "profile",
    "compute_profile": "profile",
    "critical_path": "profile",
    "flow_events": "profile",
    "profiling_enabled": "profile",
    "set_profiling_enabled": "profile",
    "write_flamegraph": "export",
    "LOG_SCHEMA": "log",
    "StructuredLogger": "log",
    "current_span": "log",
    "default_log_path": "log",
    "default_logger": "log",
    "log_enabled": "log",
    "log_event": "log",
    "read_log": "log",
    "set_default_logger": "log",
    "set_log_enabled": "log",
    "span_context": "log",
    "ALERTS_SCHEMA": "alerts",
    "AlertEvent": "alerts",
    "AlertPlan": "alerts",
    "AlertRule": "alerts",
    "AlertSpecError": "alerts",
    "Evaluation": "alerts",
    "RuleResult": "alerts",
    "alert_spec_from_dict": "alerts",
    "compile_plan": "alerts",
    "default_state_path": "alerts",
    "evaluate": "alerts",
    "load_alert_spec": "alerts",
    "load_alert_state": "alerts",
    "write_alert_state": "alerts",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{submodule}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
