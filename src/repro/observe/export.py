"""Exporters: Chrome ``trace_event`` JSON and flat metrics dumps.

Two consumers, two formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` -- the tracer's ring
  buffer as a Chrome ``trace_event`` document.  Open it at
  ``chrome://tracing`` or https://ui.perfetto.dev to scrub through a
  launch's phases and charges on a timeline.  Timestamps are simulated
  cycles/ticks rendered as trace microseconds.
* :func:`metrics_record` / :func:`write_metrics` -- a flat JSON record
  per run, appended to a JSON-array file.  The ``benchmarks/`` harness
  uses this (``--json PATH``) to accumulate a ``BENCH_*.json`` perf
  trajectory across commits.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Optional

from .tracer import Tracer

__all__ = [
    "atomic_write_text",
    "chrome_trace",
    "write_chrome_trace",
    "write_flamegraph",
    "metrics_record",
    "write_metrics",
    "read_metrics",
]


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Write ``text`` to ``path`` via write-temp-then-rename.

    The payload is flushed and fsynced to a sibling temporary file which
    is then :func:`os.replace`-d over the destination, so a reader (or a
    killed CI job) only ever sees the old complete file or the new
    complete file -- never a truncated one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def _jsonable(value: Any) -> Any:
    """Coerce NumPy scalars/arrays into JSON-safe values.

    Non-finite floats become ``None``: ``json.dumps`` would happily emit
    ``NaN``/``Infinity``/``-Infinity``, which strict JSON parsers (and
    the golden-file tests) reject.
    """
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
#: Profile spans are recorded in seconds; Chrome traces tick in
#: microseconds.  Exporters multiply by this, parsers divide.
PROFILE_TS_SCALE = 1e6


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """The tracer's events as a Chrome ``trace_event`` JSON object.

    Profile-category spans land on a thread lane per worker pid (their
    ``worker`` arg), so a sharded launch renders as one swimlane per
    process; everything else stays on lane 0.  Chunk journeys get flow
    arrows (``ph`` ``s``/``t``/``f``) linking submit -> worker attempt ->
    completion; see :func:`repro.observe.profile.flow_events`.
    """
    from .profile import PROFILE_CATEGORY, flow_events

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    lanes: set[int] = set()
    for ev in tracer.events:
        profiled = ev.category == PROFILE_CATEGORY
        tid = 0
        if profiled and ev.args:
            try:
                tid = int(ev.args.get("worker", 0))
            except (TypeError, ValueError):
                tid = 0
        lanes.add(tid)
        # Profile spans are stamped in real seconds; Chrome's unit is the
        # microsecond, so scaling by 1e6 renders them at true duration.
        # Engine events keep their cycles-as-microseconds convention.
        scale = PROFILE_TS_SCALE if profiled else 1.0
        entry: dict = {
            "name": ev.name,
            "cat": ev.category,
            "ph": ev.ph,
            "ts": float(ev.ts) * scale,
            "pid": 0,
            "tid": tid,
        }
        if ev.ph == "X":
            entry["dur"] = float(ev.dur) * scale
        if ev.ph == "i":
            entry["s"] = "t"  # instant scope: thread
        if ev.args:
            entry["args"] = _jsonable(ev.args)
        events.append(entry)
    for tid in sorted(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": "launch" if tid == 0 else f"worker {tid}"},
            }
        )
    for arrow in flow_events(tracer.events):
        arrow["ts"] = arrow["ts"] * PROFILE_TS_SCALE
        events.append(arrow)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated cycles (1 trace us = 1 cycle/tick)",
            "dropped_events": tracer.dropped,
            "counters": _jsonable(tracer.counters.as_dict()),
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: Path | str, process_name: str = "repro"
) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    return atomic_write_text(
        path, json.dumps(chrome_trace(tracer, process_name)) + "\n"
    )


def write_flamegraph(events, path: Path | str) -> Path:
    """Write profile spans as collapsed stacks (flamegraph.pl format).

    ``events`` is any iterable of :class:`~repro.observe.tracer.Event`
    records (a tracer's ring buffer, or events parsed back from a trace
    file); one line per span, self time in microseconds.  Feed the file
    to ``flamegraph.pl`` or https://speedscope.app.
    """
    from .profile import build_span_trees, collapsed_stacks

    return atomic_write_text(path, collapsed_stacks(build_span_trees(events)))


# ----------------------------------------------------------------------
# Flat metrics records
# ----------------------------------------------------------------------
def metrics_record(
    name: str,
    metrics: dict,
    tracer: Optional[Tracer] = None,
    **meta: Any,
) -> dict:
    """One flat, JSON-safe metrics record.

    ``metrics`` is the payload proper (series, scalars, nested dicts all
    fine); ``meta`` adds identifying fields (git rev, size, batch...).
    Passing the active tracer folds its counter totals in.
    """
    record: dict = {"name": str(name)}
    record.update(_jsonable(meta))
    record["metrics"] = _jsonable(metrics)
    if tracer is not None:
        record["counters"] = _jsonable(tracer.counters.as_dict())
        record["dropped_events"] = tracer.dropped
    return record


def read_metrics(path: Path | str) -> list[dict]:
    """All records accumulated at ``path`` (empty list if absent)."""
    path = Path(path)
    if not path.exists():
        return []
    loaded = json.loads(path.read_text())
    if not isinstance(loaded, list):
        raise ValueError(f"{path} does not hold a JSON array of records")
    return loaded


def write_metrics(path: Path | str, record: dict) -> Path:
    """Append ``record`` to the JSON-array file at ``path``.

    The read-append-rewrite is atomic (write-temp-then-rename with an
    fsync): a CI job killed mid-append leaves the previous complete file
    behind, never a truncated JSON document.
    """
    path = Path(path)
    records = read_metrics(path)
    records.append(_jsonable(record))
    return atomic_write_text(
        path, json.dumps(records, indent=2, sort_keys=True) + "\n"
    )
