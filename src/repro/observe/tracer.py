"""Structured event tracer with a thread-local activation context.

Tracing is **off by default**: instrumented call-sites fetch the active
tracer with :func:`current_tracer` and bail on ``None``, so un-traced hot
paths pay a single attribute lookup.  Activate with::

    from repro.observe import tracing

    with tracing() as t:
        per_block_qr(batch)          # engine events land in t
    write_chrome_trace(t, "qr.json")  # open in chrome://tracing / Perfetto

Events are ring-buffer backed (:class:`collections.deque` with
``maxlen``): a runaway kernel cannot grow memory without bound -- old
events are dropped and counted in :attr:`Tracer.dropped`.

Timestamps are *simulated* time.  The engine stamps its events with the
block's cycle clock; events from outside the engine (pipeline stages,
microbenchmarks, dispatch decisions) draw from the tracer's own monotonic
tick so a single trace stays ordered.  The Chrome exporter emits the
numbers verbatim -- one trace "microsecond" is one cycle or one tick.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from typing import Any, Dict, Iterator, Optional

from .counters import CounterRegistry

__all__ = [
    "ClockOrigin",
    "Event",
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "tracing",
    "span",
    "instant",
    "add_counter",
    "observe_counter",
    "DEFAULT_CAPACITY",
]

#: Default ring-buffer capacity (events).  A 56x56 per-block QR emits a
#: few thousand events; the default holds dozens of launches.
DEFAULT_CAPACITY = 65536


@dataclasses.dataclass(frozen=True)
class ClockOrigin:
    """One process's clock anchor, captured when its tracer is built.

    ``perf`` is a :func:`time.perf_counter` reading and ``wall`` the
    matching :func:`time.time` instant.  Two origins from the same
    machine share the monotonic epoch, so the *true* offset between the
    processes' profile clocks is simply ``perf_a - perf_b`` -- the
    handshake :meth:`Tracer.ingest` uses to align worker timelines
    instead of re-stamping them.  ``wall`` rides along as a
    human-readable anchor for exported traces.
    """

    perf: float
    wall: float
    pid: int

    @classmethod
    def capture(cls) -> "ClockOrigin":
        return cls(perf=time.perf_counter(), wall=time.time(), pid=os.getpid())

    def offset_from(self, other: "ClockOrigin") -> float:
        """Seconds this origin's profile clock leads ``other``'s."""
        return self.perf - other.perf


@dataclasses.dataclass(frozen=True)
class Event:
    """One recorded trace event (Chrome ``trace_event`` phases).

    ``ph`` is ``"X"`` (complete: has a duration), ``"i"`` (instant), or
    ``"C"`` (counter sample).
    """

    name: str
    category: str
    ph: str
    ts: float
    dur: float = 0.0
    args: Optional[Dict[str, Any]] = None


class Span:
    """Handle for an open span; closed by :meth:`end` or the context."""

    __slots__ = ("tracer", "name", "category", "start", "args", "_open")

    def __init__(self, tracer: "Tracer", name: str, category: str, start: float,
                 args: Optional[dict]) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.start = start
        self.args = args
        self._open = True

    def end(self, ts: Optional[float] = None) -> None:
        if not self._open:
            return
        self._open = False
        end_ts = self.tracer._stamp(ts)
        self.tracer._emit(
            Event(
                name=self.name,
                category=self.category,
                ph="X",
                ts=self.start,
                dur=max(0.0, end_ts - self.start),
                args=self.args,
            )
        )
        stack = self.tracer._span_stack
        if stack and stack[-1] is self:
            stack.pop()


class Tracer:
    """Ring-buffer event recorder plus a session counter registry."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.events: deque[Event] = deque(maxlen=self.capacity)
        self.counters = CounterRegistry()
        self.dropped = 0
        self._ts = 0.0
        self._span_stack: list[Span] = []
        #: Clock anchor for real-time (profile) events; see
        #: :class:`ClockOrigin` and :meth:`now`.
        self.origin = ClockOrigin.capture()

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds elapsed on this tracer's real-time (profile) clock.

        Runtime-level profile spans stamp themselves with this clock --
        real seconds since the tracer was built -- while engine events
        keep their simulated cycle clock.  The two coexist in one trace;
        profile consumers filter by category.
        """
        return time.perf_counter() - self.origin.perf

    def _stamp(self, ts: Optional[float], dur: float = 0.0) -> float:
        """Resolve a timestamp, keeping the internal clock monotonic."""
        if ts is None:
            self._ts += 1.0
            return self._ts
        if ts + dur > self._ts:
            self._ts = ts + dur
        return float(ts)

    def _emit(self, event: Event) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        category: str,
        ts: Optional[float] = None,
        dur: float = 0.0,
        **args: Any,
    ) -> None:
        """Record a finished interval (Chrome ``"X"`` event).

        ``ts`` defaults to the tracer's own tick clock; the engine passes
        its cycle clock instead.
        """
        if ts is None:
            ts = self._stamp(None)
        self._stamp(ts, dur)
        self._emit(
            Event(name=name, category=category, ph="X", ts=float(ts),
                  dur=float(dur), args=args or None)
        )

    def instant(
        self, name: str, category: str = "mark", ts: Optional[float] = None,
        **args: Any,
    ) -> None:
        """Record a point-in-time event (Chrome ``"i"`` event)."""
        stamped = self._stamp(ts)
        self._emit(
            Event(name=name, category=category, ph="i", ts=stamped,
                  args=args or None)
        )

    def counter(
        self, name: str, value: float, ts: Optional[float] = None
    ) -> None:
        """Record a counter sample and accumulate it in the registry."""
        stamped = self._stamp(ts)
        self.counters.add(name, value)
        self._emit(
            Event(name=name, category="counter", ph="C", ts=stamped,
                  args={"value": value})
        )

    @contextmanager
    def span(
        self, name: str, category: str = "span", ts: Optional[float] = None,
        **args: Any,
    ) -> Iterator[Span]:
        """Open a nested span; also scopes the counter registry's stage."""
        handle = Span(self, name, category, self._stamp(ts), args or None)
        self._span_stack.append(handle)
        try:
            with self.counters.stage(name):
                yield handle
        finally:
            handle.end()

    def ingest(
        self,
        events,
        dropped: int = 0,
        clock: Optional[ClockOrigin] = None,
        **tags: Any,
    ) -> int:
        """Replay foreign :class:`Event` records into this tracer.

        Used by the sharded runtime to fold each worker's trace back into
        the launch tracer.  Without ``clock``, every event is re-stamped
        onto this tracer's tick clock (shifted so the replay starts
        "now" and stays monotonic) -- relative timing *between* the two
        processes is lost.  With ``clock`` -- the worker tracer's
        :class:`ClockOrigin`, shipped back with the chunk outcome -- the
        events are instead shifted by the **measured** offset between the
        two origins (``clock.offset_from(self.origin)``), so a worker
        span that ran 3 ms into the worker's timeline lands 3 ms after
        that worker's origin on *this* timeline: durations, gaps, and
        cross-process ordering all survive.

        Events are tagged with ``tags`` (e.g. ``shard=3``) so merged
        timelines remain attributable.  ``dropped`` carries the source
        ring buffer's overflow count into :attr:`dropped` -- without it a
        worker that overflowed would fold into a launch trace that looks
        complete -- and, when fleet metrics are enabled, into the
        ``repro_trace_dropped_total`` counter, so silent trace loss is a
        fleet signal (and a default alert rule) rather than a per-run
        attribute.  Events are replayed in the order given; returns the
        number ingested.
        """
        if dropped:
            # Deferred import: metrics pulls in the cache layer, and the
            # tracer must stay importable from everywhere.
            from . import metrics as _metrics

            _metrics.counter_inc(
                "repro_trace_dropped_total",
                int(dropped),
                help="Trace events lost to source ring-buffer overflow.",
            )
        self.dropped += int(dropped)
        base = clock.offset_from(self.origin) if clock is not None else self._ts
        count = 0
        for ev in events:
            args = dict(ev.args) if ev.args else {}
            if tags:
                args.update(tags)
            ts = base + ev.ts
            self._stamp(ts, ev.dur)
            self._emit(
                Event(
                    name=ev.name,
                    category=ev.category,
                    ph=ev.ph,
                    ts=ts,
                    dur=ev.dur,
                    args=args or None,
                )
            )
            count += 1
        return count

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._span_stack)

    @property
    def current_span(self) -> Optional[Span]:
        return self._span_stack[-1] if self._span_stack else None

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._ts = 0.0
        self._span_stack.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer({len(self.events)}/{self.capacity} events, "
            f"{self.dropped} dropped, {len(self.counters)} counters)"
        )


# ----------------------------------------------------------------------
# Thread-local activation
# ----------------------------------------------------------------------
_tls = threading.local()


def current_tracer() -> Optional[Tracer]:
    """The tracer active on this thread, or ``None`` (the common case)."""
    return getattr(_tls, "tracer", None)


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as this thread's active tracer; returns the old."""
    previous = current_tracer()
    _tls.tracer = tracer
    return previous


@contextmanager
def tracing(
    tracer: Optional[Tracer] = None, capacity: int = DEFAULT_CAPACITY
) -> Iterator[Tracer]:
    """Activate a tracer for the body (creating one if not supplied)."""
    active = tracer if tracer is not None else Tracer(capacity)
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


# ----------------------------------------------------------------------
# No-op-when-disabled conveniences for instrumented call-sites
# ----------------------------------------------------------------------
_NULL_SPAN = nullcontext()


def span(name: str, category: str = "span", **args: Any):
    """A span on the active tracer, or a shared no-op context manager."""
    tracer = current_tracer()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **args)


def instant(name: str, category: str = "mark", **args: Any) -> None:
    """An instant event on the active tracer; no-op when disabled."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.instant(name, category, **args)


def add_counter(name: str, value: float = 1.0) -> None:
    """Accumulate into the active tracer's registry; no-op when disabled."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.counters.add(name, value)


def observe_counter(name: str, values) -> None:
    """Batch-observe values into the active registry; no-op when disabled."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.counters.observe(name, values)
