"""Zero-dependency structured logging with trace-span correlation.

Every record is one JSONL line with a stable schema::

    {"schema": 1, "ts": ..., "pid": ..., "level": "info",
     "event": "runtime.launch", "span_id": "batch:0", "parent_id": null,
     "fields": {"chunks": 4, "mode": "process", ...}}

Logging is **off by default** and gated the same way as the metrics and
trace layers: instrumented call-sites go through :func:`log_event`, which
costs a single flag check when disabled.  The ``REPRO_LOG`` environment
variable turns it on -- ``1``/``true``/``on`` write to
``<cache dir>/events.jsonl``, any other non-empty value is taken as the
sink path.  Worker processes inherit the environment, so a sharded
launch's workers append to the same sink; lines are single ``os.write``
calls on an ``O_APPEND`` descriptor, so concurrent writers interleave
whole records and a killed process never leaves a torn line (the same
contract as :class:`~repro.observe.history.RunHistory`).

The correlation story: the PR 6 profiler stamps every batch launch with
deterministic span ids (``batch:N``, ``batch:N/chunk:i``, ...).  The
runtime pushes the active scope onto a thread-local **span-context
stack** (:func:`span_context`), and every record logged underneath
defaults its ``span_id``/``parent_id`` from the stack top -- so an alert,
a log line, and a flamegraph span all join on the same id.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

from contextlib import contextmanager

__all__ = [
    "LOG_SCHEMA",
    "LEVELS",
    "StructuredLogger",
    "current_span",
    "default_log_path",
    "default_logger",
    "log_enabled",
    "log_event",
    "read_log",
    "set_default_logger",
    "set_log_enabled",
    "span_context",
]

#: Bump when the record layout changes; readers skip mismatched lines.
LOG_SCHEMA = 1

#: Severity ladder, least to most urgent.
LEVELS = ("debug", "info", "warning", "error")

_FALSEY = {"", "0", "false", "no", "off"}
_TRUTHY = {"1", "true", "yes", "on"}


def default_log_path() -> Path:
    """``events.jsonl`` under the persistent cache root."""
    from ..runtime.cache import cache_dir

    return cache_dir() / "events.jsonl"


def _env_sink() -> Optional[Path]:
    """The sink ``REPRO_LOG`` asks for, or ``None`` when disabled."""
    raw = os.environ.get("REPRO_LOG", "").strip()
    if raw.lower() in _FALSEY:
        return None
    if raw.lower() in _TRUTHY:
        return default_log_path()
    return Path(raw)


def _jsonable(value: Any) -> Any:
    """Clamp a field value to something ``json.dumps`` accepts."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class StructuredLogger:
    """Append-only JSONL sink of schema-stamped structured records."""

    def __init__(self, path: Optional[Path | str] = None) -> None:
        self.path = Path(path) if path else default_log_path()
        self._lock = threading.Lock()

    def log(
        self,
        event: str,
        level: str = "info",
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **fields: Any,
    ) -> None:
        """Append one record; span ids default from :func:`span_context`.

        Sink failures (read-only disk, deleted directory) are swallowed:
        logging is telemetry and must never fail the instrumented path.
        """
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; one of {LEVELS}")
        if span_id is None:
            span_id, ctx_parent = current_span()
            if parent_id is None:
                parent_id = ctx_parent
        record = {
            "schema": LOG_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "level": level,
            "event": str(event),
            "span_id": span_id,
            "parent_id": parent_id,
            "fields": _jsonable(fields),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._lock:
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                try:
                    os.write(fd, line.encode("utf-8"))
                finally:
                    os.close(fd)
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StructuredLogger({self.path})"


def read_log(path: Path | str) -> List[dict]:
    """All valid records at ``path``, oldest first.

    Torn, corrupt, or schema-mismatched lines are skipped, mirroring
    :meth:`RunHistory.load`: a sink shared by concurrent writers must
    read back cleanly even after a mid-line kill.
    """
    try:
        text = Path(path).read_text()
    except OSError:
        return []
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if not isinstance(doc, dict) or doc.get("schema") != LOG_SCHEMA:
            continue
        records.append(doc)
    return records


# ----------------------------------------------------------------------
# Thread-local span-context stack
# ----------------------------------------------------------------------
_tls = threading.local()


def current_span() -> Tuple[Optional[str], Optional[str]]:
    """``(span_id, parent_id)`` of the innermost active context."""
    stack = getattr(_tls, "spans", None)
    if not stack:
        return None, None
    return stack[-1]


@contextmanager
def span_context(
    span_id: str, parent_id: Optional[str] = None
) -> Iterator[None]:
    """Stamp records logged in the body with ``span_id``.

    Contexts nest: an inner context's ``parent_id`` defaults to the
    enclosing context's span, mirroring the profiler's span tree.
    """
    stack = getattr(_tls, "spans", None)
    if stack is None:
        stack = _tls.spans = []
    if parent_id is None and stack:
        parent_id = stack[-1][0]
    stack.append((span_id, parent_id))
    try:
        yield
    finally:
        stack.pop()


# ----------------------------------------------------------------------
# Process-wide gate + default sink (REPRO_LOG)
# ----------------------------------------------------------------------
_enabled: bool = _env_sink() is not None
_default: Optional[StructuredLogger] = None


def log_enabled() -> bool:
    """Whether :func:`log_event` records anything right now."""
    return _enabled


def set_log_enabled(flag: bool) -> bool:
    """Flip the gate (overriding ``REPRO_LOG``); returns the previous."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def default_logger() -> StructuredLogger:
    """The process-wide sink, created on first use from ``REPRO_LOG``."""
    global _default
    if _default is None:
        _default = StructuredLogger(_env_sink() or default_log_path())
    return _default


def set_default_logger(
    logger: Optional[StructuredLogger],
) -> Optional[StructuredLogger]:
    """Swap the process-wide sink; returns the previous one."""
    global _default
    previous = _default
    _default = logger
    return previous


def log_event(
    event: str,
    level: str = "info",
    span_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    **fields: Any,
) -> None:
    """Record ``event`` on the default sink; a no-op when disabled.

    This is the call instrumented paths use: disabled, it costs one
    module-global check (the same contract as
    :func:`~repro.observe.metrics.counter_inc`).
    """
    if not _enabled:
        return
    default_logger().log(
        event, level=level, span_id=span_id, parent_id=parent_id, **fields
    )
