"""Terminal dashboard over the run history and metrics snapshot.

``python -m repro.observe.report`` renders, from the artifacts the
instrumented runtime leaves behind (``history.jsonl`` plus the
``metrics.json`` / ``metrics.prom`` snapshot under the cache root):

* the most recent runs (problems, chunks, workers, mode, wall time,
  winning regime);
* the regime mix across the history window -- the paper's
  bandwidth-bound vs compute-bound narrative as a fleet-level signal;
* the latest critical-path profile a traced run recorded -- phase
  decomposition, straggler index, and queue share;
* cache hit rates for the calibration and dispatch caches;
* the latest SLO evaluation ``python -m repro.observe.alerts check``
  persisted (rule states, severities, and observed values);
* drift flags: gauges in the latest run that moved beyond a
  direction-aware tolerance from their rolling-window median.

Everything is stdlib + the repo's own table renderer; no third-party
dependencies.  ``--strict`` exits non-zero when drift is flagged, so the
same command doubles as a CI gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..reporting.tables import format_table
from .history import RunHistory, default_history_path, detect_drift
from .metrics import (
    MetricsRegistry,
    default_snapshot_path,
    load_metrics_snapshot,
)

__all__ = ["main", "render_report"]


def _fmt_ts(ts: float) -> str:
    try:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))
    except (OverflowError, OSError, ValueError):
        return "?"


def _run_rows(records: List[dict], limit: int) -> List[list]:
    rows = []
    for doc in records[-limit:]:
        summary = doc.get("summary", {})
        groups = summary.get("groups", [])
        ops = ",".join(g.get("op", "?") for g in groups) or "?"
        regimes = doc.get("regimes", [])
        regime = ",".join(sorted({r.get("regime", "?") for r in regimes})) or "-"
        rows.append(
            [
                _fmt_ts(doc.get("ts", 0.0)),
                ops,
                summary.get("problems", 0),
                summary.get("chunks", 0),
                summary.get("workers", 0),
                summary.get("mode", "?"),
                summary.get("wall_s", 0.0),
                regime,
            ]
        )
    return rows


def _regime_mix(records: List[dict]) -> List[list]:
    counts: dict = {}
    total = 0
    for doc in records:
        for entry in doc.get("regimes", []):
            regime = entry.get("regime", "?")
            counts[regime] = counts.get(regime, 0) + 1
            total += 1
    rows = []
    for regime in sorted(counts, key=lambda r: (-counts[r], r)):
        share = counts[regime] / total if total else 0.0
        rows.append([regime, counts[regime], f"{share:.0%}"])
    return rows


def _latest_profile(records: List[dict]) -> Optional[dict]:
    for doc in reversed(records):
        profile = doc.get("profile")
        if isinstance(profile, dict) and profile.get("phases"):
            return profile
    return None


def _profile_rows(profile: dict) -> List[list]:
    phases = profile.get("phases", {})
    wall = float(profile.get("wall_s", 0.0)) or 0.0
    rows = []
    for phase in sorted(phases, key=lambda p: -phases[p]):
        seconds = float(phases[phase])
        share = seconds / wall if wall > 0 else 0.0
        rows.append([phase, f"{seconds:.4f}", f"{share:.1%}"])
    return rows


def _cache_rows(registry: Optional[MetricsRegistry]) -> List[list]:
    if registry is None or "repro_cache_requests_total" not in registry:
        return []
    rows = []
    caches = registry.label_values("repro_cache_requests_total", "cache")
    for cache in caches:
        hits = registry.sum_series(
            "repro_cache_requests_total", cache=cache, outcome="hit"
        )
        misses = registry.sum_series(
            "repro_cache_requests_total", cache=cache, outcome="miss"
        )
        stale = registry.sum_series(
            "repro_cache_requests_total", cache=cache, outcome="stale"
        )
        total = hits + misses + stale
        rate = f"{hits / total:.0%}" if total else "-"
        rows.append([cache, int(hits), int(misses), int(stale), rate])
    return rows


def _alert_rows(state: dict) -> List[list]:
    rows = []
    for result in state.get("results", []):
        if not isinstance(result, dict):
            continue
        value = result.get("value")
        state_word = result.get("state", "?")
        rows.append(
            [
                result.get("rule", "?"),
                result.get("severity", "?"),
                state_word.upper() if state_word == "firing" else state_word,
                "-" if value is None else f"{value:.4g}",
                result.get("span_id") or "-",
            ]
        )
    return rows


def render_report(
    history: RunHistory,
    registry: Optional[MetricsRegistry],
    runs: int = 10,
    window: int = 8,
    tolerance: float = 0.10,
    alerts: Optional[dict] = None,
):
    """The dashboard text plus the drift flags it rendered.

    ``alerts`` is the persisted state doc of the most recent
    ``python -m repro.observe.alerts check`` (see
    :func:`~repro.observe.alerts.load_alert_state`); when given, its
    rule states render as an "Alerts" section.
    """
    records = history.load()
    sections = []
    if not records:
        sections.append(
            f"no run history at {history.path} -- run a sharded batch "
            "(e.g. examples/quickstart.py) to populate it"
        )
    else:
        sections.append(
            format_table(
                [
                    "time",
                    "ops",
                    "problems",
                    "chunks",
                    "workers",
                    "mode",
                    "wall_s",
                    "regime",
                ],
                _run_rows(records, runs),
                title=f"Recent runs ({min(runs, len(records))} of {len(records)})",
            )
        )
        mix = _regime_mix(records)
        if mix:
            sections.append(
                format_table(
                    ["regime", "launches", "share"], mix, title="Regime mix"
                )
            )
        profile = _latest_profile(records)
        if profile is not None:
            straggler = float(profile.get("straggler_index", 1.0))
            queue_share = float(profile.get("queue_share", 0.0))
            sections.append(
                format_table(
                    ["phase", "seconds", "share"],
                    _profile_rows(profile),
                    title=(
                        "Latest profile (straggler index "
                        f"{straggler:.2f}, queue share {queue_share:.0%})"
                    ),
                )
            )

    if alerts is not None:
        alert_rows = _alert_rows(alerts)
        if alert_rows:
            firing = sum(1 for row in alert_rows if row[2] == "FIRING")
            slo = alerts.get("slo", "?")
            title = f"Alerts (slo {slo}, "
            title += f"{firing} firing)" if firing else "all quiet)"
            sections.append(
                format_table(
                    ["rule", "severity", "state", "value", "span"],
                    alert_rows,
                    title=title,
                )
            )

    cache_rows = _cache_rows(registry)
    if cache_rows:
        sections.append(
            format_table(
                ["cache", "hits", "misses", "stale", "hit rate"],
                cache_rows,
                title="Cache hit rates",
            )
        )
    elif registry is not None:
        sections.append("no cache traffic recorded in the metrics snapshot")

    flags = detect_drift(records, window=window, tolerance=tolerance)
    if flags:
        sections.append(
            format_table(
                ["gauge", "latest", "median", "deviation", "better"],
                [
                    [f.gauge, f.value, f.median, f"{f.deviation:+.1%}", f.direction]
                    for f in flags
                ],
                title=f"Drift flags (>{tolerance:.0%} vs {window}-run median)",
            )
        )
    elif records:
        sections.append(
            f"no drift: latest run within {tolerance:.0%} of its "
            f"{window}-run median"
        )
    return "\n\n".join(sections) + "\n", flags


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe.report",
        description="Fleet telemetry dashboard: runs, regimes, caches, drift.",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        help="history JSONL path (default: <cache dir>/history.jsonl)",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        default=None,
        help="metrics snapshot (.json or .prom; default: <cache dir>/metrics.json)",
    )
    parser.add_argument(
        "--runs", type=int, default=10, help="recent runs to list (default 10)"
    )
    parser.add_argument(
        "--window", type=int, default=8, help="drift median window (default 8)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="drift tolerance as a fraction (default 0.10)",
    )
    parser.add_argument(
        "--alerts",
        type=Path,
        default=None,
        help="persisted alert state (default: <cache dir>/alerts.json)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any gauge drifted beyond tolerance",
    )
    args = parser.parse_args(argv)

    from .alerts import default_state_path, load_alert_state

    history = RunHistory(args.history or default_history_path())
    metrics_path = args.metrics or default_snapshot_path()
    registry = load_metrics_snapshot(metrics_path)
    if registry is None and args.metrics is None:
        # Fall back to the Prometheus exposition next to the JSON snapshot.
        registry = load_metrics_snapshot(metrics_path.with_suffix(".prom"))
    alerts = load_alert_state(args.alerts or default_state_path())

    text, flags = render_report(
        history,
        registry,
        runs=args.runs,
        window=args.window,
        tolerance=args.tolerance,
        alerts=alerts,
    )
    print(text, end="")
    if args.strict and flags:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
