"""Declarative SLO/alert rules over the metrics registry and run history.

A spec is a TOML or JSON document in the :mod:`repro.experiments` style::

    [slo]                       # identity
    name = "default"
    title = "Runtime health SLOs"

    [[rule]]                    # instantaneous bound on a metric family
    name = "chunk-wall-p99"
    kind = "threshold"
    severity = "ticket"
    metric = "repro_chunk_wall_seconds"
    quantile = 0.99             # histogram families only
    max = 30.0                  # or min = ...; exactly one bound

    [[rule]]                    # direction-aware drift on a history gauge
    name = "wall-drift"
    kind = "delta"
    gauge = "summary.wall_s"
    window = 8
    tolerance = 0.25            # relative move vs the window median

    [[rule]]                    # multi-window error-budget burn rate
    name = "failure-burn"
    kind = "burn_rate"
    severity = "page"
    numerator = "summary.failures"
    denominator = "summary.problems"
    objective = 0.999           # SLO: 99.9% of problems factor cleanly
    long_window = 24            # history records
    short_window = 4
    factor = 2.0                # fire when BOTH windows burn >= 2x budget

Specs compile into a deterministic :class:`AlertPlan` (content
fingerprint over the canonical rule list), and :func:`evaluate` turns a
plan plus the current telemetry -- a
:class:`~repro.observe.metrics.MetricsRegistry` snapshot and the
:class:`~repro.observe.history.RunHistory` records -- into per-rule
:class:`RuleResult` states (``ok`` / ``firing`` / ``no_data``) and
:class:`AlertEvent` transitions (``firing`` / ``resolved``) against the
previous evaluation's states.

Every result and event carries the ``span_id`` of the latest history
record (the profiler's ``batch:N`` scope, stamped by the runtime), so an
alert joins the offending launch's structured log lines and flamegraph
spans on one id.

``python -m repro.observe.alerts {check,watch,explain}`` is the CLI;
``check --strict`` exits 1 while any rule fires (2 on a spec error), so
the same command doubles as a CI gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from ..reporting.tables import format_table
from . import log as _log
from .history import RunHistory, default_history_path, gauge_direction, record_gauges
from .metrics import (
    MetricsRegistry,
    default_snapshot_path,
    load_metrics_snapshot,
)

__all__ = [
    "ALERTS_SCHEMA",
    "KINDS",
    "SEVERITIES",
    "AlertEvent",
    "AlertPlan",
    "AlertRule",
    "AlertSpecError",
    "Evaluation",
    "RuleResult",
    "alert_spec_from_dict",
    "compile_plan",
    "default_state_path",
    "evaluate",
    "load_alert_spec",
    "load_alert_state",
    "main",
    "write_alert_state",
]

#: Bump when the spec layout or state-file layout changes.
ALERTS_SCHEMA = 1

KINDS = ("threshold", "delta", "burn_rate")

#: Escalation ladder, least to most urgent.
SEVERITIES = ("info", "ticket", "page")

#: Severity -> structured-log level for emitted alert events.
_SEVERITY_LEVEL = {"info": "info", "ticket": "warning", "page": "error"}

_TOP_LEVEL_KEYS = {"slo", "rule"}
_SLO_KEYS = {"name", "title"}
_COMMON_KEYS = {"name", "kind", "severity"}
_KIND_KEYS = {
    "threshold": {"metric", "quantile", "labels", "max", "min"},
    "delta": {"gauge", "window", "tolerance", "min_history", "direction"},
    "burn_rate": {
        "numerator",
        "denominator",
        "objective",
        "long_window",
        "short_window",
        "factor",
    },
}


class AlertSpecError(ValueError):
    """A rule spec that fails validation (unknown kind, bad bound, ...)."""


def _require_keys(mapping: Mapping, allowed: set, where: str) -> None:
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise AlertSpecError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _number(value, where: str, minimum=None, maximum=None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AlertSpecError(f"{where} must be a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise AlertSpecError(f"{where} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise AlertSpecError(f"{where} must be <= {maximum}, got {value}")
    return value


def _window(value, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise AlertSpecError(f"{where} must be a positive int, got {value!r}")
    return value


@dataclasses.dataclass(frozen=True)
class AlertRule:
    """One compiled rule; only the fields its ``kind`` uses are set."""

    name: str
    kind: str
    severity: str = "ticket"
    # threshold
    metric: Optional[str] = None
    quantile: Optional[float] = None
    labels: tuple = ()
    max: Optional[float] = None
    min: Optional[float] = None
    # delta
    gauge: Optional[str] = None
    window: int = 8
    tolerance: float = 0.10
    min_history: int = 3
    direction: Optional[str] = None
    # burn_rate
    numerator: Optional[str] = None
    denominator: Optional[str] = None
    objective: float = 0.999
    long_window: int = 24
    short_window: int = 4
    factor: float = 2.0

    def to_dict(self) -> dict:
        """Canonical form: the fields this rule's kind actually reads."""
        doc: dict = {
            "name": self.name,
            "kind": self.kind,
            "severity": self.severity,
        }
        if self.kind == "threshold":
            doc["metric"] = self.metric
            if self.quantile is not None:
                doc["quantile"] = self.quantile
            if self.labels:
                doc["labels"] = dict(self.labels)
            if self.max is not None:
                doc["max"] = self.max
            if self.min is not None:
                doc["min"] = self.min
        elif self.kind == "delta":
            doc.update(
                gauge=self.gauge,
                window=self.window,
                tolerance=self.tolerance,
                min_history=self.min_history,
                direction=self.direction or gauge_direction(self.gauge or ""),
            )
        else:
            doc.update(
                numerator=self.numerator,
                denominator=self.denominator,
                objective=self.objective,
                long_window=self.long_window,
                short_window=self.short_window,
                factor=self.factor,
            )
        return doc


@dataclasses.dataclass(frozen=True)
class AlertSpec:
    """Parsed spec: an identity plus an ordered rule list."""

    name: str
    title: str
    rules: tuple


@dataclasses.dataclass(frozen=True)
class AlertPlan:
    """A validated spec plus its deterministic content fingerprint.

    The fingerprint hashes the *canonical* rule list, so cosmetic spec
    edits (key order, comments, TOML vs JSON) keep it and any semantic
    change -- a bound, a window, a severity -- invalidates persisted
    alert states that were computed under the old plan.
    """

    spec: AlertSpec
    fingerprint: str

    @property
    def rules(self) -> tuple:
        return self.spec.rules


def _parse_rule(entry: Mapping, where: str) -> AlertRule:
    if not isinstance(entry, Mapping):
        raise AlertSpecError(f"{where}: must be a table")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise AlertSpecError(f"{where}: needs a non-empty name")
    kind = entry.get("kind")
    if kind not in KINDS:
        raise AlertSpecError(
            f"{where}: unknown kind {kind!r}; one of {', '.join(KINDS)}"
        )
    severity = entry.get("severity", "ticket")
    if severity not in SEVERITIES:
        raise AlertSpecError(
            f"{where}: unknown severity {severity!r}; "
            f"one of {', '.join(SEVERITIES)}"
        )
    _require_keys(entry, _COMMON_KEYS | _KIND_KEYS[kind], where)

    if kind == "threshold":
        metric = entry.get("metric")
        if not isinstance(metric, str) or not metric:
            raise AlertSpecError(f"{where}: threshold needs a metric name")
        quantile = entry.get("quantile")
        if quantile is not None:
            quantile = _number(
                quantile, f"{where}.quantile", minimum=0.0, maximum=1.0
            )
        labels = entry.get("labels") or {}
        if not isinstance(labels, Mapping) or not all(
            isinstance(k, str) for k in labels
        ):
            raise AlertSpecError(f"{where}.labels must be a table")
        upper = entry.get("max")
        lower = entry.get("min")
        if (upper is None) == (lower is None):
            raise AlertSpecError(
                f"{where}: threshold needs exactly one of max/min"
            )
        if upper is not None:
            upper = _number(upper, f"{where}.max")
        if lower is not None:
            lower = _number(lower, f"{where}.min")
        return AlertRule(
            name=name,
            kind=kind,
            severity=severity,
            metric=metric,
            quantile=quantile,
            labels=tuple(sorted((k, str(v)) for k, v in labels.items())),
            max=upper,
            min=lower,
        )

    if kind == "delta":
        gauge = entry.get("gauge")
        if not isinstance(gauge, str) or not gauge:
            raise AlertSpecError(f"{where}: delta needs a gauge name")
        direction = entry.get("direction")
        if direction is not None and direction not in ("higher", "lower"):
            raise AlertSpecError(
                f"{where}.direction must be 'higher' or 'lower'"
            )
        return AlertRule(
            name=name,
            kind=kind,
            severity=severity,
            gauge=gauge,
            window=_window(entry.get("window", 8), f"{where}.window"),
            tolerance=_number(
                entry.get("tolerance", 0.10), f"{where}.tolerance", minimum=0.0
            ),
            min_history=_window(
                entry.get("min_history", 3), f"{where}.min_history"
            ),
            direction=direction,
        )

    numerator = entry.get("numerator")
    denominator = entry.get("denominator")
    if not isinstance(numerator, str) or not numerator:
        raise AlertSpecError(f"{where}: burn_rate needs a numerator gauge")
    if not isinstance(denominator, str) or not denominator:
        raise AlertSpecError(f"{where}: burn_rate needs a denominator gauge")
    objective = _number(
        entry.get("objective", 0.999), f"{where}.objective", minimum=0.0
    )
    if not objective < 1.0:
        raise AlertSpecError(
            f"{where}.objective must be < 1 (1 leaves no error budget)"
        )
    long_window = _window(entry.get("long_window", 24), f"{where}.long_window")
    short_window = _window(
        entry.get("short_window", 4), f"{where}.short_window"
    )
    if short_window > long_window:
        raise AlertSpecError(
            f"{where}: short_window ({short_window}) must not exceed "
            f"long_window ({long_window})"
        )
    return AlertRule(
        name=name,
        kind=kind,
        severity=severity,
        numerator=numerator,
        denominator=denominator,
        objective=objective,
        long_window=long_window,
        short_window=short_window,
        factor=_number(entry.get("factor", 2.0), f"{where}.factor", minimum=0.0),
    )


def alert_spec_from_dict(doc: Mapping) -> AlertSpec:
    """Validate a plain dict (parsed TOML/JSON) into an :class:`AlertSpec`."""
    if not isinstance(doc, Mapping):
        raise AlertSpecError(
            f"spec must be a table/object, got {type(doc).__name__}"
        )
    _require_keys(doc, _TOP_LEVEL_KEYS, "spec")
    slo = doc.get("slo")
    if not isinstance(slo, Mapping) or "name" not in slo:
        raise AlertSpecError("spec needs an [slo] table with a name")
    _require_keys(slo, _SLO_KEYS, "[slo]")
    name = slo["name"]
    if not isinstance(name, str) or not name:
        raise AlertSpecError("slo.name must be a non-empty string")
    raw_rules = doc.get("rule")
    if not isinstance(raw_rules, Sequence) or not raw_rules:
        raise AlertSpecError("spec needs at least one [[rule]]")
    rules = tuple(
        _parse_rule(entry, f"rule[{i}]") for i, entry in enumerate(raw_rules)
    )
    seen: set = set()
    for rule in rules:
        if rule.name in seen:
            raise AlertSpecError(f"duplicate rule name {rule.name!r}")
        seen.add(rule.name)
    return AlertSpec(name=name, title=str(slo.get("title", "")), rules=rules)


def load_alert_spec(path: Path | str) -> AlertSpec:
    """Parse a ``.toml`` or ``.json`` rule spec file.

    TOML needs Python 3.11+ (stdlib ``tomllib``); JSON specs work
    everywhere and carry the identical structure.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise AlertSpecError(f"cannot read spec {path}: {exc}") from exc
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python 3.10
            raise AlertSpecError(
                f"{path}: TOML specs need Python 3.11+ (stdlib tomllib); "
                "use the JSON form on older interpreters"
            ) from exc
        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise AlertSpecError(f"{path}: invalid TOML: {exc}") from exc
    elif path.suffix == ".json":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise AlertSpecError(f"{path}: invalid JSON: {exc}") from exc
    else:
        raise AlertSpecError(f"{path}: spec must be .toml or .json")
    return alert_spec_from_dict(doc)


def compile_plan(spec: AlertSpec) -> AlertPlan:
    """Freeze ``spec`` into a fingerprinted, evaluation-ready plan."""
    payload = {
        "schema": ALERTS_SCHEMA,
        "slo": spec.name,
        "rules": [rule.to_dict() for rule in spec.rules],
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return AlertPlan(spec=spec, fingerprint=digest)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RuleResult:
    """One rule's evaluation: state, observed value, and evidence."""

    rule: str
    kind: str
    severity: str
    #: ``ok`` / ``firing`` / ``no_data``.
    state: str
    value: Optional[float]
    limit: Optional[float]
    #: Human-readable one-liner: why this state.
    detail: str
    #: Inputs that produced the state (windows, medians, label match...).
    evidence: dict
    #: Profile scope of the latest history record, when one exists.
    span_id: Optional[str]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class AlertEvent:
    """One state transition (``firing`` or ``resolved``)."""

    rule: str
    transition: str
    severity: str
    ts: float
    value: Optional[float]
    evidence: dict
    span_id: Optional[str]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Evaluation:
    """Everything one :func:`evaluate` pass produced."""

    plan: AlertPlan
    results: tuple
    events: tuple
    #: Rule -> carried state; ``no_data`` keeps the previous state, so a
    #: firing alert is not silently resolved by a missing snapshot.
    states: dict

    @property
    def firing(self) -> List[RuleResult]:
        return [r for r in self.results if r.state == "firing"]


def _eval_threshold(
    rule: AlertRule, registry: Optional[MetricsRegistry]
) -> tuple:
    labels = dict(rule.labels)
    evidence: dict = {"metric": rule.metric, "labels": labels}
    if registry is None:
        return None, "no_data", "no metrics snapshot"
    if rule.metric not in registry:
        return None, "no_data", f"family {rule.metric!r} not in snapshot"
    kind = registry.kind(rule.metric)
    if rule.quantile is not None:
        if kind != "histogram":
            return None, "no_data", f"{rule.metric!r} is a {kind}, not a histogram"
        merged = registry.merged_histogram(rule.metric, **labels)
        value = merged.quantile(rule.quantile) if merged is not None else None
        if value is None:
            return None, "no_data", "no matching histogram observations"
        evidence["quantile"] = rule.quantile
        evidence["count"] = merged.count
    else:
        if kind == "histogram":
            return (
                None,
                "no_data",
                f"{rule.metric!r} is a histogram; set quantile",
            )
        value = registry.sum_series(rule.metric, **labels)
    if rule.max is not None and value > rule.max:
        return value, "firing", f"{value:.6g} > max {rule.max:.6g}"
    if rule.min is not None and value < rule.min:
        return value, "firing", f"{value:.6g} < min {rule.min:.6g}"
    bound = rule.max if rule.max is not None else rule.min
    word = "max" if rule.max is not None else "min"
    return value, "ok", f"{value:.6g} within {word} {bound:.6g}"


def _eval_delta(rule: AlertRule, records: Sequence[dict]) -> tuple:
    series = []
    for record in records:
        value = record_gauges(record).get(rule.gauge)
        if value is not None:
            series.append(value)
    if len(series) < rule.min_history + 1:
        return (
            None,
            "no_data",
            f"needs {rule.min_history + 1} samples of {rule.gauge!r}, "
            f"have {len(series)}",
            {},
        )
    latest = series[-1]
    window = series[-(rule.window + 1) : -1]
    median = statistics.median(window)
    if abs(median) < 1e-12:
        return None, "no_data", "window median ~0; relative drift undefined", {}
    deviation = (latest - median) / abs(median)
    direction = rule.direction or gauge_direction(rule.gauge)
    bad = deviation > rule.tolerance if direction == "lower" else (
        deviation < -rule.tolerance
    )
    evidence = {
        "gauge": rule.gauge,
        "latest": latest,
        "median": median,
        "deviation": deviation,
        "direction": direction,
        "window": len(window),
    }
    detail = (
        f"{latest:.4g} vs median {median:.4g} ({deviation:+.1%}, "
        f"{direction} is better)"
    )
    return deviation, ("firing" if bad else "ok"), detail, evidence


def _burn(pairs: Sequence[tuple], window: int, budget: float):
    recent = pairs[-window:]
    numerator = sum(n for n, _ in recent)
    denominator = sum(d for _, d in recent)
    if denominator <= 0:
        return None
    return (numerator / denominator) / budget


def _eval_burn(rule: AlertRule, records: Sequence[dict]) -> tuple:
    pairs = []
    for record in records:
        gauges = record_gauges(record)
        num = gauges.get(rule.numerator)
        denom = gauges.get(rule.denominator)
        if num is not None and denom is not None:
            pairs.append((num, denom))
    if not pairs:
        return (
            None,
            "no_data",
            f"no records carry {rule.numerator!r}/{rule.denominator!r}",
            {},
        )
    budget = 1.0 - rule.objective
    long_burn = _burn(pairs, rule.long_window, budget)
    short_burn = _burn(pairs, rule.short_window, budget)
    if long_burn is None or short_burn is None:
        return None, "no_data", "window denominator is zero", {}
    firing = long_burn >= rule.factor and short_burn >= rule.factor
    evidence = {
        "numerator": rule.numerator,
        "denominator": rule.denominator,
        "objective": rule.objective,
        "budget": budget,
        "long_burn": long_burn,
        "short_burn": short_burn,
        "records": len(pairs),
    }
    detail = (
        f"burn {long_burn:.3g}x/{short_burn:.3g}x budget over "
        f"{rule.long_window}/{rule.short_window} records "
        f"({'>=' if firing else '<'} {rule.factor:g}x)"
    )
    return max(long_burn, short_burn), ("firing" if firing else "ok"), detail, evidence


def evaluate(
    plan: AlertPlan,
    registry: Optional[MetricsRegistry] = None,
    records: Optional[Sequence[dict]] = None,
    previous: Optional[Mapping[str, str]] = None,
) -> Evaluation:
    """Evaluate every rule and diff the states against ``previous``.

    ``previous`` maps rule name -> last carried state (the ``states``
    table of the prior evaluation); transitions into ``firing`` and back
    to ``ok`` become :class:`AlertEvent` records.  A ``no_data``
    evaluation carries the previous state forward instead of resolving
    it -- losing a snapshot must not silence a live alert.
    """
    records = list(records or [])
    previous = dict(previous or {})
    span_id = None
    for record in reversed(records):
        if isinstance(record.get("span_id"), str):
            span_id = record["span_id"]
            break
    now = time.time()
    results = []
    events = []
    states: Dict[str, str] = {}
    for rule in plan.rules:
        if rule.kind == "threshold":
            value, state, detail = _eval_threshold(rule, registry)
            evidence = {"metric": rule.metric, "labels": dict(rule.labels)}
        elif rule.kind == "delta":
            value, state, detail, evidence = _eval_delta(rule, records)
        else:
            value, state, detail, evidence = _eval_burn(rule, records)
        limit = None
        if rule.kind == "threshold":
            limit = rule.max if rule.max is not None else rule.min
        elif rule.kind == "delta":
            limit = rule.tolerance
        else:
            limit = rule.factor
        result = RuleResult(
            rule=rule.name,
            kind=rule.kind,
            severity=rule.severity,
            state=state,
            value=value,
            limit=limit,
            detail=detail,
            evidence=evidence,
            span_id=span_id,
        )
        results.append(result)
        prior = previous.get(rule.name)
        if state == "firing" and prior != "firing":
            events.append(
                AlertEvent(
                    rule=rule.name,
                    transition="firing",
                    severity=rule.severity,
                    ts=now,
                    value=value,
                    evidence=evidence,
                    span_id=span_id,
                )
            )
        elif state == "ok" and prior == "firing":
            events.append(
                AlertEvent(
                    rule=rule.name,
                    transition="resolved",
                    severity=rule.severity,
                    ts=now,
                    value=value,
                    evidence=evidence,
                    span_id=span_id,
                )
            )
        if state == "no_data":
            states[rule.name] = prior or "no_data"
        else:
            states[rule.name] = state
    return Evaluation(
        plan=plan,
        results=tuple(results),
        events=tuple(events),
        states=states,
    )


# ----------------------------------------------------------------------
# State persistence + CLI
# ----------------------------------------------------------------------
def default_state_path() -> Path:
    """``alerts.json`` under the persistent cache root."""
    from ..runtime.cache import cache_dir

    return cache_dir() / "alerts.json"


def load_alert_state(path: Path | str) -> Optional[dict]:
    """The persisted state doc, or ``None`` (missing/corrupt/old schema)."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != ALERTS_SCHEMA:
        return None
    return doc


def write_alert_state(path: Path | str, evaluation: Evaluation) -> Path:
    """Atomically persist an evaluation for the next run's transitions."""
    from .export import atomic_write_text

    doc = {
        "schema": ALERTS_SCHEMA,
        "slo": evaluation.plan.spec.name,
        "fingerprint": evaluation.plan.fingerprint,
        "ts": time.time(),
        "states": evaluation.states,
        "results": [r.to_dict() for r in evaluation.results],
        "events": [e.to_dict() for e in evaluation.events],
    }
    path = Path(path)
    atomic_write_text(path, json.dumps(doc, sort_keys=True, indent=2) + "\n")
    return path


def _previous_states(
    state_doc: Optional[dict], plan: AlertPlan
) -> Dict[str, str]:
    """Prior states, discarded when they came from a different plan."""
    if not state_doc or state_doc.get("fingerprint") != plan.fingerprint:
        return {}
    states = state_doc.get("states")
    return dict(states) if isinstance(states, dict) else {}


def _load_inputs(args):
    registry = load_metrics_snapshot(args.metrics or default_snapshot_path())
    if registry is None and args.metrics is None:
        registry = load_metrics_snapshot(
            default_snapshot_path().with_suffix(".prom")
        )
    history = RunHistory(args.history or default_history_path())
    return registry, history.load()


def _emit_events(evaluation: Evaluation) -> None:
    """Mirror transitions into the structured log (when enabled)."""
    for event in evaluation.events:
        _log.log_event(
            f"alert.{event.transition}",
            level=_SEVERITY_LEVEL.get(event.severity, "warning"),
            span_id=event.span_id,
            rule=event.rule,
            severity=event.severity,
            value=event.value,
            **{k: v for k, v in event.evidence.items() if k != "labels"},
        )


def _result_rows(results: Sequence[RuleResult]) -> List[list]:
    rows = []
    for result in results:
        rows.append(
            [
                result.rule,
                result.kind,
                result.severity,
                result.state.upper() if result.state == "firing" else result.state,
                "-" if result.value is None else f"{result.value:.4g}",
                "-" if result.limit is None else f"{result.limit:.4g}",
                result.detail,
            ]
        )
    return rows


def _render(evaluation: Evaluation) -> str:
    spec = evaluation.plan.spec
    title = f"Alerts ({spec.name}"
    firing = len(evaluation.firing)
    title += f", {firing} firing)" if firing else ", all quiet)"
    return format_table(
        ["rule", "kind", "severity", "state", "value", "limit", "detail"],
        _result_rows(evaluation.results),
        title=title,
    )


def _cmd_check(args) -> int:
    plan = compile_plan(load_alert_spec(args.spec))
    registry, records = _load_inputs(args)
    state_path = args.state or default_state_path()
    previous = _previous_states(load_alert_state(state_path), plan)
    evaluation = evaluate(plan, registry, records, previous)
    _emit_events(evaluation)
    print(_render(evaluation))
    for event in evaluation.events:
        print(
            f"alert {event.transition}: {event.rule} "
            f"[{event.severity}] span={event.span_id or '-'}"
        )
    try:
        write_alert_state(state_path, evaluation)
    except OSError as exc:
        print(f"warning: could not persist state to {state_path}: {exc}")
    if args.json:
        write_alert_state(args.json, evaluation)
    if args.strict and evaluation.firing:
        return 1
    return 0


def _explain_rule(rule: AlertRule, result: RuleResult) -> str:
    lines = [f"{rule.name} ({rule.kind}, severity {rule.severity})"]
    if rule.kind == "threshold":
        target = rule.metric
        if rule.quantile is not None:
            target = f"p{rule.quantile * 100:g} of {target}"
        if rule.labels:
            target += f" {dict(rule.labels)}"
        bound = (
            f"max {rule.max:g}" if rule.max is not None else f"min {rule.min:g}"
        )
        lines.append(f"  watches: {target}, bound {bound}")
    elif rule.kind == "delta":
        direction = rule.direction or gauge_direction(rule.gauge)
        lines.append(
            f"  watches: history gauge {rule.gauge!r} vs its "
            f"{rule.window}-record median (tolerance "
            f"{rule.tolerance:.0%}, {direction} is better)"
        )
    else:
        lines.append(
            f"  watches: {rule.numerator}/{rule.denominator} burn vs a "
            f"{rule.objective:.4%} objective over "
            f"{rule.long_window}/{rule.short_window} records "
            f"(fires at {rule.factor:g}x budget)"
        )
    lines.append(f"  state: {result.state} -- {result.detail}")
    if result.span_id:
        lines.append(f"  latest span: {result.span_id}")
    return "\n".join(lines)


def _cmd_explain(args) -> int:
    plan = compile_plan(load_alert_spec(args.spec))
    registry, records = _load_inputs(args)
    evaluation = evaluate(plan, registry, records)
    spec = plan.spec
    header = f"SLO {spec.name!r}"
    if spec.title:
        header += f" -- {spec.title}"
    print(header)
    print(f"plan fingerprint: {plan.fingerprint[:16]}")
    print(f"rules: {len(plan.rules)}\n")
    for rule, result in zip(plan.rules, evaluation.results):
        print(_explain_rule(rule, result))
        print()
    return 0


def _cmd_watch(args) -> int:
    plan = compile_plan(load_alert_spec(args.spec))
    states: Dict[str, str] = {}
    evaluation = None
    iteration = 0
    while args.iterations is None or iteration < args.iterations:
        registry, records = _load_inputs(args)
        evaluation = evaluate(plan, registry, records, states)
        states = evaluation.states
        _emit_events(evaluation)
        stamp = time.strftime("%H:%M:%S")
        firing = evaluation.firing
        if evaluation.events:
            for event in evaluation.events:
                print(
                    f"[{stamp}] {event.transition}: {event.rule} "
                    f"[{event.severity}] span={event.span_id or '-'}"
                )
        else:
            print(
                f"[{stamp}] {len(firing)} firing / "
                f"{len(evaluation.results)} rules"
            )
        sys.stdout.flush()
        iteration += 1
        if args.iterations is not None and iteration >= args.iterations:
            break
        time.sleep(args.interval)
    if args.strict and evaluation is not None and evaluation.firing:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe.alerts",
        description="Evaluate declarative SLO/alert rules over the "
        "metrics snapshot and run history.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("spec", type=Path, help="alert rule spec (.toml/.json)")
        p.add_argument(
            "--metrics",
            type=Path,
            default=None,
            help="metrics snapshot (default: <cache dir>/metrics.json)",
        )
        p.add_argument(
            "--history",
            type=Path,
            default=None,
            help="history JSONL (default: <cache dir>/history.jsonl)",
        )

    check = sub.add_parser(
        "check", help="evaluate once, persist state, exit-code the result"
    )
    add_common(check)
    check.add_argument(
        "--state",
        type=Path,
        default=None,
        help="state file for transitions (default: <cache dir>/alerts.json)",
    )
    check.add_argument(
        "--json", type=Path, default=None, help="also write the state doc here"
    )
    check.add_argument(
        "--strict", action="store_true", help="exit 1 while any rule fires"
    )

    explain = sub.add_parser(
        "explain", help="show the compiled plan and why each rule is/isn't firing"
    )
    add_common(explain)

    watch = sub.add_parser(
        "watch", help="poll the telemetry and print state transitions"
    )
    add_common(watch)
    watch.add_argument(
        "--interval",
        type=float,
        default=30.0,
        help="seconds between evaluations (default 30)",
    )
    watch.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N evaluations (default: run forever)",
    )
    watch.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the final evaluation has firing rules",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "explain":
            return _cmd_explain(args)
        return _cmd_watch(args)
    except AlertSpecError as exc:
        print(f"spec error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
