"""Device specifications for the simulated GPUs.

The :class:`DeviceSpec` dataclass captures every architectural quantity the
paper's model and microbenchmarks depend on.  The preset
:data:`QUADRO_6000` reproduces Table I of the paper; :data:`G80` exists so
the shared-memory-latency methodology can be validated against Volkov's
published 36-cycle figure, exactly as the authors did.

All bandwidth figures are in bytes/second and all latencies in core clock
cycles unless a field name says otherwise.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["DeviceSpec", "QUADRO_6000", "G80", "GTX480"]


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a simulated CUDA GPU.

    The defaults of the derived properties follow the GF100 (Fermi)
    organisation; earlier chips override the relevant raw fields.
    """

    name: str
    #: Number of streaming multiprocessors ("SIMT units" in the paper).
    num_sms: int
    #: Single-precision FPUs (CUDA cores) per SM.
    fpus_per_sm: int
    #: Core clock in Hz (the clock all latencies are quoted against).
    clock_hz: float
    #: Shared-memory/LSU clock in Hz (GF100 banks move 4B/cycle at this rate).
    shared_clock_hz: float
    #: Architectural limit on registers addressable by one thread.
    max_registers_per_thread: int
    #: Total 32-bit registers in one SM's register file.
    registers_per_sm: int
    #: Bytes of shared memory (scratchpad) per SM.
    shared_mem_per_sm: int
    #: Number of shared-memory banks per SM.
    shared_banks: int
    #: Peak (pin) DRAM bandwidth in bytes/second.
    global_bandwidth: float
    #: Total DRAM capacity in bytes.
    global_mem_bytes: int
    #: Unified L2 cache size in bytes (0 for pre-Fermi parts).
    l2_bytes: int
    #: L2 line size in bytes.
    l2_line_bytes: int
    #: L2 associativity (ways).
    l2_ways: int
    #: Per-SM L1 cache in bytes (configurable slice of the 64 KB array).
    l1_bytes: int
    #: Threads per warp.
    warp_size: int = 32
    #: Hardware scheduling limits.
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 1024
    #: Register allocation granularity (registers are handed out in
    #: per-warp chunks of this many registers on Fermi).
    register_alloc_unit: int = 64
    #: Shared-memory allocation granularity in bytes.
    shared_alloc_unit: int = 128
    #: Arithmetic pipeline depth in cycles (the paper's gamma).
    pipeline_latency: int = 18
    #: Best-case shared memory load-to-use latency in cycles.
    shared_latency: int = 27
    #: Full-miss global memory latency in cycles (DRAM row miss, TLB hit).
    global_latency: int = 570
    #: L1 hit latency for a dependent load, in cycles.
    l1_latency: int = 96
    #: L2 hit latency for a dependent load, in cycles.
    l2_latency: int = 280
    #: Extra cycles for a TLB miss on top of a DRAM access.
    tlb_miss_penalty: int = 60
    #: Cycles to access shared memory through a *global* (LD) instruction
    #: instead of LDS -- the paper measured ~14 extra cycles on GF100.
    generic_addressing_penalty: int = 14
    #: ``__syncthreads`` cost model: ``sync_base + sync_per_warp * warps``.
    sync_base: int = 38
    sync_per_warp: int = 4
    #: Page size assumed by the address-translation model.
    page_bytes: int = 65536
    #: Entries in the (single-level) TLB model.
    tlb_entries: int = 64

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_fpus(self) -> int:
        """Total single-precision FPUs on the chip."""
        return self.num_sms * self.fpus_per_sm

    @property
    def peak_sp_flops(self) -> float:
        """Peak single-precision FLOP/s (one FMA = 2 FLOPs per FPU/cycle)."""
        return self.total_fpus * self.clock_hz * 2.0

    @property
    def peak_sp_per_fpu(self) -> float:
        """Peak single-precision FLOP/s contributed by a single FPU."""
        return self.clock_hz * 2.0

    @property
    def peak_shared_bandwidth(self) -> float:
        """Theoretical shared-memory bandwidth of all SMs, bytes/second.

        Table II footnote: 14 SIMT units x 32 banks x 4 bytes x 575 MHz
        = 1030 GB/s on the Quadro 6000.
        """
        return self.num_sms * self.shared_banks * 4 * self.shared_clock_hz

    @property
    def warps_per_block_limit(self) -> int:
        return self.max_threads_per_block // self.warp_size

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert core-clock cycles to seconds."""
        return cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to core-clock cycles."""
        return seconds * self.clock_hz

    def sync_latency(self, threads: int) -> int:
        """Cost of ``__syncthreads`` for ``threads`` active threads on an SM.

        Linear-in-warps model fitted to Figure 2 of the paper: 64 threads
        synchronize in 46 cycles and the curve reaches ~170 cycles at 1024
        threads.
        """
        if threads <= 0:
            return 0
        warps = math.ceil(threads / self.warp_size)
        return self.sync_base + self.sync_per_warp * warps


#: The paper's evaluation platform (Table I).
QUADRO_6000 = DeviceSpec(
    name="NVIDIA Quadro 6000 (GF100)",
    num_sms=14,
    fpus_per_sm=32,
    clock_hz=1.15e9,
    shared_clock_hz=575e6,
    max_registers_per_thread=64,
    registers_per_sm=32768,
    shared_mem_per_sm=48 * 1024,
    shared_banks=32,
    global_bandwidth=144e9,
    global_mem_bytes=6 * 1024**3,
    l2_bytes=768 * 1024,
    l2_line_bytes=128,
    l2_ways=16,
    l1_bytes=16 * 1024,
)

#: The G80 (8800 GTX generation) -- used only to validate the
#: shared-latency microbenchmark against Volkov's 36-cycle result.
G80 = DeviceSpec(
    name="NVIDIA G80",
    num_sms=16,
    fpus_per_sm=8,
    clock_hz=1.35e9,
    shared_clock_hz=1.35e9,
    max_registers_per_thread=128,
    registers_per_sm=8192,
    shared_mem_per_sm=16 * 1024,
    shared_banks=16,
    global_bandwidth=86.4e9,
    global_mem_bytes=768 * 1024**2,
    l2_bytes=0,
    l2_line_bytes=128,
    l2_ways=1,
    l1_bytes=0,
    max_threads_per_sm=768,
    max_blocks_per_sm=8,
    max_threads_per_block=512,
    pipeline_latency=24,
    shared_latency=36,
    global_latency=510,
    l1_latency=510,  # no L1: a "hit" is a DRAM access
    l2_latency=510,
    sync_base=28,
    sync_per_warp=4,
)

#: A consumer GF100 part, provided for "other device" tests and examples.
GTX480 = DeviceSpec(
    name="NVIDIA GTX 480 (GF100)",
    num_sms=15,
    fpus_per_sm=32,
    clock_hz=1.401e9,
    shared_clock_hz=700.5e6,
    max_registers_per_thread=64,
    registers_per_sm=32768,
    shared_mem_per_sm=48 * 1024,
    shared_banks=32,
    global_bandwidth=177.4e9,
    global_mem_bytes=1536 * 1024**2,
    l2_bytes=768 * 1024,
    l2_line_bytes=128,
    l2_ways=16,
    l1_bytes=16 * 1024,
)
