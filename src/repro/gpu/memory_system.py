"""Composed global-memory hierarchy: L1 -> L2 -> (TLB, DRAM rows).

This module answers the two questions the paper's Section II
microbenchmarks ask of real silicon:

* :meth:`MemorySystem.chase` -- average dependent-load latency of a
  pointer chase with a given stride (Figure 1's staircase, Table III's
  570-cycle plateau), obtained by *simulating* the chase against the L1,
  L2, DRAM row-buffer, and TLB state machines;
* :meth:`MemorySystem.stream_bandwidth` -- sustained bandwidth of read,
  copy, and ``cudaMemcpy`` streams (Table II).

It also provides the per-block DRAM cost used by the one-problem-per-block
engine (:meth:`block_transfer_cycles`), including the empirical overlap
factor the paper observes in Table V (per-block load timestamps imply
fewer than all resident blocks compete for bandwidth at once).
"""

from __future__ import annotations

import dataclasses
from typing import Literal

from ..observe.tracer import current_tracer
from .device import DeviceSpec
from .dram import DramModel, DramTimings
from .l2cache import L1Cache, L2Cache
from .tlb import Tlb

__all__ = ["ChaseResult", "MemorySystem"]

#: Fraction of resident blocks that effectively compete for DRAM at any
#: instant during a load/store phase.  The warp scheduler interleaves one
#: block's global phase with other blocks' compute phases, so per-block
#: observed load time is shorter than a fair-share split (Table V text).
DEFAULT_OVERLAP_FACTOR = 0.59


@dataclasses.dataclass(frozen=True)
class ChaseResult:
    """Outcome of a simulated pointer chase."""

    stride_words: int
    hops: int
    avg_latency_cycles: float
    l1_hit_rate: float
    l2_hit_rate: float
    row_hit_rate: float
    tlb_hit_rate: float


class MemorySystem:
    """Functional+timing model of one GPU's global-memory path."""

    def __init__(self, device: DeviceSpec, timings: DramTimings | None = None):
        self.device = device
        self.dram = DramModel(device, timings)

    # ------------------------------------------------------------------
    # Latency: pointer chasing (Figure 1, Table III)
    # ------------------------------------------------------------------
    def access_latency(
        self, l1_hit: bool, l2_hit: bool, row_hit: bool, tlb_hit: bool
    ) -> float:
        """Latency of one dependent load given where it hit."""
        if l1_hit:
            return self.device.l1_latency
        if l2_hit:
            return self.device.l2_latency
        latency = self.dram.access_latency(row_hit)
        if not tlb_hit:
            latency += self.device.tlb_miss_penalty
        return latency

    def chase(
        self,
        stride_words: int,
        array_words: int,
        hops: int = 4096,
        word_bytes: int = 4,
        warmup: int | None = None,
    ) -> ChaseResult:
        """Simulate a dependent pointer chase and report average latency.

        The chase walks ``hops`` dependent loads through an
        ``array_words``-long array at ``stride_words`` spacing, wrapping
        at the end, exactly like Listing 3 run over global memory.  Cache
        and TLB state is warmed with ``warmup`` extra hops (default: one
        full wrap, capped at ``hops``) before measurement starts.
        """
        if stride_words <= 0:
            raise ValueError("stride must be positive")
        if array_words <= 0:
            raise ValueError("array must be non-empty")
        l1 = L1Cache(self.device)
        l2 = L2Cache(self.device)
        tlb = Tlb(self.device)
        row_bytes = self.dram.timings.row_bytes
        open_row = -1

        stride_bytes = stride_words * word_bytes
        array_bytes = array_words * word_bytes
        steps_per_wrap = max(1, array_bytes // max(1, stride_bytes))
        if warmup is None:
            warmup = min(hops, steps_per_wrap)

        addr = 0
        total = 0.0
        l1_hits = l2_hits = row_hits = tlb_hits = 0
        measured = 0
        for i in range(warmup + hops):
            l1_hit = l1.access(addr)
            l2_hit = l2.access(addr) if not l1_hit else True
            tlb_hit = tlb.access(addr)
            row = addr // row_bytes
            row_hit = row == open_row
            if not (l1_hit or l2_hit):
                open_row = row
            if i >= warmup:
                total += self.access_latency(l1_hit, l2_hit, row_hit, tlb_hit)
                measured += 1
                l1_hits += l1_hit
                l2_hits += l2_hit and not l1_hit
                row_hits += row_hit
                tlb_hits += tlb_hit
            addr = (addr + stride_bytes) % array_bytes

        result = ChaseResult(
            stride_words=stride_words,
            hops=measured,
            avg_latency_cycles=total / measured,
            l1_hit_rate=l1_hits / measured,
            l2_hit_rate=l2_hits / measured,
            row_hit_rate=row_hits / measured,
            tlb_hit_rate=tlb_hits / measured,
        )
        tracer = current_tracer()
        if tracer is not None:
            c = tracer.counters
            c.add("mem.chase_hops", measured)
            c.add("mem.l1_hits", l1_hits)
            c.add("mem.l1_misses", measured - l1_hits)
            c.add("mem.l2_hits", l2_hits)
            c.add("mem.l2_misses", measured - l1_hits - l2_hits)
            c.add("mem.dram_row_hits", row_hits)
            c.add("mem.dram_row_misses", measured - row_hits)
            c.add("mem.tlb_hits", tlb_hits)
            c.add("mem.tlb_misses", measured - tlb_hits)
            tracer.complete(
                "memory.chase", "memory", dur=total,
                stride_words=stride_words, hops=measured,
                avg_latency_cycles=result.avg_latency_cycles,
                l1_hit_rate=result.l1_hit_rate,
                l2_hit_rate=result.l2_hit_rate,
                row_hit_rate=result.row_hit_rate,
                tlb_hit_rate=result.tlb_hit_rate,
            )
        return result

    # ------------------------------------------------------------------
    # Bandwidth (Table II)
    # ------------------------------------------------------------------
    def stream_bandwidth(
        self, kind: Literal["read", "copy", "memcpy"] = "copy"
    ) -> float:
        """Sustained bytes/second for the given streaming pattern."""
        if kind == "read":
            bw = self.dram.read_bandwidth()
        elif kind == "copy":
            bw = self.dram.copy_bandwidth()
        elif kind == "memcpy":
            bw = self.dram.memcpy_bandwidth()
        else:
            raise ValueError(f"unknown stream kind: {kind!r}")
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                "memory.stream_bandwidth", "memory", kind=kind, bytes_per_s=bw
            )
        return bw

    # ------------------------------------------------------------------
    # Per-block transfer cost (Table V, Figure 9's DRAM term)
    # ------------------------------------------------------------------
    def block_transfer_cycles(
        self,
        nbytes: float,
        concurrent_blocks: int,
        overlap_factor: float = DEFAULT_OVERLAP_FACTOR,
        kind: Literal["read", "copy", "memcpy"] = "copy",
    ) -> float:
        """Observed cycles for one block to move ``nbytes`` to/from DRAM.

        ``concurrent_blocks`` is the number of blocks resident on the
        whole chip; each block sees the achieved bandwidth divided by the
        number of blocks *effectively* competing, which is
        ``concurrent_blocks * overlap_factor`` because global phases of
        different blocks overlap with compute phases of others.
        """
        if concurrent_blocks < 1:
            raise ValueError("need at least one resident block")
        bw = self.stream_bandwidth(kind)
        effective = max(1.0, concurrent_blocks * overlap_factor)
        return self.device.seconds_to_cycles(nbytes * effective / bw)
