"""The SIMT block-execution engine.

:class:`BlockEngine` is the substrate the device kernels
(:mod:`repro.kernels.device`) run on.  A kernel is ordinary Python that

* keeps its matrix in *register tiles* (NumPy arrays it owns),
* moves data through :class:`~repro.gpu.shared_memory.SharedMemory`
  objects allocated from the engine, and
* reports every hardware event (FLOP groups, shared accesses, syncs,
  global transfers) through the ``charge_*`` methods.

Because the paper's kernels are branch-free (no pivoting; fully unrolled
register code), *every block executes the identical instruction stream*.
The engine exploits that: the functional state carries a leading batch
dimension so thousands of problems are computed in one NumPy pass, while
the cycle cost is accounted once per block.

Cost model (this repo's "measured"):

* a group of ``k`` dependent FP ops per thread costs ``k * gamma``
  (plus the spill penalty if the kernel's registers exceed the
  architectural limit),
* a shared access costs the load-to-use latency plus bank-conflict
  replays,
* ``__syncthreads`` costs the Figure-2 curve at the block's thread count,
* global transfers cost the block's share of achieved DRAM bandwidth
  given how many blocks are resident (Table V's overlap effect),
* every charge call adds a small bookkeeping overhead (address
  arithmetic, loop remnants) -- the "measured overhead" wedge of
  Figure 8.  The analytic model of :mod:`repro.model` omits it; the gap
  between the two is part of the reproduction.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Literal, Optional

import numpy as np

from .clock import CycleBreakdown, CycleClock
from .device import DeviceSpec
from .instructions import InstructionCosts, costs_for
from .memory_system import MemorySystem
from .occupancy import Occupancy, occupancy
from .registers import RegisterAllocation
from .shared_memory import SharedMemory
from .warp import warps_in_block

__all__ = ["BlockEngine", "LaunchResult"]

#: Cycles of bookkeeping (address arithmetic, loop tail) charged per
#: charge-event when overhead accounting is on.
OVERHEAD_PER_EVENT = 6
#: Cycles for reading the ``clock()`` register around a measured phase.
MEASUREMENT_OVERHEAD = 72
#: Cycles per spilled register-operand access.  Spilled slots live in
#: local memory behind the L1; in a dependent chain each access exposes a
#: large fraction of the L1 latency that register operands would hide.
SPILL_ACCESS_CYCLES = 30


@dataclasses.dataclass(frozen=True)
class LaunchResult:
    """Timing summary of one kernel execution."""

    device: DeviceSpec
    occupancy: Occupancy
    cycles: float
    breakdown: CycleBreakdown
    phase_totals: dict
    flops_per_block: float

    @property
    def seconds_per_block(self) -> float:
        return self.device.cycles_to_seconds(self.cycles)

    def throughput_gflops(self, num_problems: Optional[int] = None) -> float:
        """Whole-chip GFLOP/s processing ``num_problems`` problems.

        With ``num_problems=None`` the steady-state rate is returned
        (enough problems to fill every resident block slot).  Otherwise
        the batch is processed in waves of ``blocks_per_chip`` problems
        and partially-filled final waves lower the rate, exactly like a
        real launch.
        """
        resident = self.occupancy.blocks_per_chip
        per_block_s = self.seconds_per_block
        if num_problems is None:
            return self.flops_per_block * resident / per_block_s / 1e9
        if num_problems < 1:
            raise ValueError("need at least one problem")
        waves = -(-num_problems // resident)
        total_s = waves * per_block_s
        return self.flops_per_block * num_problems / total_s / 1e9


class BlockEngine:
    """Cost-accounting execution context for one batched thread block."""

    def __init__(
        self,
        device: DeviceSpec,
        threads_per_block: int,
        registers_per_thread: int,
        batch: int = 1,
        dtype=np.float32,
        fast_math: bool = True,
        account_overhead: bool = True,
        allow_spill: bool = True,
        trace: bool = False,
    ) -> None:
        self.device = device
        self.threads = int(threads_per_block)
        self.batch = int(batch)
        self.dtype = np.dtype(dtype)
        self.fast_math = bool(fast_math)
        self.account_overhead = bool(account_overhead)
        self.costs: InstructionCosts = costs_for(device)
        # GF100 executes double precision at half the single-precision
        # rate, and the SFU fast paths are SP-only -- DP divides/sqrts
        # take the precise path's latency regardless of fast_math.
        double = self.dtype in (np.dtype(np.float64), np.dtype(np.complex128))
        self.precision_factor = 2 if double else 1
        self.memory = MemorySystem(device)
        self.clock = CycleClock(trace=trace)
        self.registers = RegisterAllocation(device, registers_per_thread)
        if not allow_spill:
            self.registers.require_resident()
        self.warps = warps_in_block(device, self.threads)
        self._shared_words = 0
        self._shared_arrays: list[SharedMemory] = []
        self._useful_flops = 0.0

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def allocate_shared(self, words: int, dtype=None) -> SharedMemory:
        """Allocate a batched shared-memory array of ``words`` slots."""
        mem = SharedMemory(
            self.device, words, batch=self.batch, dtype=dtype or self.dtype
        )
        self._shared_words += words * (2 if np.dtype(mem.dtype).kind == "c" else 1)
        self._shared_arrays.append(mem)
        return mem

    @property
    def shared_bytes(self) -> int:
        return self._shared_words * 4

    @property
    def occupancy(self) -> Occupancy:
        return occupancy(
            self.device,
            self.threads,
            self.registers.granted(),
            self.shared_bytes,
        )

    # ------------------------------------------------------------------
    # Cost charges
    # ------------------------------------------------------------------
    def _overhead(self, events: int = 1) -> None:
        if self.account_overhead and events > 0:
            self.clock.charge(OVERHEAD_PER_EVENT * events, "overhead")

    def charge_flops(
        self,
        ops_per_thread: float,
        *,
        useful_flops: Optional[float] = None,
        count_spill: bool = True,
    ) -> None:
        """Charge a group of dependent FP instructions (FMA = one op).

        ``useful_flops`` is the algorithmic FLOP credit for the whole
        block (defaults to ``ops_per_thread * threads``; pass the real
        figure when threads are partially idle or an FMA does 2 FLOPs).
        """
        if ops_per_thread < 0:
            raise ValueError("negative op count")
        self.clock.charge(
            ops_per_thread * self.costs.fma * self.precision_factor, "compute"
        )
        if count_spill and self.registers.spills:
            accesses = 2.0 * ops_per_thread * self.registers.spill_fraction
            self.clock.charge(accesses * SPILL_ACCESS_CYCLES, "overhead")
        self._useful_flops += (
            useful_flops if useful_flops is not None else ops_per_thread * self.threads
        )
        self._overhead()

    def charge_div(self, count: int = 1, useful_flops: Optional[float] = None) -> None:
        fast = self.fast_math and self.precision_factor == 1
        self.clock.charge(
            count * self.costs.div(fast) * self.precision_factor, "compute"
        )
        self._useful_flops += useful_flops if useful_flops is not None else count
        self._overhead()

    def charge_sqrt(self, count: int = 1, useful_flops: Optional[float] = None) -> None:
        fast = self.fast_math and self.precision_factor == 1
        self.clock.charge(
            count * self.costs.sqrt(fast) * self.precision_factor, "compute"
        )
        self._useful_flops += useful_flops if useful_flops is not None else count
        self._overhead()

    def charge_shared(
        self, words_per_thread: float, degree: int = 1, writes: bool = False
    ) -> None:
        """Charge ``words_per_thread`` dependent shared accesses."""
        if words_per_thread < 0:
            raise ValueError("negative word count")
        per_access = self.device.shared_latency + (degree - 1)
        self.clock.charge(words_per_thread * per_access, "shared")
        self._overhead()

    def sync(self) -> None:
        """Charge one ``__syncthreads`` at this block's thread count."""
        self.clock.charge(self.device.sync_latency(self.threads), "sync")

    def charge_global(
        self,
        bytes_per_block: float,
        kind: Literal["read", "copy", "memcpy"] = "copy",
    ) -> None:
        """Charge a DRAM transfer, contended by all resident blocks."""
        resident = self.occupancy.blocks_per_chip
        cycles = self.memory.block_transfer_cycles(bytes_per_block, resident, kind=kind)
        self.clock.charge(cycles, "global")

    def charge_measurement(self) -> None:
        """Charge the ``clock()``-readout overhead around a timed phase."""
        if self.account_overhead:
            self.clock.charge(MEASUREMENT_OVERHEAD, "overhead")

    def phase(self, name: str) -> Iterator[None]:
        """Label subsequent charges for per-phase breakdowns (Figure 8)."""
        return self.clock.phase(name)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, flops_per_block: Optional[float] = None) -> LaunchResult:
        return LaunchResult(
            device=self.device,
            occupancy=self.occupancy,
            cycles=self.clock.now,
            breakdown=self.clock.breakdown(),
            phase_totals=self.clock.phase_totals(),
            flops_per_block=(
                flops_per_block if flops_per_block is not None else self._useful_flops
            ),
        )
