"""The SIMT block-execution engine.

:class:`BlockEngine` is the substrate the device kernels
(:mod:`repro.kernels.device`) run on.  A kernel is ordinary Python that

* keeps its matrix in *register tiles* (NumPy arrays it owns),
* moves data through :class:`~repro.gpu.shared_memory.SharedMemory`
  objects allocated from the engine, and
* reports every hardware event (FLOP groups, shared accesses, syncs,
  global transfers) through the ``charge_*`` methods.

Because the paper's kernels are branch-free (no pivoting; fully unrolled
register code), *every block executes the identical instruction stream*.
The engine exploits that: the functional state carries a leading batch
dimension so thousands of problems are computed in one NumPy pass, while
the cycle cost is accounted once per block.

Cost model (this repo's "measured"):

* a group of ``k`` dependent FP ops per thread costs ``k * gamma``
  (plus the spill penalty if the kernel's registers exceed the
  architectural limit),
* a shared access costs the load-to-use latency plus bank-conflict
  replays,
* ``__syncthreads`` costs the Figure-2 curve at the block's thread count,
* global transfers cost the block's share of achieved DRAM bandwidth
  given how many blocks are resident (Table V's overlap effect),
* every charge call adds a small bookkeeping overhead (address
  arithmetic, loop remnants) -- the "measured overhead" wedge of
  Figure 8.  The analytic model of :mod:`repro.model` omits it; the gap
  between the two is part of the reproduction.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Any, Iterator, Literal, Optional

import numpy as np

from ..analyze.sanitizer import SharedSanitizer, sanitize_enabled
from ..observe.counters import CounterRegistry
from ..observe.tracer import current_tracer
from .clock import CycleBreakdown, CycleClock
from .device import DeviceSpec
from .instructions import InstructionCosts, costs_for
from .memory_system import MemorySystem
from .occupancy import Occupancy, occupancy
from .registers import RegisterAllocation
from .shared_memory import SharedMemory
from .warp import warps_in_block

__all__ = ["BlockEngine", "LaunchResult"]

#: Cycles of bookkeeping (address arithmetic, loop tail) charged per
#: charge-event when overhead accounting is on.
OVERHEAD_PER_EVENT = 6
#: Cycles for reading the ``clock()`` register around a measured phase.
MEASUREMENT_OVERHEAD = 72
#: Cycles per spilled register-operand access.  Spilled slots live in
#: local memory behind the L1; in a dependent chain each access exposes a
#: large fraction of the L1 latency that register operands would hide.
SPILL_ACCESS_CYCLES = 30


@dataclasses.dataclass(frozen=True)
class LaunchResult:
    """Timing summary of one kernel execution."""

    device: DeviceSpec
    occupancy: Occupancy
    cycles: float
    breakdown: CycleBreakdown
    phase_totals: dict
    flops_per_block: float
    #: Per-launch hardware-event counts (flop groups, shared
    #: transactions, syncs, ...) -- the attribution layer's input.
    counters: Optional[CounterRegistry] = None
    #: Threads per block of the launch (alpha_sync lookup key).
    threads: int = 0
    #: Shared-memory sanitizer report
    #: (:class:`repro.analyze.sanitizer.SanitizeReport`) when the engine
    #: ran with ``sanitize=True``; ``None`` otherwise.
    sanitizer: Optional[Any] = None

    @property
    def seconds_per_block(self) -> float:
        return self.device.cycles_to_seconds(self.cycles)

    def throughput_gflops(self, num_problems: Optional[int] = None) -> float:
        """Whole-chip GFLOP/s processing ``num_problems`` problems.

        With ``num_problems=None`` the steady-state rate is returned
        (enough problems to fill every resident block slot).  Otherwise
        the batch is processed in waves of ``blocks_per_chip`` problems
        and partially-filled final waves lower the rate, exactly like a
        real launch.
        """
        resident = self.occupancy.blocks_per_chip
        per_block_s = self.seconds_per_block
        if num_problems is None:
            return self.flops_per_block * resident / per_block_s / 1e9
        if num_problems < 1:
            raise ValueError("need at least one problem")
        waves = -(-num_problems // resident)
        total_s = waves * per_block_s
        return self.flops_per_block * num_problems / total_s / 1e9


class BlockEngine:
    """Cost-accounting execution context for one batched thread block."""

    def __init__(
        self,
        device: DeviceSpec,
        threads_per_block: int,
        registers_per_thread: int,
        batch: int = 1,
        dtype=np.float32,
        fast_math: bool = True,
        account_overhead: bool = True,
        allow_spill: bool = True,
        trace: bool = False,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.device = device
        self.threads = int(threads_per_block)
        self.batch = int(batch)
        self.dtype = np.dtype(dtype)
        self.fast_math = bool(fast_math)
        self.account_overhead = bool(account_overhead)
        self.costs: InstructionCosts = costs_for(device)
        # GF100 executes double precision at half the single-precision
        # rate, and the SFU fast paths are SP-only -- DP divides/sqrts
        # take the precise path's latency regardless of fast_math.
        double = self.dtype in (np.dtype(np.float64), np.dtype(np.complex128))
        self.precision_factor = 2 if double else 1
        self.memory = MemorySystem(device)
        self.clock = CycleClock(trace=trace)
        self.registers = RegisterAllocation(device, registers_per_thread)
        if not allow_spill:
            self.registers.require_resident()
        self.warps = warps_in_block(device, self.threads)
        # Opt-in shared-memory race sanitizer (repro.analyze): the
        # default consults REPRO_SANITIZE / the sanitizing() override at
        # construction time, so the hot path stays a None check.
        if sanitize is None:
            sanitize = sanitize_enabled()
        self.sanitizer: Optional[SharedSanitizer] = (
            SharedSanitizer(phase_of=lambda: self.current_phase)
            if sanitize
            else None
        )
        self._phase_stack: list[str] = []
        self._shared_words = 0
        self._shared_arrays: list[SharedMemory] = []
        self._useful_flops = 0.0
        # The tracer is bound at construction: engines are created one
        # per launch, inside any `tracing()` scope that should observe
        # them, and a per-charge thread-local lookup is too hot.
        self._tracer = current_tracer()
        # Hardware-event counts for this launch, always collected.  The
        # hot path pays only scalar `+=` on these slots; the registry the
        # attribution layer consumes (`self.counters`) is materialized
        # once from them.  The heavyweight event *tracing* stays opt-in
        # via repro.observe.tracing().
        self._n_flop_groups = 0
        self._flop_thread_ops = 0.0
        self._spill_accesses = 0.0
        self._overhead_events = 0
        self._div_count = 0
        self._div_cycles = 0.0
        self._sqrt_count = 0
        self._sqrt_cycles = 0.0
        self._n_shared_groups = 0
        self._shared_transactions = 0.0
        self._shared_replays = 0.0
        self._shared_writes = 0.0
        self._n_sync = 0
        self._global_transfers = 0
        self._global_bytes = 0.0
        self._measurement_reads = 0

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def allocate_shared(
        self, words: int, dtype=None, name: Optional[str] = None
    ) -> SharedMemory:
        """Allocate a batched shared-memory array of ``words`` slots.

        ``name`` labels the array in sanitizer hazard reports; unnamed
        arrays are numbered in allocation order.
        """
        mem = SharedMemory(
            self.device, words, batch=self.batch, dtype=dtype or self.dtype
        )
        mem.label = name or f"shared{len(self._shared_arrays)}"
        if self.sanitizer is not None:
            mem.attach_sanitizer(self.sanitizer)
        self._shared_words += words * (2 if np.dtype(mem.dtype).kind == "c" else 1)
        self._shared_arrays.append(mem)
        return mem

    @property
    def shared_bytes(self) -> int:
        return self._shared_words * 4

    @property
    def occupancy(self) -> Occupancy:
        return occupancy(
            self.device,
            self.threads,
            self.registers.granted(),
            self.shared_bytes,
        )

    # ------------------------------------------------------------------
    # Cost charges
    #
    # Every charge method accumulates its hardware-event counts as plain
    # scalar `+=` on the engine (the always-on path) and only touches the
    # tracer -- mirroring counts into its stage-scoped registry and
    # emitting a timeline event -- when one is active on this thread.
    # The un-traced hot path must stay within noise of the pre-
    # instrumentation engine, so no registry, no dict, no extra property
    # reads here.
    # ------------------------------------------------------------------
    def charge_flops(
        self,
        ops_per_thread: float,
        *,
        useful_flops: Optional[float] = None,
        count_spill: bool = True,
    ) -> None:
        """Charge a group of dependent FP instructions (FMA = one op).

        ``useful_flops`` is the algorithmic FLOP credit for the whole
        block (defaults to ``ops_per_thread * threads``; pass the real
        figure when threads are partially idle or an FMA does 2 FLOPs).
        """
        if ops_per_thread < 0:
            raise ValueError("negative op count")
        tracer = self._tracer
        start = self.clock.now if tracer is not None else 0.0
        issue_ops = ops_per_thread * self.precision_factor
        self.clock.charge(issue_ops * self.costs.fma, "compute")
        self._n_flop_groups += 1
        self._flop_thread_ops += ops_per_thread
        spill_accesses = 0.0
        if count_spill and self.registers.spills:
            spill_accesses = 2.0 * ops_per_thread * self.registers.spill_fraction
            self.clock.charge(spill_accesses * SPILL_ACCESS_CYCLES, "overhead")
            self._spill_accesses += spill_accesses
        useful = (
            useful_flops if useful_flops is not None else ops_per_thread * self.threads
        )
        self._useful_flops += useful
        if self.account_overhead:
            self.clock.charge(OVERHEAD_PER_EVENT, "overhead")
            self._overhead_events += 1
        if tracer is not None:
            c = tracer.counters
            c.add("flops.groups", 1)
            c.add("flops.per_thread_ops", ops_per_thread)
            c.add("flops.issue_ops", issue_ops)
            c.add("flops.useful", useful)
            if spill_accesses:
                c.add("spill.accesses", spill_accesses)
            if self.account_overhead:
                c.add("overhead.events", 1)
            tracer.complete(
                "charge_flops", "engine", ts=start, dur=self.clock.now - start,
                ops_per_thread=ops_per_thread,
            )

    def charge_div(self, count: int = 1, useful_flops: Optional[float] = None) -> None:
        fast = self.fast_math and self.precision_factor == 1
        tracer = self._tracer
        start = self.clock.now if tracer is not None else 0.0
        cycles = count * self.costs.div(fast) * self.precision_factor
        self.clock.charge(cycles, "compute")
        self._div_count += count
        self._div_cycles += cycles
        self._useful_flops += useful_flops if useful_flops is not None else count
        if self.account_overhead:
            self.clock.charge(OVERHEAD_PER_EVENT, "overhead")
            self._overhead_events += 1
        if tracer is not None:
            c = tracer.counters
            c.add("div.count", count)
            c.add("div.cycles", cycles)
            if self.account_overhead:
                c.add("overhead.events", 1)
            tracer.complete(
                "charge_div", "engine", ts=start, dur=self.clock.now - start,
                count=count,
            )

    def charge_sqrt(self, count: int = 1, useful_flops: Optional[float] = None) -> None:
        fast = self.fast_math and self.precision_factor == 1
        tracer = self._tracer
        start = self.clock.now if tracer is not None else 0.0
        cycles = count * self.costs.sqrt(fast) * self.precision_factor
        self.clock.charge(cycles, "compute")
        self._sqrt_count += count
        self._sqrt_cycles += cycles
        self._useful_flops += useful_flops if useful_flops is not None else count
        if self.account_overhead:
            self.clock.charge(OVERHEAD_PER_EVENT, "overhead")
            self._overhead_events += 1
        if tracer is not None:
            c = tracer.counters
            c.add("sqrt.count", count)
            c.add("sqrt.cycles", cycles)
            if self.account_overhead:
                c.add("overhead.events", 1)
            tracer.complete(
                "charge_sqrt", "engine", ts=start, dur=self.clock.now - start,
                count=count,
            )

    def charge_shared(
        self, words_per_thread: float, degree: int = 1, writes: bool = False
    ) -> None:
        """Charge ``words_per_thread`` dependent shared accesses."""
        if words_per_thread < 0:
            raise ValueError("negative word count")
        if self.sanitizer is not None:
            self.sanitizer.note_traffic()
        tracer = self._tracer
        start = self.clock.now if tracer is not None else 0.0
        per_access = self.device.shared_latency + (degree - 1)
        self.clock.charge(words_per_thread * per_access, "shared")
        self._n_shared_groups += 1
        self._shared_transactions += words_per_thread
        if degree > 1:
            self._shared_replays += words_per_thread * (degree - 1)
        if writes:
            self._shared_writes += words_per_thread
        if self.account_overhead:
            self.clock.charge(OVERHEAD_PER_EVENT, "overhead")
            self._overhead_events += 1
        if tracer is not None:
            c = tracer.counters
            c.add("shared.transactions", words_per_thread)
            if degree > 1:
                c.add("shared.bank_replays", words_per_thread * (degree - 1))
            if writes:
                c.add("shared.writes", words_per_thread)
            if self.account_overhead:
                c.add("overhead.events", 1)
            tracer.complete(
                "charge_shared", "engine", ts=start, dur=self.clock.now - start,
                words=words_per_thread, degree=degree,
            )

    def sync(self) -> None:
        """Charge one ``__syncthreads`` at this block's thread count.

        The barrier is charged unconditionally -- even back-to-back
        syncs pay full ``alpha_sync``, as on hardware; the sanitizer's
        wasted-sync diagnostic (``repro_sync_redundant``) is how such
        calls are audited, not elided.
        """
        if self.sanitizer is not None:
            self.sanitizer.on_sync()
        tracer = self._tracer
        start = self.clock.now if tracer is not None else 0.0
        self.clock.charge(self.device.sync_latency(self.threads), "sync")
        self._n_sync += 1
        if tracer is not None:
            tracer.counters.add("sync.count", 1)
            tracer.complete(
                "sync", "engine", ts=start, dur=self.clock.now - start,
                threads=self.threads,
            )

    def charge_global(
        self,
        bytes_per_block: float,
        kind: Literal["read", "copy", "memcpy"] = "copy",
    ) -> None:
        """Charge a DRAM transfer, contended by all resident blocks."""
        tracer = self._tracer
        start = self.clock.now if tracer is not None else 0.0
        resident = self.occupancy.blocks_per_chip
        cycles = self.memory.block_transfer_cycles(bytes_per_block, resident, kind=kind)
        self.clock.charge(cycles, "global")
        self._global_transfers += 1
        self._global_bytes += bytes_per_block
        if tracer is not None:
            c = tracer.counters
            c.add("global.transfers", 1)
            c.add("global.bytes", bytes_per_block)
            tracer.complete(
                "charge_global", "engine", ts=start, dur=self.clock.now - start,
                bytes=bytes_per_block, kind=kind, resident_blocks=resident,
            )

    def charge_measurement(self) -> None:
        """Charge the ``clock()``-readout overhead around a timed phase."""
        if self.account_overhead:
            self.clock.charge(MEASUREMENT_OVERHEAD, "overhead")
            self._measurement_reads += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.counters.add("measurement.reads", 1)

    @property
    def current_phase(self) -> str:
        """Innermost active :meth:`phase` label ("" outside any phase)."""
        return self._phase_stack[-1] if self._phase_stack else ""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Label subsequent charges for per-phase breakdowns (Figure 8).

        When a tracer is active the phase additionally becomes a trace
        span and a counter-registry stage, so per-phase event totals ride
        along with the per-phase cycle totals.  The label is also what
        the shared-memory sanitizer stamps on hazards detected inside.
        """
        tracer = self._tracer
        start = self.clock.now
        self._phase_stack.append(name)
        try:
            if tracer is None:
                with self.clock.phase(name):
                    yield
                return
            with self.clock.phase(name), tracer.counters.stage(name):
                yield
        finally:
            self._phase_stack.pop()
        tracer.complete(
            f"phase:{name}", "phase", ts=start, dur=self.clock.now - start
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def counters(self) -> CounterRegistry:
        """This launch's hardware-event counts as a registry.

        Materialized from the engine's scalar accumulators on each read;
        grab it once (or via :attr:`LaunchResult.counters`) rather than
        per event.
        """
        c = CounterRegistry()
        groups = self._n_flop_groups
        if groups:
            c.add_aggregate("flops.groups", groups, groups)
            c.add_aggregate("flops.per_thread_ops", self._flop_thread_ops, groups)
            c.add_aggregate(
                "flops.issue_ops",
                self._flop_thread_ops * self.precision_factor,
                groups,
            )
        if self._useful_flops:
            c.add_aggregate("flops.useful", self._useful_flops, groups or 1)
        if self._spill_accesses:
            c.add_aggregate("spill.accesses", self._spill_accesses)
        if self._overhead_events:
            c.add_aggregate(
                "overhead.events", self._overhead_events, self._overhead_events
            )
        if self._div_count:
            c.add_aggregate("div.count", self._div_count, self._div_count)
            c.add_aggregate("div.cycles", self._div_cycles, self._div_count)
        if self._sqrt_count:
            c.add_aggregate("sqrt.count", self._sqrt_count, self._sqrt_count)
            c.add_aggregate("sqrt.cycles", self._sqrt_cycles, self._sqrt_count)
        if self._n_shared_groups:
            c.add_aggregate(
                "shared.transactions",
                self._shared_transactions,
                self._n_shared_groups,
            )
        if self._shared_replays:
            c.add_aggregate("shared.bank_replays", self._shared_replays)
        if self._shared_writes:
            c.add_aggregate("shared.writes", self._shared_writes)
        if self._n_sync:
            c.add_aggregate("sync.count", self._n_sync, self._n_sync)
        if self._global_transfers:
            c.add_aggregate(
                "global.transfers", self._global_transfers, self._global_transfers
            )
            c.add_aggregate(
                "global.bytes", self._global_bytes, self._global_transfers
            )
        if self._measurement_reads:
            c.add_aggregate(
                "measurement.reads", self._measurement_reads, self._measurement_reads
            )
        return c

    def result(self, flops_per_block: Optional[float] = None) -> LaunchResult:
        launch = LaunchResult(
            device=self.device,
            occupancy=self.occupancy,
            cycles=self.clock.now,
            breakdown=self.clock.breakdown(),
            phase_totals=self.clock.phase_totals(),
            flops_per_block=(
                flops_per_block if flops_per_block is not None else self._useful_flops
            ),
            counters=self.counters,
            threads=self.threads,
            sanitizer=(
                self.sanitizer.finalize() if self.sanitizer is not None else None
            ),
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                "launch.result", "engine",
                cycles=launch.cycles, threads=self.threads,
                flops_per_block=launch.flops_per_block,
                **{f"cycles.{k}": v for k, v in launch.breakdown.items()},
            )
        return launch
