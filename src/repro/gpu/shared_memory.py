"""Banked shared-memory model.

GF100 shared memory is organised as 32 banks of 4-byte words; successive
words live in successive banks.  A warp's access completes in one pass
when the 32 lanes touch 32 distinct banks (or broadcast-read a single
word); otherwise the access is replayed once per additional word mapped to
the same bank -- the *bank-conflict degree*.

:class:`SharedMemory` is both a functional store (a NumPy-backed word
array that kernels genuinely read and write, batched over simultaneous
blocks) and a cost oracle (:meth:`conflict_degree`,
:meth:`access_cycles`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import SharedMemoryOverflowError
from ..observe.tracer import add_counter
from .device import DeviceSpec

__all__ = ["SharedMemory", "conflict_degree"]


def conflict_degree(addresses: Sequence[int], banks: int) -> int:
    """Replay passes needed for one warp access to word ``addresses``.

    Broadcast rule: lanes reading the *same word* are serviced together,
    so the degree counts distinct words per bank, not lanes per bank.
    An empty access costs one pass (degree 1) for uniformity.
    """
    addrs = np.unique(np.asarray(addresses, dtype=np.int64))
    if addrs.size == 0:
        return 1
    bank_of = addrs % banks
    counts = np.bincount(bank_of, minlength=banks)
    return int(counts.max())


class SharedMemory:
    """Functional, batched shared-memory array for one thread block shape.

    ``words`` 4-byte slots are allocated per block; ``batch`` independent
    blocks execute in lockstep (the engine vectorizes identical
    instruction streams across the batch), so storage is a
    ``(batch, words)`` array.  Complex values occupy two word slots but,
    for simplicity of the functional layer, are stored in a same-shape
    complex array while the *cost* layer doubles the word count.
    """

    def __init__(
        self,
        device: DeviceSpec,
        words: int,
        batch: int = 1,
        dtype: np.dtype = np.float32,
    ) -> None:
        self.device = device
        self.words = int(words)
        self.batch = int(batch)
        self.dtype = np.dtype(dtype)
        #: Diagnostic name and the engine's sanitizer, when one is
        #: attached (see :meth:`attach_sanitizer`).  The untraced hot
        #: path pays one ``is None`` check per functional access.
        self.label = "shared"
        self._sanitizer = None
        word_bytes = 8 if self.dtype.kind == "c" else 4
        footprint = self.words * word_bytes
        if footprint > device.shared_mem_per_sm:
            raise SharedMemoryOverflowError(
                f"block requests {footprint} B of shared memory; "
                f"{device.name} provides {device.shared_mem_per_sm} B per SM"
            )
        self.data = np.zeros((self.batch, self.words), dtype=self.dtype)

    # ------------------------------------------------------------------
    # Functional access (all-blocks-at-once, addressed per word slot)
    # ------------------------------------------------------------------
    def attach_sanitizer(self, sanitizer, label: Optional[str] = None) -> None:
        """Route subsequent accesses through ``sanitizer`` (repro.analyze)."""
        self._sanitizer = sanitizer
        if label:
            self.label = label
        if sanitizer is not None:
            sanitizer.register(self.label)

    def read(
        self,
        index: np.ndarray | Sequence[int] | int,
        lane: Optional[int] = None,
    ) -> np.ndarray:
        """Read word slots ``index`` in every block: shape (batch, ...).

        ``lane`` optionally names the accessing thread lane for the race
        sanitizer; ``None`` means a collective access by the owning
        thread group (the common case for the lockstep kernels).
        """
        if self._sanitizer is not None:
            self._sanitizer.on_access(self, "read", index, lane)
        return self.data[:, index]

    def write(
        self,
        index: np.ndarray | Sequence[int] | int,
        values,
        lane: Optional[int] = None,
    ) -> None:
        """Write ``values`` (broadcastable over the batch) at ``index``."""
        if self._sanitizer is not None:
            self._sanitizer.on_access(self, "write", index, lane)
        self.data[:, index] = values

    @property
    def bytes(self) -> int:
        word_bytes = 8 if self.dtype.kind == "c" else 4
        return self.words * word_bytes

    # ------------------------------------------------------------------
    # Cost oracle
    # ------------------------------------------------------------------
    def conflict_degree(self, lane_addresses: Sequence[int]) -> int:
        """Replay degree of a single warp access at ``lane_addresses``."""
        scale = 2 if self.dtype.kind == "c" else 1
        addrs = np.asarray(lane_addresses, dtype=np.int64) * scale
        return conflict_degree(addrs, self.device.shared_banks)

    def access_cycles(
        self,
        lane_addresses: Optional[Sequence[int]] = None,
        degree: Optional[int] = None,
    ) -> int:
        """Dependent-chain cycles for one warp-wide access.

        The base cost is the device's shared load-to-use latency; each
        additional conflict replay adds one LSU pass (modelled as one
        extra pipeline-issue slot per replay, i.e. ``latency + degree-1``
        -- replays are pipelined behind the first).
        """
        if degree is None:
            degree = (
                self.conflict_degree(lane_addresses)
                if lane_addresses is not None
                else 1
            )
        if degree < 1:
            raise ValueError("conflict degree must be >= 1")
        add_counter("shared.warp_accesses")
        if degree > 1:
            add_counter("shared.bank_replays", degree - 1)
        return self.device.shared_latency + (degree - 1)
