"""Simulated GPU substrate (GF100-class).

This package replaces the paper's NVIDIA Quadro 6000: a deterministic
performance simulator with the same architectural structure -- SMs,
warps, per-thread register files, banked shared memory, a unified L2,
row-buffered DRAM, and an occupancy calculator.  Numerics run for real in
NumPy; the simulator supplies the cycle costs.
"""

from .clock import CycleBreakdown, CycleClock, TraceEvent
from .device import G80, GTX480, QUADRO_6000, DeviceSpec
from .dram import DramModel, DramTimings
from .fastmath import (
    MANTISSA_BITS,
    fast_divide,
    fast_reciprocal,
    fast_rsqrt,
    fast_sqrt,
    truncate_mantissa,
)
from .instructions import InstructionCosts, costs_for
from .l2cache import L1Cache, L2Cache, TagCache
from .memory_system import ChaseResult, MemorySystem
from .occupancy import Occupancy, occupancy
from .registers import RegisterAllocation, registers_for_matrix
from .shared_memory import SharedMemory, conflict_degree
from .simt import BlockEngine, LaunchResult
from .tlb import Tlb
from .warp import exposed_latency, issue_cycles, warps_in_block

__all__ = [
    "CycleBreakdown",
    "CycleClock",
    "TraceEvent",
    "DeviceSpec",
    "QUADRO_6000",
    "G80",
    "GTX480",
    "DramModel",
    "DramTimings",
    "MANTISSA_BITS",
    "fast_divide",
    "fast_reciprocal",
    "fast_rsqrt",
    "fast_sqrt",
    "truncate_mantissa",
    "InstructionCosts",
    "costs_for",
    "TagCache",
    "L1Cache",
    "L2Cache",
    "ChaseResult",
    "MemorySystem",
    "Occupancy",
    "occupancy",
    "RegisterAllocation",
    "registers_for_matrix",
    "SharedMemory",
    "conflict_degree",
    "BlockEngine",
    "LaunchResult",
    "Tlb",
    "exposed_latency",
    "issue_cycles",
    "warps_in_block",
]
