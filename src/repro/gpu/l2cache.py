"""Set-associative cache simulators (L1 and L2 tag stores).

The GF100's 768 KB unified L2 acts as a "bandwidth amplifier" between the
SMs and DRAM; each SM additionally has a 16 KB L1 slice.  For the
pointer-chasing microbenchmark (Figure 1) what matters is *which
dependent loads hit which level*, so these are plain functional
set-associative tag stores with true-LRU replacement.

The simulators are deliberately storage-free: they track tags only,
because the functional data path of the engine keeps real values in NumPy
arrays and only needs the hit/miss verdicts for timing.
"""

from __future__ import annotations

import numpy as np

from .device import DeviceSpec

__all__ = ["TagCache", "L2Cache", "L1Cache"]


class TagCache:
    """True-LRU set-associative tag store."""

    def __init__(self, size_bytes: int, line_bytes: int, ways: int):
        if line_bytes <= 0 or ways <= 0:
            raise ValueError("line size and associativity must be positive")
        self.size_bytes = int(size_bytes)
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.num_sets = max(1, self.size_bytes // (self.line_bytes * self.ways))
        # tags[set, way] = line address (-1 = invalid); lru[set, way] = age
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._lru = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._tick = 0
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        """A zero-byte cache never hits (pre-Fermi parts have no L2/L1)."""
        return self.size_bytes > 0

    def reset(self) -> None:
        self._tags.fill(-1)
        self._lru.fill(0)
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, byte_address: int) -> bool:
        """Touch ``byte_address``; return True on hit, False on miss.

        A miss installs the line (allocate-on-miss, evicting the LRU way).
        """
        if not self.enabled:
            self.misses += 1
            return False
        line = byte_address // self.line_bytes
        index = line % self.num_sets
        self._tick += 1
        row_tags = self._tags[index]
        hit_ways = np.nonzero(row_tags == line)[0]
        if hit_ways.size:
            self._lru[index, hit_ways[0]] = self._tick
            self.hits += 1
            return True
        victim = int(np.argmin(self._lru[index]))
        self._tags[index, victim] = line
        self._lru[index, victim] = self._tick
        self.misses += 1
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class L2Cache(TagCache):
    """The chip-wide L2, sized from a :class:`~repro.gpu.device.DeviceSpec`."""

    def __init__(self, device: DeviceSpec):
        super().__init__(device.l2_bytes, device.l2_line_bytes, device.l2_ways)
        self.device = device


class L1Cache(TagCache):
    """One SM's L1 slice (4-way on GF100)."""

    def __init__(self, device: DeviceSpec, ways: int = 4):
        super().__init__(device.l1_bytes, device.l2_line_bytes, ways)
        self.device = device
