"""Emulation of GF100 ``--use_fast_math`` arithmetic.

With ``--use_fast_math`` the compiler lowers division and square root to
the special-function unit's reciprocal and reciprocal-square-root
approximations, which are *accurate up to 22 mantissa bits* (the paper
cites Nickolls & Dally).  A float32 significand has 24 bits, so fast-math
results may disagree with IEEE in the bottom two bits.

This module provides drop-in replacements that compute the IEEE result
and then truncate the significand to 22 bits, so that

* numerical tests can quantify the accuracy impact the paper accepts, and
* batched kernels can be run in either mode and compared.

Complex inputs are handled by applying the truncation to the real and
imaginary parts of the (componentwise-computed) result, mirroring how a
complex divide compiles to real arithmetic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MANTISSA_BITS",
    "truncate_mantissa",
    "fast_reciprocal",
    "fast_divide",
    "fast_sqrt",
    "fast_rsqrt",
]

#: Correct mantissa bits of the hardware approximation.
MANTISSA_BITS = 22


def _truncate_f32(x: np.ndarray, bits: int) -> np.ndarray:
    """Zero the bottom ``24 - bits`` significand bits of float32 values."""
    drop = 24 - 1 - bits  # 23 stored fraction bits + 1 implicit
    if drop <= 0:
        return x
    raw = x.view(np.uint32)
    mask = np.uint32(0xFFFFFFFF) << np.uint32(drop)
    out = (raw & mask).view(np.float32)
    return out


def _truncate_f64(x: np.ndarray, bits: int) -> np.ndarray:
    """Zero the bottom ``53 - bits`` significand bits of float64 values."""
    drop = 53 - 1 - bits
    if drop <= 0:
        return x
    raw = x.view(np.uint64)
    mask = np.uint64(0xFFFFFFFFFFFFFFFF) << np.uint64(drop)
    return (raw & mask).view(np.float64)


def truncate_mantissa(x: np.ndarray | float, bits: int = MANTISSA_BITS) -> np.ndarray:
    """Truncate the significand of ``x`` to ``bits`` bits.

    Works elementwise on real and complex arrays of any shape.  NaNs and
    infinities pass through unchanged (their significand bits are either
    irrelevant or preserved by masking).
    """
    arr = np.asarray(x)
    if arr.dtype == np.float32:
        return _truncate_f32(arr.copy(), bits)
    if arr.dtype == np.float64:
        return _truncate_f64(arr.copy(), bits)
    if arr.dtype == np.complex64:
        real = _truncate_f32(arr.real.astype(np.float32), bits)
        imag = _truncate_f32(arr.imag.astype(np.float32), bits)
        return (real + 1j * imag).astype(np.complex64)
    if arr.dtype == np.complex128:
        real = _truncate_f64(arr.real.copy(), bits)
        imag = _truncate_f64(arr.imag.copy(), bits)
        return real + 1j * imag
    raise TypeError(f"unsupported dtype for fast-math truncation: {arr.dtype}")


def fast_reciprocal(x: np.ndarray | float) -> np.ndarray:
    """Hardware ``RCP``: reciprocal accurate to 22 mantissa bits."""
    arr = np.asarray(x)
    with np.errstate(divide="ignore"):
        return truncate_mantissa(np.reciprocal(arr))


def fast_divide(num: np.ndarray | float, den: np.ndarray | float) -> np.ndarray:
    """``__fdividef``-style division: ``num * RCP(den)``.

    The multiply is exact-rounded, so the error budget is the RCP's.
    """
    return np.asarray(num) * fast_reciprocal(den)


def fast_rsqrt(x: np.ndarray | float) -> np.ndarray:
    """Hardware ``RSQRT``: reciprocal square root at 22 mantissa bits."""
    arr = np.asarray(x)
    with np.errstate(divide="ignore"):
        return truncate_mantissa(1.0 / np.sqrt(arr))


def fast_sqrt(x: np.ndarray | float) -> np.ndarray:
    """Fast square root, lowered as ``x * RSQRT(x)`` like the compiler does.

    ``sqrt(0)`` is special-cased to 0 because ``0 * inf`` would otherwise
    produce NaN -- the hardware sequence has the same guard.
    """
    arr = np.asarray(x)
    rs = fast_rsqrt(arr)
    with np.errstate(invalid="ignore"):  # 0 * inf at the guarded zero
        out = truncate_mantissa(arr * rs)
    if out.ndim == 0:
        return np.where(arr == 0, np.zeros_like(out), out)[()]
    out[np.asarray(arr) == 0] = 0
    return out
