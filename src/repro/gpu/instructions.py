"""Instruction cost table for the simulated GF100 pipeline.

The paper charges one ``gamma`` (the 18-cycle arithmetic pipeline depth)
per dependent floating-point instruction, counting a fused multiply-add as
a single instruction because the pipeline is dual-issue.  Division and
square root are not pipelined the same way: GF100 exposes *fast* hardware
approximations (``--use_fast_math``: 22 correct mantissa bits) and much
slower software-refined *precise* variants.  The fast/precise cycle counts
below follow the GT200 microbenchmarking study the paper cites (Wong et
al., ISPASS 2010), scaled to the GF100 pipeline.
"""

from __future__ import annotations

import dataclasses

from .device import DeviceSpec

__all__ = ["InstructionCosts", "costs_for"]


@dataclasses.dataclass(frozen=True)
class InstructionCosts:
    """Latency, in core-clock cycles, of each instruction class.

    All values are *dependent-chain* latencies: the cost of an instruction
    whose result is needed by the next one, which is the regime the
    paper's model (and register-resident factorizations in general)
    operate in.
    """

    #: Pipelined FP add/mul/FMA (the paper's gamma).
    fma: int
    #: Hardware reciprocal / fast division (22 mantissa bits).
    div_fast: int
    #: IEEE-rounded division (software refined).
    div_precise: int
    #: Hardware reciprocal-sqrt based square root (22 mantissa bits).
    sqrt_fast: int
    #: IEEE-rounded square root.
    sqrt_precise: int
    #: Integer shift (the SHL.W the paper measured at pipeline depth).
    shift: int
    #: Non-FP issue overhead per instruction when accounted explicitly.
    issue: int = 1

    def div(self, fast: bool) -> int:
        return self.div_fast if fast else self.div_precise

    def sqrt(self, fast: bool) -> int:
        return self.sqrt_fast if fast else self.sqrt_precise


def costs_for(device: DeviceSpec) -> InstructionCosts:
    """Instruction costs consistent with ``device``'s pipeline depth.

    The fast transcendental costs are expressed as multiples of the
    pipeline depth so the same table transfers across device presets:
    the SFU takes two pipeline passes for a fast divide and roughly three
    for a fast square root; precise variants run Newton refinement in
    software (about 7x / 9x the pipeline depth, matching the ~137-cycle
    precise divide Wong et al. report against a 18-24 cycle pipe).
    """
    gamma = device.pipeline_latency
    return InstructionCosts(
        fma=gamma,
        div_fast=2 * gamma,
        div_precise=8 * gamma,
        sqrt_fast=3 * gamma,
        sqrt_precise=10 * gamma,
        shift=gamma,
    )
