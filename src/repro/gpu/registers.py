"""Per-thread register file model.

Register pressure decides everything in this paper: one-problem-per-thread
works only while the matrix (plus temporaries) fits in the 63 general
registers a GF100 thread can address, and the one-problem-per-block
results show "false predictions at 64 and above 112 ... due to register
spilling".  :class:`RegisterAllocation` reproduces that accounting: it
tracks how many 32-bit registers a kernel needs per thread, how many of
those spill, and what fraction of register accesses are therefore served
by local memory (L1, then DRAM) instead of the register file.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import RegisterFileOverflowError
from .device import DeviceSpec

__all__ = ["RegisterAllocation", "registers_for_matrix"]

#: Registers the compiler always reserves (stack pointer, block/thread ids,
#: address temporaries).  Matches typical nvcc output for these kernels.
BASELINE_REGISTERS = 8


@dataclasses.dataclass(frozen=True)
class RegisterAllocation:
    """Outcome of allocating ``requested`` registers on ``device``.

    ``requested`` counts 32-bit registers per thread, *including* the
    compiler baseline.  If it exceeds the architectural limit the excess
    values live in local memory and every access to them pays a spill
    cost; ``spill_fraction`` is the fraction of the kernel's register
    operands that live in spilled slots under an LRU-ish allocation where
    the compiler keeps the hottest values resident.
    """

    device: DeviceSpec
    requested: int

    def __post_init__(self) -> None:
        if self.requested < 0:
            raise ValueError("requested registers must be non-negative")

    @property
    def limit(self) -> int:
        return self.device.max_registers_per_thread

    @property
    def resident(self) -> int:
        """Registers actually held in the register file."""
        return min(self.requested, self.limit)

    @property
    def spilled(self) -> int:
        """Register slots demoted to local memory."""
        return max(0, self.requested - self.limit)

    @property
    def spills(self) -> bool:
        return self.spilled > 0

    @property
    def spill_fraction(self) -> float:
        """Fraction of register operands expected to live in spilled slots.

        Assumes accesses are uniform over allocated slots, which is
        conservative for factorizations (the trailing submatrix -- the hot
        data -- shrinks over time while the spilled slots stay fixed).
        """
        if self.requested == 0:
            return 0.0
        return self.spilled / self.requested

    def granted(self) -> int:
        """Registers charged against the SM's register file for occupancy.

        Fermi allocates registers in per-warp units, so the per-thread
        count is rounded up to the allocation granularity when multiplied
        out; here we return the rounded per-thread figure.
        """
        unit = max(1, self.device.register_alloc_unit // self.device.warp_size)
        return unit * math.ceil(self.resident / unit)

    def require_resident(self) -> None:
        """Raise if this allocation spills (for spill-intolerant callers)."""
        if self.spills:
            raise RegisterFileOverflowError(
                f"kernel needs {self.requested} registers/thread but "
                f"{self.device.name} provides {self.limit}"
            )


def registers_for_matrix(
    rows_per_thread: int,
    cols_per_thread: int,
    *,
    complex_dtype: bool = False,
    workspace: int = 6,
    baseline: int = BASELINE_REGISTERS,
) -> int:
    """Registers per thread needed to hold a register-tile of a matrix.

    ``rows_per_thread x cols_per_thread`` is the per-thread sub-matrix
    (the whole matrix for one-problem-per-thread, HREG x WREG for the 2D
    cyclic layout).  Complex elements take two registers.  ``workspace``
    covers scalars such as the scale factor, norm accumulators, and loop
    remnants that survive unrolling.
    """
    if rows_per_thread < 0 or cols_per_thread < 0:
        raise ValueError("tile dimensions must be non-negative")
    per_element = 2 if complex_dtype else 1
    return baseline + workspace + per_element * rows_per_thread * cols_per_thread
