"""CUDA occupancy calculator.

The paper derives "the number of simultaneous blocks ... from the CUDA
occupancy calculator"; the whole-chip GFLOPS of the one-problem-per-block
approach is ``flops_per_block * resident_blocks / time``.  This module
reimplements that calculator for the simulated devices: resident blocks
per SM are limited by the block slots, the thread slots, the register
file, and shared memory, whichever binds first.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import LaunchConfigurationError
from .device import DeviceSpec

__all__ = ["Occupancy", "occupancy"]


@dataclasses.dataclass(frozen=True)
class Occupancy:
    """Resident-block accounting for one launch configuration."""

    device: DeviceSpec
    threads_per_block: int
    registers_per_thread: int
    shared_bytes_per_block: int
    blocks_per_sm: int
    limiter: str

    @property
    def blocks_per_chip(self) -> int:
        return self.blocks_per_sm * self.device.num_sms

    @property
    def active_threads_per_sm(self) -> int:
        return self.blocks_per_sm * self.threads_per_block

    @property
    def active_warps_per_sm(self) -> int:
        return self.blocks_per_sm * math.ceil(
            self.threads_per_block / self.device.warp_size
        )

    @property
    def occupancy_fraction(self) -> float:
        """Active threads as a fraction of the SM's thread slots."""
        return self.active_threads_per_sm / self.device.max_threads_per_sm


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_bytes_per_block: int = 0,
) -> Occupancy:
    """Compute resident blocks per SM for a launch configuration.

    Raises :class:`LaunchConfigurationError` when even a single block
    cannot be resident (too many threads, registers, or shared bytes).
    """
    if threads_per_block < 1:
        raise LaunchConfigurationError("a block needs at least one thread")
    if threads_per_block > device.max_threads_per_block:
        raise LaunchConfigurationError(
            f"{threads_per_block} threads/block exceeds the device limit "
            f"of {device.max_threads_per_block}"
        )
    if registers_per_thread < 0 or shared_bytes_per_block < 0:
        raise LaunchConfigurationError("resource requests must be non-negative")

    limits: dict[str, int] = {}
    limits["blocks"] = device.max_blocks_per_sm
    limits["threads"] = device.max_threads_per_sm // threads_per_block

    # Registers are granted in per-warp allocation units.
    warp = device.warp_size
    warps = math.ceil(threads_per_block / warp)
    unit = max(1, device.register_alloc_unit // warp)
    regs_per_thread_granted = unit * math.ceil(max(1, registers_per_thread) / unit)
    regs_per_block = regs_per_thread_granted * warps * warp
    limits["registers"] = (
        device.registers_per_sm // regs_per_block
        if regs_per_block
        else limits["blocks"]
    )

    if shared_bytes_per_block:
        granted = device.shared_alloc_unit * math.ceil(
            shared_bytes_per_block / device.shared_alloc_unit
        )
        limits["shared"] = device.shared_mem_per_sm // granted
    else:
        limits["shared"] = limits["blocks"]

    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks < 1:
        raise LaunchConfigurationError(
            "no block fits on an SM: "
            + ", ".join(f"{k} allows {v}" for k, v in limits.items())
        )
    return Occupancy(
        device=device,
        threads_per_block=threads_per_block,
        registers_per_thread=registers_per_thread,
        shared_bytes_per_block=shared_bytes_per_block,
        blocks_per_sm=blocks,
        limiter=limiter,
    )
