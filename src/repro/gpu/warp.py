"""Warp-level scheduling helpers.

The engine charges dependent-chain latencies (the regime register-resident
factorizations run in), but two warp-level effects still matter:

* *latency hiding*: with enough resident warps, a stall of ``L`` cycles is
  covered by other warps issuing; the exposed stall shrinks by the duty
  factor computed here.  The one-problem-per-thread approach relies on
  this to hide the 570-cycle DRAM latency entirely.
* *issue serialization*: a block with ``w`` warps needs ``w`` issue slots
  per instruction, which bounds throughput from below even when latency
  is hidden.
"""

from __future__ import annotations

import math

from .device import DeviceSpec

__all__ = ["warps_in_block", "exposed_latency", "issue_cycles"]


def warps_in_block(device: DeviceSpec, threads: int) -> int:
    """Number of warps a block of ``threads`` threads occupies."""
    if threads < 1:
        raise ValueError("a block needs at least one thread")
    return math.ceil(threads / device.warp_size)


def exposed_latency(
    latency: float, active_warps: int, issue_interval: float = 1.0
) -> float:
    """Stall cycles actually visible to one warp's dependent chain.

    While one warp waits ``latency`` cycles, the other ``active_warps - 1``
    warps can each issue every ``issue_interval`` cycles; the stall is
    fully hidden once ``(active_warps - 1) * issue_interval >= latency``.
    """
    if active_warps < 1:
        raise ValueError("need at least one active warp")
    covered = (active_warps - 1) * issue_interval
    return max(0.0, latency - covered)


def issue_cycles(instructions: float, warps: int, dual_issue: bool = False) -> float:
    """Cycles the SM's issue stage needs for ``instructions`` per warp.

    Each warp instruction occupies one scheduler slot; GF100's two
    schedulers let independent instruction pairs dual-issue.
    """
    if warps < 1:
        raise ValueError("need at least one warp")
    rate = 2.0 if dual_issue else 1.0
    return instructions * warps / rate
