"""Cycle accounting for the simulated device.

:class:`CycleClock` is a simple tagged accumulator: every cost event adds
cycles under a *category* (``"compute"``, ``"shared"``, ``"sync"``,
``"global"``, ``"overhead"``) and optionally under a *phase* (the panel /
operation labels used to regenerate Figure 8's breakdown).  It performs no
scheduling itself -- the SIMT engine decides how many cycles an event
costs; the clock just remembers where they went.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["CycleClock", "CycleBreakdown", "TraceEvent"]

#: Categories every consumer can rely on being present in a breakdown.
CATEGORIES = ("compute", "shared", "sync", "global", "overhead")


class CycleBreakdown(dict):
    """A ``{category: cycles}`` mapping with a few convenience helpers."""

    @property
    def total(self) -> float:
        return float(sum(self.values()))

    def __add__(self, other: "CycleBreakdown") -> "CycleBreakdown":
        out = CycleBreakdown(self)
        for key, value in other.items():
            out[key] = out.get(key, 0.0) + value
        return out

    def scaled(self, factor: float) -> "CycleBreakdown":
        return CycleBreakdown({k: v * factor for k, v in self.items()})


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded cost event (tracing mode only)."""

    start: float
    cycles: float
    category: str
    phase: Optional[str]


class CycleClock:
    """Tagged cycle accumulator with nested phase labels.

    With ``trace=True`` every charge is also recorded as a
    :class:`TraceEvent` -- a per-event timeline for debugging kernels or
    feeding external visualization.  Tracing is off by default because a
    56x56 QR generates hundreds of events per block.
    """

    def __init__(self, trace: bool = False) -> None:
        self._by_category: Dict[str, float] = defaultdict(float)
        self._by_phase: Dict[str, Dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self._phase_stack: list[str] = []
        self.trace = trace
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Total cycles accumulated so far."""
        return float(sum(self._by_category.values()))

    def charge(self, cycles: float, category: str) -> None:
        """Add ``cycles`` under ``category`` (and the current phase)."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        if self.trace:
            self.events.append(
                TraceEvent(
                    start=self.now,
                    cycles=cycles,
                    category=category,
                    phase=self._phase_stack[-1] if self._phase_stack else None,
                )
            )
        self._by_category[category] += cycles
        if self._phase_stack:
            self._by_phase[self._phase_stack[-1]][category] += cycles

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Tag all charges inside the ``with`` body with phase ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ------------------------------------------------------------------
    def breakdown(self) -> CycleBreakdown:
        """Cycles per category (categories never charged are omitted)."""
        return CycleBreakdown(self._by_category)

    def phase_breakdown(self, name: str) -> CycleBreakdown:
        """Cycles per category charged while phase ``name`` was active."""
        return CycleBreakdown(self._by_phase.get(name, {}))

    def phase_totals(self) -> Dict[str, float]:
        """Total cycles per phase label, in insertion order."""
        return {name: sum(cats.values()) for name, cats in self._by_phase.items()}

    def category(self, name: str) -> float:
        return float(self._by_category.get(name, 0.0))

    def reset(self) -> None:
        self._by_category.clear()
        self._by_phase.clear()
        self._phase_stack.clear()
        self.events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.0f}" for k, v in self._by_category.items())
        return f"CycleClock({parts}; total={self.now:.0f})"
