"""Address-translation (TLB) model.

GPUs translate device addresses through large pages; once a pointer-chase
stride exceeds the page size the chase touches a new page each hop, and
once the touched working set exceeds the TLB reach every hop adds a
translation miss on top of the DRAM access.  This produces the final step
of the Figure-1 latency staircase.

A fully-associative LRU TLB is accurate enough at these granularities.
"""

from __future__ import annotations

from collections import OrderedDict

from .device import DeviceSpec

__all__ = ["Tlb"]


class Tlb:
    """Fully-associative, true-LRU translation cache."""

    def __init__(self, device: DeviceSpec):
        self.device = device
        self.page_bytes = device.page_bytes
        self.entries = device.tlb_entries
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._pages.clear()
        self.hits = 0
        self.misses = 0

    def access(self, byte_address: int) -> bool:
        """Translate ``byte_address``; True on TLB hit, False on miss."""
        page = byte_address // self.page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        self.misses += 1
        return False

    @property
    def reach_bytes(self) -> int:
        """Total address range the TLB can map at once."""
        return self.entries * self.page_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
