"""GDDR5 DRAM timing model.

Two things matter to the paper's experiments:

* the *achievable* streaming bandwidth (Table II: a hand-written copy
  reaches 108 GB/s of the 144 GB/s pin bandwidth, ``cudaMemcpy`` only
  84 GB/s), and
* the dependent-load latency, which depends on whether the access hits
  the open DRAM row (row-buffer hit) or must activate a new one
  (Figure 1 / Table III: 570 cycles for the full miss).

The efficiency model is an overhead-per-group account: a stream of
transactions pays a bus-turnaround penalty every time the direction
changes (read<->write) plus per-row activation gaps that interleaved
banks cannot fully hide.  Constants are chosen so the *mechanism*
reproduces the paper's measured 75% (copy) and 58.3% (``cudaMemcpy``)
efficiencies; they are ordinary GDDR5 magnitudes, not free fit knobs.
"""

from __future__ import annotations

import dataclasses

from .device import DeviceSpec

__all__ = ["DramTimings", "DramModel"]


@dataclasses.dataclass(frozen=True)
class DramTimings:
    """Timing constants of the simulated GDDR5 subsystem."""

    #: Bytes in one DRAM row (per-channel row-buffer reach seen by a stream).
    row_bytes: int = 2048
    #: Extra latency of a row-buffer miss over a hit, in core cycles.
    row_miss_extra_cycles: int = 130
    #: Latency from L2 miss to data return on a row-buffer *hit*.
    row_hit_cycles: int = 440
    #: Bus turnaround penalty when the stream direction flips, in ns.
    rw_turnaround_ns: float = 20.0
    #: Bytes moved between direction flips in an interleaved copy stream.
    copy_group_bytes: int = 8192
    #: Fraction of peak a pure unidirectional stream sustains (activation
    #: gaps, refresh, command overhead).
    unidirectional_efficiency: float = 0.88
    #: Extra per-group command/descriptor overhead of the driver-managed
    #: ``cudaMemcpy`` path, in ns per ``copy_group_bytes``.
    memcpy_group_overhead_ns: float = 22.0


class DramModel:
    """Bandwidth and latency oracle for the simulated DRAM."""

    def __init__(self, device: DeviceSpec, timings: DramTimings | None = None):
        self.device = device
        self.timings = timings or DramTimings()

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def access_latency(self, row_hit: bool) -> int:
        """Dependent-load latency (cycles) past the L2, excluding TLB."""
        t = self.timings
        if row_hit:
            return t.row_hit_cycles
        return t.row_hit_cycles + t.row_miss_extra_cycles

    @property
    def row_miss_latency(self) -> int:
        return self.access_latency(row_hit=False)

    # ------------------------------------------------------------------
    # Bandwidth
    # ------------------------------------------------------------------
    def read_bandwidth(self) -> float:
        """Sustained bytes/second of a pure read stream."""
        return self.device.global_bandwidth * self.timings.unidirectional_efficiency

    def copy_bandwidth(self) -> float:
        """Sustained bytes/second of an interleaved read+write copy.

        This is the paper's Listing-2 benchmark: 75% of peak on the
        Quadro 6000 (108 GB/s).
        """
        t = self.timings
        peak = self.device.global_bandwidth
        group_time = t.copy_group_bytes / peak
        eff = group_time / (group_time + t.rw_turnaround_ns * 1e-9)
        return peak * eff

    def memcpy_bandwidth(self) -> float:
        """Sustained bytes/second of the vendor ``cudaMemcpy`` path.

        Adds driver-side per-group overhead on top of the copy stream's
        turnaround cost (58.3% of peak on the Quadro 6000: 84 GB/s).
        """
        t = self.timings
        peak = self.device.global_bandwidth
        group_time = t.copy_group_bytes / peak
        overhead = (t.rw_turnaround_ns + t.memcpy_group_overhead_ns) * 1e-9
        eff = group_time / (group_time + overhead)
        return peak * eff

    def transfer_cycles(self, nbytes: float, bandwidth: float | None = None) -> float:
        """Core cycles to move ``nbytes`` at ``bandwidth`` (default: copy)."""
        bw = bandwidth if bandwidth is not None else self.copy_bandwidth()
        return self.device.seconds_to_cycles(nbytes / bw)
