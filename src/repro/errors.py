"""Exception hierarchy for the ``repro`` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to discriminate:

* configuration / launch problems  -> :class:`LaunchConfigurationError`
* resource exhaustion on the simulated device -> :class:`ResourceError`
  (with the more specific :class:`RegisterFileOverflowError` and
  :class:`SharedMemoryOverflowError`)
* numerically unsolvable inputs -> :class:`SingularMatrixError`
* misshapen / mistyped user arrays -> :class:`ShapeError`
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class LaunchConfigurationError(ReproError, ValueError):
    """A kernel launch configuration is invalid for the target device.

    Examples: a non-square thread count for a 2D-cyclic layout, more
    threads per block than the device supports, or a zero-sized grid.
    """


class ResourceError(ReproError, ValueError):
    """A simulated hardware resource was exhausted."""


class RegisterFileOverflowError(ResourceError):
    """A thread asked for more architectural registers than exist.

    On GF100 a thread may address at most 64 registers; allocations past
    that point *spill* rather than fail, so this error is raised only when
    spilling has been explicitly disallowed.
    """


class SharedMemoryOverflowError(ResourceError):
    """A block asked for more shared memory than one SM provides."""


class SingularMatrixError(ReproError, ArithmeticError):
    """A factorization hit an (exactly) zero pivot and cannot continue.

    Mirrors the paper's ``*notsolved = 1`` flag in the Gauss-Jordan and
    LU kernels (Listing 5): the batch entry is flagged, and callers may
    either raise or inspect the per-problem flags.
    """


class ShapeError(ReproError, ValueError):
    """An input array has the wrong rank, shape, or dtype."""
