"""Per-chunk supervision: deadlines, retries, pool rebuilds, inline rescue.

The unsupervised pool had one recovery path -- any worker exception threw
away every completed chunk and re-ran the whole batch serially.  The
supervisor makes failure *per chunk*:

* every attempt gets a wall-clock **deadline** (``RetryPolicy.timeout_s``;
  ``None`` disables) -- an overdue attempt's worker is killed and the
  chunk resubmitted;
* a failed attempt (worker exception, checksum mismatch, broken pool) is
  **retried** with capped exponential backoff up to
  ``RetryPolicy.max_retries`` times;
* a **broken pool** (worker died hard) is torn down and rebuilt; chunks
  that were merely in flight at teardown time are resubmitted without
  burning a retry;
* a chunk that exhausts its retries runs **inline** in the launch
  process as a last resort; only an inline failure surfaces, as
  :class:`ChunkFailedError` -- and by then every other chunk's outcome
  is already safe (and journaled, when checkpointing is on).

Completed chunks are never re-executed, and outcomes are keyed by chunk
index, so the submission-order merge -- and therefore bitwise output
determinism -- is untouched by any amount of retrying.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
import zlib
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observe import log as _log
from .policy import RetryPolicy

__all__ = [
    "ChunkFailedError",
    "ChunkSpans",
    "SuperviseStats",
    "outcome_checksum",
    "supervise_pool",
    "supervise_serial",
]


class ChunkFailedError(RuntimeError):
    """A chunk failed its pool retries *and* the inline last resort.

    Deliberately not swallowed by the runtime's serial-fallback guard:
    re-running the whole batch cannot fix a chunk that already failed
    inline, and doing so would re-execute completed chunks.
    """

    def __init__(self, index: int, op: str, reason: str) -> None:
        super().__init__(
            f"chunk {index} ({op}) failed permanently after retries: {reason}"
        )
        self.index = index
        self.op = op
        self.reason = reason


@dataclasses.dataclass
class SuperviseStats:
    """Recovery events of one launch, for telemetry folding.

    ``scope`` is the launch's profile scope (``batch:N``) when the run
    is profiled; every noted event is then also written to the
    structured log (when enabled) stamped with the chunk's span id, so a
    retry in the log joins its ``attempt:k`` span in the flamegraph.
    """

    #: ``(kind, args)`` in occurrence order; kinds: ``retry`` /
    #: ``timeout`` / ``inline`` / ``rebuild``.
    events: List[Tuple[str, dict]] = dataclasses.field(default_factory=list)
    timeouts: int = 0
    inline_runs: int = 0
    rebuilds: int = 0
    scope: Optional[str] = None

    def note(self, kind: str, **args) -> None:
        self.events.append((kind, args))
        if kind == "timeout":
            self.timeouts += 1
        elif kind == "inline":
            self.inline_runs += 1
        elif kind == "rebuild":
            self.rebuilds += 1
        if _log.log_enabled():
            chunk = args.get("chunk")
            span_id = (
                f"{self.scope}/chunk:{chunk}"
                if self.scope is not None and chunk is not None
                else self.scope
            )
            _log.log_event(
                f"resilience.{kind}",
                level="warning",
                span_id=span_id,
                parent_id=self.scope,
                **args,
            )

    @property
    def retries(self) -> int:
        return sum(1 for kind, _ in self.events if kind == "retry")


def outcome_checksum(output: np.ndarray, extra: Optional[np.ndarray]) -> str:
    """Content checksum of a chunk's numerical payload.

    Computed in the worker before the outcome crosses the process
    boundary and verified by the supervisor after -- a mismatch means the
    payload was corrupted in transit (or by an injected fault) and the
    chunk must be retried, not merged.

    CRC32 over the raw array buffers, not a cryptographic hash: the
    adversary is a flipped bit, and the supervisor re-hashes every chunk
    serially on the launch process's critical path, so throughput is
    what keeps the failure-free overhead tripwire (<2%) honest.
    """
    value = zlib.crc32(np.ascontiguousarray(output))
    if extra is not None:
        value = zlib.crc32(np.ascontiguousarray(np.asarray(extra)), value)
    return format(value, "08x")


def _verified(outcome) -> bool:
    checksum = getattr(outcome, "checksum", None)
    if checksum is None:
        return True
    return outcome_checksum(outcome.output, outcome.extra) == checksum


Entry = Tuple[int, tuple]  # (chunk index, payload for ``execute``)


class ChunkSpans:
    """Per-chunk profile bookkeeping for the supervisor paths.

    Wraps a :class:`~repro.observe.profile.ProfileEmitter` (or ``None``
    -- every method is then a no-op) and emits the parent-side spans of
    the batch tree: one ``submit`` span per submission (retries and
    forgiven resubmissions become visible siblings) and one ``chunk``
    span from first submission to final completion.
    """

    __slots__ = ("emitter", "first_submit", "seq")

    def __init__(self, emitter) -> None:
        self.emitter = emitter
        self.first_submit: Dict[int, float] = {}
        self.seq: Dict[int, int] = {}

    def chunk_id(self, index: int) -> str:
        return self.emitter.span_id(f"chunk:{index}")

    def submit(self, index: int, start: float, end: float, **args) -> None:
        if self.emitter is None:
            return
        seq = self.seq.get(index, 0)
        self.seq[index] = seq + 1
        self.first_submit.setdefault(index, start)
        self.emitter.emit(
            "submit",
            start,
            end,
            span_id=f"{self.chunk_id(index)}/submit:{seq}",
            parent_id=self.chunk_id(index),
            chunk=index,
            submission=seq,
            **args,
        )

    def complete(self, index: int, end: float, **args) -> None:
        if self.emitter is None:
            return
        start = self.first_submit.get(index, end)
        self.emitter.emit(
            "chunk",
            start,
            end,
            span_id=self.chunk_id(index),
            parent_id=self.emitter.span_id("execute"),
            chunk=index,
            **args,
        )

    def now(self) -> float:
        return self.emitter.now() if self.emitter is not None else 0.0


def supervise_serial(
    entries: Sequence[Entry],
    *,
    execute: Callable,
    policy: RetryPolicy,
    faults=None,
    nchunks: int = 1,
    on_complete: Optional[Callable[[int, object], None]] = None,
    profile=None,
) -> Tuple[Dict[int, object], SuperviseStats]:
    """Run chunks inline with the same retry semantics as the pool.

    Deadlines cannot be enforced in-process (there is no worker to
    kill), so ``timeout_s`` is ignored here; crash and corruption
    recovery behave exactly like the pool path.  ``profile`` is an
    optional :class:`~repro.observe.profile.ProfileEmitter`: inline
    execution emits the same ``chunk``/``submit`` span structure as the
    pool (submissions are instantaneous hand-offs, so their spans are
    zero-width), keeping serial and sharded trees comparable.
    """
    outcomes: Dict[int, object] = {}
    stats = SuperviseStats(scope=profile.scope if profile is not None else None)
    spans = ChunkSpans(profile)
    for index, payload in entries:
        op = payload[0]
        attempt = 0
        while True:
            delay = policy.backoff_delay(attempt)
            if delay:
                time.sleep(delay)
            start = spans.now()
            spans.submit(index, start, start, attempt=attempt, op=op)
            failure = None
            try:
                outcome = execute(
                    *payload,
                    chunk_index=index,
                    attempt=attempt,
                    nchunks=nchunks,
                    faults=faults,
                )
            except Exception as exc:  # noqa: BLE001 -- every failure retries
                failure = ("crash", exc)
            else:
                if not _verified(outcome):
                    failure = ("corrupt", None)
            if failure is None:
                outcomes[index] = outcome
                spans.complete(index, spans.now(), op=op, attempts=attempt + 1)
                if on_complete is not None:
                    on_complete(index, outcome)
                break
            reason, exc = failure
            if attempt >= policy.max_retries:
                raise ChunkFailedError(index, op, reason) from exc
            attempt += 1
            stats.note("retry", chunk=index, attempt=attempt, reason=reason, op=op)
    return outcomes, stats


def supervise_pool(
    entries: Sequence[Entry],
    *,
    execute: Callable,
    mp_context,
    max_workers: int,
    policy: RetryPolicy,
    faults=None,
    nchunks: int = 1,
    on_complete: Optional[Callable[[int, object], None]] = None,
    profile=None,
) -> Tuple[Dict[int, object], SuperviseStats]:
    """Run chunks on a supervised process pool; see the module docstring.

    Returns ``(outcomes by chunk index, stats)``.  Raises
    :class:`ChunkFailedError` only when a chunk fails its retries *and*
    its inline last resort.  ``profile`` is an optional
    :class:`~repro.observe.profile.ProfileEmitter`; when set, every
    submission (including retries and forgiven resubmissions) and every
    chunk completion lands in the batch span tree.
    """
    outcomes: Dict[int, object] = {}
    stats = SuperviseStats(scope=profile.scope if profile is not None else None)
    if not entries:
        return outcomes, stats
    spans = ChunkSpans(profile)
    payloads = dict(entries)
    attempts = {index: 0 for index, _ in entries}
    ready: deque[int] = deque(index for index, _ in entries)
    #: future -> (index, submitted_ts, deadline, pool generation)
    inflight: Dict[
        concurrent.futures.Future, Tuple[int, float, Optional[float], int]
    ] = {}
    done_at: Dict[int, float] = {}
    #: chunks whose pool was torn down under them through no fault of
    #: their own -- resubmitted without consuming a retry.
    forgiven: set[int] = set()
    pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
    generation = 0

    def build_pool() -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(max_workers, len(entries)), mp_context=mp_context
        )

    def kill_pool(dead: concurrent.futures.ProcessPoolExecutor) -> None:
        # ``shutdown`` alone would wait on (or leak) a hung worker; a
        # deadline is only real if the worker actually dies.  The
        # executor keeps its workers in ``_processes`` (stable CPython
        # internal); terminate them first, then release the queues.
        for proc in list(getattr(dead, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 -- already-dead workers
                pass
        dead.shutdown(wait=False, cancel_futures=True)

    def run_inline(index: int, reason: str) -> None:
        op = payloads[index][0]
        stats.note("inline", chunk=index, reason=reason, op=op)
        # The rescue is a fresh attempt, not a replay of the last failed
        # one -- fault plans count attempts, so a fault scoped to the
        # pool attempts (count = max_retries + 1) leaves this run clean.
        attempts[index] += 1
        start = spans.now()
        spans.submit(index, start, start, attempt=attempts[index], op=op, inline=True)
        try:
            outcome = execute(
                *payloads[index],
                chunk_index=index,
                attempt=attempts[index],
                nchunks=nchunks,
                faults=faults,
            )
        except Exception as exc:  # noqa: BLE001 -- terminal path
            raise ChunkFailedError(index, op, reason) from exc
        outcomes[index] = outcome
        spans.complete(index, spans.now(), op=op, attempts=attempts[index] + 1)
        if on_complete is not None:
            on_complete(index, outcome)

    def fail(index: int, reason: str) -> None:
        """One attempt of ``index`` failed: retry, or rescue inline."""
        if index in forgiven and reason in ("broken-pool", "cancelled"):
            forgiven.discard(index)
            ready.append(index)  # same attempt: the chunk did nothing wrong
            return
        if reason == "timeout":
            stats.note("timeout", chunk=index, op=payloads[index][0])
        if attempts[index] >= policy.max_retries:
            run_inline(index, reason)
            return
        attempts[index] += 1
        stats.note(
            "retry",
            chunk=index,
            attempt=attempts[index],
            reason=reason,
            op=payloads[index][0],
        )
        ready.append(index)

    try:
        while ready or inflight:
            if pool is None:
                pool = build_pool()
            while ready:
                index = ready.popleft()
                delay = policy.backoff_delay(attempts[index])
                if delay:
                    time.sleep(delay)
                submit_start = spans.now()
                future = pool.submit(
                    execute,
                    *payloads[index],
                    chunk_index=index,
                    attempt=attempts[index],
                    nchunks=nchunks,
                    faults=faults,
                )
                submitted = time.perf_counter()
                spans.submit(
                    index,
                    submit_start,
                    spans.now(),
                    attempt=attempts[index],
                    op=payloads[index][0],
                )
                deadline = (
                    None
                    if policy.timeout_s is None
                    else submitted + policy.timeout_s
                )
                future.add_done_callback(
                    lambda f: done_at.setdefault(id(f), time.perf_counter())
                )
                inflight[future] = (index, submitted, deadline, generation)

            deadlines = [d for _, _, d, _ in inflight.values() if d is not None]
            wait_s = (
                None
                if not deadlines
                else max(0.0, min(deadlines) - time.perf_counter())
            )
            done, _ = concurrent.futures.wait(
                set(inflight),
                timeout=wait_s,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )

            broken = False
            for future in done:
                index, submitted, _, gen = inflight.pop(future)
                try:
                    outcome = future.result()
                except concurrent.futures.CancelledError:
                    fail(index, "cancelled")
                except BrokenProcessPool:
                    broken = broken or gen == generation
                    fail(index, "broken-pool")
                except Exception:  # noqa: BLE001 -- worker-side failure
                    fail(index, "crash")
                else:
                    if not _verified(outcome):
                        fail(index, "corrupt")
                        continue
                    turnaround = done_at.get(id(future), submitted) - submitted
                    outcome.queue_wait_s = max(0.0, turnaround - outcome.wall_s)
                    outcomes[index] = outcome
                    spans.complete(
                        index,
                        spans.now(),
                        op=payloads[index][0],
                        attempts=attempts[index] + 1,
                        worker=getattr(outcome, "pid", 0),
                    )
                    if on_complete is not None:
                        on_complete(index, outcome)

            if broken and pool is not None:
                # Sibling in-flight chunks will surface as broken/
                # cancelled; they were not at fault.
                forgiven.update(index for index, _, _, _ in inflight.values())
                kill_pool(pool)
                pool = None
                generation += 1
                stats.note("rebuild", reason="broken-pool")
                continue

            now = time.perf_counter()
            expired = [
                future
                for future, (_, _, deadline, _) in inflight.items()
                if deadline is not None and now >= deadline and not future.done()
            ]
            if expired:
                for future in expired:
                    index, _, _, _ = inflight.pop(future)
                    fail(index, "timeout")
                if pool is not None:
                    forgiven.update(
                        index for index, _, _, _ in inflight.values()
                    )
                    kill_pool(pool)
                    pool = None
                    generation += 1
                    stats.note("rebuild", reason="timeout")
    finally:
        if pool is not None:
            if len(outcomes) == len(entries):
                pool.shutdown(wait=True)
            else:
                # Error exit with attempts possibly still hung: kill, do
                # not wait (a hung worker would block shutdown forever).
                kill_pool(pool)

    return outcomes, stats
