"""Fault-tolerant batch execution: retries, quarantine, checkpoints, faults.

The paper's premise is "many thousands of small problems" as one batch;
at production scale a hung worker, one singular matrix, or a truncated
cache file must not cost the launch.  This package makes failure a
first-class, observable, *testable* outcome of the batch runtime:

* :mod:`~repro.resilience.policy` -- :class:`RetryPolicy`: per-chunk
  deadlines and capped exponential backoff;
* :mod:`~repro.resilience.supervisor` -- the per-chunk supervisor that
  retries, rebuilds broken pools, kills hung workers, and rescues a
  chunk inline only after its retries are exhausted;
* :mod:`~repro.resilience.quarantine` -- numerical breakdowns (zero
  pivot, non-PSD input, non-finite output) fail *their problem slot*
  (NaN-masked, reported as :class:`ProblemFailure` on
  ``BatchReport.failures``), never the batch;
* :mod:`~repro.resilience.checkpoint` -- :class:`CheckpointStore`
  journals finished chunks so a killed run resumes bitwise-identically;
* :mod:`~repro.resilience.faults` -- the deterministic fault-injection
  harness (``REPRO_FAULTS=`` / ``BatchRuntime(faults=...)``) CI uses to
  *prove* every recovery path above instead of trusting it.

Recovery events flow into the existing telemetry:
``repro_chunk_retries_total``, ``repro_chunk_timeouts_total``,
``repro_problem_failures_total``, ``repro_resume_chunks_skipped_total``
metrics, ``resilience.*`` trace events, and failure counts in run
history records.  See ``docs/resilience.md``.
"""

from .checkpoint import CHECKPOINT_SCHEMA, CheckpointStore, batch_fingerprint
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    parse_faults,
    plan_from_env,
)
from .policy import DEFAULT_RETRY_POLICY, RetryPolicy
from .quarantine import ProblemFailure, quarantine_outcomes, scan_output
from .supervisor import (
    ChunkFailedError,
    SuperviseStats,
    outcome_checksum,
    supervise_pool,
    supervise_serial,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "ChunkFailedError",
    "DEFAULT_RETRY_POLICY",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "ProblemFailure",
    "RetryPolicy",
    "SuperviseStats",
    "batch_fingerprint",
    "outcome_checksum",
    "parse_faults",
    "plan_from_env",
    "quarantine_outcomes",
    "scan_output",
    "supervise_pool",
    "supervise_serial",
]
