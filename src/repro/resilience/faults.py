"""Deterministic fault injection for the batch runtime.

Every recovery path in :mod:`repro.resilience` is exercised in CI by
*injecting* the failure it guards against, not by trusting the code:

* ``crash``    -- the chunk attempt raises :class:`InjectedCrash` inside
  the worker (a clean, picklable failure);
* ``kill``     -- the worker process calls ``os._exit``; the pool breaks
  (``BrokenProcessPool``) and must be rebuilt;
* ``hang``     -- the attempt sleeps past its deadline, so the
  supervisor has to cancel it and kill the worker;
* ``corrupt``  -- the chunk's output array is mangled *after* its
  checksum was computed, simulating transport corruption (the
  supervisor detects the mismatch and retries);
* ``truncate`` -- a just-written cache/checkpoint file is truncated,
  simulating a killed writer (the next reader must treat it as a cold
  miss, never raise).

A :class:`FaultPlan` is fully deterministic: victims are either named
explicitly (``crash@1,3``) or drawn from a seeded
:class:`random.Random`, and each :class:`FaultSpec` fires on attempts
``0 .. count-1`` of its victim chunks, then stops -- so a retried
attempt succeeds and the recovery machinery, not luck, completes the
batch.

Activation: ``BatchRuntime(faults=...)`` (a plan, or a spec string), or
the ``REPRO_FAULTS`` environment variable.  Spec grammar, semicolon
separated::

    REPRO_FAULTS="crash@0;hang@2:sleep=30;corrupt:rate=0.25,seed=7"

``kind[@chunks][:key=val,...]`` where ``chunks`` is a comma list of
chunk indices; omitted, victims are sampled per chunk at ``rate``
(default 1.0) from ``seed`` (default 0).  Keys: ``count`` (attempts to
fire, default 1; ``inf`` for always), ``sleep`` (hang seconds, default
30), ``rate``, ``seed``.
"""

from __future__ import annotations

import dataclasses
import math
import os
import random
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "parse_faults",
    "plan_from_env",
]

FAULT_KINDS = ("crash", "kill", "hang", "corrupt", "truncate")


class InjectedCrash(RuntimeError):
    """The failure raised by a ``crash`` fault (picklable on purpose)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One seeded injector: *which* failure, *where*, and *how often*."""

    kind: str
    #: Explicit victim chunk indices; ``None`` samples at :attr:`rate`.
    chunks: Optional[tuple[int, ...]] = None
    #: Attempts (0-based) on which the fault fires: ``attempt < count``.
    count: float = 1
    #: Victim sampling probability when :attr:`chunks` is ``None``.
    rate: float = 1.0
    #: Seed for victim sampling (per spec, so specs are independent).
    seed: int = 0
    #: Hang duration in seconds (``hang`` only).
    sleep: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        if self.count < 0:
            raise ValueError("count must be >= 0")

    def victims(self, nchunks: int) -> set[int]:
        """The chunk indices this spec targets in an ``nchunks`` plan.

        Deterministic: explicit indices pass through (out-of-range ones
        are dropped), sampled victims come from one seeded stream in
        chunk order.
        """
        if self.chunks is not None:
            return {c for c in self.chunks if 0 <= c < nchunks}
        rng = random.Random(self.seed)
        return {i for i in range(nchunks) if rng.random() < self.rate}

    def fires(self, chunk: int, attempt: int, nchunks: int) -> bool:
        return attempt < self.count and chunk in self.victims(nchunks)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` applied to one launch.

    The plan travels to the workers inside each chunk payload (it is a
    small frozen dataclass, cheap to pickle), so crash/hang/corrupt
    faults happen where the real failure would: in the worker process.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def _active(self, kind: str, chunk: int, attempt: int, nchunks: int):
        for spec in self.specs:
            if spec.kind == kind and spec.fires(chunk, attempt, nchunks):
                return spec
        return None

    # -- worker-side hooks --------------------------------------------
    def apply_pre(self, chunk: int, attempt: int, nchunks: int) -> None:
        """Fire crash/kill/hang faults before the kernel runs."""
        if self._active("kill", chunk, attempt, nchunks) is not None:
            os._exit(86)  # hard worker death -> BrokenProcessPool
        spec = self._active("hang", chunk, attempt, nchunks)
        if spec is not None:
            import time

            time.sleep(spec.sleep)
        if self._active("crash", chunk, attempt, nchunks) is not None:
            raise InjectedCrash(
                f"injected crash: chunk {chunk} attempt {attempt}"
            )

    def apply_corrupt(
        self, chunk: int, attempt: int, nchunks: int, output: np.ndarray
    ) -> np.ndarray:
        """Mangle ``output`` after its checksum was taken (or return as-is)."""
        if self._active("corrupt", chunk, attempt, nchunks) is None:
            return output
        mangled = np.array(output, copy=True)
        flat = mangled.reshape(-1)
        if flat.size:
            flat[:: max(1, flat.size // 7)] = 0
        return mangled

    # -- file-side hook -----------------------------------------------
    def mangle_file(self, path, chunk: int = 0, attempt: int = 0) -> bool:
        """Truncate a just-written file when a ``truncate`` fault is live.

        Returns whether the file was mangled.  ``chunk`` indexes which
        store write this is (checkpoint chunk index; 0 for caches).
        """
        spec = self._active("truncate", chunk, attempt, nchunks=chunk + 1)
        if spec is None:
            return False
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(max(1, size // 2))
        except OSError:
            return False
        return True


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    specs: list[FaultSpec] = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        head, _, opts = part.partition(":")
        kind, _, chunk_list = head.partition("@")
        kwargs: dict = {"kind": kind.strip()}
        if chunk_list:
            kwargs["chunks"] = tuple(
                int(c) for c in chunk_list.split(",") if c.strip()
            )
        for item in filter(None, (o.strip() for o in opts.split(","))):
            key, _, value = item.partition("=")
            key = key.strip()
            if key == "count":
                kwargs["count"] = math.inf if value == "inf" else int(value)
            elif key in ("rate", "sleep"):
                kwargs[key] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(f"unknown fault option {key!r} in {part!r}")
        specs.append(FaultSpec(**kwargs))
    return FaultPlan(tuple(specs))


def plan_from_env(environ=None) -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
    env = os.environ if environ is None else environ
    spec = env.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    plan = parse_faults(spec)
    return plan or None


def resolve_faults(
    faults: "FaultPlan | FaultSpec | str | Sequence[FaultSpec] | None",
) -> Optional[FaultPlan]:
    """Normalize the ``BatchRuntime(faults=...)`` argument to a plan."""
    if faults is None:
        return plan_from_env()
    if isinstance(faults, FaultPlan):
        return faults or None
    if isinstance(faults, FaultSpec):
        return FaultPlan((faults,))
    if isinstance(faults, str):
        return parse_faults(faults) or None
    return FaultPlan(tuple(faults)) or None
