"""Checkpoint/resume for long batch runs.

An opt-in :class:`CheckpointStore` journals every finished
:class:`~repro.runtime.merge.ChunkOutcome` to its own file as the launch
progresses -- atomic write-temp-rename, schema- and version-stamped like
the :mod:`repro.runtime.cache` documents -- keyed by a content
fingerprint of the batch (ops, shapes, dtypes, the operand bytes, the
chunk plan, and the kernel kwargs).  A killed run resumed with the same
store and the same batch skips every journaled chunk and merges to
**bitwise-identical** output: the journal holds the exact arrays,
launch counters, trace events, and worker metrics the original chunk
produced, so the resumed report is indistinguishable from an
uninterrupted one.

Corruption is a cold miss, never an exception: a truncated or mangled
journal file (killed writer, disk trouble, injected ``truncate`` fault)
is counted into ``repro_cache_corrupt_total{cache="checkpoint"}``,
deleted, and its chunk simply re-executes.  A fingerprint mismatch
(different batch, different kwargs, new library version) likewise
invalidates the stale file rather than serving a wrong result.

The journal is cleared after a successful merge -- checkpoints exist to
resume *interrupted* runs, not to memoize completed ones (that is what
the dispatch/calibration caches are for).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from .. import __version__
from ..observe.metrics import counter_inc

__all__ = ["CHECKPOINT_SCHEMA", "CheckpointStore", "batch_fingerprint"]

#: Bump when the journal payload layout changes; old files become stale.
CHECKPOINT_SCHEMA = 1

_CHUNK_FILE = re.compile(r"^chunk-(\d+)\.ckpt$")


def _version_stamp() -> str:
    return f"{__version__}/ckpt{CHECKPOINT_SCHEMA}"


def batch_fingerprint(batch, chunk_cost: float, kwargs: dict) -> str:
    """Content hash identifying one (batch, plan, kwargs) execution.

    Any difference -- an operand bit, the chunk budget, a kernel kwarg,
    the library version -- yields a new fingerprint, so a journal can
    only ever resume the exact run that wrote it.
    """
    h = hashlib.sha256()
    h.update(_version_stamp().encode())
    h.update(repr(float(chunk_cost)).encode())
    for group in batch.groups:
        h.update(group.op.encode())
        h.update(repr((group.data.shape, str(group.data.dtype))).encode())
        h.update(np.ascontiguousarray(group.data).tobytes())
    for key in sorted(kwargs):
        h.update(f"{key}={kwargs[key]!r}".encode())
    return h.hexdigest()


class CheckpointStore:
    """Per-chunk outcome journal under one directory.

    Parameters
    ----------
    directory:
        Where journal files live; created on first write.
    faults:
        Optional :class:`~repro.resilience.faults.FaultPlan` whose
        ``truncate`` specs mangle just-written files (CI's way of
        proving the corrupt-is-a-miss path).
    """

    def __init__(self, directory: Path | str, faults=None) -> None:
        self.directory = Path(directory)
        self.faults = faults

    def path_for(self, index: int) -> Path:
        return self.directory / f"chunk-{index}.ckpt"

    # ------------------------------------------------------------------
    def record(self, fingerprint: str, index: int, outcome) -> Path:
        """Journal one finished chunk outcome (atomic replace)."""
        payload = pickle.dumps(
            {
                "version": _version_stamp(),
                "fingerprint": fingerprint,
                "chunk": index,
                "outcome": outcome,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = self.path_for(index)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            # A read-only journal directory degrades to no checkpointing.
            return path
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        counter_inc("repro_cache_writes_total", cache="checkpoint")
        if self.faults is not None:
            self.faults.mangle_file(path, chunk=index)
        return path

    def resume(self, fingerprint: str) -> Dict[int, object]:
        """Load every journaled outcome that matches ``fingerprint``.

        Unreadable, corrupt, stale, or mismatched files are removed and
        counted (``repro_cache_corrupt_total`` for undecodable payloads,
        ``repro_cache_requests_total{outcome="stale"}`` for version or
        fingerprint mismatches) -- their chunks re-execute.
        """
        outcomes: Dict[int, object] = {}
        for path, index in self._journal_files():
            doc = self._load_file(path, index)
            if doc is None:
                continue
            if (
                doc.get("version") != _version_stamp()
                or doc.get("fingerprint") != fingerprint
                or doc.get("chunk") != index
            ):
                counter_inc(
                    "repro_cache_requests_total",
                    cache="checkpoint",
                    outcome="stale",
                )
                self._drop(path)
                continue
            counter_inc(
                "repro_cache_requests_total", cache="checkpoint", outcome="hit"
            )
            outcomes[index] = doc["outcome"]
        return outcomes

    def clear(self) -> None:
        """Delete the journal (called after a successful merge)."""
        for path, _ in self._journal_files():
            self._drop(path)

    def __len__(self) -> int:
        return sum(1 for _ in self._journal_files())

    # ------------------------------------------------------------------
    def _journal_files(self):
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            match = _CHUNK_FILE.match(name)
            if match:
                yield self.directory / name, int(match.group(1))

    def _load_file(self, path: Path, index: int) -> Optional[dict]:
        try:
            payload = path.read_bytes()
            doc = pickle.loads(payload)
            if not isinstance(doc, dict):
                raise ValueError("journal payload is not a mapping")
        except Exception:
            # Truncated pickle streams raise a zoo of exception types
            # (EOFError, UnpicklingError, ValueError, AttributeError...);
            # every one of them means the same thing: cold miss.
            counter_inc("repro_cache_corrupt_total", cache="checkpoint")
            self._drop(path)
            return None
        return doc

    @staticmethod
    def _drop(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
