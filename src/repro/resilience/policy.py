"""Retry and deadline policy for supervised chunk execution.

One :class:`RetryPolicy` governs every chunk of a launch: how many times
a failed attempt may be resubmitted to the pool, how long the supervisor
backs off between attempts (capped exponential, deterministic -- no
jitter, so a seeded fault plan replays identically), and the wall-clock
deadline after which an in-flight attempt is declared hung and its
worker killed.

``timeout_s`` defaults to ``None`` (no deadline): the failure-free path
must behave exactly like the unsupervised runtime, and a spurious
timeout on a loaded CI machine would violate that.  Opt into deadlines
per runtime (``BatchRuntime(retry_policy=RetryPolicy(timeout_s=5.0))``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats a failing or hung chunk.

    Attributes
    ----------
    max_retries:
        Pool resubmissions allowed per chunk after the first attempt.
        When exhausted, the chunk runs inline in the launch process as a
        last resort; an inline failure propagates (see
        :class:`~repro.resilience.supervisor.ChunkFailedError`).
    backoff_s:
        Base delay before the first resubmission; attempt ``k`` waits
        ``min(backoff_s * 2**(k-1), backoff_cap_s)``.
    backoff_cap_s:
        Upper bound on the backoff delay.
    timeout_s:
        Per-attempt wall-clock deadline.  ``None`` disables deadlines
        entirely (the default).  A timed-out attempt counts as a retry.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 1.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait before submitting attempt ``attempt`` (0-based).

        Attempt 0 (the first submission) never waits.
        """
        if attempt <= 0 or self.backoff_s == 0:
            return 0.0
        return min(self.backoff_s * (2.0 ** (attempt - 1)), self.backoff_cap_s)


#: The runtime default: a couple of retries, fast backoff, no deadlines.
DEFAULT_RETRY_POLICY = RetryPolicy()
