"""Numerical quarantine: per-problem failures instead of batch failures.

At production scale one singular matrix in a 4096-problem batch must not
cost the launch.  The device kernels already run breakdown-tolerant --
an exactly-zero pivot is where-protected and flagged rather than
raised -- so the runtime's job is to *surface* those flags per problem:
after the chunks complete, each outcome is scanned with its kernel's
breakdown detector (:data:`repro.kernels.device.BREAKDOWN_DETECTORS`),
failing slots are masked to NaN in the merged output, and a structured
:class:`ProblemFailure` record (op, group, batch index, reason) lands on
``BatchReport.failures``.

The failure-free path is untouched bit for bit: detectors are pure
reads, and masking copies nothing unless a breakdown was actually found.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["ProblemFailure", "quarantine_outcomes", "scan_output"]


@dataclasses.dataclass(frozen=True)
class ProblemFailure:
    """One quarantined problem of a batch."""

    #: Kernel name the problem ran under.
    op: str
    #: Group index within the :class:`~repro.runtime.sharding.ProblemBatch`.
    group: int
    #: Batch index *within the group* (i.e. indexes ``group.data``).
    index: int
    #: Machine-readable breakdown reason (``zero-pivot``,
    #: ``not-positive-definite``, ``non-finite``...).
    reason: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return f"{self.op}[group {self.group}, problem {self.index}]: {self.reason}"


def scan_output(op: str, output: np.ndarray, extra) -> Dict[int, str]:
    """Per-problem breakdown reasons for one chunk's raw kernel result.

    Dispatches to the kernel's registered detector; unknown ops fall
    back to a non-finite scan (a factorization that produced Inf/NaN is
    unusable whatever the algorithm was).
    """
    from ..kernels.device import BREAKDOWN_DETECTORS, nonfinite_breakdowns

    detector = BREAKDOWN_DETECTORS.get(op, nonfinite_breakdowns)
    return detector(output, extra)


def quarantine_outcomes(
    batch, chunks: Sequence, outcomes: Sequence
) -> List[ProblemFailure]:
    """Scan, mask, and report breakdowns across a launch's outcomes.

    ``chunks`` and ``outcomes`` are the parallel submission-order
    sequences the merge consumes.  Failing slots are NaN-masked
    *in place* on the outcome arrays (they are chunk-private, fresh from
    a worker or an inline run), so the subsequent merge concatenates the
    masked bytes without a second pass.  Returns the failure records in
    (group, index) order.
    """
    failures: List[ProblemFailure] = []
    for chunk, outcome in zip(chunks, outcomes):
        group = batch.groups[chunk.group]
        found = scan_output(group.op, outcome.output, outcome.extra)
        if not found:
            continue
        output = outcome.output
        if not output.flags.writeable:  # resumed/journaled arrays may be
            output = np.array(output, copy=True)
            outcome.output = output
        for local_index in sorted(found):
            output[local_index] = np.nan
            failures.append(
                ProblemFailure(
                    op=group.op,
                    group=chunk.group,
                    index=chunk.start + local_index,
                    reason=found[local_index],
                )
            )
    failures.sort(key=lambda f: (f.group, f.index))
    return failures
