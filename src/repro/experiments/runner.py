"""Cell measurement backends: one per value of the ``approach`` axis.

Every backend turns a fully-bound :class:`~repro.experiments.spec.Cell`
into a *deterministic* gauge record -- the simulated engine is
reproducible, so the values in ``matrix.json`` are portable across CI
hosts and reruns.  Wall-clock time is measured too, but returned out of
band (it lands in the ``run.json`` sidecar, never in the canonical
matrix).

Support matrix (unsupported combinations produce a cell with status
``"unsupported"`` and no gauges -- present in the matrix, excluded from
gating):

========== ============================== ==========================
approach   ops                            precisions
========== ============================== ==========================
runtime    lu, lu_pivot, qr, cholesky     float32, float64
per_thread qr, lu                         float32, float64
per_block  qr, lu, gauss_jordan,          float32, complex64
           least_squares
hybrid     qr, lu, gauss_jordan,          float32, complex64
           least_squares
cpu        qr, lu, gauss_jordan,          float32, complex64
           least_squares
========== ============================== ==========================

``runtime`` cells execute real batched kernels through the sharded
:class:`~repro.runtime.BatchRuntime` -- chunk supervision, payload
checksums, quarantine, and (via the ``fault_plan`` axis) deterministic
fault injection all apply, and each launch lands in the shared run
history.  The other approaches reuse the paper's approach layer (the
Figures 4 and 9-12 machinery).  Where the predictive model covers the
cell (``qr``/``lu``), the record carries ``predicted_gflops`` and
``rel_err`` alongside ``measured_gflops`` -- the model-vs-measurement
gauge the drift gates watch.
"""

from __future__ import annotations

import dataclasses
import time
import zlib
from typing import Optional

import numpy as np

from ..model.per_block_model import predict_per_block
from ..model.per_thread_model import predict_per_thread
from .spec import DEVICES, Cell

__all__ = [
    "APPROACHES",
    "RUNTIME_OPS",
    "WORKLOAD_OPS",
    "CellRecord",
    "SweepContext",
    "cell_seed",
    "run_cell",
    "supported",
]

APPROACHES = ("cpu", "hybrid", "per_block", "per_thread", "runtime")

#: Ops the sharded runtime executes as real batched kernels.
RUNTIME_OPS = ("cholesky", "lu", "lu_pivot", "qr")

#: Ops the approach layer models as :class:`~repro.approaches.Workload`.
WORKLOAD_OPS = ("gauss_jordan", "least_squares", "lu", "qr")

_DTYPES = {"float32": np.float32, "float64": np.float64, "complex64": np.complex64}

#: Gauges whose model prediction exists for qr/lu cells.
_MODELED_OPS = ("lu", "qr")


@dataclasses.dataclass
class CellRecord:
    """One executed (or skipped) cell: the canonical matrix row."""

    cell: Cell
    #: ``"ok"``, ``"unsupported"``, or ``"failed"``.
    status: str
    #: Deterministic numeric gauges (empty unless status is ``"ok"``).
    gauges: dict
    #: Human-readable reason for non-ok statuses.
    note: str = ""
    #: Wall seconds (min over policy repeats); sidecar-only.
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        """Canonical JSON form -- deterministic fields only, no wall."""
        doc = {
            "id": self.cell.id,
            **self.cell.point(),
            "batch": self.cell.policy.batch,
            "repeats": self.cell.policy.repeats,
            "status": self.status,
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
        }
        if self.note:
            doc["note"] = self.note
        return doc


@dataclasses.dataclass
class SweepContext:
    """Shared per-sweep state the backends draw on.

    One calibration per device (through the persistent cache under
    ``cache_dir``) and the pool size every
    :class:`~repro.runtime.BatchRuntime` uses.  Per-launch history is
    deliberately off: the sweep appends one aggregate record, keeping
    the drift window comparable sweep-to-sweep.
    """

    seed: int = 0
    workers: Optional[int] = None
    cache_dir: Optional[object] = None
    _params: dict = dataclasses.field(default_factory=dict)
    _runtimes: dict = dataclasses.field(default_factory=dict)

    def params(self, device_name: str):
        if device_name not in self._params:
            from ..microbench.calibrate import calibrate
            from ..runtime.cache import CalibrationCache

            cache = (
                CalibrationCache(self.cache_dir)
                if self.cache_dir is not None
                else None
            )
            self._params[device_name] = calibrate(DEVICES[device_name], cache=cache)
        return self._params[device_name]

    def runtime(self, device_name: str, fault_plan: str):
        from ..runtime.executor import BatchRuntime

        key = (device_name, fault_plan)
        if key not in self._runtimes:
            self._runtimes[key] = BatchRuntime(
                workers=self.workers,
                device=DEVICES[device_name],
                use_caches=self.cache_dir is not None,
                cache_directory=self.cache_dir,
                history=False,
                faults=None if fault_plan == "none" else fault_plan,
            )
        return self._runtimes[key]


def cell_seed(base_seed: int, cell: Cell) -> int:
    """Deterministic per-cell operand seed (stable across processes)."""
    return (base_seed << 16) ^ zlib.crc32(cell.id.encode("utf-8"))


def supported(cell: Cell) -> Optional[str]:
    """``None`` when the cell can run; else the reason it cannot."""
    if cell.approach == "runtime":
        if cell.op not in RUNTIME_OPS:
            return f"runtime executes {RUNTIME_OPS}, not {cell.op!r}"
        if cell.precision not in ("float32", "float64"):
            return f"runtime kernels take real dtypes, not {cell.precision}"
        return None
    if cell.approach == "per_thread":
        if cell.op not in _MODELED_OPS:
            return f"per_thread factors qr/lu, not {cell.op!r}"
        if cell.precision not in ("float32", "float64"):
            return f"per_thread takes real dtypes, not {cell.precision}"
        if cell.size > 128:
            return "per_thread caps at n <= 128 (register/local residency)"
        return None
    # Approach-layer replays: Workload kinds, float32 or complex64.
    if cell.op not in WORKLOAD_OPS:
        return f"{cell.approach} models {WORKLOAD_OPS}, not {cell.op!r}"
    if cell.precision not in ("float32", "complex64"):
        return f"{cell.approach} models float32/complex64, not {cell.precision}"
    return None


def _operands(cell: Cell, seed: int) -> np.ndarray:
    """Seeded input batch appropriate to the cell's kernel."""
    from ..kernels.batched import diagonally_dominant_batch, random_batch

    dtype = _DTYPES[cell.precision]
    n, batch = cell.size, cell.policy.batch
    if cell.op in ("lu", "lu_pivot"):
        return diagonally_dominant_batch(batch, n, dtype=dtype, seed=seed)
    if cell.op == "cholesky":
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((batch, n, n))
        return (a @ a.transpose(0, 2, 1) + n * np.eye(n)).astype(dtype)
    return random_batch(batch, n, n, dtype=dtype, seed=seed)


def _with_prediction(gauges: dict, measured: float, predicted: Optional[float]):
    gauges["measured_gflops"] = float(measured)
    if predicted is not None:
        gauges["predicted_gflops"] = float(predicted)
        if measured:
            gauges["rel_err"] = abs(measured - predicted) / abs(measured)
    return gauges


def _run_runtime(cell: Cell, ctx: SweepContext) -> dict:
    from ..runtime.sharding import ProblemBatch

    data = _operands(cell, cell_seed(ctx.seed, cell))
    runtime = ctx.runtime(cell.device, cell.fault_plan)
    batch = ProblemBatch.single(cell.op, data)
    report = runtime.run(batch)
    predicted = None
    if cell.op in _MODELED_OPS:
        predicted = predict_per_block(
            ctx.params(cell.device), cell.op, cell.size
        ).gflops
    gauges = _with_prediction({}, report.results[0].gflops, predicted)
    gauges["chunks"] = report.chunks
    gauges["problems"] = report.problems
    gauges["failures"] = len(report.failures)
    return gauges


def _run_per_thread(cell: Cell, ctx: SweepContext) -> dict:
    from ..kernels.device import per_thread_factor

    data = _operands(cell, cell_seed(ctx.seed, cell))
    result = per_thread_factor(data, cell.op, DEVICES[cell.device])
    predicted = predict_per_thread(ctx.params(cell.device), cell.op, cell.size)
    return _with_prediction({}, result.gflops, predicted.gflops)


def _run_replay(cell: Cell, ctx: SweepContext) -> dict:
    from ..approaches import (
        CpuLapackApproach,
        HybridBlockedApproach,
        PerBlockApproach,
        Workload,
    )

    work = Workload.square(
        cell.op,
        cell.size,
        cell.policy.batch,
        complex_dtype=cell.precision == "complex64",
    )
    if cell.approach == "per_block":
        approach = PerBlockApproach(DEVICES[cell.device])
    elif cell.approach == "hybrid":
        approach = HybridBlockedApproach()
    else:
        approach = CpuLapackApproach()
    if not approach.supports(work):
        raise _Unsupported(f"{approach.name} does not support {work}")
    predicted = None
    if cell.approach == "per_block" and cell.op in _MODELED_OPS:
        predicted = predict_per_block(
            ctx.params(cell.device),
            cell.op,
            cell.size,
            complex_dtype=work.complex_dtype,
        ).gflops
    return _with_prediction({}, approach.gflops(work), predicted)


class _Unsupported(Exception):
    """Raised by a backend for a cell its machinery cannot represent."""


_BACKENDS = {
    "runtime": _run_runtime,
    "per_thread": _run_per_thread,
    "per_block": _run_replay,
    "hybrid": _run_replay,
    "cpu": _run_replay,
}


def run_cell(cell: Cell, ctx: SweepContext) -> CellRecord:
    """Execute one cell under its policy; never raises for a bad cell.

    The measurement repeats ``policy.repeats`` times (results are
    deterministic; only the wall varies) and the recorded wall is the
    min -- the same min-of-rounds convention the benchmark tripwires
    use.  Execution errors become a ``"failed"`` record so one broken
    cell cannot kill a long sweep.
    """
    reason = supported(cell)
    if reason is not None:
        return CellRecord(cell=cell, status="unsupported", gauges={}, note=reason)
    backend = _BACKENDS[cell.approach]
    walls = []
    gauges: dict = {}
    try:
        for _ in range(cell.policy.repeats):
            start = time.perf_counter()
            gauges = backend(cell, ctx)
            walls.append(time.perf_counter() - start)
    except _Unsupported as exc:
        return CellRecord(cell=cell, status="unsupported", gauges={}, note=str(exc))
    except Exception as exc:  # noqa: BLE001 - quarantine, don't kill the sweep
        return CellRecord(
            cell=cell,
            status="failed",
            gauges={},
            note=f"{type(exc).__name__}: {exc}",
            wall_s=min(walls) if walls else 0.0,
        )
    return CellRecord(cell=cell, status="ok", gauges=gauges, wall_s=min(walls))
