"""Sweep execution: journaled cell runs, canonical artifacts, history.

:func:`run_spec` is the engine's single entry point.  It expands the
spec into its deterministic cell plan, executes every cell through the
measurement backends, and leaves three artifacts behind:

``matrix.json``
    The canonical per-cell gauge matrix.  Only deterministic fields go
    in (the simulated engine is reproducible), the document is dumped
    with sorted keys, and a resumed sweep reproduces it byte-for-byte --
    so the file diffs cleanly across machines, reruns, and kills.

``run.json``
    The non-deterministic sidecar: wall-clock per cell, totals, resume
    bookkeeping, and per-cell budget overruns.

``cells.jsonl``
    The in-flight journal.  Every finished cell is appended (one fsynced
    line) before the next starts; a sweep killed mid-flight resumes by
    replaying the journal -- completed cells are never re-executed --
    provided the plan fingerprint still matches.  The journal is removed
    once the matrix is written.

One aggregate sweep record lands in the
:class:`~repro.observe.history.RunHistory` store (when a history
destination is given), labeled per cell so
``python -m repro.observe.report`` folds sweep gauges into its drift
window.  Per-cell runtime launches deliberately do not log their own
records: successive sweeps stay directly comparable.

Testing hook: ``REPRO_EXPERIMENTS_KILL_AFTER=<n>`` SIGKILLs the process
after ``n`` cells have been journaled -- the resume tests use it to
prove bitwise-identical recovery without racing a timer.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time
from pathlib import Path
from typing import Callable, List, Optional

from ..observe.export import atomic_write_text
from ..observe.history import RunHistory
from ..observe.log import log_event
from .gate import MATRIX_SCHEMA
from .runner import CellRecord, SweepContext, run_cell
from .spec import Cell, ExperimentSpec, expand_cells, plan_fingerprint

__all__ = ["SweepResult", "journal_path", "run_spec"]

_KILL_ENV = "REPRO_EXPERIMENTS_KILL_AFTER"


@dataclasses.dataclass
class SweepResult:
    """Everything one :func:`run_spec` call produced."""

    spec: ExperimentSpec
    cells: List[Cell]
    records: List[CellRecord]
    #: Product combinations dropped by the fault-plan/approach rule.
    pruned: int
    #: Content hash of the expanded plan (journal/resume key).
    fingerprint: str
    #: The canonical matrix document (what ``matrix.json`` holds).
    matrix: dict
    matrix_path: Optional[Path]
    run_path: Optional[Path]
    wall_s: float
    #: Cells restored from the journal instead of re-executed.
    resumed: int
    #: Cell ids whose min wall exceeded their policy budget.
    budget_overruns: List[str]

    @property
    def counts(self) -> dict:
        by_status: dict = {}
        for record in self.records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        return by_status

    @property
    def ok(self) -> bool:
        return self.counts.get("failed", 0) == 0


def journal_path(out_dir: Path) -> Path:
    return Path(out_dir) / "cells.jsonl"


def _read_journal(path: Path, fingerprint: str) -> dict:
    """id -> journaled line for the matching plan; corrupt tail tolerated.

    A fingerprint mismatch (edited spec, different seed) discards the
    whole journal -- stale cells must never leak into a fresh plan.
    """
    if not path.exists():
        return {}
    restored: dict = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            break  # partial final line from a kill mid-write
        if doc.get("fingerprint") != fingerprint:
            return {}
        record = doc.get("record")
        if isinstance(record, dict) and "id" in record:
            restored[record["id"]] = doc
    return restored


def _append_journal(path: Path, doc: dict) -> None:
    line = json.dumps(doc, sort_keys=True) + "\n"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())


def _restored_record(cell: Cell, doc: dict) -> CellRecord:
    stored = doc["record"]
    return CellRecord(
        cell=cell,
        status=stored.get("status", "failed"),
        gauges=dict(stored.get("gauges", {})),
        note=stored.get("note", ""),
        wall_s=float(doc.get("wall_s", 0.0)),
    )


def _matrix_doc(
    spec: ExperimentSpec, fingerprint: str, pruned: int, records: List[CellRecord]
) -> dict:
    return {
        "schema": MATRIX_SCHEMA,
        "kind": "experiment-matrix",
        "experiment": spec.name,
        "title": spec.title,
        "seed": spec.seed,
        "fingerprint": fingerprint,
        "axes": {axis: list(values) for axis, values in spec.axes.items()},
        "pruned": pruned,
        "cells": [record.to_dict() for record in records],
    }


def _history_record(
    spec: ExperimentSpec,
    fingerprint: str,
    records: List[CellRecord],
    wall_s: float,
    workers: Optional[int],
) -> dict:
    """Sweep record shaped so the report dashboard and drift gauges work.

    ``cells`` entries carry a ``label`` (the cell id) so
    :func:`~repro.observe.history.record_gauges` flattens them into
    stable dotted names; ``summary.groups`` aggregates per op the way
    :meth:`~repro.runtime.merge.BatchReport.summary` does, so the
    "Recent runs" table renders sweeps alongside runtime launches.
    """
    ok = [r for r in records if r.status == "ok"]
    per_op: dict = {}
    for record in ok:
        entry = per_op.setdefault(
            record.cell.op, {"problems": 0, "chunks": 0, "gflops": []}
        )
        entry["problems"] += record.cell.policy.batch
        entry["chunks"] += int(record.gauges.get("chunks", 1))
        if "measured_gflops" in record.gauges:
            entry["gflops"].append(record.gauges["measured_gflops"])
    groups = [
        {
            "op": op,
            "problems": entry["problems"],
            "chunks": entry["chunks"],
            "gflops": (
                sum(entry["gflops"]) / len(entry["gflops"]) if entry["gflops"] else 0.0
            ),
        }
        for op, entry in sorted(per_op.items())
    ]
    return {
        "kind": "sweep",
        "experiment": spec.name,
        "fingerprint": fingerprint,
        "summary": {
            "problems": sum(g["problems"] for g in groups),
            "chunks": sum(g["chunks"] for g in groups),
            "workers": workers or 0,
            "mode": "sweep",
            "wall_s": wall_s,
            "failures": sum(1 for r in records if r.status == "failed"),
            "groups": groups,
        },
        "cells": [{"label": r.cell.id, **r.gauges} for r in ok],
    }


def run_spec(
    spec: ExperimentSpec,
    out_dir: Path | str,
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[Path | str] = None,
    history: Optional[RunHistory | Path | str] = None,
    resume: bool = True,
    echo: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Execute ``spec``, writing artifacts under ``out_dir``.

    Parameters
    ----------
    workers:
        Pool size for runtime cells (``None`` = auto).
    cache_dir:
        Calibration/dispatch cache directory shared by all cells; also
        enables the runtime's persistent caches.  ``None`` runs
        cache-less (still deterministic, just recalibrates).
    history:
        Run-history destination (path or :class:`RunHistory`) for the
        one aggregate sweep record.  Per-cell runtime launches do not
        log their own records -- sweep entries stay comparable under
        :func:`~repro.observe.history.detect_drift`.  ``None``
        disables history entirely.
    resume:
        Replay a matching ``cells.jsonl`` journal instead of
        re-executing finished cells.  ``False`` discards any journal.
    echo:
        Per-cell progress callback (the CLI passes ``print``).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    say = echo or (lambda _line: None)

    cells, pruned = expand_cells(spec)
    fingerprint = plan_fingerprint(spec, cells)
    journal = journal_path(out_dir)

    restored = _read_journal(journal, fingerprint) if resume else {}
    if not resume and journal.exists():
        journal.unlink()
    if restored:
        say(f"resuming: {len(restored)}/{len(cells)} cells from {journal}")

    history_store: Optional[RunHistory] = None
    if isinstance(history, RunHistory):
        history_store = history
    elif history is not None:
        history_store = RunHistory(history)

    ctx = SweepContext(
        seed=spec.seed,
        workers=workers,
        cache_dir=Path(cache_dir) if cache_dir is not None else None,
    )

    kill_after = int(os.environ.get(_KILL_ENV, "0") or "0")
    executed = 0
    start = time.perf_counter()
    records: List[CellRecord] = []
    budget_overruns: List[str] = []
    for i, cell in enumerate(cells):
        if cell.id in restored:
            records.append(_restored_record(cell, restored[cell.id]))
            continue
        record = run_cell(cell, ctx)
        records.append(record)
        _append_journal(
            journal,
            {
                "fingerprint": fingerprint,
                "record": record.to_dict(),
                "wall_s": record.wall_s,
            },
        )
        executed += 1
        log_event(
            "experiment.cell",
            level="warning" if record.status == "failed" else "info",
            experiment=spec.name,
            cell=cell.id,
            status=record.status,
            wall_s=record.wall_s,
        )
        status = record.status if record.status != "ok" else f"{record.wall_s:.3f}s"
        say(f"[{i + 1}/{len(cells)}] {cell.id}: {status}")
        if kill_after and executed >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            record.status == "ok"
            and cell.policy.budget_s > 0
            and record.wall_s > cell.policy.budget_s
        ):
            budget_overruns.append(cell.id)
            say(
                f"  budget overrun: {record.wall_s:.3f}s > "
                f"{cell.policy.budget_s:.3f}s"
            )
    wall_s = time.perf_counter() - start

    matrix = _matrix_doc(spec, fingerprint, pruned, records)
    matrix_path = out_dir / "matrix.json"
    atomic_write_text(matrix_path, json.dumps(matrix, sort_keys=True, indent=2) + "\n")

    run_doc = {
        "schema": MATRIX_SCHEMA,
        "kind": "experiment-run",
        "experiment": spec.name,
        "fingerprint": fingerprint,
        "wall_s": wall_s,
        "executed": executed,
        "resumed": len(cells) - executed,
        "budget_overruns": budget_overruns,
        "status_counts": {
            status: sum(1 for r in records if r.status == status)
            for status in ("ok", "unsupported", "failed")
        },
        "cell_walls": {r.cell.id: r.wall_s for r in records},
    }
    run_path = out_dir / "run.json"
    atomic_write_text(run_path, json.dumps(run_doc, sort_keys=True, indent=2) + "\n")

    if journal.exists():
        journal.unlink()

    if history_store is not None:
        history_store.append(
            _history_record(spec, fingerprint, records, wall_s, workers)
        )
    log_event(
        "experiment.sweep",
        experiment=spec.name,
        fingerprint=fingerprint,
        cells=len(cells),
        executed=executed,
        resumed=len(cells) - executed,
        failed=sum(1 for r in records if r.status == "failed"),
        wall_s=wall_s,
    )

    return SweepResult(
        spec=spec,
        cells=cells,
        records=records,
        pruned=pruned,
        fingerprint=fingerprint,
        matrix=matrix,
        matrix_path=matrix_path,
        run_path=run_path,
        wall_s=wall_s,
        resumed=len(cells) - executed,
        budget_overruns=budget_overruns,
    )
