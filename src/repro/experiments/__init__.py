"""Declarative experiment matrix engine (ROADMAP item 5).

The paper validates its predictive model across a grid of
device x op x size x approach cells (Tables IV-VII, Figures 4-12); this
package turns that methodology into infrastructure.  A ~20-line TOML (or
JSON) *spec* declares the axes of a sweep plus include/exclude
constraints and per-cell repeat/budget policy; the engine expands it
into a deterministic cell plan, runs every cell through the measurement
backends (the sharded :class:`~repro.runtime.BatchRuntime` for real
kernel execution, the approach layer for replay sweeps), journals each
finished cell so a killed sweep resumes bitwise-identically, and emits:

* ``matrix.json`` -- the canonical per-cell gauge matrix (deterministic
  bytes: the simulated engine is reproducible, so this artifact diffs
  cleanly across commits and machines);
* ``run.json`` -- wall-clock timings and resume bookkeeping (the
  non-deterministic sidecar);
* a sweep record in the :class:`~repro.observe.history.RunHistory`
  store, so ``python -m repro.observe.report`` aggregates drift across
  sweeps.

``python -m repro.experiments`` drives it: ``plan`` (dry-run the cell
plan), ``run`` (execute; ``--strict`` gates against the spec's baseline
artifact with direction-aware tolerances), and ``diff`` (compare two
artifacts).  See ``docs/experiments.md`` and ``benchmarks/specs/``.
"""

from .engine import SweepResult, run_spec
from .gate import (
    MATRIX_SCHEMA,
    artifact_gauges,
    compare_gauges,
    diff_artifacts,
    load_artifact,
)
from .runner import APPROACHES, CellRecord, run_cell
from .spec import (
    AXES,
    DEVICES,
    PRECISIONS,
    Cell,
    CellPolicy,
    Constraint,
    ExperimentSpec,
    SpecError,
    expand_cells,
    load_spec,
    plan_fingerprint,
    spec_from_dict,
)

__all__ = [
    "AXES",
    "APPROACHES",
    "DEVICES",
    "MATRIX_SCHEMA",
    "PRECISIONS",
    "Cell",
    "CellPolicy",
    "CellRecord",
    "Constraint",
    "ExperimentSpec",
    "SpecError",
    "SweepResult",
    "artifact_gauges",
    "compare_gauges",
    "diff_artifacts",
    "expand_cells",
    "load_artifact",
    "load_spec",
    "plan_fingerprint",
    "run_cell",
    "run_spec",
    "spec_from_dict",
]
