"""``python -m repro.experiments`` -- plan, run, and diff sweeps.

Subcommands::

    plan SPEC               expand the cell plan without executing
    run  SPEC [--strict]    execute; gate against the baseline artifact
    diff CURRENT BASELINE   compare two matrix artifacts

``run --dry-run`` is an alias for ``plan``.  ``--strict`` resolves the
baseline from ``--baseline`` or the spec's ``[gates] baseline`` entry
and fails (exit 1) on any direction-aware regression, any exact-match
structural change, or any cell whose execution failed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..reporting.tables import format_table
from .engine import run_spec
from .gate import diff_artifacts, load_artifact
from .spec import ExperimentSpec, SpecError, expand_cells, load_spec, plan_fingerprint

__all__ = ["main"]


def _plan_text(spec: ExperimentSpec) -> str:
    cells, pruned = expand_cells(spec)
    fingerprint = plan_fingerprint(spec, cells)
    rows = [
        [
            cell.device,
            cell.op,
            cell.size,
            cell.precision,
            cell.approach,
            cell.fault_plan,
            cell.policy.batch,
            cell.policy.repeats,
        ]
        for cell in cells
    ]
    title = f"{spec.name}: {len(cells)} cells"
    if pruned:
        title += f" ({pruned} pruned: fault plans need the runtime approach)"
    table = format_table(
        ["device", "op", "n", "precision", "approach", "faults", "batch", "reps"],
        rows,
        title=title,
    )
    return f"{table}\nplan fingerprint: {fingerprint}\n"


def _summary_text(result) -> str:
    counts = result.counts
    parts = [f"{counts.get('ok', 0)} ok"]
    if counts.get("unsupported"):
        parts.append(f"{counts['unsupported']} unsupported")
    if counts.get("failed"):
        parts.append(f"{counts['failed']} FAILED")
    line = (
        f"{result.spec.name}: {len(result.cells)} cells ({', '.join(parts)}) "
        f"in {result.wall_s:.2f}s"
    )
    if result.resumed:
        line += f", {result.resumed} resumed from journal"
    if result.budget_overruns:
        line += f", {len(result.budget_overruns)} over budget"
    return line


def _gate(result, baseline_path: Optional[Path], tolerance: float) -> int:
    if baseline_path is None:
        print(
            "error: --strict needs a baseline (pass --baseline or set "
            "[gates] baseline in the spec)",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_artifact(baseline_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = diff_artifacts(result.matrix, baseline, tolerance)
    for line in report.lines():
        print(line)
    checked = len(report.deltas)
    if not report.ok:
        print(f"{len(report.failures)} of {checked} gauges regressed")
        return 1
    print(f"all {checked} gauges within {tolerance:.0%} of {baseline_path}")
    return 0


def _cmd_plan(args) -> int:
    spec = load_spec(args.spec)
    print(_plan_text(spec), end="")
    return 0


def _cmd_run(args) -> int:
    spec = load_spec(args.spec)
    if args.dry_run:
        print(_plan_text(spec), end="")
        return 0
    out_dir = args.out or Path("artifacts") / "experiments" / spec.name
    result = run_spec(
        spec,
        out_dir,
        workers=args.workers,
        cache_dir=args.cache_dir,
        history=args.history,
        resume=not args.no_resume,
        echo=print if args.verbose else None,
    )
    print(_summary_text(result))
    print(f"matrix: {result.matrix_path}")
    exit_code = 0
    if args.strict:
        tolerance = args.tolerance if args.tolerance is not None else spec.tolerance
        exit_code = _gate(result, args.baseline or spec.baseline, tolerance)
    if not result.ok:
        for record in result.records:
            if record.status == "failed":
                print(f"FAILED {record.cell.id}: {record.note}", file=sys.stderr)
        exit_code = exit_code or 1
    return exit_code


def _cmd_diff(args) -> int:
    try:
        current = load_artifact(args.current)
        baseline = load_artifact(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = diff_artifacts(current, baseline, args.tolerance)
    rows = []
    for delta in report.deltas:
        if delta.ok and not args.verbose:
            continue
        rows.append(
            [
                delta.gauge,
                delta.value if delta.value is not None else "-",
                delta.ref,
                f"{delta.deviation:+.1%}",
                delta.direction,
                "ok" if delta.ok else "FAIL",
            ]
        )
    if rows:
        print(
            format_table(
                ["gauge", "current", "baseline", "change", "better", "verdict"],
                rows,
                title=f"{args.current} vs {args.baseline}",
            )
        )
    for name in report.new:
        print(f"note: new gauge not in baseline: {name}")
    checked = len(report.deltas)
    if not report.ok:
        print(f"{len(report.failures)} of {checked} gauges regressed")
        return 1
    print(f"all {checked} gauges within {report.tolerance:.0%} of baseline")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative experiment matrix engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="expand a spec's cell plan (dry run)")
    plan.add_argument("spec", type=Path)
    plan.set_defaults(func=_cmd_plan)

    run = sub.add_parser("run", help="execute a spec")
    run.add_argument("spec", type=Path)
    run.add_argument("--out", type=Path, default=None, help="artifact directory")
    run.add_argument("--workers", type=int, default=None)
    run.add_argument("--cache-dir", type=Path, default=None)
    run.add_argument("--history", type=Path, default=None, help="history JSONL")
    run.add_argument(
        "--no-resume", action="store_true", help="discard any cell journal"
    )
    run.add_argument("--dry-run", action="store_true", help="alias for plan")
    run.add_argument("--strict", action="store_true", help="gate vs baseline")
    run.add_argument("--baseline", type=Path, default=None)
    run.add_argument(
        "--tolerance", type=float, default=None, help="override spec tolerance"
    )
    run.add_argument("--verbose", action="store_true", help="per-cell progress")
    run.set_defaults(func=_cmd_run)

    diff = sub.add_parser("diff", help="compare two matrix artifacts")
    diff.add_argument("current", type=Path)
    diff.add_argument("baseline", type=Path)
    diff.add_argument("--tolerance", type=float, default=0.10)
    diff.add_argument(
        "--verbose", action="store_true", help="show passing gauges too"
    )
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpecError as exc:
        print(f"spec error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
