"""Experiment specs: parsing, validation, and deterministic expansion.

A spec is a TOML or JSON document with five parts::

    [experiment]            # identity
    name = "ci_smoke"
    title = "CI smoke sweep"
    seed = 0                # base seed for operand generation

    [axes]                  # the matrix dimensions (lists of values)
    device = ["quadro6000"]
    op = ["qr", "lu"]
    size = [4, 8]
    precision = ["float32"]
    approach = ["runtime", "per_thread"]
    fault_plan = ["none"]   # optional; default ["none"]

    [policy]                # per-cell execution policy (all optional)
    batch = 64              # problems per cell
    repeats = 1             # timing repeats (wall = min over repeats)
    budget_s = 0.0          # per-cell wall budget; 0 disables

    [[policy.override]]     # later overrides win
    match = { approach = "runtime" }
    batch = 128

    [[exclude]]             # drop matching cells (list values = any-of)
    approach = "per_thread"
    size = [16, 24]

    [[include]]             # explicit extra cells (full axis bindings)
    device = "quadro6000"
    op = "qr"
    size = 56
    precision = "float32"
    approach = "runtime"

    [gates]                 # defaults for ``run --strict`` / ``diff``
    tolerance = 0.10
    baseline = "../baselines/ci_smoke.json"   # relative to the spec file

Expansion is **deterministic and order-free**: cells are the cartesian
product of the axes (minus excludes, plus includes, deduplicated),
sorted by the canonical axis order :data:`AXES` -- so reordering the
axis tables *or* the values inside an axis yields the identical plan,
and the same spec always produces the identical cell sequence (the
property tests pin both).  ``fault_plan`` values other than ``"none"``
only combine with the ``runtime`` approach (fault injection happens
inside :class:`~repro.runtime.BatchRuntime` workers); other combinations
are pruned at expansion and reported by ``plan``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Mapping, Optional, Sequence

from ..gpu.device import G80, GTX480, QUADRO_6000
from ..resilience.faults import parse_faults

__all__ = [
    "AXES",
    "DEVICES",
    "OPS",
    "PRECISIONS",
    "SPEC_SCHEMA",
    "Cell",
    "CellPolicy",
    "Constraint",
    "ExperimentSpec",
    "SpecError",
    "expand_cells",
    "load_spec",
    "plan_fingerprint",
    "spec_from_dict",
]

#: Bump when the spec layout or expansion semantics change.
SPEC_SCHEMA = 1

#: Canonical axis order: expansion, cell ids, and sorting all use this
#: fixed order, never the order the spec file happens to declare.
AXES = ("device", "op", "size", "precision", "approach", "fault_plan")

#: Simulated devices a spec may target.
DEVICES = {
    "quadro6000": QUADRO_6000,
    "gtx480": GTX480,
    "g80": G80,
}

#: Union of runtime kernel names and approach-layer workload kinds; the
#: per-approach support matrix lives in :mod:`repro.experiments.runner`.
OPS = ("cholesky", "gauss_jordan", "least_squares", "lu", "lu_pivot", "qr")

PRECISIONS = ("complex64", "float32", "float64")

_TOP_LEVEL_KEYS = {"experiment", "axes", "policy", "exclude", "include", "gates"}
_EXPERIMENT_KEYS = {"name", "title", "seed"}
_POLICY_KEYS = {"batch", "repeats", "budget_s"}
_GATES_KEYS = {"tolerance", "baseline"}


class SpecError(ValueError):
    """A spec that fails validation (unknown axis, bad value, ...)."""


@dataclasses.dataclass(frozen=True)
class Constraint:
    """One include/exclude clause: axis -> allowed values (any-of)."""

    clauses: tuple[tuple[str, tuple], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping, where: str) -> "Constraint":
        clauses = []
        for axis in sorted(mapping):
            if axis not in AXES:
                raise SpecError(
                    f"{where}: unknown axis {axis!r}; axes are {', '.join(AXES)}"
                )
            value = mapping[axis]
            values = tuple(value) if isinstance(value, (list, tuple)) else (value,)
            if not values:
                raise SpecError(f"{where}: empty value list for axis {axis!r}")
            clauses.append((axis, tuple(_check_axis_value(axis, v) for v in values)))
        if not clauses:
            raise SpecError(f"{where}: constraint binds no axis")
        return cls(clauses=tuple(clauses))

    def matches(self, point: Mapping) -> bool:
        return all(point[axis] in values for axis, values in self.clauses)

    def to_dict(self) -> dict:
        return {
            axis: (list(values) if len(values) > 1 else values[0])
            for axis, values in self.clauses
        }


@dataclasses.dataclass(frozen=True)
class CellPolicy:
    """Execution policy attached to every expanded cell."""

    batch: int = 64
    repeats: int = 1
    #: Per-cell wall budget in seconds; 0 disables the budget check.
    budget_s: float = 0.0

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise SpecError("policy.batch must be >= 1")
        if self.repeats < 1:
            raise SpecError("policy.repeats must be >= 1")
        if self.budget_s < 0:
            raise SpecError("policy.budget_s must be >= 0")

    def replace(self, overrides: Mapping) -> "CellPolicy":
        return dataclasses.replace(self, **dict(overrides))

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Cell:
    """One fully-bound point of the matrix, ready to execute."""

    device: str
    op: str
    size: int
    precision: str
    approach: str
    fault_plan: str
    policy: CellPolicy

    @property
    def id(self) -> str:
        """Stable identifier: ``device/op/n{size}/precision/approach/fault``."""
        return (
            f"{self.device}/{self.op}/n{self.size}/"
            f"{self.precision}/{self.approach}/{self.fault_plan}"
        )

    def point(self) -> dict:
        return {axis: getattr(self, axis) for axis in AXES}

    def sort_key(self) -> tuple:
        return (
            self.device,
            self.op,
            self.size,
            self.precision,
            self.approach,
            self.fault_plan,
        )


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A parsed, validated spec (see the module docstring for grammar)."""

    name: str
    axes: dict[str, tuple]
    title: str = ""
    seed: int = 0
    policy: CellPolicy = CellPolicy()
    overrides: tuple[tuple[Constraint, dict], ...] = ()
    excludes: tuple[Constraint, ...] = ()
    includes: tuple[dict, ...] = ()
    tolerance: float = 0.10
    #: Baseline artifact path for ``run --strict`` / ``diff`` (resolved
    #: against the spec file's directory at load time; may be ``None``).
    baseline: Optional[Path] = None

    def to_dict(self) -> dict:
        """Round-trippable plain-dict form (:func:`spec_from_dict` inverse)."""
        doc: dict = {
            "experiment": {"name": self.name, "title": self.title, "seed": self.seed},
            "axes": {axis: list(self.axes[axis]) for axis in AXES},
            "policy": self.policy.to_dict(),
        }
        if self.overrides:
            doc["policy"]["override"] = [
                {"match": constraint.to_dict(), **changes}
                for constraint, changes in self.overrides
            ]
        if self.excludes:
            doc["exclude"] = [c.to_dict() for c in self.excludes]
        if self.includes:
            doc["include"] = [dict(point) for point in self.includes]
        gates: dict = {"tolerance": self.tolerance}
        if self.baseline is not None:
            gates["baseline"] = str(self.baseline)
        doc["gates"] = gates
        return doc


def _check_axis_value(axis: str, value):
    """Validate one axis value; returns it normalized."""
    if axis == "size":
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise SpecError(f"axis size: values must be positive ints, got {value!r}")
        return value
    if not isinstance(value, str):
        raise SpecError(f"axis {axis}: values must be strings, got {value!r}")
    if axis == "device" and value not in DEVICES:
        raise SpecError(
            f"axis device: unknown device {value!r}; known: {sorted(DEVICES)}"
        )
    if axis == "op" and value not in OPS:
        raise SpecError(f"axis op: unknown op {value!r}; known: {list(OPS)}")
    if axis == "precision" and value not in PRECISIONS:
        raise SpecError(
            f"axis precision: unknown precision {value!r}; known: {list(PRECISIONS)}"
        )
    if axis == "approach":
        from .runner import APPROACHES

        if value not in APPROACHES:
            raise SpecError(
                f"axis approach: unknown approach {value!r}; "
                f"known: {list(APPROACHES)}"
            )
    if axis == "fault_plan" and value != "none":
        try:
            parse_faults(value)
        except ValueError as exc:
            raise SpecError(f"axis fault_plan: bad spec {value!r}: {exc}") from exc
    return value


def _require_keys(mapping: Mapping, allowed: set, where: str) -> None:
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise SpecError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def spec_from_dict(doc: Mapping, base_dir: Optional[Path] = None) -> ExperimentSpec:
    """Validate a plain dict (parsed TOML/JSON) into an :class:`ExperimentSpec`.

    ``base_dir`` resolves a relative ``gates.baseline`` path (the
    directory of the spec file, when loaded from disk).
    """
    if not isinstance(doc, Mapping):
        raise SpecError(f"spec must be a table/object, got {type(doc).__name__}")
    _require_keys(doc, _TOP_LEVEL_KEYS, "spec")

    experiment = doc.get("experiment")
    if not isinstance(experiment, Mapping) or "name" not in experiment:
        raise SpecError("spec needs an [experiment] table with a name")
    _require_keys(experiment, _EXPERIMENT_KEYS, "[experiment]")
    name = experiment["name"]
    if not isinstance(name, str) or not name:
        raise SpecError("experiment.name must be a non-empty string")
    title = experiment.get("title", "")
    seed = experiment.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise SpecError("experiment.seed must be an int")

    raw_axes = doc.get("axes")
    if not isinstance(raw_axes, Mapping) or not raw_axes:
        raise SpecError("spec needs a non-empty [axes] table")
    axes: dict[str, tuple] = {}
    for axis, values in raw_axes.items():
        if axis not in AXES:
            raise SpecError(
                f"unknown axis {axis!r}; axes are {', '.join(AXES)}"
            )
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(f"axis {axis}: must be a non-empty list")
        checked = tuple(_check_axis_value(axis, v) for v in values)
        if len(set(checked)) != len(checked):
            raise SpecError(f"axis {axis}: duplicate values in {list(values)}")
        axes[axis] = checked
    for required in ("device", "op", "size", "precision", "approach"):
        if required not in axes:
            raise SpecError(f"axis {required!r} is required")
    axes.setdefault("fault_plan", ("none",))

    raw_policy = dict(doc.get("policy") or {})
    raw_overrides = raw_policy.pop("override", [])
    _require_keys(raw_policy, _POLICY_KEYS, "[policy]")
    policy = CellPolicy(**raw_policy)
    overrides = []
    if not isinstance(raw_overrides, Sequence) or isinstance(raw_overrides, str):
        raise SpecError("[[policy.override]] must be an array of tables")
    for i, entry in enumerate(raw_overrides):
        where = f"policy.override[{i}]"
        if not isinstance(entry, Mapping) or "match" not in entry:
            raise SpecError(f"{where}: needs a match table")
        changes = {k: v for k, v in entry.items() if k != "match"}
        _require_keys(changes, _POLICY_KEYS, where)
        if not changes:
            raise SpecError(f"{where}: overrides nothing")
        policy.replace(changes)  # validate values eagerly
        overrides.append((Constraint.from_mapping(entry["match"], where), changes))

    excludes = tuple(
        Constraint.from_mapping(entry, f"exclude[{i}]")
        for i, entry in enumerate(doc.get("exclude") or [])
    )

    includes = []
    for i, entry in enumerate(doc.get("include") or []):
        where = f"include[{i}]"
        if not isinstance(entry, Mapping):
            raise SpecError(f"{where}: must be a table")
        _require_keys(entry, set(AXES), where)
        point = {"fault_plan": "none", **entry}
        missing = [axis for axis in AXES if axis not in point]
        if missing:
            raise SpecError(f"{where}: missing axis binding(s) {missing}")
        includes.append(
            {axis: _check_axis_value(axis, point[axis]) for axis in AXES}
        )

    gates = doc.get("gates") or {}
    _require_keys(gates, _GATES_KEYS, "[gates]")
    tolerance = float(gates.get("tolerance", 0.10))
    if not 0.0 <= tolerance < 1.0:
        raise SpecError("gates.tolerance must be in [0, 1)")
    baseline = gates.get("baseline")
    if baseline is not None:
        baseline = Path(baseline)
        if base_dir is not None and not baseline.is_absolute():
            baseline = (Path(base_dir) / baseline).resolve()

    return ExperimentSpec(
        name=name,
        title=title,
        seed=seed,
        axes=axes,
        policy=policy,
        overrides=tuple(overrides),
        excludes=excludes,
        includes=tuple(includes),
        tolerance=tolerance,
        baseline=baseline,
    )


def load_spec(path: Path | str) -> ExperimentSpec:
    """Parse a ``.toml`` or ``.json`` spec file.

    TOML needs Python 3.11+ (stdlib ``tomllib``); JSON specs work
    everywhere and carry the identical structure.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecError(f"cannot read spec {path}: {exc}") from exc
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python 3.10
            raise SpecError(
                f"{path}: TOML specs need Python 3.11+ (stdlib tomllib); "
                "use the JSON form on older interpreters"
            ) from exc
        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path}: invalid TOML: {exc}") from exc
    elif path.suffix == ".json":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    else:
        raise SpecError(f"{path}: spec must be .toml or .json")
    return spec_from_dict(doc, base_dir=path.parent)


def _cell_policy(spec: ExperimentSpec, point: Mapping) -> CellPolicy:
    policy = spec.policy
    for constraint, changes in spec.overrides:
        if constraint.matches(point):
            policy = policy.replace(changes)
    return policy


def expand_cells(spec: ExperimentSpec) -> tuple[list[Cell], int]:
    """The deterministic cell plan: ``(cells, pruned)``.

    ``pruned`` counts product combinations dropped by the implicit rule
    that fault plans only apply to the ``runtime`` approach -- reported
    by ``plan`` so a spec never silently loses coverage.
    """
    import itertools

    points: dict[tuple, dict] = {}
    pruned = 0
    for combo in itertools.product(*(spec.axes[axis] for axis in AXES)):
        point = dict(zip(AXES, combo))
        if point["fault_plan"] != "none" and point["approach"] != "runtime":
            pruned += 1
            continue
        if any(c.matches(point) for c in spec.excludes):
            continue
        points[combo] = point
    for point in spec.includes:
        if point["fault_plan"] != "none" and point["approach"] != "runtime":
            raise SpecError(
                f"include {point}: fault plans require the runtime approach"
            )
        points[tuple(point[axis] for axis in AXES)] = dict(point)

    cells = [
        Cell(policy=_cell_policy(spec, point), **point)
        for point in points.values()
    ]
    cells.sort(key=Cell.sort_key)
    return cells, pruned


def plan_fingerprint(spec: ExperimentSpec, cells: Sequence[Cell]) -> str:
    """Content hash of the *expanded* plan (not the spec's surface form).

    Cosmetic spec edits (axis/value reordering, comments) keep the
    fingerprint, so a journaled sweep still resumes after them; anything
    that changes a cell, a policy, or the seed invalidates it.
    """
    payload = {
        "schema": SPEC_SCHEMA,
        "name": spec.name,
        "seed": spec.seed,
        "cells": [
            {**cell.point(), "policy": cell.policy.to_dict()} for cell in cells
        ],
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
