"""Matrix artifact loading, diffing, and direction-aware gating.

The baseline format *is* the matrix artifact: ``diff`` and
``run --strict`` compare one ``matrix.json`` against another, so
refreshing a baseline is just re-running the spec and copying the file
(``scripts/regen_baseline.py`` automates it).

Gauge semantics match the original ``scripts/check_bench_regression.py``
gate (which now routes through this module):

* higher-is-better gauges (throughput) fail when
  ``value < ref * (1 - tolerance)``;
* lower-is-better gauges (model error, failure counts -- classified by
  :func:`~repro.observe.history.gauge_direction`) fail when
  ``value > ref * (1 + tolerance) + ABS_SLACK`` (the additive slack lets
  a near-zero perfect-model error wiggle in its last float bits);
* structural gauges (``chunks``, ``problems``) and cell statuses must
  match exactly -- a sharding or support-matrix change is a diff even
  when throughput survives it;
* a gauge present in the baseline but missing from the current run
  always fails (a cell that stopped producing numbers is a regression,
  not a skip).

New gauges (cells added to the spec) are reported as notes, never
failures -- growing a sweep must not require refreshing its baseline in
the same commit.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Tuple

from ..observe.history import gauge_direction

__all__ = [
    "ABS_SLACK",
    "MATRIX_SCHEMA",
    "Delta",
    "DiffReport",
    "artifact_gauges",
    "compare_gauges",
    "diff_artifacts",
    "load_artifact",
]

#: Bump when the matrix artifact layout changes.
MATRIX_SCHEMA = 1

#: Additive slack for lower-is-better gauges whose baseline is ~0.
ABS_SLACK = 1e-9

#: Per-cell gauges that must match the baseline exactly.
_EXACT = {"chunks", "problems"}


def _direction(key: str) -> str:
    if key in _EXACT:
        return "exact"
    return gauge_direction(key)


def load_artifact(path: Path | str) -> dict:
    """Read and sanity-check a ``matrix.json`` document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read artifact {path}: {exc}") from exc
    except ValueError as exc:
        raise ValueError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != "experiment-matrix":
        raise ValueError(f"{path}: not an experiment matrix artifact")
    if doc.get("schema") != MATRIX_SCHEMA:
        raise ValueError(
            f"{path}: matrix schema {doc.get('schema')!r} != {MATRIX_SCHEMA}"
        )
    return doc


def artifact_gauges(doc: dict) -> Dict[str, dict]:
    """Flatten a matrix into ``{name: {value, direction}}``.

    Gauges come from ``ok`` cells only; every cell additionally
    contributes a ``<id>.status`` pseudo-gauge (direction ``status``)
    so an ok -> failed/unsupported flip is visible even though the
    broken cell emits no numbers.
    """
    gauges: Dict[str, dict] = {}
    for cell in doc.get("cells", []):
        cell_id = cell.get("id", "?")
        gauges[f"{cell_id}.status"] = {
            "value": cell.get("status", "?"),
            "direction": "status",
        }
        if cell.get("status") != "ok":
            continue
        for key, value in (cell.get("gauges") or {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            gauges[f"{cell_id}.{key}"] = {
                "value": float(value),
                "direction": _direction(key),
            }
    return gauges


@dataclasses.dataclass(frozen=True)
class Delta:
    """One gauge compared against its baseline."""

    gauge: str
    value: object
    ref: object
    direction: str
    ok: bool
    detail: str = ""

    @property
    def deviation(self) -> float:
        """Signed relative change (0 for non-numeric / zero baselines)."""
        if (
            isinstance(self.value, (int, float))
            and isinstance(self.ref, (int, float))
            and self.ref
        ):
            return (self.value - self.ref) / abs(self.ref)
        return 0.0


@dataclasses.dataclass
class DiffReport:
    """Full diff of two matrix artifacts."""

    deltas: List[Delta]
    #: Gauges in the current run only (growth; informational).
    new: List[str]
    tolerance: float

    @property
    def failures(self) -> List[Delta]:
        return [d for d in self.deltas if not d.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def lines(self) -> List[str]:
        out = [
            f"REGRESSION {d.gauge}: {d.detail}" for d in self.failures
        ]
        out.extend(
            f"note: new gauge not in baseline: {name}" for name in self.new
        )
        return out


def compare_gauges(
    current: Dict[str, dict], baseline: Dict[str, dict], tolerance: float
) -> Tuple[List[Delta], List[str]]:
    """Direction-aware comparison; returns ``(deltas, new_gauge_names)``."""
    deltas: List[Delta] = []
    for name in sorted(baseline):
        base = baseline[name]
        ref = base["value"]
        direction = base["direction"]
        if name not in current:
            deltas.append(
                Delta(name, None, ref, direction, False, "missing from current run")
            )
            continue
        value = current[name]["value"]
        if direction == "status":
            ok = value == ref
            detail = "" if ok else f"status {value!r} != baseline {ref!r}"
        elif direction == "exact":
            ok = value == ref
            detail = "" if ok else f"{value:g} != baseline {ref:g} (exact match)"
        elif direction == "higher":
            limit = ref * (1.0 - tolerance)
            ok = value >= limit
            detail = "" if ok else (
                f"{value:.4g} < {limit:.4g} "
                f"(baseline {ref:.4g}, -{tolerance:.0%} allowed)"
            )
        else:
            limit = ref * (1.0 + tolerance) + ABS_SLACK
            ok = value <= limit
            detail = "" if ok else (
                f"{value:.4g} > {limit:.4g} "
                f"(baseline {ref:.4g}, +{tolerance:.0%} allowed)"
            )
        deltas.append(Delta(name, value, ref, direction, ok, detail))
    new = sorted(set(current) - set(baseline))
    return deltas, new


def diff_artifacts(current: dict, baseline: dict, tolerance: float) -> DiffReport:
    """Compare two loaded matrix documents."""
    deltas, new = compare_gauges(
        artifact_gauges(current), artifact_gauges(baseline), tolerance
    )
    return DiffReport(deltas=deltas, new=new, tolerance=tolerance)
