"""The five solution approaches the paper compares (Figures 10-12)."""

from .base import Approach, Workload
from .baselines import (
    CpuLapackApproach,
    CublasStreamsApproach,
    HybridBlockedApproach,
)
from .dispatch import Ranking, best_approach, default_approaches, rank_approaches
from .per_block import PerBlockApproach
from .per_thread import PerThreadApproach
from .tiled_approach import TiledQrApproach
from .tuning import TunedLaunch, feasible_thread_counts, tune_block_threads

__all__ = [
    "Approach",
    "Workload",
    "CpuLapackApproach",
    "CublasStreamsApproach",
    "HybridBlockedApproach",
    "Ranking",
    "best_approach",
    "default_approaches",
    "rank_approaches",
    "PerBlockApproach",
    "PerThreadApproach",
    "TiledQrApproach",
    "TunedLaunch",
    "feasible_thread_counts",
    "tune_block_threads",
]
