"""Baseline approaches: MKL CPU, MAGMA-like hybrid, CUBLAS + streams.

Thin adapters wrapping the Section-VI cost models into the common
:class:`~repro.approaches.base.Approach` interface.
"""

from __future__ import annotations

from ..model.cpu_model import CpuModel, CpuSpec, I7_2600
from ..model.hybrid_model import HybridConfig, HybridModel
from ..model.parameters import ModelParameters
from ..model.streams_model import StreamsConfig, StreamsModel
from .base import Approach, Workload

__all__ = ["CpuLapackApproach", "HybridBlockedApproach", "CublasStreamsApproach"]


class CpuLapackApproach(Approach):
    """Intel MKL on the Core i7-2600, one batch slice per core."""

    name = "cpu-mkl"

    def __init__(self, spec: CpuSpec = I7_2600):
        self.model = CpuModel(spec)

    def supports(self, work: Workload) -> bool:
        if work.kind in ("lu", "gauss_jordan") and work.m != work.n:
            return False
        return work.m >= work.n

    def gflops(self, work: Workload) -> float:
        return self.model.gflops(
            work.kind, work.m, work.n, work.batch, work.complex_dtype
        )

    def seconds(self, work: Workload) -> float:
        return self.model.seconds(
            work.kind, work.m, work.n, work.batch, work.complex_dtype
        )


class HybridBlockedApproach(Approach):
    """MAGMA/CULA-style hybrid CPU+GPU blocked factorization."""

    name = "hybrid-blocked"

    def __init__(
        self,
        params: ModelParameters | None = None,
        config: HybridConfig | None = None,
        gpu_start: bool = True,
    ):
        self.model = HybridModel(params or ModelParameters.paper_table_iv(), config)
        self.gpu_start = gpu_start

    def supports(self, work: Workload) -> bool:
        # MAGMA's sgeqrf/sgetrf: real, single problem at a time.
        return work.kind in ("qr", "lu") and not work.complex_dtype and work.m >= work.n

    def gflops(self, work: Workload) -> float:
        return self.model.gflops(
            work.kind, work.m, work.n, batch=work.batch, gpu_start=self.gpu_start
        )

    def seconds(self, work: Workload) -> float:
        return work.batch * self.model.seconds_per_problem(
            work.kind, work.m, work.n, gpu_start=self.gpu_start
        )


class CublasStreamsApproach(Approach):
    """Factorization composed from CUBLAS calls, one stream per problem."""

    name = "cublas-streams"

    def __init__(
        self,
        params: ModelParameters | None = None,
        config: StreamsConfig | None = None,
    ):
        self.model = StreamsModel(params or ModelParameters.paper_table_iv(), config)

    def supports(self, work: Workload) -> bool:
        return work.kind in ("qr", "lu") and not work.complex_dtype and work.m >= work.n

    def gflops(self, work: Workload) -> float:
        return self.model.gflops(work.kind, work.m, work.n, batch=work.batch)

    def seconds(self, work: Workload) -> float:
        per = self.model.seconds_per_problem(work.kind, work.m, work.n)
        return per * work.batch / max(1.0, self.model.config.effective_concurrency)
