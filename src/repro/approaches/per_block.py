"""One-problem-per-block approach (Section V) as an :class:`Approach`.

Replays the exact charge sequence of the device kernels
(:mod:`repro.kernels.device`) against a block engine *without* the
numerics, so Figure-10 sweeps across hundreds of sizes are instant.  A
consistency test asserts this replay matches the device kernels' measured
cycles on real data.
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import QUADRO_6000, DeviceSpec
from ..gpu.simt import BlockEngine, LaunchResult
from ..model.block_config import BlockConfig, block_config
from ..model.cpu_model import CpuModel
from ..model.flops import matrix_bytes
from .base import Approach, Workload

__all__ = ["PerBlockApproach"]


def _column_tile_rows(cfg: BlockConfig, hreg: int, j: int) -> int:
    return max(1, hreg - j // cfg.rdim)


class PerBlockApproach(Approach):
    name = "per-block"

    def __init__(self, device: DeviceSpec = QUADRO_6000, fast_math: bool = True):
        self.device = device
        self.fast_math = fast_math
        self._flops = CpuModel().work_flops

    def supports(self, work: Workload) -> bool:
        if work.kind in ("qr", "least_squares") and work.m < work.n:
            return False
        if work.kind in ("lu", "gauss_jordan") and work.m != work.n:
            return False
        # Shared memory must hold the column and row vectors.
        word = 8 if work.complex_dtype else 4
        return (work.m + work.n + 8) * word <= self.device.shared_mem_per_sm

    # ------------------------------------------------------------------
    def _engine(self, work: Workload, extra_cols: int = 0) -> tuple:
        cfg = block_config(
            work.m, work.n + extra_cols, complex_dtype=work.complex_dtype
        )
        dtype = np.complex64 if work.complex_dtype else np.float32
        engine = BlockEngine(
            self.device,
            threads_per_block=cfg.threads,
            registers_per_thread=cfg.registers_per_thread,
            dtype=dtype,
            fast_math=self.fast_math,
        )
        hreg = -(-work.m // cfg.rdim)
        wreg = -(-(work.n + extra_cols) // cfg.rdim)
        engine.allocate_shared(hreg * cfg.rdim)
        engine.allocate_shared(wreg * cfg.rdim)
        engine.allocate_shared(4)
        return engine, cfg, hreg

    def _charge_reduction(self, engine: BlockEngine, cfg: BlockConfig, cost: int):
        engine.charge_shared(cfg.rdim + 1)
        engine.charge_flops(cfg.rdim * cost, useful_flops=0)

    def _charge_qr(
        self, engine: BlockEngine, cfg: BlockConfig, hreg: int, work: Workload,
        ncols: int,
    ) -> None:
        m = work.m
        cost = 2 if work.complex_dtype else 1
        steps = ncols if m > ncols else ncols - 1
        for j in range(steps):
            N = _column_tile_rows(cfg, hreg, j)
            engine.charge_flops(N * cost, useful_flops=0)
            self._charge_reduction(engine, cfg, cost)
            engine.charge_sqrt(1, useful_flops=0)
            engine.charge_div(2, useful_flops=0)
            engine.charge_flops(2 * cost, useful_flops=0)
            engine.charge_shared(2)
            engine.charge_flops(N * cost, useful_flops=0)
            engine.charge_shared(N, writes=True)
            engine.sync()
            engine.charge_shared(N)
            engine.charge_flops(N * N * cost, useful_flops=0)
            engine.sync()
            self._charge_reduction(engine, cfg, cost)
            engine.sync()
            engine.charge_shared(N)
            engine.charge_flops(N * N * cost, useful_flops=0)
            engine.sync()

    def _charge_lu(
        self, engine: BlockEngine, cfg: BlockConfig, hreg: int, work: Workload
    ) -> None:
        cost = 2 if work.complex_dtype else 1
        for j in range(work.n - 1):
            N = _column_tile_rows(cfg, hreg, j)
            engine.charge_div(1, useful_flops=0)
            engine.charge_shared(2)
            engine.sync()
            engine.charge_flops(N * cost, useful_flops=0)
            engine.charge_shared(2 * N, writes=True)
            engine.sync()
            engine.charge_shared(2 * N)
            engine.charge_flops(N * N * cost, useful_flops=0)
            engine.sync()

    def _charge_gj(
        self, engine: BlockEngine, cfg: BlockConfig, hreg: int, work: Workload
    ) -> None:
        cost = 2 if work.complex_dtype else 1
        N = hreg
        for _ in range(work.n):
            engine.charge_div(1, useful_flops=0)
            engine.charge_shared(2)
            engine.sync()
            engine.charge_flops(N * cost, useful_flops=0)
            engine.charge_shared(2 * N, writes=True)
            engine.sync()
            engine.charge_shared(2 * N)
            engine.charge_flops(N * N * cost, useful_flops=0)
            engine.sync()

    def _charge_back_substitution(
        self, engine: BlockEngine, cfg: BlockConfig, hreg: int, work: Workload
    ) -> None:
        cost = 2 if work.complex_dtype else 1
        for i in range(work.n):
            N = _column_tile_rows(cfg, hreg, i)
            engine.charge_div(1, useful_flops=0)
            engine.charge_shared(2)
            engine.charge_flops(N * cost, useful_flops=0)
            engine.sync()

    # ------------------------------------------------------------------
    def launch(self, work: Workload) -> LaunchResult:
        """Charge-replay the workload; return the per-block timing."""
        word = 8 if work.complex_dtype else 4
        in_bytes = matrix_bytes(work.m, work.n, work.complex_dtype)
        if work.kind == "qr":
            engine, cfg, hreg = self._engine(work)
            engine.charge_global(in_bytes, kind="copy")
            self._charge_qr(engine, cfg, hreg, work, work.n)
            engine.charge_global(in_bytes, kind="copy")
        elif work.kind == "lu":
            engine, cfg, hreg = self._engine(work)
            engine.charge_global(in_bytes, kind="copy")
            self._charge_lu(engine, cfg, hreg, work)
            engine.charge_global(in_bytes, kind="copy")
        elif work.kind == "gauss_jordan":
            engine, cfg, hreg = self._engine(work, extra_cols=1)
            engine.charge_global(in_bytes + work.n * word, kind="copy")
            self._charge_gj(engine, cfg, hreg, work)
            engine.charge_global(work.n * word, kind="copy")
        elif work.kind == "least_squares":
            engine, cfg, hreg = self._engine(work, extra_cols=1)
            engine.charge_global(in_bytes + work.m * word, kind="copy")
            self._charge_qr(engine, cfg, hreg, work, work.n)
            self._charge_back_substitution(engine, cfg, hreg, work)
            engine.charge_global(work.n * word, kind="copy")
        else:  # pragma: no cover - Workload validates kinds
            raise ValueError(f"unknown factorization kind: {work.kind!r}")
        flops = self._flops(work.kind, work.m, work.n, work.complex_dtype)
        return engine.result(flops_per_block=flops)

    def gflops(self, work: Workload) -> float:
        return self.launch(work).throughput_gflops(work.batch)
