"""Approach selection: "the overall design space is not flat".

Figure 10's conclusion as an API: given a workload, rank every applicable
approach by modelled throughput and pick the winner.  The paper's
qualitative rules fall out of the ranking:

* very small problems (n < ~16, huge batches) -> one per thread,
* small-to-medium batched problems -> one per block,
* single large problems -> the hybrid CPU+GPU blocked library,
* and the CPU wins when the batch is too small to feed the GPU.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from .base import Approach, Workload
from .baselines import CpuLapackApproach, CublasStreamsApproach, HybridBlockedApproach
from .per_block import PerBlockApproach
from .per_thread import PerThreadApproach

__all__ = ["Ranking", "default_approaches", "rank_approaches", "best_approach"]


@dataclasses.dataclass(frozen=True)
class Ranking:
    """One approach's evaluation for a workload."""

    approach: Approach
    gflops: float

    @property
    def name(self) -> str:
        return self.approach.name


def default_approaches() -> list[Approach]:
    """The five contenders of Figures 10-12."""
    return [
        PerThreadApproach(),
        PerBlockApproach(),
        HybridBlockedApproach(),
        CublasStreamsApproach(),
        CpuLapackApproach(),
    ]


def rank_approaches(
    work: Workload, approaches: Sequence[Approach] | None = None
) -> list[Ranking]:
    """All applicable approaches, fastest first."""
    candidates = approaches if approaches is not None else default_approaches()
    ranked = [
        Ranking(approach=a, gflops=a.gflops(work))
        for a in candidates
        if a.supports(work)
    ]
    if not ranked:
        raise ValueError(f"no approach supports workload {work}")
    return sorted(ranked, key=lambda r: r.gflops, reverse=True)


def best_approach(
    work: Workload, approaches: Sequence[Approach] | None = None
) -> Ranking:
    """The Figure-10 winner for this workload."""
    return rank_approaches(work, approaches)[0]
