"""Approach selection: "the overall design space is not flat".

Figure 10's conclusion as an API: given a workload, rank every applicable
approach by modelled throughput and pick the winner.  The paper's
qualitative rules fall out of the ranking:

* very small problems (n < ~16, huge batches) -> one per thread,
* small-to-medium batched problems -> one per block,
* single large problems -> the hybrid CPU+GPU blocked library,
* and the CPU wins when the batch is too small to feed the GPU.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..observe.log import log_event
from ..observe.metrics import counter_inc
from ..observe.tracer import current_tracer
from .base import Approach, Workload
from .baselines import CpuLapackApproach, CublasStreamsApproach, HybridBlockedApproach
from .per_block import PerBlockApproach
from .per_thread import PerThreadApproach

__all__ = ["Ranking", "default_approaches", "rank_approaches", "best_approach"]


@dataclasses.dataclass(frozen=True)
class Ranking:
    """One approach's evaluation for a workload."""

    approach: Approach
    gflops: float

    @property
    def name(self) -> str:
        return self.approach.name


def default_approaches() -> list[Approach]:
    """The five contenders of Figures 10-12."""
    return [
        PerThreadApproach(),
        PerBlockApproach(),
        HybridBlockedApproach(),
        CublasStreamsApproach(),
        CpuLapackApproach(),
    ]


def _from_cache(entry, candidates: Sequence[Approach]) -> list[Ranking] | None:
    """Rebuild a ranking from cached ``(name, gflops)`` pairs.

    Every cached name must match a candidate; otherwise (a changed
    approach roster, a stale file) the entry is unusable and the caller
    re-ranks from scratch.
    """
    by_name = {a.name: a for a in candidates}
    ranked = []
    for name, gflops in entry:
        approach = by_name.get(name)
        if approach is None:
            return None
        ranked.append(Ranking(approach=approach, gflops=gflops))
    return ranked or None


def rank_approaches(
    work: Workload,
    approaches: Sequence[Approach] | None = None,
    cache=None,
) -> list[Ranking]:
    """All applicable approaches, fastest first.

    Throughput ties are broken by approach name so the ranking -- and any
    trace events derived from it -- is deterministic regardless of the
    order the candidates were supplied in.

    Pass a :class:`repro.runtime.DispatchCache` as ``cache`` to memoize
    the decision per ``(op, m, n, batch, complex, device)`` key: a hit
    skips the modelled-throughput evaluation of every candidate and
    emits a ``dispatch.cache_hit`` instant instead of the full ranking
    span.
    """
    tracer = current_tracer()
    candidates = approaches if approaches is not None else default_approaches()
    if cache is not None:
        entry = cache.lookup(work)
        if entry is not None:
            ranked = _from_cache(entry, candidates)
            if ranked is not None:
                counter_inc(
                    "repro_dispatch_rankings_total",
                    op=work.kind,
                    outcome="cache-hit",
                )
                counter_inc(
                    "repro_dispatch_winner_total",
                    op=work.kind,
                    approach=ranked[0].name,
                )
                if tracer is not None:
                    tracer.counters.add("dispatch.cache_hits")
                    tracer.instant(
                        "dispatch.cache_hit", "dispatch", kind=work.kind,
                        m=work.m, n=work.n, batch=work.batch,
                        winner=ranked[0].name,
                    )
                log_event(
                    "dispatch.rank",
                    kind=work.kind,
                    m=work.m,
                    n=work.n,
                    batch=work.batch,
                    winner=ranked[0].name,
                    outcome="cache-hit",
                )
                return ranked
    ranked = [
        Ranking(approach=a, gflops=a.gflops(work))
        for a in candidates
        if a.supports(work)
    ]
    if not ranked:
        raise ValueError(f"no approach supports workload {work}")
    ranked.sort(key=lambda r: (-r.gflops, r.name))
    counter_inc(
        "repro_dispatch_rankings_total", op=work.kind, outcome="computed"
    )
    counter_inc(
        "repro_dispatch_winner_total", op=work.kind, approach=ranked[0].name
    )
    if tracer is not None:
        with tracer.span(
            "dispatch.rank", "dispatch", kind=work.kind, m=work.m, n=work.n,
            batch=work.batch, complex=work.complex_dtype,
        ):
            for position, entry in enumerate(ranked):
                tracer.instant(
                    "dispatch.candidate", "dispatch", approach=entry.name,
                    gflops=entry.gflops, rank=position,
                )
            tracer.counters.add("dispatch.rankings")
            tracer.instant(
                "dispatch.winner", "dispatch", approach=ranked[0].name,
                gflops=ranked[0].gflops,
            )
    if cache is not None:
        cache.store(work, [(r.name, r.gflops) for r in ranked])
    log_event(
        "dispatch.rank",
        kind=work.kind,
        m=work.m,
        n=work.n,
        batch=work.batch,
        winner=ranked[0].name,
        gflops=ranked[0].gflops,
        outcome="computed",
    )
    return ranked


def best_approach(
    work: Workload,
    approaches: Sequence[Approach] | None = None,
    cache=None,
) -> Ranking:
    """The Figure-10 winner for this workload."""
    return rank_approaches(work, approaches, cache=cache)[0]
