"""One-problem-per-thread approach (Section IV) as an :class:`Approach`.

Timing-only evaluation: the cost structure is identical to
:func:`repro.kernels.device.per_thread_factor` (bandwidth roofline with
spill amplification) but skips the numerics, so design-space sweeps over
thousands of sizes stay cheap.  A consistency test pins the two paths
together.
"""

from __future__ import annotations

from ..gpu.device import QUADRO_6000, DeviceSpec
from ..gpu.memory_system import MemorySystem
from ..gpu.occupancy import occupancy
from ..gpu.registers import RegisterAllocation, registers_for_matrix
from ..kernels.device.per_thread import spill_touches
from ..model.cpu_model import CpuModel
from ..model.flops import matrix_bytes
from .base import Approach, Workload

__all__ = ["PerThreadApproach"]


class PerThreadApproach(Approach):
    name = "per-thread"

    def __init__(self, device: DeviceSpec = QUADRO_6000, threads_per_block: int = 256):
        self.device = device
        self.threads_per_block = threads_per_block
        self._memory = MemorySystem(device)
        self._flops = CpuModel().work_flops

    def supports(self, work: Workload) -> bool:
        # Serial in-thread code exists for the factorizations; solves
        # with attached right-hand sides work the same way.  Problems so
        # large that even spilled state exceeds local memory are out.
        return work.m == work.n and work.n <= 128

    def registers_needed(self, work: Workload) -> RegisterAllocation:
        return RegisterAllocation(
            self.device,
            registers_for_matrix(work.m, work.n, complex_dtype=work.complex_dtype),
        )

    def seconds(self, work: Workload) -> float:
        regs = self.registers_needed(work)
        base = 2 * matrix_bytes(work.m, work.n, work.complex_dtype)
        spill = (
            regs.spill_fraction
            * spill_touches(work.n)
            * matrix_bytes(work.m, work.n, work.complex_dtype)
        )
        bw_seconds = work.batch * (base + spill) / self._memory.stream_bandwidth("copy")

        occ = occupancy(
            self.device,
            self.threads_per_block,
            min(regs.granted(), self.device.max_registers_per_thread),
        )
        efficiency = min(1.0, occ.occupancy_fraction * 2.0)
        flops = self._flops(work.kind, work.m, work.n, work.complex_dtype)
        compute_seconds = work.batch * flops / (
            self.device.peak_sp_flops * efficiency
        )
        return max(bw_seconds, compute_seconds)

    def gflops(self, work: Workload) -> float:
        flops = self._flops(work.kind, work.m, work.n, work.complex_dtype)
        return flops * work.batch / self.seconds(work) / 1e9
