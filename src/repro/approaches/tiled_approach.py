"""Tiled QR as an :class:`Approach` (the Section VII fallback).

Problems too tall for one block's register file go through the
sequential tiled QR; this adapter exposes its cost model behind the
common interface so the dispatcher and the real-time analysis can choose
it for RT_STAP-sized workloads.
"""

from __future__ import annotations

from ..gpu.device import QUADRO_6000, DeviceSpec
from ..gpu.registers import RegisterAllocation
from ..model.block_config import block_config
from ..model.cpu_model import CpuModel
from .base import Approach, Workload

__all__ = ["TiledQrApproach"]


class TiledQrApproach(Approach):
    name = "tiled-qr"

    def __init__(self, device: DeviceSpec = QUADRO_6000, fast_math: bool = True):
        self.device = device
        self.fast_math = fast_math
        self._flops = CpuModel().work_flops

    def supports(self, work: Workload) -> bool:
        return work.kind == "qr" and work.m >= work.n

    def spills_single_block(self, work: Workload) -> bool:
        """Whether the untiled per-block kernel would spill registers."""
        cfg = block_config(work.m, work.n, complex_dtype=work.complex_dtype)
        return RegisterAllocation(self.device, cfg.registers_per_thread).spills

    def seconds(self, work: Workload) -> float:
        from ..tiled.tiled_qr import tiled_qr_timing

        _, _, seconds = tiled_qr_timing(
            work.m,
            work.n,
            work.batch,
            complex_dtype=work.complex_dtype,
            device=self.device,
            fast_math=self.fast_math,
        )
        return seconds

    def gflops(self, work: Workload) -> float:
        flops = self._flops(work.kind, work.m, work.n, work.complex_dtype)
        return flops * work.batch / self.seconds(work) / 1e9
