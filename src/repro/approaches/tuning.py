"""Launch-shape autotuning for the one-problem-per-block approach.

The paper hardcodes the thread-count rule (64 threads below 80 columns,
256 from there) and notes the constraint that "the number of threads must
be a perfect square".  This tuner makes the choice empirical: it replays
the kernel's charge sequence at every feasible square thread count and
returns the fastest.  An ablation benchmark confirms the paper's rule is
within a few percent of this tuned optimum across its size range --
i.e. the hardcoded rule was a good one.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from ..gpu.device import QUADRO_6000, DeviceSpec
from ..gpu.simt import LaunchResult
from ..model.block_config import BlockConfig
from .base import Workload
from .per_block import PerBlockApproach

__all__ = ["TunedLaunch", "feasible_thread_counts", "tune_block_threads"]

#: Square thread counts a GF100 block can use.
SQUARE_THREAD_COUNTS = (16, 64, 256, 1024)


@dataclasses.dataclass(frozen=True)
class TunedLaunch:
    """Result of the launch-shape sweep."""

    work: Workload
    threads: int
    launch: LaunchResult
    gflops: float
    #: Every candidate's throughput, for ablation reporting.
    candidates: dict[int, float]

    @property
    def config(self) -> BlockConfig:
        return BlockConfig(
            m=self.work.m,
            n=self.work.n,
            threads=self.threads,
            complex_dtype=self.work.complex_dtype,
        )


def feasible_thread_counts(
    work: Workload, device: DeviceSpec = QUADRO_6000
) -> list[int]:
    """Square thread counts that can launch this workload at all."""
    out = []
    for threads in SQUARE_THREAD_COUNTS:
        if threads > device.max_threads_per_block:
            continue
        rdim = math.isqrt(threads)
        # A thread grid wider than the matrix wastes whole columns of
        # threads; the kernels require rdim <= max(m, n) to make progress.
        if rdim > max(work.m, work.n):
            continue
        out.append(threads)
    return out


class _FixedConfigPerBlock(PerBlockApproach):
    """Per-block replay pinned to an explicit thread count."""

    def __init__(self, threads: int, device: DeviceSpec, fast_math: bool = True):
        super().__init__(device=device, fast_math=fast_math)
        self._threads = threads

    def _engine(self, work: Workload, extra_cols: int = 0):
        import numpy as np

        from ..gpu.simt import BlockEngine

        cfg = BlockConfig(
            m=work.m,
            n=work.n + extra_cols,
            threads=self._threads,
            complex_dtype=work.complex_dtype,
        )
        dtype = np.complex64 if work.complex_dtype else np.float32
        engine = BlockEngine(
            self.device,
            threads_per_block=cfg.threads,
            registers_per_thread=cfg.registers_per_thread,
            dtype=dtype,
            fast_math=self.fast_math,
        )
        hreg = -(-work.m // cfg.rdim)
        wreg = -(-(work.n + extra_cols) // cfg.rdim)
        engine.allocate_shared(hreg * cfg.rdim)  # noqa: RPR004 -- occupancy probe; no kernel body runs, nothing to charge
        engine.allocate_shared(wreg * cfg.rdim)  # noqa: RPR004 -- occupancy probe; no kernel body runs, nothing to charge
        engine.allocate_shared(4)  # noqa: RPR004 -- occupancy probe; no kernel body runs, nothing to charge
        return engine, cfg, hreg


def tune_block_threads(
    work: Workload,
    device: DeviceSpec = QUADRO_6000,
    candidates: Sequence[int] | None = None,
    fast_math: bool = True,
) -> TunedLaunch:
    """Sweep square thread counts and return the fastest launch shape."""
    cands = list(candidates) if candidates is not None else feasible_thread_counts(
        work, device
    )
    if not cands:
        raise ValueError(f"no feasible thread count for workload {work}")
    results: dict[int, tuple[LaunchResult, float]] = {}
    for threads in cands:
        replay = _FixedConfigPerBlock(threads, device, fast_math)
        try:
            launch = replay.launch(work)
        except Exception:
            continue  # e.g. shared memory overflow at this shape
        results[threads] = (launch, launch.throughput_gflops(work.batch))
    if not results:
        raise ValueError(f"every candidate shape failed for workload {work}")
    best = max(results, key=lambda t: results[t][1])
    return TunedLaunch(
        work=work,
        threads=best,
        launch=results[best][0],
        gflops=results[best][1],
        candidates={t: g for t, (_, g) in results.items()},
    )
