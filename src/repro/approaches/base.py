"""Common interface for the five solution approaches the paper compares.

An :class:`Approach` answers two questions for a batched factorization
workload ``(kind, m, n, batch, dtype)``:

* :meth:`Approach.gflops` -- the aggregate throughput its cost model (or
  engine) attributes to the workload, and
* :meth:`Approach.supports` -- whether the approach applies at all
  (e.g. one-problem-per-thread needs the matrix to be register-sized).

The five implementations are the axes of Figures 10-12:
per-thread, per-block, hybrid CPU+GPU blocked (MAGMA-like), CUBLAS +
streams, and the multicore-CPU MKL baseline.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Literal

__all__ = ["Approach", "Workload"]

Kind = Literal["qr", "lu", "gauss_jordan", "least_squares"]


@dataclasses.dataclass(frozen=True)
class Workload:
    """A batched-factorization job description."""

    kind: Kind
    m: int
    n: int
    batch: int
    complex_dtype: bool = False

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError("matrix dimensions must be positive")
        if self.batch < 1:
            raise ValueError("batch must be positive")
        if self.kind not in ("qr", "lu", "gauss_jordan", "least_squares"):
            raise ValueError(f"unknown factorization kind: {self.kind!r}")

    @classmethod
    def square(cls, kind: Kind, n: int, batch: int, complex_dtype: bool = False):
        return cls(kind=kind, m=n, n=n, batch=batch, complex_dtype=complex_dtype)


class Approach(abc.ABC):
    """One way of mapping the workload onto the machine."""

    #: Short identifier used in reports and the dispatcher.
    name: str = "abstract"

    @abc.abstractmethod
    def supports(self, work: Workload) -> bool:
        """Whether this approach can run the workload at all."""

    @abc.abstractmethod
    def gflops(self, work: Workload) -> float:
        """Aggregate GFLOP/s over the whole batch."""

    def seconds(self, work: Workload) -> float:
        """Wall time implied by :meth:`gflops` and the FLOP convention."""
        from ..model.cpu_model import CpuModel  # FLOP accounting helper

        flops = CpuModel().work_flops(work.kind, work.m, work.n, work.complex_dtype)
        rate = self.gflops(work) * 1e9
        if rate <= 0:
            raise ArithmeticError(f"{self.name} reported non-positive throughput")
        return flops * work.batch / rate
