"""Tiled QR for matrices too tall for one thread block (Section VII)."""

from .tile_kernels import TileFactor, geqrt, tsqrt
from .tiled_qr import TiledQrResult, choose_tile_rows, tiled_qr, tiled_qr_timing

__all__ = [
    "TileFactor",
    "geqrt",
    "tsqrt",
    "TiledQrResult",
    "choose_tile_rows",
    "tiled_qr_timing",
    "tiled_qr",
]
