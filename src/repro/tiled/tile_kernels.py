"""Tile kernels for the sequential tiled QR (Section VII).

Problems too tall for one thread block's register file (the RT_STAP
240 x 66 case) are factored PLASMA-style: the top tile is QR-factored
(GEQRT), then each further row tile is *coupled* against the current R
(TSQRT -- the QR of an upper triangle stacked on a dense tile).  Both
kernels are expressed with the batched Householder sweep, so numerics
stay identical to the rest of the library; their cycle cost comes from
the per-block charge replay at the stacked tile's shape.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ShapeError
from ..kernels.batched.qr import _householder_sweep

__all__ = ["TileFactor", "geqrt", "tsqrt"]


@dataclasses.dataclass(frozen=True)
class TileFactor:
    """Result of one tile kernel: the updated R and the reflectors."""

    r: np.ndarray  # (batch, n, n) upper triangular
    v: np.ndarray  # (batch, rows, n) packed reflectors (below-R part)
    taus: np.ndarray
    #: Q^H applied to any carried right-hand-side columns.
    carried: np.ndarray | None = None


def _sweep(stacked: np.ndarray, ncols: int, carried, fast_math: bool):
    if carried is not None:
        c = np.asarray(carried, dtype=stacked.dtype)
        if c.ndim == 2:
            c = c[..., None]
        if c.shape[:2] != stacked.shape[:2]:
            raise ShapeError(
                f"carried RHS shape {c.shape} does not match tile {stacked.shape}"
            )
        stacked = np.concatenate([stacked, c], axis=2)
    swept, taus = _householder_sweep(stacked.copy(), ncols, fast_math)
    carried_out = swept[:, :, ncols:] if carried is not None else None
    return swept[:, :, :ncols], taus, carried_out


def geqrt(
    tile: np.ndarray, carried: np.ndarray | None = None, fast_math: bool = True
) -> TileFactor:
    """QR-factor the top tile: (batch, mb, n) with mb >= n."""
    tile = np.asarray(tile)
    if tile.ndim == 2:
        tile = tile[None]
    if tile.ndim != 3 or tile.shape[1] < tile.shape[2]:
        raise ShapeError(f"GEQRT expects tall (batch, mb, n) tiles, got {tile.shape}")
    n = tile.shape[2]
    swept, taus, carried_out = _sweep(tile, n, carried, fast_math)
    r = np.triu(swept[:, :n, :])
    v = swept.copy()
    return TileFactor(r=r, v=v, taus=taus, carried=carried_out)


def tsqrt(
    r: np.ndarray,
    tile: np.ndarray,
    carried: np.ndarray | None = None,
    fast_math: bool = True,
) -> TileFactor:
    """Couple a new row tile into R: QR of ``[R; tile]`` stacked.

    ``r``: (batch, n, n) upper triangular from the previous stage;
    ``tile``: (batch, mb, n).  Returns the updated R and the reflectors
    of the stacked factorization.
    """
    r = np.asarray(r)
    tile = np.asarray(tile)
    if r.ndim == 2:
        r = r[None]
    if tile.ndim == 2:
        tile = tile[None]
    if r.shape[1] != r.shape[2]:
        raise ShapeError(f"TSQRT expects square R, got {r.shape}")
    if tile.shape[2] != r.shape[2] or tile.shape[0] != r.shape[0]:
        raise ShapeError(
            f"tile shape {tile.shape} does not match R {r.shape}"
        )
    n = r.shape[2]
    stacked = np.concatenate([r, tile], axis=1)
    swept, taus, carried_out = _sweep(stacked, n, carried, fast_math)
    return TileFactor(
        r=np.triu(swept[:, :n, :]), v=swept, taus=taus, carried=carried_out
    )
