"""Sequential tiled QR for problems too tall for one block (Section VII).

"The larger size does not fit in a single thread block so we employ a
sequential tiled QR factorization algorithm similar to the approach in
the PLASMA multicore linear algebra library."

The matrix is cut into row tiles of ``tile_rows`` rows; GEQRT factors the
top tile and each TSQRT stage couples the next tile into the running R.
Right-hand sides ride along through every stage, so least-squares (the
STAP weight solve) costs nothing extra.  Each stage launches as a
one-problem-per-block kernel at the stacked tile's shape, and the stage
timings are summed -- including the register-spill penalty the paper
observes for 240 x 66 ("some of the register file space is being
wasted").
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..approaches.base import Workload
from ..approaches.per_block import PerBlockApproach
from ..errors import ShapeError
from ..gpu.device import QUADRO_6000, DeviceSpec
from ..gpu.simt import LaunchResult
from ..model.flops import qr_flops, qr_flops_complex
from .tile_kernels import geqrt, tsqrt

__all__ = ["TiledQrResult", "tiled_qr", "tiled_qr_timing", "choose_tile_rows"]


def _stage_shapes(m: int, n: int, tile_rows: int) -> list[tuple[int, int]]:
    shapes = [(min(tile_rows, m), n)]
    row = min(tile_rows, m)
    while row < m:
        rows = min(tile_rows, m - row)
        shapes.append((n + rows, n))
        row += rows
    return shapes


def choose_tile_rows(
    m: int,
    n: int,
    complex_dtype: bool,
    device: DeviceSpec,
    batch: int = 128,
) -> int:
    """Autotune the row-tile height with the per-block charge replay.

    Taller tiles mean fewer stages (less redundant coupling work) but
    more register spilling per stage; the sweet spot moves with the
    matrix shape, so every candidate height is priced with the same cost
    engine the stages will actually run on.  The paper notes the 240x66
    case "does not fit well in our block sizes so some of the register
    file space is being wasted" -- the tuner minimizes, but cannot
    eliminate, that waste.
    """
    if m <= 0 or n <= 0:
        raise ShapeError("matrix dimensions must be positive")
    if m <= n:
        return m
    replay = PerBlockApproach(device=device)
    best_rows, best_time = m, float("inf")
    step = 16  # 256-thread blocks: tile heights in whole row panels
    candidates = sorted({min(m, h) for h in range(max(n, step), m + step, step)})
    for tile_rows in candidates:
        total = 0.0
        for rows, cols in _stage_shapes(m, n, tile_rows):
            launch = replay.launch(Workload("qr", rows, cols, batch, complex_dtype))
            resident = launch.occupancy.blocks_per_chip
            total += -(-batch // resident) * launch.seconds_per_block
        if total < best_time:
            best_rows, best_time = tile_rows, total
    return best_rows


@dataclasses.dataclass(frozen=True)
class TiledQrResult:
    """R factor, per-stage launches, and aggregate timing."""

    r: np.ndarray
    carried: np.ndarray | None
    stage_shapes: tuple[tuple[int, int], ...]
    launches: tuple[LaunchResult, ...]
    batch: int
    flops_per_problem: float
    device: DeviceSpec

    @property
    def seconds(self) -> float:
        """Wall time for the whole batch: stages run back to back, each
        processing the batch in resident-block waves."""
        total = 0.0
        for launch in self.launches:
            resident = launch.occupancy.blocks_per_chip
            waves = -(-self.batch // resident)
            total += waves * launch.seconds_per_block
        return total

    @property
    def gflops(self) -> float:
        return self.flops_per_problem * self.batch / self.seconds / 1e9


def tiled_qr(
    a: np.ndarray,
    b: np.ndarray | None = None,
    tile_rows: int | None = None,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
) -> TiledQrResult:
    """Tiled QR of a tall batch, with optional carried right-hand sides.

    Returns the n x n R factor and, if ``b`` was given, ``Q^H b``'s top
    n rows (ready for a triangular solve).
    """
    a = np.asarray(a)
    if a.ndim == 2:
        a = a[None]
    if a.ndim != 3 or a.shape[1] < a.shape[2]:
        raise ShapeError(f"tiled QR expects tall (batch, m, n) input, got {a.shape}")
    batch, m, n = a.shape
    complex_dtype = np.iscomplexobj(a)
    if tile_rows is None:
        tile_rows = choose_tile_rows(m, n, complex_dtype, device)
    if tile_rows < n:
        raise ShapeError(f"tile_rows ({tile_rows}) must be at least n ({n})")

    b_arr = None
    if b is not None:
        b_arr = np.asarray(b, dtype=a.dtype)
        if b_arr.ndim == 2:
            b_arr = b_arr[..., None]
        if b_arr.shape[:2] != (batch, m):
            raise ShapeError(
                f"rhs shape {np.asarray(b).shape} does not match problems {a.shape}"
            )

    replay = PerBlockApproach(device=device, fast_math=fast_math)
    launches: list[LaunchResult] = []
    shapes: list[tuple[int, int]] = []

    # Stage 0: GEQRT on the top tile.
    top = min(tile_rows, m)
    carried = b_arr[:, :top] if b_arr is not None else None
    stage = geqrt(a[:, :top], carried=carried, fast_math=fast_math)
    shapes.append((top, n))
    launches.append(replay.launch(Workload("qr", top, n, batch, complex_dtype)))

    r = stage.r[:, :n, :]
    carried_top = stage.carried[:, :n] if stage.carried is not None else None

    # Coupling stages: TSQRT of [R; next tile].
    row = top
    while row < m:
        rows = min(tile_rows, m - row)
        tile = a[:, row : row + rows]
        carried_stack = None
        if b_arr is not None:
            carried_stack = np.concatenate(
                [carried_top, b_arr[:, row : row + rows]], axis=1
            )
        stage = tsqrt(r, tile, carried=carried_stack, fast_math=fast_math)
        shapes.append((n + rows, n))
        launches.append(
            replay.launch(Workload("qr", n + rows, n, batch, complex_dtype))
        )
        r = stage.r
        if stage.carried is not None:
            carried_top = stage.carried[:, :n]
        row += rows

    flops = qr_flops_complex(m, n) if complex_dtype else qr_flops(m, n)
    return TiledQrResult(
        r=r,
        carried=carried_top,
        stage_shapes=tuple(shapes),
        launches=tuple(launches),
        batch=batch,
        flops_per_problem=flops,
        device=device,
    )


def tiled_qr_timing(
    m: int,
    n: int,
    batch: int,
    complex_dtype: bool = False,
    tile_rows: int | None = None,
    device: DeviceSpec = QUADRO_6000,
    fast_math: bool = True,
) -> tuple[tuple[tuple[int, int], ...], tuple[LaunchResult, ...], float]:
    """Timing-only tiled QR: stage shapes, launches, and wall seconds.

    The numerics-free twin of :func:`tiled_qr`, for approach sweeps and
    real-time budgeting where only the cost matters.
    """
    if m < n:
        raise ShapeError(f"tiled QR expects m >= n, got {m}x{n}")
    if tile_rows is None:
        tile_rows = choose_tile_rows(m, n, complex_dtype, device, batch)
    if tile_rows < n:
        raise ShapeError(f"tile_rows ({tile_rows}) must be at least n ({n})")
    replay = PerBlockApproach(device=device, fast_math=fast_math)
    shapes = tuple(_stage_shapes(m, n, tile_rows))
    launches = tuple(
        replay.launch(Workload("qr", rows, cols, batch, complex_dtype))
        for rows, cols in shapes
    )
    seconds = 0.0
    for launch in launches:
        resident = launch.occupancy.blocks_per_chip
        seconds += -(-batch // resident) * launch.seconds_per_block
    return shapes, launches, seconds
