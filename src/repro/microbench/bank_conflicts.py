"""Bank-conflict microbenchmark (supporting the shared-memory model).

Not one of the paper's figures, but the mechanism behind its layout
choices: GF100 shared memory has 32 banks, and a warp access is replayed
once per extra word mapped to the same bank.  This benchmark measures the
effective shared bandwidth at word strides 1..32, producing the classic
sawtooth (powers of two are the worst; odd strides are conflict-free) --
the reason the 2D-cyclic kernels pad/stride their shared vectors the way
they do.
"""

from __future__ import annotations

import dataclasses

from ..gpu.device import DeviceSpec
from ..gpu.shared_memory import SharedMemory

__all__ = ["BankConflictSweep", "sweep_bank_conflicts"]


@dataclasses.dataclass(frozen=True)
class BankConflictSweep:
    device: DeviceSpec
    strides: tuple[int, ...]
    degrees: tuple[int, ...]
    #: Effective per-SM bandwidth at each stride, bytes/second.
    bandwidths: tuple[float, ...]

    def series(self) -> list[tuple[int, int, float]]:
        return list(zip(self.strides, self.degrees, self.bandwidths))

    def worst_stride(self) -> int:
        return self.strides[self.degrees.index(max(self.degrees))]


def sweep_bank_conflicts(
    device: DeviceSpec, strides: range | tuple = range(1, 33)
) -> BankConflictSweep:
    """Measure conflict degree and effective bandwidth per word stride."""
    mem = SharedMemory(device, words=device.shared_banks * 64)
    degrees, bandwidths = [], []
    lanes = device.warp_size
    for stride in strides:
        addrs = [(lane * stride) % mem.words for lane in range(lanes)]
        degree = mem.conflict_degree(addrs)
        # One warp access moves warp_size words in `degree` bank passes.
        bytes_per_pass = lanes * 4 / degree
        bandwidths.append(bytes_per_pass * device.shared_clock_hz)
        degrees.append(degree)
    return BankConflictSweep(
        device=device,
        strides=tuple(strides),
        degrees=tuple(degrees),
        bandwidths=tuple(bandwidths),
    )
