"""Global-memory latency microbenchmark (Figure 1 / Table III).

Pointer chasing through global memory at strides from one word to tens of
millions of words.  The chase is *simulated* against the composed memory
hierarchy (L1 -> L2 -> DRAM rows -> TLB), so the familiar staircase --
cache-line reuse at small strides, row-buffer hits, row misses, and
finally TLB misses -- emerges from the state machines rather than being
painted in.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..gpu.device import DeviceSpec
from ..gpu.memory_system import ChaseResult, MemorySystem

__all__ = [
    "GlobalLatencySweep",
    "measure_global_latency",
    "sweep_global_latency",
    "plateau_latency",
]

#: The paper sweeps log2(stride) = 0 .. 26 over a 64M-word array.  We
#: stop the default sweep at 2^19 words: beyond that the chase's working
#: set (array / stride) collapses back into the caches and the measured
#: latency drops -- an artifact of the fixed array size, not a memory
#: property (the paper's array was large enough to stay out of cache
#: across its whole sweep).
DEFAULT_ARRAY_WORDS = 64 * 1024 * 1024
DEFAULT_STRIDES = tuple(1 << k for k in range(0, 20))


@dataclasses.dataclass(frozen=True)
class GlobalLatencySweep:
    device: DeviceSpec
    array_words: int
    results: tuple[ChaseResult, ...]

    @property
    def strides(self) -> list[int]:
        return [r.stride_words for r in self.results]

    @property
    def latencies(self) -> list[float]:
        return [r.avg_latency_cycles for r in self.results]

    def series(self) -> list[tuple[int, float]]:
        """(log2(stride), latency) pairs, the axes of Figure 1."""
        return [
            (r.stride_words.bit_length() - 1, r.avg_latency_cycles)
            for r in self.results
        ]


def measure_global_latency(
    device: DeviceSpec,
    stride_words: int,
    array_words: int = DEFAULT_ARRAY_WORDS,
    hops: int = 1024,
) -> ChaseResult:
    """Average dependent-load latency at one stride."""
    return MemorySystem(device).chase(stride_words, array_words, hops=hops)


def sweep_global_latency(
    device: DeviceSpec,
    strides: Sequence[int] = DEFAULT_STRIDES,
    array_words: int = DEFAULT_ARRAY_WORDS,
    hops: int = 512,
) -> GlobalLatencySweep:
    """Reproduce Figure 1: latency as a function of access stride."""
    ms = MemorySystem(device)
    results = tuple(ms.chase(s, array_words, hops=hops) for s in strides)
    return GlobalLatencySweep(device=device, array_words=array_words, results=results)


def plateau_latency(device: DeviceSpec, hops: int = 1024) -> float:
    """The Table-III headline number: the row-miss plateau latency.

    Measured at a stride past the DRAM row size but with the working set
    still within TLB reach -- the regime the paper's 570 cycles refer to.
    """
    ms = MemorySystem(device)
    stride = 2048  # 8 KB: past the 2 KB row, far below the TLB reach
    return ms.chase(stride, DEFAULT_ARRAY_WORDS, hops=hops).avg_latency_cycles
