"""Shared-memory latency microbenchmark (Listing 3).

Pointer chasing through shared memory with dependent loads.  On GF100 the
ISA cannot fuse the address shift into the load anymore, so the *integer*
variant measures ``shift + load`` (45 cycles) and subtracts the
separately measured shift latency (18 cycles); the *byte* variant needs
no shift and reads the latency directly.  Both must agree (Section
II-C1), and the methodology must reproduce Volkov's 36 cycles on G80.

The chase itself runs functionally over a real permutation so a broken
permutation (a short cycle) is detected rather than silently timed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.instructions import costs_for
from ..gpu.shared_memory import SharedMemory

__all__ = ["SharedLatencyResult", "measure_shared_latency"]


@dataclasses.dataclass(frozen=True)
class SharedLatencyResult:
    device: DeviceSpec
    #: Latency via the integer chase after subtracting the shift.
    int_variant_cycles: float
    #: Latency via the byte chase (no address arithmetic).
    byte_variant_cycles: float
    #: The raw shift+load combination (45 cycles on GF100).
    combined_cycles: float
    #: Penalty for reaching shared memory through a generic LD.
    generic_ld_penalty: float
    hops: int

    @property
    def latency_cycles(self) -> float:
        """The reported shared-memory latency (byte variant)."""
        return self.byte_variant_cycles


def _chase(perm: np.ndarray, hops: int) -> int:
    """Walk ``hops`` dependent reads through permutation ``perm``."""
    acc = 0
    for _ in range(hops):
        acc = int(perm[acc])
    return acc


def measure_shared_latency(
    device: DeviceSpec, words: int = 1024, hops: int = 512, seed: int = 7
) -> SharedLatencyResult:
    """Chase dependent loads through a shared array and time them."""
    if words < 2:
        raise ValueError("need at least two words to chase")
    mem = SharedMemory(device, words=words, dtype=np.int32)
    rng = np.random.default_rng(seed)
    # A single-cycle permutation so the chase visits every word.
    order = rng.permutation(words)
    perm = np.empty(words, dtype=np.int32)
    perm[order] = np.roll(order, -1)
    mem.data[0] = perm

    end = _chase(mem.data[0], hops)
    if hops % words == 0 and end != 0:
        raise AssertionError("pointer chain is not a single cycle")

    costs = costs_for(device)
    load = device.shared_latency
    shift = costs.shift
    combined = load + shift  # the integer variant's raw per-hop cost
    return SharedLatencyResult(
        device=device,
        int_variant_cycles=float(combined - shift),
        byte_variant_cycles=float(load),
        combined_cycles=float(combined),
        generic_ld_penalty=float(device.generic_addressing_penalty),
        hops=hops,
    )
