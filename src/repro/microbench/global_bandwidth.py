"""Global-memory bandwidth microbenchmark (Listing 2).

Copies a 16 MB array device-to-device with an unrolled grid-stride loop
and reports bytes moved over wall time, host-timed like the paper (so a
kernel-launch overhead is included).  Also measures the vendor
``cudaMemcpy`` path for the comparison in Section II-B2.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.memory_system import MemorySystem

__all__ = ["GlobalBandwidthResult", "measure_global_bandwidth"]

#: Host-visible launch + timing overhead (gettimeofday around a launch).
LAUNCH_OVERHEAD_S = 8e-6


@dataclasses.dataclass(frozen=True)
class GlobalBandwidthResult:
    device: DeviceSpec
    copy_bandwidth: float
    memcpy_bandwidth: float
    copy_efficiency: float
    memcpy_efficiency: float
    bytes_moved: int
    checksum_ok: bool


def measure_global_bandwidth(
    device: DeviceSpec,
    array_bytes: int = 16 * 1024 * 1024,
    unroll: int = 8,
) -> GlobalBandwidthResult:
    """Copy ``array_bytes`` and report sustained bandwidth both ways.

    A real (NumPy) copy runs to keep the benchmark honest about what the
    kernel does; timing comes from the DRAM model's streaming rates plus
    the host-side launch overhead.
    """
    if array_bytes <= 0:
        raise ValueError("array must be non-empty")
    ms = MemorySystem(device)
    words = array_bytes // 4

    # Functional copy, with the unrolled access pattern of Listing 2.
    rng = np.random.default_rng(99)
    src = rng.standard_normal(words).astype(np.float32)
    dst = np.empty_like(src)
    size = words // unroll
    idx = np.arange(size)
    for i in range(unroll):
        dst[i * size + idx] = src[i * size + idx]
    dst[unroll * size:] = src[unroll * size:]
    checksum_ok = bool(np.array_equal(dst, src))

    moved = 2 * words * 4  # read + write
    copy_time = moved / ms.stream_bandwidth("copy") + LAUNCH_OVERHEAD_S
    memcpy_time = moved / ms.stream_bandwidth("memcpy") + LAUNCH_OVERHEAD_S
    peak = device.global_bandwidth
    return GlobalBandwidthResult(
        device=device,
        copy_bandwidth=moved / copy_time,
        memcpy_bandwidth=moved / memcpy_time,
        copy_efficiency=moved / copy_time / peak,
        memcpy_efficiency=moved / memcpy_time / peak,
        bytes_moved=moved,
        checksum_ok=checksum_ok,
    )
