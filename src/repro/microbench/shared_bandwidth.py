"""Shared-memory bandwidth microbenchmark (Listing 1).

The paper's benchmark issues ``NITRS x NCOPIES`` shared loads per thread,
accumulating into registers, and divides bytes moved by elapsed cycles.
The accumulate (IADD) dual-issues with the load, so the only lost slots
are the loop bookkeeping (compare + branch) once per ``NCOPIES`` loads.

Run against the simulated SM: every warp load moves ``banks * 4`` bytes
per shared-clock cycle when conflict-free; the measured bandwidth is the
payload divided by payload-plus-bookkeeping issue slots.  With the
paper's 12-deep unroll this lands at 85-86% of the 1030 GB/s peak --
their measured 880 GB/s.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..gpu.device import DeviceSpec
from ..gpu.shared_memory import SharedMemory

__all__ = ["SharedBandwidthResult", "measure_shared_bandwidth"]

#: Unroll depth of the inner copy loop (NCOPIES in Listing 1).
DEFAULT_UNROLL = 12
#: Loop-bookkeeping instructions competing for issue per iteration.
LOOP_OVERHEAD_INSTRUCTIONS = 2


@dataclasses.dataclass(frozen=True)
class SharedBandwidthResult:
    device: DeviceSpec
    per_sm_bandwidth: float
    total_bandwidth: float
    efficiency: float
    bytes_moved: int
    cycles: float


def measure_shared_bandwidth(
    device: DeviceSpec,
    threads: int = 256,
    iterations: int = 64,
    unroll: int = DEFAULT_UNROLL,
) -> SharedBandwidthResult:
    """Run the Listing-1 copy loop on the simulated SM.

    The benchmark is executed functionally (a real strided read of a
    shared array, verifying conflict-freedom) and timed by issue-slot
    accounting at the shared clock.
    """
    if threads % device.warp_size:
        raise ValueError("benchmark wants whole warps")
    words = threads * unroll
    mem = SharedMemory(device, words=words)
    rng = np.random.default_rng(1234)
    mem.data[0] = rng.standard_normal(words).astype(np.float32)

    # Functional pass: acc[j] += sMem[tid + j*threads], verifying the
    # access pattern is conflict-free (tid-contiguous within a warp).
    acc = np.zeros(threads, dtype=np.float32)
    tid = np.arange(threads)
    degree = mem.conflict_degree((tid[: device.warp_size]).tolist())
    for j in range(unroll):
        acc += mem.data[0][tid + j * threads]

    # Timing: each warp-load occupies one LSU slot; the loop adds
    # bookkeeping slots per iteration.  At `degree` replays per access the
    # payload slots multiply accordingly.
    warps = threads // device.warp_size
    load_slots = iterations * unroll * warps * degree
    overhead_slots = iterations * LOOP_OVERHEAD_INSTRUCTIONS * warps
    cycles = load_slots + overhead_slots  # shared-clock cycles

    bytes_per_sm = iterations * unroll * threads * 4
    seconds = cycles / device.shared_clock_hz
    per_sm = bytes_per_sm / seconds
    total = per_sm * device.num_sms
    peak = device.peak_shared_bandwidth
    return SharedBandwidthResult(
        device=device,
        per_sm_bandwidth=per_sm,
        total_bandwidth=total,
        efficiency=total / peak,
        bytes_moved=bytes_per_sm * device.num_sms,
        cycles=cycles,
    )
