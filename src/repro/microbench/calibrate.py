"""Run the full microbenchmark suite and assemble Table IV.

This is the paper's Section II condensed into one call: bandwidths from
the copy loops, latencies from pointer chasing, ``alpha_sync`` from the
barrier sweep, and ``gamma`` from the dependent-FMA chain -- all measured
against the simulated device, then packed into
:class:`~repro.model.parameters.ModelParameters` for the model layer.
"""

from __future__ import annotations

import time

from ..gpu.device import DeviceSpec, QUADRO_6000
from ..gpu.instructions import costs_for
from ..model.parameters import ModelParameters
from ..observe.log import log_event
from ..observe.metrics import counter_inc
from ..observe.tracer import current_tracer, span
from .global_bandwidth import measure_global_bandwidth
from .global_latency import plateau_latency
from .shared_bandwidth import measure_shared_bandwidth
from .shared_latency import measure_shared_latency
from .sync_latency import measure_sync_latency

__all__ = ["measure_fma_latency", "calibrate"]


def measure_fma_latency(device: DeviceSpec, chain: int = 256) -> float:
    """gamma: cycles per dependent FMA, from a serial accumulation chain.

    ``acc = acc * a + b`` repeated ``chain`` times has no ILP, so elapsed
    cycles divided by chain length is the pipeline depth.
    """
    if chain < 1:
        raise ValueError("need a non-empty chain")
    costs = costs_for(device)
    total = chain * costs.fma
    return total / chain


def calibrate(device: DeviceSpec = QUADRO_6000, cache=None) -> ModelParameters:
    """Measure every Table-IV parameter on ``device``.

    Pass a :class:`repro.runtime.CalibrationCache` (or ``True`` for the
    default one under ``~/.cache/repro``) to make calibration a
    once-per-device cost: on a warm cache the microbenchmark sweep -- and
    its ``calibrate`` trace span -- is skipped entirely and the stored
    parameters are returned, after a ``calibrate.cache_hit`` instant for
    attribution.  A miss runs the sweep and stores the result.
    """
    if cache is not None and cache is not False:
        if cache is True:
            from ..runtime.cache import CalibrationCache

            cache = CalibrationCache()
        cached = cache.load(device)
        if cached is not None:
            tracer = current_tracer()
            if tracer is not None:
                tracer.instant(
                    "calibrate.cache_hit", "microbench", device=device.name
                )
            log_event("calibrate.cache_hit", device=device.name)
            return cached
        params = _calibrate(device)
        cache.store(device, params)
        return params
    return _calibrate(device)


def _calibrate(device: DeviceSpec) -> ModelParameters:
    """The uncached Section-II sweep."""
    counter_inc("repro_calibrations_total", device=device.name)
    sweep_start = time.perf_counter()
    with span("calibrate", "microbench", device=device.name):
        with span("calibrate.shared_bandwidth", "microbench"):
            shared_bw = measure_shared_bandwidth(device)
        with span("calibrate.global_bandwidth", "microbench"):
            global_bw = measure_global_bandwidth(device)
        with span("calibrate.shared_latency", "microbench"):
            shared_lat = measure_shared_latency(device)
        with span("calibrate.global_latency", "microbench"):
            global_lat = plateau_latency(device)
        with span("calibrate.sync_latency", "microbench"):
            sync = measure_sync_latency(device, threads=64)
        with span("calibrate.fma_latency", "microbench"):
            gamma = measure_fma_latency(device)
        params = ModelParameters(
            device=device,
            alpha_glb=global_lat,
            global_bandwidth=global_bw.copy_bandwidth,
            alpha_sh=shared_lat.latency_cycles,
            shared_bandwidth=shared_bw.total_bandwidth,
            alpha_sync=sync,
            gamma=gamma,
        )
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                "calibrate.parameters", "microbench",
                alpha_glb=params.alpha_glb,
                global_bandwidth=params.global_bandwidth,
                alpha_sh=params.alpha_sh,
                shared_bandwidth=params.shared_bandwidth,
                alpha_sync=params.alpha_sync,
                gamma=params.gamma,
            )
    log_event(
        "calibrate.sweep",
        device=device.name,
        wall_s=time.perf_counter() - sweep_start,
    )
    return params
