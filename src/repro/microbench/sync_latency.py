"""Synchronization-latency microbenchmark (Figure 2 / alpha_sync).

Times back-to-back ``__syncthreads()`` calls for block sizes from one
warp up to the SM's thread capacity, by running an empty sync loop on the
block engine.  The 64-thread point is the model's ``alpha_sync``.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..gpu.device import DeviceSpec
from ..gpu.simt import BlockEngine

__all__ = ["SyncLatencySweep", "measure_sync_latency", "sweep_sync_latency"]

DEFAULT_THREAD_COUNTS = tuple(range(32, 1024 + 1, 32))


@dataclasses.dataclass(frozen=True)
class SyncLatencySweep:
    device: DeviceSpec
    thread_counts: tuple[int, ...]
    latencies: tuple[float, ...]

    def series(self) -> list[tuple[int, float]]:
        """(threads per multiprocessor, cycles) pairs -- Figure 2's axes."""
        return list(zip(self.thread_counts, self.latencies))

    def at(self, threads: int) -> float:
        try:
            return self.latencies[self.thread_counts.index(threads)]
        except ValueError:
            raise KeyError(f"thread count {threads} not in sweep") from None


def measure_sync_latency(
    device: DeviceSpec, threads: int, repetitions: int = 64
) -> float:
    """Average cycles of one ``__syncthreads`` at ``threads`` threads."""
    engine = BlockEngine(
        device,
        threads_per_block=threads,
        registers_per_thread=8,
        account_overhead=False,
    )
    for _ in range(repetitions):
        engine.sync()
    return engine.clock.now / repetitions


def sweep_sync_latency(
    device: DeviceSpec, thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS
) -> SyncLatencySweep:
    """Reproduce Figure 2: sync latency versus threads per SM."""
    lats = tuple(measure_sync_latency(device, t) for t in thread_counts)
    return SyncLatencySweep(
        device=device, thread_counts=tuple(thread_counts), latencies=lats
    )
