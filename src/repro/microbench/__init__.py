"""Section-II microbenchmarks, run against the simulated device.

Each module reproduces one of the paper's measurement procedures:

* :mod:`.shared_bandwidth` -- Listing 1 (880 GB/s aggregate on Quadro 6000)
* :mod:`.global_bandwidth` -- Listing 2 (108 GB/s copy, 84 GB/s memcpy)
* :mod:`.shared_latency`   -- Listing 3 (27 cycles; 36 on G80 per Volkov)
* :mod:`.global_latency`   -- Figure 1 stride sweep (570-cycle plateau)
* :mod:`.sync_latency`     -- Figure 2 sweep (46 cycles at 64 threads)
* :mod:`.calibrate`        -- all of the above -> Table IV parameters
"""

from .bank_conflicts import BankConflictSweep, sweep_bank_conflicts
from .calibrate import calibrate, measure_fma_latency
from .global_bandwidth import GlobalBandwidthResult, measure_global_bandwidth
from .global_latency import (
    GlobalLatencySweep,
    measure_global_latency,
    plateau_latency,
    sweep_global_latency,
)
from .shared_bandwidth import SharedBandwidthResult, measure_shared_bandwidth
from .shared_latency import SharedLatencyResult, measure_shared_latency
from .sync_latency import SyncLatencySweep, measure_sync_latency, sweep_sync_latency

__all__ = [
    "BankConflictSweep",
    "sweep_bank_conflicts",
    "calibrate",
    "measure_fma_latency",
    "GlobalBandwidthResult",
    "measure_global_bandwidth",
    "GlobalLatencySweep",
    "measure_global_latency",
    "plateau_latency",
    "sweep_global_latency",
    "SharedBandwidthResult",
    "measure_shared_bandwidth",
    "SharedLatencyResult",
    "measure_shared_latency",
    "SyncLatencySweep",
    "measure_sync_latency",
    "sweep_sync_latency",
]
