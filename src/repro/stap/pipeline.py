"""End-to-end post-Doppler STAP pipeline.

Ties the substrates together the way a radar processor would: simulate a
coherent interval, Doppler-filter it, carve per-segment training sets,
batch-factor them with complex QR, and form adaptive weights.  The
pipeline is the basis of the ``stap_radar`` example and the integration
tests; it also reports the detection statistic for an injected target so
correctness is observable end to end (adapted output should beat the
non-adaptive beamformer under jamming).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..observe.tracer import instant, span
from .beamforming import AdaptiveWeights, qr_adaptive_weights
from .datacube import (
    DataCube,
    RadarScenario,
    generate_datacube,
    space_time_steering,
)
from .doppler import training_matrices

__all__ = ["StapPipelineResult", "run_pipeline", "inject_target"]


@dataclasses.dataclass(frozen=True)
class StapPipelineResult:
    weights: AdaptiveWeights
    scenario: RadarScenario
    #: Output SINR-like statistic of the adaptive beamformer at the target.
    adapted_gain: float
    #: Same statistic for the non-adaptive (steering-only) beamformer.
    unadapted_gain: float

    @property
    def improvement_db(self) -> float:
        return 10 * np.log10(self.adapted_gain / self.unadapted_gain)


def inject_target(
    cube: DataCube, angle: float, doppler: float, amplitude: float, range_gate: int
) -> DataCube:
    """Add a point target to one range gate."""
    c, p, _ = cube.data.shape
    v = space_time_steering(c, p, angle, doppler).reshape(c, p)
    data = cube.data.copy()
    data[:, :, range_gate] += (amplitude * v).astype(data.dtype)
    return DataCube(data=data, scenario=cube.scenario)


def run_pipeline(
    scenario: RadarScenario | None = None,
    target_angle: float = 0.1,
    target_doppler: float = 0.25,
    target_amplitude: float = 30.0,
    segments: int = 8,
    training_rows: int | None = None,
    fast_math: bool = True,
) -> StapPipelineResult:
    """Simulate, train, adapt, and score one coherent interval."""
    sc = scenario or RadarScenario()
    dof = sc.channels * sc.pulses
    rows = training_rows or max(2 * dof, 3 * dof // 2)
    with span("stap.pipeline", "stap", channels=sc.channels, pulses=sc.pulses,
              ranges=sc.ranges, segments=segments):
        with span("stap.simulate", "stap"):
            cube = generate_datacube(sc)
            target_gate = sc.ranges // 2
            cube = inject_target(
                cube, target_angle, target_doppler, target_amplitude, target_gate
            )

        # Train on target-free segments (simple cell exclusion: segments
        # are cut before target injection would matter -- we reuse the
        # clean cube statistics by training away from the target gate).
        with span("stap.training", "stap", rows=rows, dof=dof):
            training = training_matrices(
                generate_datacube(sc), segments, rows, dof
            )
        steering = space_time_steering(
            sc.channels, sc.pulses, target_angle, target_doppler
        )
        with span("stap.weights", "stap", segments=segments):
            weights = qr_adaptive_weights(training, steering, fast_math=fast_math)

        # Score at the target gate with the first segment's weights.
        with span("stap.score", "stap"):
            w = weights.weights[0]
            snapshot = cube.snapshots()[target_gate]
            interference = np.delete(cube.snapshots(), target_gate, axis=0)

            def sinr(wvec: np.ndarray) -> float:
                signal = np.abs(np.vdot(wvec, snapshot)) ** 2
                noise = np.mean(np.abs(interference @ wvec.conj()) ** 2)
                return float(signal / noise)

            adapted = sinr(w)
            unadapted = sinr(steering / np.linalg.norm(steering) ** 2)
        instant(
            "stap.result", "stap", adapted_gain=adapted,
            unadapted_gain=unadapted,
            improvement_db=float(10 * np.log10(adapted / unadapted)),
        )
    return StapPipelineResult(
        weights=weights,
        scenario=sc,
        adapted_gain=adapted,
        unadapted_gain=unadapted,
    )
