"""Real-time budget analysis for the STAP workload.

"Space-time adaptive processing ... is typically limited by the
processing capabilities of the radar system" (Section I).  This module
answers the operational question behind Table VII: given a coherent
processing interval (CPI) rate, does a platform keep up with the QR
workload in real time, and with how much headroom?
"""

from __future__ import annotations

import dataclasses

from ..approaches.base import Approach, Workload
from .benchmark import StapCase

__all__ = ["RealTimeBudget", "RealTimeReport", "assess_realtime"]


@dataclasses.dataclass(frozen=True)
class RealTimeBudget:
    """Timing constraints of the radar processing chain."""

    #: Coherent processing intervals per second the radar produces.
    cpi_rate_hz: float = 10.0
    #: Fraction of the CPI period available for the QR phase (the rest
    #: goes to Doppler processing, detection, etc.).
    qr_time_share: float = 0.5

    def __post_init__(self) -> None:
        if self.cpi_rate_hz <= 0:
            raise ValueError("CPI rate must be positive")
        if not 0 < self.qr_time_share <= 1:
            raise ValueError("QR time share must be in (0, 1]")

    @property
    def qr_deadline_seconds(self) -> float:
        return self.qr_time_share / self.cpi_rate_hz


@dataclasses.dataclass(frozen=True)
class RealTimeReport:
    """Whether one platform meets the budget for one STAP case."""

    case: StapCase
    budget: RealTimeBudget
    seconds_per_cpi: float

    @property
    def headroom(self) -> float:
        """Deadline / actual: >1 means real-time with margin."""
        return self.budget.qr_deadline_seconds / self.seconds_per_cpi

    @property
    def meets_deadline(self) -> bool:
        return self.headroom >= 1.0

    @property
    def max_cpi_rate_hz(self) -> float:
        """Fastest CPI rate this platform could sustain."""
        return self.budget.qr_time_share / self.seconds_per_cpi


def assess_realtime(
    case: StapCase,
    approach: Approach,
    budget: RealTimeBudget | None = None,
) -> RealTimeReport:
    """Time one CPI's worth of QR factorizations on ``approach``."""
    budget = budget or RealTimeBudget()
    work = Workload(
        kind="qr",
        m=case.rows,
        n=case.cols,
        batch=case.num_matrices,
        complex_dtype=True,
    )
    if not approach.supports(work):
        raise ValueError(f"{approach.name} cannot run {case.label}")
    seconds = approach.seconds(work)
    return RealTimeReport(case=case, budget=budget, seconds_per_cpi=seconds)
