"""The Table VII experiment: RT_STAP complex QR sizes.

The official MITRE RT_STAP benchmark specifies the complex QR sizes; the
paper adds the 192 x 96 size from the Imagine stream-processor study.
Table VII reports GPU GFLOPS, MKL GFLOPS, and the speedup for:

====== ========== ===========  ==========  =======
size   # matrices GPU GFLOPS   MKL GFLOPS  speedup
====== ========== ===========  ==========  =======
80x16  384        134          5.4         25x
240x66 128        99           36          2.8x
192x96 128        98           27          3.6x
====== ========== ===========  ==========  =======

``run_stap_case`` factors real synthetic training data: the 80 x 16 case
fits one thread block; the taller cases go through the sequential tiled
QR, exactly as in Section VII.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..approaches.base import Workload
from ..approaches.baselines import CpuLapackApproach
from ..gpu.device import QUADRO_6000, DeviceSpec
from ..kernels.device.per_block_qr import per_block_qr
from ..model.flops import qr_flops_complex
from ..tiled.tiled_qr import tiled_qr
from .datacube import RadarScenario, generate_datacube
from .doppler import training_matrices

__all__ = ["StapCase", "StapResult", "RT_STAP_CASES", "run_stap_case", "run_table7"]


@dataclasses.dataclass(frozen=True)
class StapCase:
    """One row of Table VII."""

    rows: int
    cols: int
    num_matrices: int
    label: str

    @property
    def flops_per_problem(self) -> float:
        return qr_flops_complex(self.rows, self.cols)


#: The three sizes of Table VII.
RT_STAP_CASES = (
    StapCase(rows=80, cols=16, num_matrices=384, label="RT_STAP 80x16"),
    StapCase(rows=240, cols=66, num_matrices=128, label="RT_STAP 240x66"),
    StapCase(rows=192, cols=96, num_matrices=128, label="Imagine 192x96"),
)


@dataclasses.dataclass(frozen=True)
class StapResult:
    """Paper-style Table VII row."""

    case: StapCase
    gpu_gflops: float
    mkl_gflops: float
    r: np.ndarray
    method: str

    @property
    def speedup(self) -> float:
        return self.gpu_gflops / self.mkl_gflops


def _training_batch(case: StapCase, numeric_batch: int) -> np.ndarray:
    """Synthetic training matrices with the case's shape."""
    channels = max(2, case.cols // 8)
    pulses = -(-case.cols // channels)
    scenario = RadarScenario(
        channels=channels,
        pulses=pulses,
        ranges=max(512, 2 * case.rows),
        seed=7 * case.rows + case.cols,
    )
    cube = generate_datacube(scenario)
    return training_matrices(cube, numeric_batch, case.rows, case.cols)


def run_stap_case(
    case: StapCase,
    device: DeviceSpec = QUADRO_6000,
    numeric_batch: int = 4,
    fast_math: bool = True,
) -> StapResult:
    """Factor one Table-VII case and report both sides of the comparison.

    ``numeric_batch`` matrices are actually factored (cost accounting is
    batch-independent); throughput is reported for the case's full
    ``num_matrices``, like the paper.
    """
    batch = case.num_matrices
    training = _training_batch(case, numeric_batch)

    # Fits a single block? (the paper: 80x16 does; the others are tiled)
    from ..model.block_config import block_config
    from ..gpu.registers import RegisterAllocation

    cfg = block_config(case.rows, case.cols, complex_dtype=True)
    fits = not RegisterAllocation(device, cfg.registers_per_thread).spills
    if fits:
        res = per_block_qr(training, device=device, fast_math=fast_math)
        gpu_gflops = res.launch.throughput_gflops(batch)
        r = np.triu(res.output[:, : case.cols, :])
        method = "one-problem-per-block"
    else:
        res = tiled_qr(training, device=device, fast_math=fast_math)
        seconds = 0.0
        for launch in res.launches:
            resident = launch.occupancy.blocks_per_chip
            seconds += -(-batch // resident) * launch.seconds_per_block
        gpu_gflops = case.flops_per_problem * batch / seconds / 1e9
        r = res.r
        method = f"tiled ({len(res.launches)} stages)"

    mkl = CpuLapackApproach().gflops(
        Workload("qr", case.rows, case.cols, batch, complex_dtype=True)
    )
    return StapResult(
        case=case, gpu_gflops=gpu_gflops, mkl_gflops=mkl, r=r, method=method
    )


def run_table7(
    device: DeviceSpec = QUADRO_6000, numeric_batch: int = 2
) -> list[StapResult]:
    """All three rows of Table VII."""
    return [run_stap_case(c, device, numeric_batch) for c in RT_STAP_CASES]
