"""Doppler processing: pulse-domain filterbank ahead of the STAP solve.

RT_STAP's processing chain Doppler-filters each channel's pulse train
before adaptive beamforming; post-Doppler STAP then adapts over
(channel x a few adjacent Doppler bins).  A windowed FFT over the pulse
axis is all the substrate the QR stage needs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .datacube import DataCube

__all__ = ["doppler_filterbank", "training_matrices"]


def doppler_filterbank(cube: DataCube, window: str = "hann") -> np.ndarray:
    """FFT over pulses: (channels, doppler_bins, ranges)."""
    data = cube.data
    pulses = data.shape[1]
    if window == "hann":
        taper = np.hanning(pulses).astype(np.float32)
    elif window == "rect":
        taper = np.ones(pulses, dtype=np.float32)
    else:
        raise ValueError(f"unknown window: {window!r}")
    tapered = data * taper[None, :, None]
    return np.fft.fft(tapered, axis=1).astype(np.complex64)


def training_matrices(
    cube: DataCube,
    num_matrices: int,
    rows: int,
    dof: int,
) -> np.ndarray:
    """Cut ``num_matrices`` training sets of shape (rows, dof) from a cube.

    Snapshots are space-time vectors from consecutive range gates;
    segments wrap around the range extent so any (num, rows) request can
    be served from one coherent interval, matching how the benchmark
    harness feeds the batched QR.
    """
    if num_matrices < 1 or rows < 1 or dof < 1:
        raise ShapeError("training set dimensions must be positive")
    snaps = cube.snapshots()  # (ranges, channels*pulses)
    total_dof = snaps.shape[1]
    if dof > total_dof:
        raise ShapeError(
            f"requested {dof} degrees of freedom, cube provides {total_dof}"
        )
    ranges = snaps.shape[0]
    out = np.empty((num_matrices, rows, dof), dtype=np.complex64)
    for k in range(num_matrices):
        idx = (np.arange(rows) + k * rows // 2) % ranges
        out[k] = snaps[idx, :dof]
    return out
