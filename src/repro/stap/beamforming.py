"""QR-based adaptive beamforming weights.

The most demanding phase of STAP is "multiple simultaneous complex QR
decompositions" of training matrices ``X`` (snapshots x degrees of
freedom).  The adaptive (MVDR-style) weight for steering vector ``s`` is

    w  proportional to  (X^H X)^{-1} s  =  R^{-1} (R^{-H} s)

where ``X = Q R`` -- two triangular solves against the QR factor, never
forming the covariance (numerically the whole point of the QR approach:
the condition number enters once, not squared).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ShapeError
from ..kernels.batched.qr import qr_factor
from ..kernels.batched.trsm import solve_lower, solve_upper

__all__ = ["AdaptiveWeights", "qr_adaptive_weights"]


@dataclasses.dataclass(frozen=True)
class AdaptiveWeights:
    """Batched weights plus the R factors they came from."""

    weights: np.ndarray  # (batch, dof)
    r: np.ndarray  # (batch, dof, dof)

    def output_power(self, snapshots: np.ndarray) -> np.ndarray:
        """|w^H x|^2 for a (batch, m, dof) snapshot set, per snapshot."""
        y = np.einsum("bd,bmd->bm", self.weights.conj(), snapshots)
        return np.abs(y) ** 2


def qr_adaptive_weights(
    training: np.ndarray,
    steering: np.ndarray,
    fast_math: bool = True,
    r: np.ndarray | None = None,
) -> AdaptiveWeights:
    """Compute MVDR weights for a batch of training matrices.

    ``training``: ``(batch, m, dof)`` complex snapshots (m >= dof);
    ``steering``: ``(dof,)`` or ``(batch, dof)``.  Pass a precomputed
    ``r`` (e.g. from :func:`repro.tiled.tiled_qr`) to skip the
    factorization.  Weights are normalized to unit response in the
    steering direction (``w^H s = 1``).
    """
    training = np.asarray(training)
    if training.ndim == 2:
        training = training[None]
    if training.ndim != 3 or training.shape[1] < training.shape[2]:
        raise ShapeError(
            f"training set must be tall (batch, m, dof), got {training.shape}"
        )
    batch, _, dof = training.shape
    s = np.asarray(steering, dtype=training.dtype)
    if s.ndim == 1:
        if s.shape[0] != dof:
            raise ShapeError(
                f"steering length {s.shape[0]} does not match dof {dof}"
            )
        s = np.broadcast_to(s, (batch, dof))
    if s.shape != (batch, dof):
        raise ShapeError(f"steering shape {s.shape} does not match dof {dof}")

    if r is None:
        r = qr_factor(training, fast_math=fast_math).r()
    else:
        r = np.asarray(r)
        if r.shape != (batch, dof, dof):
            raise ShapeError(f"R shape {r.shape} does not match dof {dof}")

    # The covariance the beamformer needs is C = E[x x^H], whose entries
    # are the *conjugate* of the Gram matrix X^H X = R^H R that the QR
    # factor provides.  Hence C^{-1} s = conj((R^H R)^{-1} conj(s)):
    # a lower solve with R^H, an upper solve with R, and a conjugation.
    rh = np.swapaxes(r.conj(), 1, 2)
    y = solve_lower(rh, s.conj(), fast_math=fast_math)
    w = solve_upper(r, y, fast_math=fast_math).conj()

    # Unit gain toward the steering direction.
    gain = np.einsum("bd,bd->b", w.conj(), s)
    w = w / gain.conj()[:, None]
    return AdaptiveWeights(weights=w, r=r)
