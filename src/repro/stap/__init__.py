"""Space-time adaptive processing application (Section VII)."""

from .beamforming import AdaptiveWeights, qr_adaptive_weights
from .benchmark import (
    RT_STAP_CASES,
    StapCase,
    StapResult,
    run_stap_case,
    run_table7,
)
from .datacube import (
    DataCube,
    RadarScenario,
    generate_datacube,
    space_time_steering,
    spatial_steering,
    temporal_steering,
)
from .detection import CfarConfig, CfarResult, cell_averaging_cfar
from .doppler import doppler_filterbank, training_matrices
from .pipeline import StapPipelineResult, inject_target, run_pipeline
from .realtime import RealTimeBudget, RealTimeReport, assess_realtime

__all__ = [
    "AdaptiveWeights",
    "qr_adaptive_weights",
    "RT_STAP_CASES",
    "StapCase",
    "StapResult",
    "run_stap_case",
    "run_table7",
    "DataCube",
    "RadarScenario",
    "generate_datacube",
    "space_time_steering",
    "spatial_steering",
    "temporal_steering",
    "CfarConfig",
    "CfarResult",
    "cell_averaging_cfar",
    "doppler_filterbank",
    "training_matrices",
    "RealTimeBudget",
    "RealTimeReport",
    "assess_realtime",
    "StapPipelineResult",
    "inject_target",
    "run_pipeline",
]
