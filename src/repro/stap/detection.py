"""CFAR detection on the adapted beamformer output.

Completes the radar processing chain behind Table VII: after the QR-based
adaptive weights suppress clutter and jammers, a cell-averaging CFAR
(constant false-alarm rate) detector thresholds each range gate against
the interference level estimated from its neighbours.  This is the stage
whose real-time deadline motivates the whole batched-QR exercise -- and
it gives the pipeline an end-to-end, binary observable: *is the injected
target detected?*
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ShapeError

__all__ = ["CfarConfig", "CfarResult", "cell_averaging_cfar"]


@dataclasses.dataclass(frozen=True)
class CfarConfig:
    """Cell-averaging CFAR geometry and threshold."""

    #: Training cells on EACH side of the cell under test.
    train_cells: int = 16
    #: Guard cells on each side (exclude target energy leakage).
    guard_cells: int = 2
    #: Threshold multiplier over the estimated interference power.
    threshold_factor: float = 12.0

    def __post_init__(self) -> None:
        if self.train_cells < 1:
            raise ValueError("need at least one training cell per side")
        if self.guard_cells < 0:
            raise ValueError("guard cells must be non-negative")
        if self.threshold_factor <= 0:
            raise ValueError("threshold factor must be positive")


@dataclasses.dataclass(frozen=True)
class CfarResult:
    """Detections over a power profile."""

    power: np.ndarray
    threshold: np.ndarray
    detections: np.ndarray  # boolean mask

    @property
    def detection_indices(self) -> np.ndarray:
        return np.nonzero(self.detections)[0]

    @property
    def num_detections(self) -> int:
        return int(self.detections.sum())


def cell_averaging_cfar(
    power: np.ndarray, config: CfarConfig | None = None
) -> CfarResult:
    """Run CA-CFAR over a 1D power profile (e.g. |w^H x|^2 per gate).

    Edge gates without a full training window reuse the nearest complete
    window (clamped), so every gate gets a decision.
    """
    config = config or CfarConfig()
    p = np.asarray(power, dtype=np.float64)
    if p.ndim != 1:
        raise ShapeError(f"expected a 1D power profile, got shape {p.shape}")
    n = p.shape[0]
    window = config.train_cells + config.guard_cells
    if n < 2 * window + 1:
        raise ShapeError(
            f"profile of {n} gates is too short for a CFAR window of "
            f"{window} cells per side"
        )

    # Sliding sums via cumulative sums: leading/lagging training windows.
    csum = np.concatenate([[0.0], np.cumsum(p)])

    def window_sum(start: np.ndarray, stop: np.ndarray) -> np.ndarray:
        start = np.clip(start, 0, n)
        stop = np.clip(stop, 0, n)
        return csum[stop] - csum[start]

    idx = np.arange(n)
    lead_stop = idx - config.guard_cells
    lead_start = lead_stop - config.train_cells
    lag_start = idx + config.guard_cells + 1
    lag_stop = lag_start + config.train_cells

    lead = window_sum(lead_start, lead_stop)
    lag = window_sum(lag_start, lag_stop)
    lead_count = np.clip(lead_stop, 0, n) - np.clip(lead_start, 0, n)
    lag_count = np.clip(lag_stop, 0, n) - np.clip(lag_start, 0, n)
    counts = np.maximum(lead_count + lag_count, 1)
    noise = (lead + lag) / counts

    threshold = config.threshold_factor * noise
    return CfarResult(power=p, threshold=threshold, detections=p > threshold)
