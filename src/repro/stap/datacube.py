"""Synthetic radar datacube generation.

The MITRE RT_STAP benchmark data is not redistributable, so the Section
VII experiments run on a synthetic cube with the same structure: a
``channels x pulses x ranges`` complex cube containing

* ground *clutter* -- returns spread over angle with a Doppler tied to
  the platform motion (the classic clutter ridge),
* a small number of *jammers* -- point sources in angle, white in
  Doppler, and
* thermal *noise*.

What matters for the reproduction is that the training snapshots fed to
the QR factorizations have the right size, dtype, and a realistic
(correlated, full-rank) covariance -- which this model provides.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ShapeError

__all__ = ["RadarScenario", "DataCube", "generate_datacube"]


@dataclasses.dataclass(frozen=True)
class RadarScenario:
    """Geometry and interference description of a synthetic scene."""

    channels: int = 8
    pulses: int = 16
    ranges: int = 512
    #: Normalized platform speed: clutter Doppler = beta * sin(angle).
    beta: float = 1.0
    #: Clutter-to-noise ratio (linear power).
    cnr: float = 1000.0
    #: Jammer azimuths (radians) and jammer-to-noise ratios.
    jammer_angles: tuple[float, ...] = (0.4, -0.7)
    jnr: float = 316.0
    #: Number of discrete clutter patches along the ridge.
    clutter_patches: int = 64
    seed: int = 2012

    def __post_init__(self) -> None:
        if min(self.channels, self.pulses, self.ranges) < 1:
            raise ShapeError("scenario dimensions must be positive")


@dataclasses.dataclass(frozen=True)
class DataCube:
    """A channels x pulses x ranges complex data cube."""

    data: np.ndarray
    scenario: RadarScenario

    @property
    def channels(self) -> int:
        return self.data.shape[0]

    @property
    def pulses(self) -> int:
        return self.data.shape[1]

    @property
    def ranges(self) -> int:
        return self.data.shape[2]

    def snapshots(self) -> np.ndarray:
        """(ranges, channels*pulses) space-time snapshots."""
        c, p, r = self.data.shape
        return self.data.reshape(c * p, r).T.copy()


def spatial_steering(channels: int, angle: float, dtype=np.complex64) -> np.ndarray:
    """Uniform-linear-array steering vector at half-wavelength spacing."""
    k = np.arange(channels)
    return np.exp(1j * np.pi * k * np.sin(angle)).astype(dtype)


def temporal_steering(pulses: int, doppler: float, dtype=np.complex64) -> np.ndarray:
    """Doppler steering vector (normalized Doppler in [-0.5, 0.5))."""
    k = np.arange(pulses)
    return np.exp(2j * np.pi * k * doppler).astype(dtype)


def space_time_steering(
    channels: int, pulses: int, angle: float, doppler: float, dtype=np.complex64
) -> np.ndarray:
    """Space-time steering vector, channel-major: v[ch*pulses + pu].

    Matches the (channels, pulses, ranges) cube layout flattened over its
    first two axes.
    """
    return np.kron(
        spatial_steering(channels, angle, dtype),
        temporal_steering(pulses, doppler, dtype),
    ).astype(dtype)


def generate_datacube(scenario: RadarScenario | None = None) -> DataCube:
    """Simulate one coherent processing interval."""
    sc = scenario or RadarScenario()
    rng = np.random.default_rng(sc.seed)
    c, p, r = sc.channels, sc.pulses, sc.ranges
    cube = np.zeros((c * p, r), dtype=np.complex64)

    # Clutter ridge: patches across angle, Doppler locked to the angle.
    angles = np.arcsin(np.linspace(-0.95, 0.95, sc.clutter_patches))
    patch_power = np.sqrt(sc.cnr / sc.clutter_patches / 2)
    for angle in angles:
        doppler = 0.5 * sc.beta * np.sin(angle)
        v = space_time_steering(c, p, angle, doppler)
        amp = patch_power * (
            rng.standard_normal(r) + 1j * rng.standard_normal(r)
        ).astype(np.complex64)
        cube += np.outer(v, amp)

    # Jammers: spatial steering only, independent across pulses.
    for angle in sc.jammer_angles:
        s = spatial_steering(c, angle)
        waveform = np.sqrt(sc.jnr / 2) * (
            rng.standard_normal((p, r)) + 1j * rng.standard_normal((p, r))
        ).astype(np.complex64)
        cube += (s[:, None, None] * waveform[None, :, :]).reshape(c * p, r)

    # Thermal noise at unit power.
    cube += (
        (rng.standard_normal((c * p, r)) + 1j * rng.standard_normal((c * p, r)))
        / np.sqrt(2)
    ).astype(np.complex64)

    return DataCube(data=cube.reshape(c, p, r).astype(np.complex64), scenario=sc)
