"""``python -m repro.analyze`` -- dispatch to the analysis CLI."""

import sys

from .cli import main

sys.exit(main())
