"""Dynamic shared-memory race sanitizer (CUDA-MEMCHECK racecheck, simulated).

The per-block kernels move data between threads exclusively through
:class:`~repro.gpu.shared_memory.SharedMemory`, and the protocol the
paper's cost model charges for (Eq. 2's ``nsync * alpha_sync``) is that
every such handoff is bracketed by a ``__syncthreads``: a value written
in one *sync epoch* may only be read by other lanes in a later epoch.
:class:`SharedSanitizer` checks exactly that.  When attached to a
:class:`~repro.gpu.simt.BlockEngine` it records every functional
``read``/``write`` with the accessing lane (``None`` = a collective
access by the owning thread group) and the current epoch --
``BlockEngine.sync()`` bumps the epoch -- and reports:

* **write->read**, **write->write**, **read->write** hazards: two
  accesses to overlapping word slots in the *same* epoch where at least
  one is a write and the accesses are not provably by one lane;
* **redundant-sync**: a ``sync()`` with no shared traffic (functional or
  charged) since the previous one -- wasted ``alpha_sync`` cycles, also
  counted in the ``repro_sync_redundant`` fleet metric;
* **never-synced**: a shared array that was written but whose engine
  never executed a single ``sync()``.

Hazards are structured :class:`Hazard` records labeled with the engine's
active :meth:`~repro.gpu.simt.BlockEngine.phase`, surfaced through the
fleet metrics registry (``repro_sanitizer_hazards``) and the event
tracer, and aggregated into a :class:`SanitizeReport` attached to the
launch result.  The sanitizer is opt-in (``REPRO_SANITIZE=1``,
``BlockEngine(sanitize=True)``, or :func:`sanitizing`); when off, the
only cost on the hot path is one ``is None`` check per access.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..observe.metrics import counter_inc
from ..observe.tracer import add_counter, instant

__all__ = [
    "Hazard",
    "SanitizeReport",
    "SharedSanitizer",
    "sanitize_enabled",
    "sanitizing",
]

#: Hazard kinds in severity order (races first, protocol waste last).
HAZARD_KINDS = (
    "write-read",
    "write-write",
    "read-write",
    "never-synced",
    "redundant-sync",
)

#: Word indices kept per hazard record (enough to locate the conflict
#: without dragging a whole column's index vector into every report).
_MAX_WORDS = 8

_FORCED: Optional[bool] = None


def sanitize_enabled() -> bool:
    """Whether new engines should attach a sanitizer by default.

    A :func:`sanitizing` override wins; otherwise the ``REPRO_SANITIZE``
    environment variable decides (read per engine construction, so tests
    and the CLI can toggle it at runtime).
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_SANITIZE", "").lower() in ("1", "true", "on", "yes")


@contextmanager
def sanitizing(flag: bool = True) -> Iterator[None]:
    """Force the sanitizer on (or off) for engines built in this scope."""
    global _FORCED
    previous = _FORCED
    _FORCED = bool(flag)
    try:
        yield
    finally:
        _FORCED = previous


@dataclasses.dataclass(frozen=True)
class Hazard:
    """One sanitizer diagnostic, in the vocabulary of the kernel protocol."""

    #: One of :data:`HAZARD_KINDS`.
    kind: str
    #: Label of the shared array involved (``sh_col``, ``shared0``, ...).
    array: str
    #: Sync epoch the conflict happened in (0 = before any sync).
    epoch: int
    #: Engine phase label active when the hazard was detected.
    phase: str
    #: Overlapping word slots (sorted, truncated to a handful).
    words: Tuple[int, ...] = ()
    #: Phase of the earlier access of the pair (racing hazards only).
    first_phase: str = ""
    #: Lanes of the two accesses (``None`` = collective / unattributed).
    lanes: Tuple[Optional[int], Optional[int]] = (None, None)
    #: Human-readable one-liner.
    message: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "array": self.array,
            "epoch": self.epoch,
            "phase": self.phase,
            "words": list(self.words),
            "first_phase": self.first_phase,
            "lanes": list(self.lanes),
            "message": self.message,
        }


@dataclasses.dataclass(frozen=True)
class SanitizeReport:
    """Aggregated sanitizer output for one engine lifetime."""

    hazards: Tuple[Hazard, ...]
    #: Total ``sync()`` calls observed.
    syncs: int
    #: Syncs with no shared traffic since the previous one.
    redundant_syncs: int
    #: Functional shared accesses recorded.
    accesses: int
    #: Labels of the shared arrays the engine allocated.
    arrays: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.hazards

    @property
    def races(self) -> Tuple[Hazard, ...]:
        """The cross-lane data races (excludes protocol-waste diagnostics)."""
        racing = ("write-read", "write-write", "read-write")
        return tuple(h for h in self.hazards if h.kind in racing)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "syncs": self.syncs,
            "redundant_syncs": self.redundant_syncs,
            "accesses": self.accesses,
            "arrays": list(self.arrays),
            "hazards": [h.to_dict() for h in self.hazards],
        }


@dataclasses.dataclass
class _Access:
    kind: str  # "read" | "write"
    words: np.ndarray  # sorted unique int64 word slots
    lane: Optional[int]
    phase: str


class SharedSanitizer:
    """Epoch-tagged access recorder for one engine's shared arrays.

    The engine owns exactly one sanitizer; :meth:`register` binds each
    allocated :class:`~repro.gpu.shared_memory.SharedMemory` to it, the
    array's ``read``/``write`` feed :meth:`on_access`, the engine's
    ``sync()`` feeds :meth:`on_sync`, and ``charge_shared`` marks charged
    (cost-only) traffic via :meth:`note_traffic` so protocol-sketch
    kernels that model costs without functional accesses do not trip the
    wasted-sync diagnostic.
    """

    def __init__(self, phase_of: Optional[Callable[[], str]] = None) -> None:
        self._phase_of = phase_of or (lambda: "")
        self.epoch = 0
        self.syncs = 0
        self.redundant_syncs = 0
        self.accesses = 0
        self.hazards: List[Hazard] = []
        self._traffic_since_sync = False
        self._arrays: List[str] = []
        self._written: dict = {}  # label -> first write phase
        self._epoch_accesses: dict = {}  # label -> [_Access, ...]
        self._seen: set = set()  # dedup key per racing pair shape
        self._finalized: Optional[SanitizeReport] = None

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def register(self, label: str) -> None:
        """Record an allocated shared array under ``label``."""
        self._arrays.append(label)

    def note_traffic(self) -> None:
        """Mark charged (cost-only) shared traffic for the sync audit."""
        self._traffic_since_sync = True

    def on_access(self, mem, kind: str, index, lane: Optional[int]) -> None:
        """Record one functional access and check it against this epoch."""
        self.accesses += 1
        self._traffic_since_sync = True
        label = getattr(mem, "label", "shared")
        words = self._normalize(index, mem.words)
        phase = self._phase_of()
        if kind == "write" and label not in self._written:
            self._written[label] = phase
        history = self._epoch_accesses.setdefault(label, [])
        for prior in history:
            if kind == "read" and prior.kind == "read":
                continue
            if (
                prior.lane is not None
                and lane is not None
                and prior.lane == lane
            ):
                continue  # one thread's private sequence is ordered
            overlap = np.intersect1d(prior.words, words, assume_unique=True)
            if overlap.size == 0:
                continue
            hazard_kind = f"{prior.kind}-{kind}"
            key = (label, hazard_kind, self.epoch, prior.phase, phase)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._emit(
                Hazard(
                    kind=hazard_kind,
                    array=label,
                    epoch=self.epoch,
                    phase=phase,
                    words=tuple(int(w) for w in overlap[:_MAX_WORDS]),
                    first_phase=prior.phase,
                    lanes=(prior.lane, lane),
                    message=(
                        f"{hazard_kind} hazard on {label}"
                        f"[{int(overlap[0])}..] in epoch {self.epoch}: "
                        f"{prior.kind} ({prior.phase or 'no phase'}) and "
                        f"{kind} ({phase or 'no phase'}) are not separated "
                        f"by a sync()"
                    ),
                )
            )
        history.append(_Access(kind=kind, words=words, lane=lane, phase=phase))

    def on_sync(self) -> None:
        """Advance the epoch; flag the sync as wasted if nothing moved."""
        self.syncs += 1
        if not self._traffic_since_sync:
            self.redundant_syncs += 1
            phase = self._phase_of()
            counter_inc("repro_sync_redundant", phase=phase)
            self._emit(
                Hazard(
                    kind="redundant-sync",
                    array="",
                    epoch=self.epoch,
                    phase=phase,
                    message=(
                        f"sync() in epoch {self.epoch} "
                        f"({phase or 'no phase'}) had no shared traffic since "
                        f"the previous barrier -- wasted alpha_sync cycles"
                    ),
                ),
                count_metric=False,  # repro_sync_redundant already counts it
            )
        self.epoch += 1
        self._traffic_since_sync = False
        self._epoch_accesses.clear()

    def finalize(self) -> SanitizeReport:
        """Close the recording and return the report (idempotent)."""
        if self._finalized is not None:
            return self._finalized
        if self.syncs == 0:
            for label, phase in self._written.items():
                self._emit(
                    Hazard(
                        kind="never-synced",
                        array=label,
                        epoch=self.epoch,
                        phase=phase,
                        message=(
                            f"shared array {label} was written "
                            f"({phase or 'no phase'}) but the engine never "
                            f"called sync()"
                        ),
                    )
                )
        self._finalized = SanitizeReport(
            hazards=tuple(self.hazards),
            syncs=self.syncs,
            redundant_syncs=self.redundant_syncs,
            accesses=self.accesses,
            arrays=tuple(self._arrays),
        )
        return self._finalized

    def report(self) -> SanitizeReport:
        """The finalized report (finalizing first if needed)."""
        return self.finalize()

    # ------------------------------------------------------------------
    def _emit(self, hazard: Hazard, count_metric: bool = True) -> None:
        self.hazards.append(hazard)
        if count_metric:
            counter_inc(
                "repro_sanitizer_hazards", kind=hazard.kind, phase=hazard.phase
            )
        add_counter("sanitizer.hazards")
        instant(
            f"sanitizer.{hazard.kind}",
            "sanitizer",
            array=hazard.array,
            epoch=hazard.epoch,
            phase=hazard.phase,
        )

    @staticmethod
    def _normalize(index, words: int) -> np.ndarray:
        """Word slots an access touches, as a sorted unique int64 array."""
        if isinstance(index, slice):
            return np.arange(words, dtype=np.int64)[index]
        arr = np.asarray(index)
        if arr.dtype == bool:
            return np.nonzero(arr.ravel())[0].astype(np.int64)
        return np.unique(arr.ravel().astype(np.int64))
