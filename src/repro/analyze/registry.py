"""Sanitizer sweep registry: every device kernel, several shapes.

``python -m repro.analyze sanitize`` runs each registered case under
:func:`repro.analyze.sanitizing` and reports the per-launch
:class:`~repro.analyze.sanitizer.SanitizeReport`.  Problem batches come
from the same generators the tests use (``kernels.batched.problems``),
seeded, so a sweep is deterministic run-to-run.

The per-thread kernels never touch shared memory (one problem per
thread, registers only), so their cases exist to prove the sweep covers
the whole device-kernel surface: they report ``sanitizer: None`` and
count as trivially clean.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

import numpy as np

__all__ = ["SweepCase", "run_sweep", "sweep_cases"]

#: Matrix sizes covering a single panel (4), the Figure 8 sweet spot
#: (8), and a ragged multi-panel shape (13).
_SIZES = (4, 8, 13)
_BATCH = 4


@dataclasses.dataclass(frozen=True)
class SweepCase:
    """One sanitizer run: a named kernel at one problem shape."""

    kernel: str
    shape: str
    run: Callable[[], Optional[object]]  # returns SanitizeReport or None


def _problems(n: int, seed: int, batch: int = _BATCH):
    from ..kernels.batched.problems import diagonally_dominant_batch, rhs_batch

    a = diagonally_dominant_batch(batch, n, seed=seed)
    b = rhs_batch(batch, n, seed=seed + 1)
    return a, b


def _hpd(n: int, seed: int, batch: int = _BATCH) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((batch, n, n)).astype(np.float32)
    return (a @ a.transpose(0, 2, 1) + n * np.eye(n, dtype=np.float32)).astype(
        np.float32
    )


def _tall(m: int, n: int, seed: int, batch: int = _BATCH):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((batch, m, n)).astype(np.float32),
        rng.standard_normal((batch, m)).astype(np.float32),
    )


def sweep_cases() -> List[SweepCase]:
    """Every (kernel, shape) pair the sanitize CLI exercises."""
    from ..kernels.device.per_block_cholesky import per_block_cholesky
    from ..kernels.device.per_block_gj import per_block_gauss_jordan
    from ..kernels.device.per_block_lstsq import per_block_least_squares
    from ..kernels.device.per_block_lu import per_block_lu
    from ..kernels.device.per_block_lu_pivot import per_block_lu_pivot
    from ..kernels.device.per_block_qr import per_block_qr, per_block_qr_solve
    from ..kernels.device.per_thread import per_thread_factor

    def launch_report(result):
        return result.launch.sanitizer

    cases: List[SweepCase] = []
    for n in _SIZES:
        seed = 100 + n

        def lu(n=n, seed=seed):
            a, _ = _problems(n, seed)
            return launch_report(per_block_lu(a))

        def lu_pivot(n=n, seed=seed):
            a, _ = _problems(n, seed)
            return launch_report(per_block_lu_pivot(a))

        def qr(n=n, seed=seed):
            a, _ = _tall(n + 4, n, seed)
            return launch_report(per_block_qr(a))

        def qr_solve(n=n, seed=seed):
            a, b = _problems(n, seed)
            return launch_report(per_block_qr_solve(a, b))

        def gauss_jordan(n=n, seed=seed):
            a, b = _problems(n, seed)
            return launch_report(per_block_gauss_jordan(a, b))

        def cholesky(n=n, seed=seed):
            return launch_report(per_block_cholesky(_hpd(n, seed)))

        def least_squares(n=n, seed=seed):
            a, b = _tall(n + 4, n, seed)
            return launch_report(per_block_least_squares(a, b))

        def thread_qr(n=n, seed=seed):
            a, _ = _problems(n, seed)
            per_thread_factor(a, kind="qr")
            return None  # registers only -- no shared memory to sanitize

        def thread_lu(n=n, seed=seed):
            a, _ = _problems(n, seed)
            per_thread_factor(a, kind="lu")
            return None

        for kernel, fn in [
            ("per_block_lu", lu),
            ("per_block_lu_pivot", lu_pivot),
            ("per_block_qr", qr),
            ("per_block_qr_solve", qr_solve),
            ("per_block_gauss_jordan", gauss_jordan),
            ("per_block_cholesky", cholesky),
            ("per_block_least_squares", least_squares),
            ("per_thread_qr", thread_qr),
            ("per_thread_lu", thread_lu),
        ]:
            m = n + 4 if kernel in ("per_block_qr", "per_block_least_squares") else n
            cases.append(SweepCase(kernel=kernel, shape=f"{m}x{n}", run=fn))
    return cases


def run_sweep(cases: Optional[List[SweepCase]] = None) -> List[dict]:
    """Run the sweep under the sanitizer; one result dict per case.

    Each dict carries ``kernel``, ``shape``, ``ok``, and either the full
    report (``hazards``, ``syncs``, ``redundant_syncs``, ...) or
    ``report: None`` for shared-memory-free kernels.
    """
    from .sanitizer import sanitizing

    results: List[dict] = []
    for case in cases if cases is not None else sweep_cases():
        with sanitizing(True):
            report = case.run()
        entry = {"kernel": case.kernel, "shape": case.shape}
        if report is None:
            entry.update(ok=True, report=None)
        else:
            entry.update(
                ok=report.ok and report.redundant_syncs == 0,
                report=report.to_dict(),
            )
        results.append(entry)
    return results
