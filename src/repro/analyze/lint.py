"""Static kernel-protocol linter: project-specific AST rules (stdlib only).

Six rules, each guarding an invariant the rest of the repo documents
and tests:

========  ==============================================================
RPR001    Shape/stride-dependent reductions (``np.einsum`` with a
          contracted subscript, ``.dot``, axis-less ``.sum()``) in
          kernel code.  ``repro.runtime`` guarantees chunked ==
          unsharded *bitwise*; a reduction whose accumulation order can
          vary with operand shapes breaks it (see ``batch_dot``).
RPR002    ``SharedMemory.write`` in a device-kernel function with no
          reachable ``sync()`` in the same function: a cross-thread
          publish with no barrier.
RPR003    Nondeterminism sources in ``runtime/`` / ``kernels/``:
          ``time.time``/``time_ns``, legacy global-state
          ``np.random.*`` / stdlib ``random.*`` calls, and iteration
          over a raw ``_families`` metric dict (arbitrary order).
RPR004    A file that calls ``allocate_shared`` but never
          ``charge_shared``: functional scratchpad traffic with no cost
          accounting, so Eq. 2's beta term silently under-counts.
RPR005    Float-literal ``==`` / ``!=`` comparisons outside tests.
RPR006    Unused suppression: an RPR code in a noqa comment whose rule
          ran on the file but reported nothing on that line.  Stale
          suppressions hide future regressions silently; delete them
          (or fix the code the comment claims to excuse).  Only codes
          of rules that actually ran are audited -- a scope-skipped
          rule's suppression is left alone -- and third-party codes
          (ruff's, say) are never touched.
========  ==============================================================

Suppression is noqa-style: a trailing ``# noqa: RPR001`` comment (codes
comma-separated; bare ``# noqa`` silences every rule on the line) with,
by convention, a ``--`` reason.  The CLI (``python -m repro.analyze
lint``) emits human or JSON output and a ``--strict`` exit code; see
``docs/analyze.md`` for bad/good examples of every rule.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "UnknownRuleError",
    "lint_file",
    "lint_paths",
    "lint_source",
]


class UnknownRuleError(ValueError):
    """A requested rule code does not exist (a spec error, CLI exit 2)."""

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Legacy global-state numpy RNG entry points (seeded or not, they share
#: hidden process state; kernels must thread a Generator instead).
_NP_RANDOM_LEGACY = frozenset(
    {
        "rand", "randn", "random", "randint", "random_sample", "ranf",
        "sample", "seed", "shuffle", "permutation", "choice", "normal",
        "uniform", "standard_normal", "exponential", "beta", "gamma",
    }
)
_STDLIB_RANDOM = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "seed", "betavariate", "normalvariate",
    }
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint hit: a rule violation at a source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclasses.dataclass(frozen=True)
class Rule:
    """A lint rule: code, summary, path scope, and its AST checker."""

    code: str
    summary: str
    #: Path fragments (posix, slash-wrapped) the rule applies to;
    #: ``None`` = everywhere.  Ignored when ``respect_scope=False``.
    scope: Optional[Tuple[str, ...]]
    checker: Callable[[ast.Module], List[Tuple[int, int, str]]]
    #: Rule is skipped for test files (paths containing ``/tests/`` or
    #: named ``test_*``/``bench_*``) when scoping is respected.
    skip_tests: bool = False


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as ``"a.b.c"``; ``None`` for non-name expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Last name component of a method call's receiver (``x.y.write`` -> y)."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _einsum_reduces(spec: str) -> bool:
    """Whether an einsum subscript string contracts away any axis."""
    spec = spec.replace(" ", "")
    if "->" in spec:
        inputs, output = spec.split("->", 1)
    else:
        inputs = spec
        letters = [c for c in inputs if c.isalpha()]
        output = "".join(c for c in set(letters) if letters.count(c) == 1)
    in_letters = {c for c in inputs if c.isalpha()}
    return bool(in_letters - set(output))


# ----------------------------------------------------------------------
# Rule checkers: each returns (line, col, message) triples
# ----------------------------------------------------------------------
def _check_rpr001(tree: ast.Module) -> List[Tuple[int, int, str]]:
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "einsum":
            if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                node.args[0].value, str
            ):
                if _einsum_reduces(node.args[0].value):
                    hits.append(
                        (
                            node.lineno,
                            node.col_offset,
                            "reducing np.einsum: accumulation order is "
                            "shape/stride-dependent; use batch_dot or an "
                            "explicit elementwise-multiply + axis sum for "
                            "the chunked==unsharded bitwise guarantee",
                        )
                    )
        elif name == "dot" and isinstance(func, ast.Attribute):
            hits.append(
                (
                    node.lineno,
                    node.col_offset,
                    ".dot() dispatches to BLAS with shape-dependent "
                    "blocking; use batch_dot / @ on fixed axes",
                )
            )
        elif name == "sum" and isinstance(func, ast.Attribute):
            has_axis = bool(node.args) or any(
                kw.arg == "axis" for kw in node.keywords
            )
            if not has_axis:
                hits.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "axis-less .sum() reduces over every axis including "
                        "the batch; pass an explicit per-problem axis",
                    )
                )
    return hits


def _check_rpr002(tree: ast.Module) -> List[Tuple[int, int, str]]:
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        writes: List[ast.Call] = []
        has_sync = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr == "sync":
                has_sync = True
            elif isinstance(func, ast.Name) and func.id == "sync":
                has_sync = True
            elif isinstance(func, ast.Attribute) and func.attr == "write":
                receiver = _receiver_name(func)
                if receiver and receiver.startswith("sh"):
                    writes.append(sub)
        if writes and not has_sync:
            for call in writes:
                hits.append(
                    (
                        call.lineno,
                        call.col_offset,
                        f"shared-memory write in {node.name}() with no "
                        f"sync() in the same function: cross-thread "
                        f"publish without a barrier",
                    )
                )
    return hits


def _check_rpr003(tree: ast.Module) -> List[Tuple[int, int, str]]:
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            full = _dotted(node.func)
            if full is None:
                continue
            parts = full.split(".")
            if full in ("time.time", "time.time_ns"):
                hits.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{full}() is a nondeterminism source in kernel/"
                        f"runtime code; thread timestamps in explicitly",
                    )
                )
            elif (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[-2] == "random"
                and parts[-1] in _NP_RANDOM_LEGACY
            ):
                hits.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"legacy global-state {full}(); use a seeded "
                        f"np.random.default_rng Generator",
                    )
                )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM
            ):
                hits.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"stdlib {full}() draws from hidden global state; "
                        f"use a seeded Generator",
                    )
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            # unwrap .items()/.keys()/.values()
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr in ("items", "keys", "values")
            ):
                iterable = iterable.func.value
            if isinstance(iterable, ast.Attribute) and iterable.attr == "_families":
                hits.append(
                    (
                        iterable.lineno,
                        iterable.col_offset,
                        "iterating a raw metric-family dict: exposition "
                        "order is insertion order, not deterministic "
                        "across runs; iterate sorted(...) keys",
                    )
                )
    return hits


def _check_rpr004(tree: ast.Module) -> List[Tuple[int, int, str]]:
    allocs: List[ast.Call] = []
    has_charge = False
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "allocate_shared":
            allocs.append(node)
        elif name == "charge_shared":
            has_charge = True
    if not allocs or has_charge:
        return []
    return [
        (
            call.lineno,
            call.col_offset,
            "allocate_shared() with no charge_shared() anywhere in this "
            "file: scratchpad traffic is never cost-accounted (Eq. 2 "
            "beta term under-counts)",
        )
        for call in allocs
    ]


def _check_rpr005(tree: ast.Module) -> List[Tuple[int, int, str]]:
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(
            isinstance(o, ast.Constant) and isinstance(o.value, float)
            for o in operands
        ):
            hits.append(
                (
                    node.lineno,
                    node.col_offset,
                    "float-literal ==/!= comparison: rounding makes exact "
                    "float equality fragile; compare against a tolerance "
                    "or an integer sentinel",
                )
            )
    return hits


def _check_rpr006(tree: ast.Module) -> List[Tuple[int, int, str]]:
    """Placeholder: RPR006 audits noqa comments, not the AST.

    Findings are synthesized by :func:`lint_source` after every other
    selected rule has run, because "unused" is only decidable once we
    know which suppressions absorbed a real finding.
    """
    return []


RULES: Dict[str, Rule] = {
    "RPR001": Rule(
        "RPR001",
        "shape/stride-dependent reduction in kernel code",
        scope=("/kernels/device/", "/kernels/batched/"),
        checker=_check_rpr001,
    ),
    "RPR002": Rule(
        "RPR002",
        "shared-memory write with no sync() in the same function",
        scope=("/kernels/device/",),
        checker=_check_rpr002,
    ),
    "RPR003": Rule(
        "RPR003",
        "nondeterminism source in runtime/kernel code",
        scope=("/runtime/", "/kernels/"),
        checker=_check_rpr003,
    ),
    "RPR004": Rule(
        "RPR004",
        "allocate_shared never cost-accounted via charge_shared",
        scope=None,
        checker=_check_rpr004,
    ),
    "RPR005": Rule(
        "RPR005",
        "float-literal equality comparison",
        scope=None,
        checker=_check_rpr005,
        skip_tests=True,
    ),
    "RPR006": Rule(
        "RPR006",
        "unused noqa suppression",
        scope=None,
        checker=_check_rpr006,
    ),
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _noqa_lines(source: str) -> Dict[int, Optional[frozenset]]:
    """Per-line suppressions: ``None`` = bare noqa (all), else codes."""
    out: Dict[int, Optional[frozenset]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


def _suppressed(
    finding_line: int,
    end_line: int,
    code: str,
    noqa: Dict[int, Optional[frozenset]],
) -> bool:
    for lineno in (finding_line, end_line):
        codes = noqa.get(lineno, False)
        if codes is False:
            continue
        if codes is None or code in codes:
            return True
    return False


def _mark_used(
    finding_line: int,
    end_line: int,
    code: str,
    noqa: Dict[int, Optional[frozenset]],
    used: set,
) -> None:
    """Record which explicit (line, code) suppressions absorbed a finding."""
    for lineno in (finding_line, end_line):
        codes = noqa.get(lineno, False)
        if codes is not False and codes is not None and code in codes:
            used.add((lineno, code))


def _is_test_path(posix: str) -> bool:
    name = posix.rsplit("/", 1)[-1]
    return (
        "/tests/" in posix
        or name.startswith("test_")
        or name.startswith("bench_")
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Lint one source string; the workhorse behind :func:`lint_file`.

    ``respect_scope=False`` applies every requested rule regardless of
    the file's location -- how the golden-fixture tests exercise rules
    scoped to kernel directories.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="RPR000",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    posix = "/" + Path(path).as_posix().lstrip("/")
    noqa = _noqa_lines(source)
    findings: List[Finding] = []
    if rules is not None:
        requested = list(rules)
        unknown = [c for c in requested if c not in RULES]
        if unknown:
            raise UnknownRuleError(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"known rules: {', '.join(RULES)}"
            )
        selected = [RULES[c] for c in requested]
    else:
        selected = list(RULES.values())
    used: set = set()
    ran: set = set()
    audit_unused = False
    for rule in selected:
        if respect_scope:
            if rule.scope is not None and not any(s in posix for s in rule.scope):
                continue
            if rule.skip_tests and _is_test_path(posix):
                continue
        ran.add(rule.code)
        if rule.code == "RPR006":
            audit_unused = True
            continue
        for line, col, message in rule.checker(tree):
            end_line = line
            if _suppressed(line, end_line, rule.code, noqa):
                _mark_used(line, end_line, rule.code, noqa, used)
            else:
                findings.append(
                    Finding(
                        rule=rule.code, path=path, line=line, col=col,
                        message=message,
                    )
                )
    if audit_unused:
        # Audit only codes whose rule actually ran on this file: a
        # scope-skipped rule might have fired here, so its suppressions
        # are not provably stale.  Bare noqa and non-RPR codes are
        # someone else's business.
        for lineno in sorted(noqa):
            codes = noqa[lineno]
            if codes is None:
                continue
            for code in sorted(codes):
                if not code.startswith("RPR") or code == "RPR006":
                    continue
                if code not in ran or (lineno, code) in used:
                    continue
                if _suppressed(lineno, lineno, "RPR006", noqa):
                    continue
                findings.append(
                    Finding(
                        rule="RPR006",
                        path=path,
                        line=lineno,
                        col=0,
                        message=(
                            f"unused suppression: {code} ran on this file "
                            f"but reported nothing on this line; delete "
                            f"the noqa or fix what it claims to excuse"
                        ),
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path,
    rules: Optional[Iterable[str]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Lint one Python file."""
    p = Path(path)
    return lint_source(
        p.read_text(), path=str(p), rules=rules, respect_scope=respect_scope
    )


def lint_paths(
    paths: Sequence,
    rules: Optional[Iterable[str]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Lint files and directory trees (``*.py``, recursively)."""
    findings: List[Finding] = []
    for entry in paths:
        p = Path(entry)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(
                lint_file(f, rules=rules, respect_scope=respect_scope)
            )
    return findings
