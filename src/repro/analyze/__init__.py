"""Correctness tooling for the simulated kernel zoo.

Two independent layers guard the shared-memory protocol the paper's
per-block kernels depend on (every cross-thread handoff bracketed by a
``__syncthreads``, Eq. 2's ``nsync * alpha_sync`` term):

* a **dynamic sanitizer** (:mod:`repro.analyze.sanitizer`) -- an opt-in
  access recorder inside :class:`~repro.gpu.shared_memory.SharedMemory`
  and :class:`~repro.gpu.simt.BlockEngine` that tags every functional
  read/write with its sync *epoch* and flags cross-lane write->read,
  write->write, and read->write hazards inside one epoch, plus
  wasted-sync and never-synced diagnostics.  Enable with
  ``REPRO_SANITIZE=1``, ``BlockEngine(sanitize=True)``, or the
  :func:`sanitizing` context manager;

* a **static lint pass** (:mod:`repro.analyze.lint`, stdlib ``ast``
  only) -- project-specific rules RPR001..RPR005 covering
  batch-invariance, kernel sync protocol, nondeterminism sources,
  unaccounted shared allocations, and float equality.

Both layers share one CLI: ``python -m repro.analyze {lint,sanitize}``
(see :mod:`repro.analyze.cli`); ``docs/analyze.md`` documents the rules
and the CI gate.
"""

from .lint import Finding, Rule, RULES, lint_file, lint_paths, lint_source
from .sanitizer import (
    Hazard,
    SanitizeReport,
    SharedSanitizer,
    sanitize_enabled,
    sanitizing,
)

__all__ = [
    "Finding",
    "Hazard",
    "RULES",
    "Rule",
    "SanitizeReport",
    "SharedSanitizer",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "run_sweep",
    "sanitize_enabled",
    "sanitizing",
    "sweep_cases",
]


def __getattr__(name: str):
    # The sweep registry and CLI import the full kernel stack; loading
    # them eagerly here would cycle through gpu.simt (which imports the
    # sanitizer).  PEP 562 keeps them one attribute access away.
    if name in ("run_sweep", "sweep_cases"):
        from . import registry

        return getattr(registry, name)
    if name == "main":
        from .cli import main

        return main
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
