"""Correctness tooling for the simulated kernel zoo.

Three independent layers guard the invariants the paper's per-block
kernels depend on (every cross-thread handoff bracketed by a
``__syncthreads``, Eq. 2's ``nsync * alpha_sync`` term, and cost
accounting that matches the predictive model):

* a **dynamic sanitizer** (:mod:`repro.analyze.sanitizer`) -- an opt-in
  access recorder inside :class:`~repro.gpu.shared_memory.SharedMemory`
  and :class:`~repro.gpu.simt.BlockEngine` that tags every functional
  read/write with its sync *epoch* and flags cross-lane write->read,
  write->write, and read->write hazards inside one epoch, plus
  wasted-sync and never-synced diagnostics.  Enable with
  ``REPRO_SANITIZE=1``, ``BlockEngine(sanitize=True)``, or the
  :func:`sanitizing` context manager;

* a **static lint pass** (:mod:`repro.analyze.lint`, stdlib ``ast``
  only) -- project-specific rules RPR001..RPR006 covering
  batch-invariance, kernel sync protocol, nondeterminism sources,
  unaccounted shared allocations, float equality, and stale noqa
  suppressions;

* a **static cost certifier** (:mod:`repro.analyze.costcheck`) -- an
  abstract interpreter that derives each kernel's closed-form resource
  footprint (flops, DRAM bytes, shared traffic, registers, syncs) from
  witness executions and holds it equal to the analytic model, the
  occupancy calculator, and live traced counters.

All layers share one CLI: ``python -m repro.analyze
{lint,sanitize,costcheck}`` (see :mod:`repro.analyze.cli`);
``docs/analyze.md`` documents the rules, the certifier, and the CI
gates.
"""

from .lint import (
    Finding,
    Rule,
    RULES,
    UnknownRuleError,
    lint_file,
    lint_paths,
    lint_source,
)
from .sanitizer import (
    Hazard,
    SanitizeReport,
    SharedSanitizer,
    sanitize_enabled,
    sanitizing,
)

__all__ = [
    "Finding",
    "Hazard",
    "RULES",
    "Rule",
    "SanitizeReport",
    "SharedSanitizer",
    "UnknownRuleError",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "run_costcheck",
    "run_sweep",
    "sanitize_enabled",
    "sanitizing",
    "sweep_cases",
]


def __getattr__(name: str):
    # The sweep registry, cost certifier, and CLI import the full kernel
    # stack; loading them eagerly here would cycle through gpu.simt
    # (which imports the sanitizer).  PEP 562 keeps them one attribute
    # access away.
    if name in ("run_sweep", "sweep_cases"):
        from . import registry

        return getattr(registry, name)
    if name == "run_costcheck":
        from .costcheck import run_costcheck

        return run_costcheck
    if name == "main":
        from .cli import main

        return main
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
