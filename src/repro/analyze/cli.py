"""Command-line entry points for the analysis subsystem.

Three subcommands mirror the three layers:

``python -m repro.analyze lint [paths...] [--json] [--strict] [--rules ...]``
    Static kernel-protocol linter over ``src/repro`` (default) or the
    given files/directories.

``python -m repro.analyze sanitize [--json] [--strict]``
    Dynamic shared-memory race sweep over every registered device
    kernel at several problem shapes.

``python -m repro.analyze costcheck {verify,table,diff} [...]``
    Static cost certifier: abstract-interpret every registered kernel,
    cross-check the derived footprints against the analytic model, the
    occupancy calculator, and a dynamic traced run (``verify``); emit
    the footprint/occupancy table (``table``); or diff footprints
    against a checked-in baseline JSON (``diff BASELINE``).

``--strict`` makes any finding/hazard/mismatch exit 1 -- how CI gates.
``--json`` emits machine-readable output (uploaded as a CI artifact).
Malformed requests (unknown rule codes, unknown case names, unreadable
baselines) exit 2, the spec-error convention shared with
``repro.experiments`` and ``repro.observe.alerts``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main"]

_DEFAULT_LINT_ROOT = Path(__file__).resolve().parents[2] / "repro"


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import UnknownRuleError, lint_paths

    paths = args.paths or [_DEFAULT_LINT_ROOT]
    rules = args.rules.split(",") if args.rules else None
    try:
        findings = lint_paths(paths, rules=rules)
    except UnknownRuleError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        print(f"{len(findings)} finding(s)")
    return 1 if (args.strict and findings) else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .registry import run_sweep

    results = run_sweep()
    bad = [r for r in results if not r["ok"]]
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        for r in results:
            if r["report"] is None:
                status = "clean (no shared memory)"
            elif r["ok"]:
                rep = r["report"]
                status = (
                    f"clean ({rep['syncs']} syncs, "
                    f"{rep['accesses']} tracked accesses)"
                )
            else:
                rep = r["report"]
                status = (
                    f"FAIL ({len(rep['hazards'])} hazard(s), "
                    f"{rep['redundant_syncs']} redundant sync(s))"
                )
            print(f"{r['kernel']:28s} {r['shape']:8s} {status}")
            if not r["ok"]:
                for h in r["report"]["hazards"]:
                    print(
                        f"    {h['kind']} on {h['array']} "
                        f"epoch {h['epoch']} phase {h['phase']!r}: "
                        f"{h['message']}"
                    )
        print(f"{len(results)} case(s), {len(bad)} with hazards")
    return 1 if (args.strict and bad) else 0


def _render_report(report) -> str:
    occ = report.occupancy
    if report.ok:
        detail = (
            f"certified ({occ.get('blocks_per_sm', '?')} blocks/SM, "
            f"limiter {occ.get('limiter', '?')})"
        )
        return f"{report.case.name:28s} {report.footprint.shape:8s} {detail}"
    lines = [f"{report.case.name:28s} {report.footprint.shape:8s} MISMATCH"]
    for term, (ours, theirs) in report.model_mismatches.items():
        lines.append(f"    model   {term}: interpreter {ours} != model {theirs}")
    for term, (ours, theirs) in report.dynamic_mismatches.items():
        lines.append(f"    dynamic {term}: traced {ours} != static {theirs}")
    if report.occupancy_violation:
        lines.append(f"    occupancy: {report.occupancy_violation}")
    return "\n".join(lines)


def _cmd_costcheck(args: argparse.Namespace) -> int:
    from .costcheck import (
        Footprint,
        UnknownCaseError,
        diff_terms,
        interpret,
        run_costcheck,
        select_cases,
    )

    try:
        cases = select_cases(args.cases.split(",") if args.cases else None)
    except UnknownCaseError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.action in ("verify", "table"):
        reports = run_costcheck(cases)
        bad = [r for r in reports if not r.ok]
        if args.json:
            print(json.dumps([r.to_dict() for r in reports], indent=2))
        else:
            for r in reports:
                print(_render_report(r))
            print(f"{len(reports)} case(s), {len(bad)} with mismatches")
        if args.action == "table":
            return 0
        return 1 if (args.strict and bad) else 0

    # diff: current interpreter footprints vs a checked-in baseline JSON
    if args.baseline is None:
        print("costcheck diff requires a baseline JSON path", file=sys.stderr)
        return 2
    try:
        entries = json.loads(Path(args.baseline).read_text())
        baseline = {}
        for entry in entries:
            fp = Footprint.from_dict(entry.get("footprint", entry))
            baseline[fp.key] = fp
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"unreadable baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2

    from ..observe.metrics import counter_inc

    drift: List[str] = []
    for case in cases:
        fp = interpret(case).footprint
        base = baseline.get(fp.key)
        if base is None:
            drift.append(f"{fp.key}: missing from baseline")
            counter_inc(
                "repro_costcheck_mismatch_total",
                kernel=case.name, term="case", check="baseline",
            )
            continue
        for term, (ours, theirs) in diff_terms(fp.terms(), base.terms()).items():
            drift.append(f"{fp.key}: {term} now {ours}, baseline {theirs}")
            counter_inc(
                "repro_costcheck_mismatch_total",
                kernel=case.name, term=term, check="baseline",
            )
    if args.json:
        print(json.dumps(drift, indent=2))
    else:
        for line in drift:
            print(line)
        print(f"{len(cases)} case(s), {len(drift)} drift line(s)")
    return 1 if drift else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.analyze``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static linter and dynamic race sanitizer for the "
        "simulated-GPU kernels.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lint = sub.add_parser("lint", help="run the RPR00x static rules")
    p_lint.add_argument("paths", nargs="*", help="files/dirs (default: src/repro)")
    p_lint.add_argument("--json", action="store_true", help="JSON output")
    p_lint.add_argument(
        "--strict", action="store_true", help="exit 1 on any finding"
    )
    p_lint.add_argument(
        "--rules", default=None, help="comma-separated rule subset (e.g. RPR001)"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_san = sub.add_parser(
        "sanitize", help="race-sweep every registered device kernel"
    )
    p_san.add_argument("--json", action="store_true", help="JSON output")
    p_san.add_argument(
        "--strict", action="store_true", help="exit 1 on any hazard"
    )
    p_san.set_defaults(func=_cmd_sanitize)

    p_cost = sub.add_parser(
        "costcheck", help="certify static kernel cost footprints"
    )
    p_cost.add_argument(
        "action",
        choices=("verify", "table", "diff"),
        help="verify: run all three checks; table: emit footprints; "
        "diff: compare footprints against a baseline JSON",
    )
    p_cost.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="baseline JSON (output of 'costcheck table --json'); "
        "required by diff",
    )
    p_cost.add_argument("--json", action="store_true", help="JSON output")
    p_cost.add_argument(
        "--strict", action="store_true", help="exit 1 on any mismatch"
    )
    p_cost.add_argument(
        "--cases",
        default=None,
        help="comma-separated kernel names or kernel[MxN] keys "
        "(default: the full registry)",
    )
    p_cost.set_defaults(func=_cmd_costcheck)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
