"""Command-line entry points for the analysis subsystem.

Two subcommands mirror the two layers:

``python -m repro.analyze lint [paths...] [--json] [--strict] [--rules ...]``
    Static kernel-protocol linter over ``src/repro`` (default) or the
    given files/directories.

``python -m repro.analyze sanitize [--json] [--strict]``
    Dynamic shared-memory race sweep over every registered device
    kernel at several problem shapes.

``--strict`` makes any finding/hazard exit nonzero -- how CI gates.
``--json`` emits machine-readable output (uploaded as a CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main"]

_DEFAULT_LINT_ROOT = Path(__file__).resolve().parents[2] / "repro"


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import RULES, lint_paths

    paths = args.paths or [_DEFAULT_LINT_ROOT]
    rules = args.rules.split(",") if args.rules else None
    if rules:
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    findings = lint_paths(paths, rules=rules)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        print(f"{len(findings)} finding(s)")
    return 1 if (args.strict and findings) else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .registry import run_sweep

    results = run_sweep()
    bad = [r for r in results if not r["ok"]]
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        for r in results:
            if r["report"] is None:
                status = "clean (no shared memory)"
            elif r["ok"]:
                rep = r["report"]
                status = (
                    f"clean ({rep['syncs']} syncs, "
                    f"{rep['accesses']} tracked accesses)"
                )
            else:
                rep = r["report"]
                status = (
                    f"FAIL ({len(rep['hazards'])} hazard(s), "
                    f"{rep['redundant_syncs']} redundant sync(s))"
                )
            print(f"{r['kernel']:28s} {r['shape']:8s} {status}")
            if not r["ok"]:
                for h in r["report"]["hazards"]:
                    print(
                        f"    {h['kind']} on {h['array']} "
                        f"epoch {h['epoch']} phase {h['phase']!r}: "
                        f"{h['message']}"
                    )
        print(f"{len(results)} case(s), {len(bad)} with hazards")
    return 1 if (args.strict and bad) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.analyze``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static linter and dynamic race sanitizer for the "
        "simulated-GPU kernels.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lint = sub.add_parser("lint", help="run the RPR00x static rules")
    p_lint.add_argument("paths", nargs="*", help="files/dirs (default: src/repro)")
    p_lint.add_argument("--json", action="store_true", help="JSON output")
    p_lint.add_argument(
        "--strict", action="store_true", help="exit 1 on any finding"
    )
    p_lint.add_argument(
        "--rules", default=None, help="comma-separated rule subset (e.g. RPR001)"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_san = sub.add_parser(
        "sanitize", help="race-sweep every registered device kernel"
    )
    p_san.add_argument("--json", action="store_true", help="JSON output")
    p_san.add_argument(
        "--strict", action="store_true", help="exit 1 on any hazard"
    )
    p_san.set_defaults(func=_cmd_sanitize)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
