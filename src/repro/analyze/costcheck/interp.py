"""Abstract interpretation of device kernels over witness inputs.

The device kernels are branch-free and data-oblivious by construction
(the paper's Section V point: every block executes the identical
instruction stream), so their charge-event sequence is a function of the
problem *shape* alone.  That property is exactly what lets a concrete
execution stand in for an abstract one: running a kernel on any witness
input *is* running it on the symbolic ``(op, m, n, batch)`` domain,
provided the event stream really is input-independent.

This module makes that proof obligation explicit.  :class:`AbstractEngine`
is a :class:`~repro.gpu.simt.BlockEngine` that records an ordered tape of
every charge event; :func:`interpret` executes a case on two independent
witnesses (different seeds *and* different batch sizes) and requires the
tapes to be identical before deriving a :class:`Footprint` -- a kernel
whose counts depend on data or batch size fails with
:class:`AbstractionError` instead of certifying a wrong footprint.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ...gpu.simt import BlockEngine
from ...kernels.device.base import block_engine_factory
from ...model.flops import matrix_bytes
from .footprint import Footprint, diff_terms

__all__ = ["AbstractEngine", "AbstractionError", "Interpretation", "interpret"]

#: Witness batch sizes: coprime and unequal, so any count that scales
#: with the batch (or depends on it at all) breaks the bisimulation.
WITNESS_BATCHES = (1, 3)
#: Seed offset between the two witnesses (independent input values).
WITNESS_SEED_STRIDE = 7919


class AbstractionError(RuntimeError):
    """A kernel's charge stream depends on its inputs -- the shape-only
    abstraction is unsound for it and no footprint can be certified."""


class AbstractEngine(BlockEngine):
    """A block engine that records an ordered charge-event tape.

    Accounting is inherited unchanged; the tape adds the event *order*
    and per-event arguments, so two runs compare as full instruction
    streams rather than mere totals.  Sanitizing and tracing are forced
    off: abstract runs must not pollute the process-global observability
    state they are later checked against.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs["sanitize"] = False
        super().__init__(*args, **kwargs)
        self._tracer = None
        self.tape: List[Tuple] = []

    def allocate_shared(self, words, dtype=None, name=None):
        self.tape.append(("alloc", name, int(words)))
        return super().allocate_shared(words, dtype=dtype, name=name)

    def charge_flops(self, ops_per_thread, *, useful_flops=None, count_spill=True):
        self.tape.append(("flops", self.current_phase, float(ops_per_thread)))
        super().charge_flops(
            ops_per_thread, useful_flops=useful_flops, count_spill=count_spill
        )

    def charge_div(self, count=1, useful_flops=None):
        self.tape.append(("div", self.current_phase, int(count)))
        super().charge_div(count, useful_flops=useful_flops)

    def charge_sqrt(self, count=1, useful_flops=None):
        self.tape.append(("sqrt", self.current_phase, int(count)))
        super().charge_sqrt(count, useful_flops=useful_flops)

    def charge_shared(self, words_per_thread, degree=1, writes=False):
        self.tape.append(
            ("shared", self.current_phase, float(words_per_thread), degree, writes)
        )
        super().charge_shared(words_per_thread, degree=degree, writes=writes)

    def sync(self):
        self.tape.append(("sync", self.current_phase))
        super().sync()

    def charge_global(self, bytes_per_block, kind="copy"):
        self.tape.append(("global", self.current_phase, float(bytes_per_block), kind))
        super().charge_global(bytes_per_block, kind=kind)


@dataclasses.dataclass(frozen=True)
class Interpretation:
    """Result of abstractly interpreting one case."""

    footprint: Footprint
    #: The certified charge-event tape (identical across witnesses).
    tape: Tuple[Tuple, ...]


def _run_witness(case, batch: int, seed: int):
    """Execute one witness under the recording engine factory."""
    engines: List[AbstractEngine] = []

    def factory(*args, **kwargs) -> AbstractEngine:
        engine = AbstractEngine(*args, **kwargs)
        engines.append(engine)
        return engine

    with block_engine_factory(factory):
        result = case.run(batch, seed)
    return result, engines


def _block_footprint(case, result, engine: AbstractEngine) -> Footprint:
    return Footprint(
        kernel=case.name,
        op=case.op,
        family=case.family,
        m=case.m,
        n=case.n,
        threads=engine.threads,
        registers=engine.registers.requested,
        flop_ops=engine._flop_thread_ops,
        divs=float(engine._div_count),
        sqrts=float(engine._sqrt_count),
        shared=engine._shared_transactions,
        shared_writes=engine._shared_writes,
        syncs=float(engine._n_sync),
        global_bytes=engine._global_bytes,
        shared_bytes=float(engine.shared_bytes),
        flops_per_problem=float(result.flops_per_problem),
    )


def _thread_footprint(case, result) -> Footprint:
    from ...kernels.device.per_thread import spill_touches

    regs = result.registers
    nbytes = matrix_bytes(case.n, case.n)
    spill = regs.spill_fraction * spill_touches(case.n) * nbytes
    return Footprint(
        kernel=case.name,
        op=case.op,
        family=case.family,
        m=case.m,
        n=case.n,
        threads=256,
        registers=regs.requested,
        global_bytes=result.dram_bytes / result.batch,
        spill_bytes=spill,
        flops_per_problem=float(result.flops_per_problem),
    )


def interpret(case) -> Interpretation:
    """Derive the certified static footprint of one case.

    Runs the kernel on two independent witnesses and requires bit-equal
    charge tapes (per-block family) or bit-equal per-problem derived
    quantities (per-thread family, which has no charge stream).
    """
    first_batch, second_batch = WITNESS_BATCHES
    result_a, engines_a = _run_witness(case, first_batch, case.seed)
    result_b, engines_b = _run_witness(
        case, second_batch, case.seed + WITNESS_SEED_STRIDE
    )

    if case.family == "per_thread":
        if engines_a or engines_b:
            raise AbstractionError(
                f"{case.name}: per-thread case unexpectedly built a block engine"
            )
        fp_a = _thread_footprint(case, result_a)
        fp_b = _thread_footprint(case, result_b)
        # Tolerance-based: dram_bytes is stored batch-multiplied, and the
        # divide back does not round-trip bit-exactly for spilled sizes.
        drift = diff_terms(fp_a.terms(), fp_b.terms())
        if drift:
            raise AbstractionError(
                f"{case.name}: per-problem footprint varies across witnesses "
                f"(batch {first_batch} vs {second_batch}): {sorted(drift)}"
            )
        # Certify the batch-1 witness: its per-problem division is exact.
        return Interpretation(footprint=fp_a, tape=())

    if len(engines_a) != 1 or len(engines_b) != 1:
        raise AbstractionError(
            f"{case.name}: expected exactly one engine per launch, got "
            f"{len(engines_a)} and {len(engines_b)}"
        )
    tape_a, tape_b = engines_a[0].tape, engines_b[0].tape
    if tape_a != tape_b:
        raise AbstractionError(
            f"{case.name}: charge tape differs between witnesses at event "
            f"{_first_divergence(tape_a, tape_b)} -- counts are input-dependent, "
            f"the shape-only abstraction is unsound for this kernel"
        )
    fp_a = _block_footprint(case, result_a, engines_a[0])
    fp_b = _block_footprint(case, result_b, engines_b[0])
    if fp_a.terms() != fp_b.terms():
        raise AbstractionError(
            f"{case.name}: accumulator totals differ between witnesses"
        )
    return Interpretation(footprint=fp_a, tape=tuple(tape_a))


def _first_divergence(tape_a: List[Tuple], tape_b: List[Tuple]) -> Optional[int]:
    for i, (a, b) in enumerate(zip(tape_a, tape_b)):
        if a != b:
            return i
    if len(tape_a) != len(tape_b):
        return min(len(tape_a), len(tape_b))
    return None
