"""The three certification checks: model, occupancy, dynamic.

For each registry case the certifier holds the interpreter-derived
:class:`~repro.analyze.costcheck.footprint.Footprint` against

1. the analytic model -- closed-form counts from
   :func:`repro.model.per_block_counts` (per-block family) or the
   Section IV roofline inputs from
   :func:`repro.model.per_thread_model.predict_per_thread` (per-thread
   family), term by term, exactly;
2. the occupancy calculator -- the certified register and scratchpad
   footprint must admit at least one resident block on the paper's
   device, via :func:`repro.gpu.occupancy.occupancy`;
3. a dynamic traced run -- the kernel re-runs at a batch size neither
   witness used, under :func:`repro.observe.tracer.tracing`, and the
   live hardware counters must equal the static footprint.

Any disagreement increments ``repro_costcheck_mismatch_total`` (labelled
by kernel, term, and check) so the alert engine can page on drift.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ...errors import LaunchConfigurationError
from ...gpu.device import QUADRO_6000, DeviceSpec
from ...gpu.occupancy import occupancy
from ...gpu.registers import RegisterAllocation
from ...kernels.device.per_block_cholesky import cholesky_flops
from ...model.flops import (
    gauss_jordan_flops,
    least_squares_flops,
    lu_flops,
    qr_flops,
)
from ...model.parameters import ModelParameters
from ...model.per_block_model import per_block_counts
from ...model.per_thread_model import predict_per_thread
from ...observe.metrics import counter_inc
from ...observe.tracer import tracing
from .cases import CostCase, cost_cases
from .footprint import Footprint, diff_terms
from .interp import interpret

__all__ = [
    "CaseReport",
    "analytic_flops",
    "certify_case",
    "model_terms",
    "run_costcheck",
]

#: Batch size for the dynamic check -- different from both witness
#: batches, so agreement is evidence of batch-independence, not replay.
DYNAMIC_BATCH = 5
DYNAMIC_SEED_STRIDE = 29

#: Tracer counter name -> footprint term, for the dynamic cross-check.
_COUNTER_TERMS = {
    "flops.per_thread_ops": "flop_ops",
    "div.count": "divs",
    "sqrt.count": "sqrts",
    "shared.transactions": "shared",
    "shared.writes": "shared_writes",
    "sync.count": "syncs",
    "global.bytes": "global_bytes",
}


@dataclasses.dataclass
class CaseReport:
    """Outcome of certifying one case: footprint plus check results."""

    case: CostCase
    footprint: Footprint
    occupancy: Dict[str, object]
    model_mismatches: Dict[str, Tuple[float, float]]
    dynamic_mismatches: Dict[str, Tuple[float, float]]
    occupancy_violation: Optional[str] = None
    notes: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return (
            not self.model_mismatches
            and not self.dynamic_mismatches
            and self.occupancy_violation is None
        )

    def to_dict(self) -> dict:
        return {
            "kernel": self.case.name,
            "shape": self.footprint.shape,
            "ok": self.ok,
            "footprint": self.footprint.to_dict(),
            "occupancy": self.occupancy,
            "model_mismatches": {
                term: list(pair) for term, pair in self.model_mismatches.items()
            },
            "dynamic_mismatches": {
                term: list(pair) for term, pair in self.dynamic_mismatches.items()
            },
            "occupancy_violation": self.occupancy_violation,
            "notes": list(self.notes),
        }


def analytic_flops(op: str, m: int, n: int) -> float:
    """The paper-convention FLOP count each kernel must claim."""
    if op in ("lu", "lu_pivot"):
        return lu_flops(n)
    if op == "qr":
        return qr_flops(m, n)
    if op == "qr_solve":
        return qr_flops(n, n) + n * n  # back substitution rides along
    if op == "gauss_jordan":
        return gauss_jordan_flops(n)
    if op == "cholesky":
        return cholesky_flops(n)
    if op == "least_squares":
        return least_squares_flops(m, n)
    raise ValueError(f"unknown factorization kind: {op!r}")


def model_terms(case: CostCase) -> Dict[str, float]:
    """Closed-form footprint terms the analytic model predicts."""
    if case.family == "per_thread":
        pred = predict_per_thread(ModelParameters.paper_table_iv(), case.op, case.n)
        return {
            "flops_per_problem": pred.flops_per_problem,
            # the roofline deliberately ignores spill traffic, so the
            # model's DRAM bytes are the footprint's minus the spills
            "global_bytes": pred.bytes_per_problem,
        }
    counts = per_block_counts(case.op, case.m, case.n)
    return {
        "flop_ops": counts.flop_ops,
        "divs": float(counts.divs),
        "sqrts": float(counts.sqrts),
        "shared": counts.shared,
        "shared_writes": counts.shared_writes,
        "syncs": float(counts.syncs),
        "global_bytes": counts.global_bytes,
        "spill_bytes": 0.0,
        "shared_bytes": float(counts.shared_bytes),
        "registers": float(counts.registers_per_thread),
        "threads": float(counts.config.threads),
        "flops_per_problem": analytic_flops(case.op, case.m, case.n),
    }


def _check_model(case: CostCase, fp: Footprint) -> Dict[str, Tuple[float, float]]:
    ours = fp.terms()
    theirs = model_terms(case)
    if case.family == "per_thread":
        # Compare only what the Section IV model speaks to; fold the
        # spill traffic out of the measured DRAM bytes first.
        ours = {
            "flops_per_problem": ours["flops_per_problem"],
            "global_bytes": ours["global_bytes"] - ours["spill_bytes"],
        }
    return diff_terms(ours, theirs)


def _check_occupancy(
    fp: Footprint, device: DeviceSpec
) -> Tuple[Dict[str, object], Optional[str]]:
    alloc = RegisterAllocation(device=device, requested=int(fp.registers))
    row: Dict[str, object] = {
        "device": device.name,
        "registers_requested": alloc.requested,
        "registers_granted": alloc.granted(),
        "spills": alloc.spills,
        "shared_bytes": fp.shared_bytes,
    }
    try:
        occ = occupancy(
            device, int(fp.threads), alloc.granted(), int(fp.shared_bytes)
        )
    except LaunchConfigurationError as exc:
        return row, str(exc)
    row.update(
        blocks_per_sm=occ.blocks_per_sm,
        blocks_per_chip=occ.blocks_per_chip,
        limiter=occ.limiter,
        occupancy_fraction=round(occ.occupancy_fraction, 4),
    )
    return row, None


def _check_dynamic(case: CostCase, fp: Footprint) -> Dict[str, Tuple[float, float]]:
    seed = case.seed + DYNAMIC_SEED_STRIDE
    if case.family == "per_thread":
        result = case.run(DYNAMIC_BATCH, seed)
        measured = {"global_bytes": result.dram_bytes / result.batch}
        return diff_terms(measured, {"global_bytes": fp.global_bytes})
    with tracing() as tracer:
        case.run(DYNAMIC_BATCH, seed)
    measured = {
        term: tracer.counters.value(counter)
        for counter, term in _COUNTER_TERMS.items()
    }
    expected = {term: fp.terms()[term] for term in measured}
    return diff_terms(measured, expected)


def _emit_mismatch_metrics(report: CaseReport) -> None:
    for term in report.model_mismatches:
        counter_inc(
            "repro_costcheck_mismatch_total",
            kernel=report.case.name,
            term=term,
            check="model",
        )
    for term in report.dynamic_mismatches:
        counter_inc(
            "repro_costcheck_mismatch_total",
            kernel=report.case.name,
            term=term,
            check="dynamic",
        )
    if report.occupancy_violation is not None:
        counter_inc(
            "repro_costcheck_mismatch_total",
            kernel=report.case.name,
            term="resident_blocks",
            check="occupancy",
        )


def certify_case(case: CostCase, device: DeviceSpec = QUADRO_6000) -> CaseReport:
    """Interpret one case and run all three checks against its footprint."""
    interp = interpret(case)
    fp = interp.footprint
    occ_row, violation = _check_occupancy(fp, device)
    notes: List[str] = []
    if occ_row.get("spills"):
        notes.append(
            "register footprint exceeds the architectural limit; spill "
            "traffic is certified but occupancy uses the capped grant"
        )
    report = CaseReport(
        case=case,
        footprint=fp,
        occupancy=occ_row,
        model_mismatches=_check_model(case, fp),
        dynamic_mismatches=_check_dynamic(case, fp),
        occupancy_violation=violation,
        notes=tuple(notes),
    )
    _emit_mismatch_metrics(report)
    return report


def run_costcheck(
    cases: Optional[List[CostCase]] = None, device: DeviceSpec = QUADRO_6000
) -> List[CaseReport]:
    """Certify every case (or the given subset); one report per case."""
    return [
        certify_case(case, device)
        for case in (cases if cases is not None else cost_cases())
    ]
