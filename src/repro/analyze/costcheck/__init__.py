"""Static cost certifier for the device-kernel surface.

``repro.analyze.costcheck`` abstractly interprets every kernel in the
sweep registry over symbolic ``(op, m, n, batch)`` domains and certifies
the derived closed-form footprints -- flops, global load/store bytes,
shared-memory traffic, register estimate, synchronization count --
against three independent oracles:

1. **the analytic model** (:func:`repro.model.per_block_counts` and
   :func:`repro.model.per_thread_model.predict_per_thread`): exact
   per-term equality, so the paper's predictive model and the simulated
   kernels can never silently drift apart;
2. **the occupancy calculator** (:func:`repro.gpu.occupancy.occupancy`):
   the certified footprint must admit resident blocks on the paper's
   Quadro 6000;
3. **a dynamic traced run** (:mod:`repro.observe`): live hardware
   counters at an unseen batch size must equal the static footprint.

The per-block tiled pipelines (:mod:`repro.tiled`) compose the certified
per-block launches and are covered transitively.

CLI: ``python -m repro.analyze costcheck {verify,table,diff}``.
"""

from __future__ import annotations

from .cases import CostCase, UnknownCaseError, cost_cases, select_cases
from .checks import (
    CaseReport,
    analytic_flops,
    certify_case,
    model_terms,
    run_costcheck,
)
from .footprint import COUNT_TERMS, Footprint, diff_terms
from .interp import AbstractEngine, AbstractionError, Interpretation, interpret

__all__ = [
    "AbstractEngine",
    "AbstractionError",
    "CaseReport",
    "COUNT_TERMS",
    "CostCase",
    "Footprint",
    "Interpretation",
    "UnknownCaseError",
    "analytic_flops",
    "certify_case",
    "cost_cases",
    "diff_terms",
    "interpret",
    "model_terms",
    "run_costcheck",
    "select_cases",
]
