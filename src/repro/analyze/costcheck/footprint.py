"""Static cost footprints: the certifier's abstract domain.

A :class:`Footprint` is the closed-form resource profile of one kernel
at one problem shape -- every term is a function of ``(op, m, n)`` alone,
never of the batch size or the matrix values.  The abstract interpreter
(:mod:`repro.analyze.costcheck.interp`) derives footprints by running
kernels over witness inputs; the analytic model
(:func:`repro.model.per_block_model.per_block_counts`) derives the same
terms in closed form; :mod:`repro.analyze.costcheck.checks` holds the
two equal and diffs footprints against checked-in baselines.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple

__all__ = ["COUNT_TERMS", "Footprint", "diff_terms"]

#: Terms compared between interpreter, analytic model, and baselines.
#: Every one must be batch- and data-independent for the kernel family.
COUNT_TERMS = (
    "flop_ops",
    "divs",
    "sqrts",
    "shared",
    "shared_writes",
    "syncs",
    "global_bytes",
    "spill_bytes",
    "shared_bytes",
    "registers",
    "threads",
    "flops_per_problem",
)


@dataclasses.dataclass(frozen=True)
class Footprint:
    """Per-problem static resource profile of one kernel launch."""

    kernel: str
    #: Factorization kind (analytic-model key, e.g. ``"lu_pivot"``).
    op: str
    #: ``"per_block"`` or ``"per_thread"``.
    family: str
    m: int
    n: int
    threads: int
    #: Registers *requested* per thread (before the architectural cap).
    registers: int
    #: Dependent FP ops per thread (``charge_flops`` units); zero for
    #: the per-thread family, whose flop count is ``flops_per_problem``.
    flop_ops: float = 0.0
    divs: float = 0.0
    sqrts: float = 0.0
    #: Shared words per thread (``charge_shared`` units) and the write
    #: subset.
    shared: float = 0.0
    shared_writes: float = 0.0
    syncs: float = 0.0
    #: DRAM bytes per problem (load + store), including spill traffic.
    global_bytes: float = 0.0
    #: Spill re-touch bytes folded into ``global_bytes`` (per-thread
    #: family only) -- deliberately absent from the roofline model.
    spill_bytes: float = 0.0
    #: Scratchpad bytes per block.
    shared_bytes: float = 0.0
    #: The kernel's claimed algorithmic FLOPs (paper conventions).
    flops_per_problem: float = 0.0

    @property
    def key(self) -> str:
        return f"{self.kernel}[{self.m}x{self.n}]"

    @property
    def shape(self) -> str:
        return f"{self.m}x{self.n}"

    def terms(self) -> Dict[str, float]:
        """The compared terms as a plain name -> value mapping."""
        return {name: float(getattr(self, name)) for name in COUNT_TERMS}

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "Footprint":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


def diff_terms(
    ours: Mapping[str, float], theirs: Mapping[str, float], tol: float = 1e-9
) -> Dict[str, Tuple[float, float]]:
    """Per-term differences: ``{term: (ours, theirs)}`` where they differ.

    Terms present on either side are compared (a missing term reads as
    0.0 -- absent counters mean no events).  The tolerance only absorbs
    float round-off from summation order; counts are exact integers or
    dyadic rationals, so any real change clears it by orders of
    magnitude.
    """
    out: Dict[str, Tuple[float, float]] = {}
    for term in sorted(set(ours) | set(theirs)):
        a = float(ours.get(term, 0.0))
        b = float(theirs.get(term, 0.0))
        if abs(a - b) > tol * max(1.0, abs(a), abs(b)):
            out[term] = (a, b)
    return out
