"""The certifier's case registry: the sanitizer sweep, re-parameterized.

The 27 cases mirror :func:`repro.analyze.registry.sweep_cases` -- the
same nine kernels at the same three sizes with the same seeds -- but
each runner takes ``(batch, seed)`` so the abstract interpreter can
execute independent witnesses.  Keeping the two registries aligned means
"the kernel surface CI race-checks" and "the kernel surface CI
cost-certifies" are the same set by construction.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from ..registry import _SIZES, _hpd, _problems, _tall

__all__ = ["CostCase", "UnknownCaseError", "cost_cases", "select_cases"]

#: Kernel name -> analytic-model kind (``per_block_counts`` key for the
#: per-block family, ``predict_per_thread`` kind for the per-thread one).
KERNEL_OPS = {
    "per_block_lu": "lu",
    "per_block_lu_pivot": "lu_pivot",
    "per_block_qr": "qr",
    "per_block_qr_solve": "qr_solve",
    "per_block_gauss_jordan": "gauss_jordan",
    "per_block_cholesky": "cholesky",
    "per_block_least_squares": "least_squares",
    "per_thread_qr": "qr",
    "per_thread_lu": "lu",
}


class UnknownCaseError(ValueError):
    """A requested kernel/case name is not in the certifier registry."""


@dataclasses.dataclass(frozen=True)
class CostCase:
    """One certifiable kernel launch shape."""

    name: str
    op: str
    family: str  # "per_block" | "per_thread"
    m: int
    n: int
    seed: int
    #: ``run(batch, seed)`` executes the kernel on a fresh witness input.
    run: Callable[[int, int], object]

    @property
    def key(self) -> str:
        return f"{self.name}[{self.m}x{self.n}]"


def cost_cases() -> List[CostCase]:
    """Every (kernel, shape) pair the costcheck CLI certifies."""
    from ...kernels.device.per_block_cholesky import per_block_cholesky
    from ...kernels.device.per_block_gj import per_block_gauss_jordan
    from ...kernels.device.per_block_lstsq import per_block_least_squares
    from ...kernels.device.per_block_lu import per_block_lu
    from ...kernels.device.per_block_lu_pivot import per_block_lu_pivot
    from ...kernels.device.per_block_qr import per_block_qr, per_block_qr_solve
    from ...kernels.device.per_thread import per_thread_factor

    cases: List[CostCase] = []
    for n in _SIZES:
        base_seed = 100 + n

        def lu(batch, seed, n=n):
            a, _ = _problems(n, seed, batch)
            return per_block_lu(a)

        def lu_pivot(batch, seed, n=n):
            a, _ = _problems(n, seed, batch)
            return per_block_lu_pivot(a)

        def qr(batch, seed, n=n):
            a, _ = _tall(n + 4, n, seed, batch)
            return per_block_qr(a)

        def qr_solve(batch, seed, n=n):
            a, b = _problems(n, seed, batch)
            return per_block_qr_solve(a, b)

        def gauss_jordan(batch, seed, n=n):
            a, b = _problems(n, seed, batch)
            return per_block_gauss_jordan(a, b)

        def cholesky(batch, seed, n=n):
            return per_block_cholesky(_hpd(n, seed, batch))

        def least_squares(batch, seed, n=n):
            a, b = _tall(n + 4, n, seed, batch)
            return per_block_least_squares(a, b)

        def thread_qr(batch, seed, n=n):
            a, _ = _problems(n, seed, batch)
            return per_thread_factor(a, kind="qr")

        def thread_lu(batch, seed, n=n):
            a, _ = _problems(n, seed, batch)
            return per_thread_factor(a, kind="lu")

        for kernel, fn in [
            ("per_block_lu", lu),
            ("per_block_lu_pivot", lu_pivot),
            ("per_block_qr", qr),
            ("per_block_qr_solve", qr_solve),
            ("per_block_gauss_jordan", gauss_jordan),
            ("per_block_cholesky", cholesky),
            ("per_block_least_squares", least_squares),
            ("per_thread_qr", thread_qr),
            ("per_thread_lu", thread_lu),
        ]:
            m = n + 4 if kernel in ("per_block_qr", "per_block_least_squares") else n
            cases.append(
                CostCase(
                    name=kernel,
                    op=KERNEL_OPS[kernel],
                    family="per_thread" if kernel.startswith("per_thread") else (
                        "per_block"
                    ),
                    m=m,
                    n=n,
                    seed=base_seed,
                    run=fn,
                )
            )
    return cases


def select_cases(
    names: Optional[Sequence[str]] = None, cases: Optional[List[CostCase]] = None
) -> List[CostCase]:
    """Filter the registry by kernel name or ``kernel[MxN]`` key.

    Raises :class:`UnknownCaseError` (the CLI's exit-2 spec error) when a
    requested name matches nothing.
    """
    pool = cases if cases is not None else cost_cases()
    if not names:
        return pool
    known = {c.name for c in pool} | {c.key for c in pool}
    missing = [name for name in names if name not in known]
    if missing:
        raise UnknownCaseError(
            f"unknown case(s): {', '.join(missing)}; known kernels: "
            + ", ".join(sorted({c.name for c in pool}))
        )
    return [c for c in pool if c.name in names or c.key in names]
