#!/usr/bin/env python
"""Gate CI on the experiment engine's matrix artifact.

Reads the ``matrix.json`` produced by::

    python -m repro.experiments run benchmarks/specs/ci_regression.toml \
        --out BENCH_matrix

and compares it against the checked-in baseline matrix
(``benchmarks/baselines/ci_baseline.json`` by default) with the
direction-aware semantics of :mod:`repro.experiments.gate`: throughput
gauges may not drop more than ``--tolerance`` (default 10%), model-error
and failure gauges may not rise more than it, structural gauges
(chunks, problems, cell statuses) must match exactly, and a gauge that
disappears from the current run fails the gate.

Wall-clock timings never enter the matrix: the simulated GPU is
deterministic, so its throughput/accuracy numbers are portable across
CI hosts while wall time is not.  ``--update`` rewrites the baseline
from the current matrix instead of checking (prefer
``scripts/regen_baseline.py``, which re-runs the spec from scratch).
"""

from __future__ import annotations

import argparse
import shutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments import diff_artifacts, load_artifact  # noqa: E402

DEFAULT_BASELINE = REPO / "benchmarks/baselines/ci_baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "matrix", type=Path, help="matrix.json from python -m repro.experiments run"
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current matrix over the baseline and exit",
    )
    args = parser.parse_args(argv)

    try:
        current = load_artifact(args.matrix)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.matrix, args.baseline)
        print(
            f"baseline updated: {args.baseline} "
            f"({len(current.get('cells', []))} cells)"
        )
        return 0

    try:
        baseline = load_artifact(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = diff_artifacts(current, baseline, args.tolerance)
    for line in report.lines():
        print(line)
    checked = len(report.deltas)
    if not report.ok:
        print(f"{len(report.failures)} of {checked} gauges regressed")
        return 1
    print(f"all {checked} gauges within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
