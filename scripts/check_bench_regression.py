#!/usr/bin/env python
"""Gate CI on the figure benchmarks' headline numbers.

Reads the JSON-array metrics file produced by::

    pytest benchmarks/bench_fig4_per_thread.py benchmarks/bench_fig9_per_block.py \
        --benchmark-only --json BENCH_ci.json

and compares a set of machine-independent gauges against the checked-in
baseline (``benchmarks/baselines/ci_baseline.json`` by default):

* every numeric ``extra_info`` entry (headline GFLOPS -- higher is better),
* the peak of every ``<op>_measured`` series (higher is better),
* the mean relative model error wherever a ``<op>_measured`` /
  ``<op>_predicted`` pair exists (lower is better).

Wall-clock timings are deliberately excluded: the simulated GPU is
deterministic, so its throughput/accuracy numbers are portable across CI
hosts while ``timing`` is not.  A gauge regressing by more than
``--tolerance`` (direction-aware, default 10%) fails the gate, as does a
gauge that disappears from the current run.  ``--update`` rewrites the
baseline from the current metrics instead of checking.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines/ci_baseline.json"
)

#: Additive slack for lower-is-better gauges whose baseline is ~0 (a
#: perfect model error must be allowed to wiggle in the last float bits).
ABS_SLACK = 1e-9


def extract_gauges(records: list[dict]) -> dict[str, dict]:
    """Flatten benchmark records into ``{gauge: {value, direction}}``."""
    gauges: dict[str, dict] = {}

    def put(name: str, value: float, direction: str) -> None:
        gauges[name] = {"value": float(value), "direction": direction}

    for record in records:
        bench = record.get("name", "unknown")
        for key, value in (record.get("extra_info") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                put(f"{bench}.{key}", value, "higher")
        metrics = record.get("metrics") or {}
        for key, series in metrics.items():
            if not key.endswith("_measured"):
                continue
            op = key[: -len("_measured")]
            measured = _numeric_series(series)
            if measured:
                put(f"{bench}.throughput.{op}_peak", max(measured), "higher")
            predicted = _numeric_series(metrics.get(f"{op}_predicted"))
            if measured and predicted and len(measured) == len(predicted):
                errs = [abs(m - p) / abs(m) for m, p in zip(measured, predicted) if m]
                if errs:
                    put(
                        f"{bench}.accuracy.{op}_mean_rel_err",
                        sum(errs) / len(errs),
                        "lower",
                    )
    return gauges


def _numeric_series(series) -> list[float]:
    if not isinstance(series, list):
        return []
    out = []
    for v in series:
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            out.append(float(v))
        else:
            return []
    return out


def compare(
    current: dict[str, dict], baseline: dict[str, dict], tolerance: float
) -> list[str]:
    """Return a list of human-readable failures (empty == gate passes)."""
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: gauge missing from current run")
            continue
        value = current[name]["value"]
        ref = base["value"]
        if base["direction"] == "higher":
            limit = ref * (1.0 - tolerance)
            if value < limit:
                failures.append(
                    f"{name}: {value:.4g} < {limit:.4g} "
                    f"(baseline {ref:.4g}, -{tolerance:.0%} allowed)"
                )
        else:
            limit = ref * (1.0 + tolerance) + ABS_SLACK
            if value > limit:
                failures.append(
                    f"{name}: {value:.4g} > {limit:.4g} "
                    f"(baseline {ref:.4g}, +{tolerance:.0%} allowed)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", type=Path, help="JSON file from --json")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current metrics and exit",
    )
    args = parser.parse_args(argv)

    records = json.loads(args.metrics.read_text())
    if not isinstance(records, list) or not records:
        print(f"error: {args.metrics} holds no benchmark records", file=sys.stderr)
        return 2
    current = extract_gauges(records)
    if not current:
        print(f"error: no gauges extracted from {args.metrics}", file=sys.stderr)
        return 2

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps({"gauges": current}, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline} ({len(current)} gauges)")
        return 0

    baseline = json.loads(args.baseline.read_text())["gauges"]
    failures = compare(current, baseline, args.tolerance)
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new gauge not in baseline (run --update): {name}")
    for line in failures:
        print(f"REGRESSION {line}")
    checked = len(baseline)
    if failures:
        print(f"{len(failures)} of {checked} gauges regressed")
        return 1
    print(f"all {checked} gauges within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
