#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table/figure."""

from __future__ import annotations

import time
from pathlib import Path

from repro.reporting import list_experiments, run_experiment

COMMENTARY = {
    "table1": "Configuration, not measurement: the simulator is parameterized "
              "to the paper's platform, so agreement is exact by construction.",
    "table2": "The copy-loop microbenchmarks run against the simulated SM/DRAM; "
              "the 85% shared and 75%/58% global efficiencies emerge from issue-"
              "slot and bus-turnaround accounting, not from pasted constants.",
    "table3": "Pointer chasing against the functional cache/TLB/row-buffer "
              "state machines.  The 577-cycle global figure includes the "
              "occasional TLB miss the chase actually incurs; the paper rounds "
              "to 570.  The G80 cross-check reproduces Volkov's 36 cycles.",
    "table4": "The full calibration pass: every parameter lands within 5% of "
              "the published Table IV.",
    "fig1": "The latency staircase (line reuse -> L1/L2 misses -> row-buffer "
            "misses -> TLB misses) emerges from the simulated hierarchy.  The "
            "sweep stops at stride 2^19: past that the fixed-size array's "
            "working set collapses back into cache (see module docs).",
    "fig2": "Linear-in-warps barrier cost; 46 cycles at 64 threads anchors "
            "alpha_sync, ~166 cycles at 1024 threads matches the figure's "
            "right edge.",
    "fig4": "One problem per thread.  Measured tracks the bandwidth-roofline "
            "prediction through n=7 (the 126-GFLOPS worked example), then "
            "collapses when the matrix spills the 64-register file while the "
            "model keeps climbing -- exactly the paper's divergence.",
    "fig7": "2D cyclic dominates (it splits both row and column work sqrt(p) "
            "ways); 1D column beats 1D row because Householder QR is made of "
            "column operations.  The 2D and column curves touch at n=16, as "
            "in the paper's figure.",
    "table5": "Engine-measured cycles for the 56x56 flagship size, all within "
              "~10% of the paper: the load/store times reproduce the "
              "overlapped-bandwidth effect the paper discusses (fewer than 8 "
              "blocks compete at once).",
    "fig8": "Per-panel, per-operation breakdown.  Panels shrink as the "
            "trailing matrix does; MV-multiply dominates early panels; the "
            "engine's measured bars top the analytic model's by the "
            "bookkeeping overhead the model omits (the paper's 'Meas. "
            "Overhead' wedge).",
    "table6": "The Table VI cost rows evaluated at the first column of a "
              "56x56 factorization (N=7, sqrt(p)=8), split into flops/shared/"
              "sync cycles.",
    "fig9": "One problem per block across n=8..144.  The model tracks the "
            "measurement except at n=64 and n>=120 (register spilling, which "
            "the model deliberately ignores) and both drop at n=80 where the "
            "launch switches from 64 to 256 threads (8 -> 2 resident blocks).",
    "fig10": "The design space is not flat: per-thread wins while a matrix "
             "fits one register file (n<~16), per-block wins for batched "
             "small-to-medium problems, and the hybrid blocked library wins "
             "for single large factorizations.",
    "fig11": "Batched LU/QR vs the baselines.  The per-block kernels beat the "
             "MKL model everywhere (29x-band at n=56) and MAGMA by up to two "
             "orders of magnitude; MAGMA's CPU-start variant beats its "
             "GPU-start below the 96-column panel width, as the paper notes.",
    "fig12": "Linear-system solves (QR-solve and unpivoted Gauss-Jordan) "
             "against the MKL solve model: the GPU wins at every size in the "
             "paper's 8..144 range.",
    "table7": "The STAP case study on synthetic radar training data.  80x16 "
              "runs in one block; 240x66 and 192x96 go through the sequential "
              "tiled QR.  Speedups: 17.7x / 2.0x / 4.7x vs the paper's 25x / "
              "2.8x / 3.6x -- same ordering, same winner everywhere; the "
              "240x66 shortfall is the register-spill penalty of the stacked "
              "TSQRT tiles (the paper also singles this size out as wasting "
              "register space).",
}

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of Anderson, Sheffield & Keutzer (IPDPS 2012),
regenerated on the simulated Quadro 6000 substrate.  "Measured" means
engine-measured on the simulator (see DESIGN.md for the substitution
rationale); "paper" values are transcriptions from the publication.

Regenerate this file with:

    python scripts/generate_experiments_md.py

or inspect any single artefact interactively:

    python -m repro run fig9
"""


def main() -> None:
    parts = [HEADER]
    for eid in list_experiments():
        start = time.time()
        result = run_experiment(eid)
        elapsed = time.time() - start
        parts.append(f"\n## {eid}: {result.title}\n")
        parts.append(COMMENTARY.get(eid, "") + "\n")
        parts.append("```")
        parts.append(result.report)
        parts.append("```")
        parts.append(f"*(regenerated in {elapsed:.1f}s)*\n")
    out = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    out.write_text("\n".join(parts))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
