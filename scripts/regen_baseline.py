#!/usr/bin/env python
"""Regenerate the checked-in CI baseline matrix artifacts.

The baseline format *is* the engine's ``matrix.json`` artifact: this
script runs a spec through ``repro.experiments`` and copies the
resulting matrix to ``benchmarks/baselines/<name>.json``.  The
simulated engine is deterministic, so a baseline generated on any
machine is valid everywhere.

Usage::

    python scripts/regen_baseline.py                 # both CI baselines
    python scripts/regen_baseline.py SPEC [--out P]  # one spec

With no arguments it refreshes ``ci_baseline.json`` (from
``benchmarks/specs/ci_regression.toml``) and ``ci_smoke.json`` (from
``benchmarks/specs/ci_smoke.toml``).  See CONTRIBUTING.md for when a
refresh is appropriate.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments import load_spec, run_spec  # noqa: E402

SPECS_DIR = REPO / "benchmarks" / "specs"
BASELINES_DIR = REPO / "benchmarks" / "baselines"

#: spec -> baseline written when the script runs with no arguments.
DEFAULTS = {
    SPECS_DIR / "ci_regression.toml": BASELINES_DIR / "ci_baseline.json",
    SPECS_DIR / "ci_smoke.toml": BASELINES_DIR / "ci_smoke.json",
}


def regen(spec_path: Path, out: Path, workers: int | None) -> None:
    spec = load_spec(spec_path)
    with tempfile.TemporaryDirectory() as tmp:
        result = run_spec(spec, tmp, workers=workers, resume=False)
        failed = [r.cell.id for r in result.records if r.status == "failed"]
        if failed:
            raise SystemExit(
                f"refusing to baseline a failing sweep; failed cells: {failed}"
            )
        out.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(result.matrix_path, out)
    counts = result.counts
    print(
        f"{out.relative_to(REPO) if out.is_relative_to(REPO) else out}: "
        f"{len(result.cells)} cells ({counts.get('ok', 0)} ok, "
        f"{counts.get('unsupported', 0)} unsupported) from {spec_path.name}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "spec",
        type=Path,
        nargs="?",
        default=None,
        help="spec to run (default: regenerate both CI baselines)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="baseline path (default: benchmarks/baselines/<spec name>.json)",
    )
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)

    if args.spec is None:
        if args.out is not None:
            parser.error("--out requires an explicit spec")
        for spec_path, out in DEFAULTS.items():
            regen(spec_path, out, args.workers)
        return 0

    out = args.out
    if out is None:
        out = BASELINES_DIR / (load_spec(args.spec).name + ".json")
    regen(args.spec, out, args.workers)
    return 0


if __name__ == "__main__":
    sys.exit(main())
