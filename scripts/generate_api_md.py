#!/usr/bin/env python
"""Regenerate docs/api.md from each package's ``__all__`` and docstrings."""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

PACKAGES = [
    "repro",
    "repro.gpu",
    "repro.microbench",
    "repro.model",
    "repro.layouts",
    "repro.kernels.batched",
    "repro.kernels.device",
    "repro.approaches",
    "repro.runtime",
    "repro.resilience",
    "repro.tiled",
    "repro.stap",
    "repro.observe",
    "repro.observe.alerts",
    "repro.observe.log",
    "repro.analyze",
    "repro.analyze.costcheck",
    "repro.reporting",
    "repro.experiments",
    "repro.errors",
]

HEADER = """\
# API reference

Public surface of every package, generated from ``__all__`` and the first
docstring line of each export.  Regenerate with::

    python scripts/generate_api_md.py

Narrative guides: [model derivations](model.md) --
[observability (tracing, counters, attribution)](observability.md) --
[batch runtime (sharded execution, caches, CI gate)](runtime.md) --
[resilience (retries, quarantine, checkpoints, fault injection)](resilience.md) --
[correctness analysis (race sanitizer, protocol linter)](analyze.md) --
[experiment matrices (declarative sweeps, CI gating)](experiments.md).
"""


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else ""


def describe(module) -> list[str]:
    lines = []
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        kind = (
            "class" if inspect.isclass(obj)
            else "function" if callable(obj)
            else "constant"
        )
        summary = first_line(obj) if kind != "constant" else ""
        lines.append(f"| `{name}` | {kind} | {summary} |")
    return lines


def main() -> None:
    parts = [HEADER]
    for pkg_name in PACKAGES:
        module = importlib.import_module(pkg_name)
        doc = (inspect.getdoc(module) or "").splitlines()
        parts.append(f"\n## `{pkg_name}`\n")
        if doc:
            parts.append(doc[0] + "\n")
        parts.append("| name | kind | summary |")
        parts.append("|---|---|---|")
        parts.extend(describe(module))
    out = Path(__file__).resolve().parent.parent / "docs" / "api.md"
    out.write_text("\n".join(parts) + "\n")
    print(f"wrote {out} ({len(out.read_text().splitlines())} lines)")


if __name__ == "__main__":
    main()
