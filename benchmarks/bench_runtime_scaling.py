"""Runtime scaling: sharded 4096-problem LU vs the legacy serial launch.

Demonstrates the three guarantees of ``repro.runtime`` on the headline
batch (4096 matrices, 56x56, single precision):

* the sharded result is bitwise-identical to the serial launch,
* the runtime is >= 2x faster wall-clock than the legacy unsharded
  launch (size-aware chunking alone wins on one core via locality;
  worker processes stack on top where cores exist),
* a warm calibration cache skips ``calibrate()`` entirely, asserted via
  the ``calibrate`` trace-span count,
* the fleet metrics registry is effectively free: enabling it costs
  < 5% wall time vs running with ``REPRO_METRICS=0``,
* the race sanitizer is pay-for-use: a default (sanitizer-off) launch
  stays within 2% of one with the sanitizer explicitly forced off, and
  a sanitized launch is bitwise-identical to an unsanitized one,
* the resilience layer (chunk supervision, payload checksums, breakdown
  quarantine) costs < 2% on the failure-free path vs
  ``BatchRuntime(resilience=False)``, with bitwise-identical output,
* the critical-path profiler rides along on the traced run (phase
  decomposition summing to the batch wall, a real chunk critical path,
  both exported under ``--json``), and with no tracer active it costs
  < 2% whether profiling is enabled or globally disabled,
* structured logging is pay-for-use: with ``REPRO_LOG`` unset a launch
  pays one flag check per instrumented site (< 2% vs a force-enabled
  launch into a tmp sink), a logged launch stays bitwise-identical, and
  the sink it leaves behind carries span-stamped JSONL records.

The workload shape (problems, n, op, dtype) comes from the declarative
``benchmarks/specs/runtime_scaling.toml`` spec -- the same cell the
experiment matrix engine runs -- so the benchmark and any engine sweep
measure the identical batch.

Run with ``pytest benchmarks/bench_runtime_scaling.py --benchmark-only``
(``--workers N`` to change the pool size, ``--json PATH`` to export).
"""

import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analyze.sanitizer import sanitizing
from repro.kernels.batched import diagonally_dominant_batch
from repro.kernels.device import per_block_lu
from repro.observe import tracing
from repro.observe.metrics import set_metrics_enabled
from repro.observe.profile import set_profiling_enabled
from repro.runtime import BatchRuntime, ProblemBatch

SPEC = Path(__file__).parent / "specs" / "runtime_scaling.toml"


def _workload_cell():
    """The single cell of the runtime_scaling spec (needs tomllib)."""
    from repro.experiments import expand_cells, load_spec

    cells, _pruned = expand_cells(load_spec(SPEC))
    assert len(cells) == 1, f"runtime_scaling spec expanded to {len(cells)} cells"
    return cells[0]


def _calibrate_spans(tracer):
    return [e for e in tracer.events if e.name == "calibrate" and e.ph == "X"]


def _overhead_rounds(
    run_with,
    run_without,
    ratio: float,
    slack: float,
    min_rounds: int = 3,
    max_rounds: int = 8,
    alternate: bool = False,
):
    """Interleaved A/B walls with early exit: ``(wall_with, wall_without)``.

    Interleaving makes machine drift (pool contention, turbo, a loaded
    single-core CI box) hit both sides equally; min-of-rounds filters
    contended outliers.  A *genuine* overhead shifts every round, so no
    number of extra samples lets it pass -- but noise only needs more
    samples, so rounds keep accruing until the min comparison clears
    ``ratio``/``slack`` or the budget runs out.  ``alternate`` swaps the
    A/B execution order on odd rounds, cancelling position bias (the
    first run of a round pays page-cache and pool-spawn warmup).
    """
    walls_with, walls_without = [], []
    for round_index in range(max_rounds):
        if alternate and round_index % 2:
            walls_without.append(run_without())
            walls_with.append(run_with())
        else:
            walls_with.append(run_with())
            walls_without.append(run_without())
        if round_index + 1 < min_rounds:
            continue
        if min(walls_with) <= min(walls_without) * ratio + slack:
            break
    return min(walls_with), min(walls_without)


def test_runtime_scaling(benchmark, runtime_workers, tmp_path):
    if sys.version_info < (3, 11):
        pytest.skip("TOML experiment specs need Python 3.11+ (stdlib tomllib)")
    cell = _workload_cell()
    assert (cell.op, cell.precision, cell.approach) == ("lu", "float32", "runtime")
    problems, n = cell.policy.batch, cell.size
    matrices = diagonally_dominant_batch(problems, n, dtype=np.float32, seed=0)
    batch = ProblemBatch.single(cell.op, matrices)
    cache_dir = tmp_path / "cache"

    # Legacy serial path: one unsharded launch over the whole batch.
    start = time.perf_counter()
    serial = per_block_lu(matrices)
    serial_s = time.perf_counter() - start

    # Cold runtime: calibration runs (exactly one span) and is persisted.
    cold_runtime = BatchRuntime(workers=runtime_workers, cache_directory=cache_dir)
    with tracing() as cold_tracer:
        cold = cold_runtime.run(batch)
    assert len(_calibrate_spans(cold_tracer)) == 1

    # Warm runtime (fresh instance, same cache dir): no calibrate span.
    def _warm_run():
        runtime = BatchRuntime(workers=runtime_workers, cache_directory=cache_dir)
        with tracing() as tracer:
            report = runtime.run(batch)
        return report, tracer

    warm, warm_tracer = benchmark.pedantic(_warm_run, rounds=1, iterations=1)
    assert len(_calibrate_spans(warm_tracer)) == 0
    assert any(e.name == "calibrate.cache_hit" for e in warm_tracer.events)

    # The traced run carries its latency decomposition: phases partition
    # the batch-span wall exactly, and the critical path resolved to a
    # real chunk chain, not the generic fallback.
    profile = warm.profile
    assert profile is not None
    assert sum(profile.phases.values()) == pytest.approx(profile.wall_s, rel=1e-6)
    assert {s.name for s in profile.critical_path} >= {"plan", "attempt", "merge"}

    # Bitwise identity, sharded vs serial.
    for report in (cold, warm):
        assert np.array_equal(report.output, serial.output)
        assert np.array_equal(report.extra, serial.extra)

    speedup = serial_s / warm.wall_s
    print(
        f"\nlegacy serial: {serial_s:.2f}s | runtime ({warm.mode}, "
        f"{warm.workers} workers, {warm.chunks} chunks): {warm.wall_s:.2f}s "
        f"| speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, (
        f"runtime speedup {speedup:.2f}x < 2x "
        f"(serial {serial_s:.2f}s vs {warm.wall_s:.2f}s)"
    )

    # Metrics overhead: the fleet registry must ride along for free.
    # Interleaved full runs (warm caches) enabled vs disabled; the
    # instrumentation is a few hundred dict updates per launch, so any
    # real gap would point at an accidental hot-path regression.
    def _timed_run(enabled: bool) -> float:
        previous = set_metrics_enabled(enabled)
        try:
            runtime = BatchRuntime(
                workers=runtime_workers, cache_directory=cache_dir
            )
            t0 = time.perf_counter()
            runtime.run(batch)
            return time.perf_counter() - t0
        finally:
            set_metrics_enabled(previous)

    wall_on, wall_off = _overhead_rounds(
        lambda: _timed_run(True), lambda: _timed_run(False), 1.05, 0.02
    )
    overhead = wall_on / wall_off - 1.0
    print(
        f"metrics on: {wall_on:.3f}s | off: {wall_off:.3f}s "
        f"| overhead {overhead:+.1%}"
    )
    # 5% relative plus a small absolute slack for timer noise on short runs.
    assert wall_on <= wall_off * 1.05 + 0.02, (
        f"metrics overhead {overhead:+.1%} exceeds 5% "
        f"({wall_on:.3f}s vs {wall_off:.3f}s)"
    )

    # Sanitizer-off overhead: the off path's only addition is one
    # ``is None`` check per shared access, so a default launch and one
    # with the sanitizer explicitly forced off must be the same speed.
    # If the sanitizer ever becomes default-on (env parse bug, leaked
    # sanitizing() override) or grows work outside the None check, the
    # default side slows down and this trips.
    sample = matrices[:512]

    def _serial_run(forced_off: bool) -> float:
        t0 = time.perf_counter()
        if forced_off:
            with sanitizing(False):
                per_block_lu(sample)
        else:
            per_block_lu(sample)
        return time.perf_counter() - t0

    wall_default, wall_forced = _overhead_rounds(
        lambda: _serial_run(forced_off=False),
        lambda: _serial_run(forced_off=True),
        1.02,
        0.02,
    )
    sanitizer_overhead = wall_default / wall_forced - 1.0
    print(
        f"sanitizer default: {wall_default:.3f}s | forced off: "
        f"{wall_forced:.3f}s | overhead {sanitizer_overhead:+.1%}"
    )
    assert wall_default <= wall_forced * 1.02 + 0.02, (
        f"sanitizer-off overhead {sanitizer_overhead:+.1%} exceeds 2% "
        f"({wall_default:.3f}s vs {wall_forced:.3f}s)"
    )

    # A sanitized launch may cost more, but must not perturb numerics:
    # same outputs, same cycle totals, and the default launch carries no
    # sanitizer report at all.
    assert per_block_lu(sample).launch.sanitizer is None
    with sanitizing(True):
        sanitized = per_block_lu(sample)
    assert sanitized.launch.sanitizer is not None
    assert sanitized.launch.sanitizer.ok
    plain = per_block_lu(sample)
    assert np.array_equal(sanitized.output, plain.output)
    assert sanitized.cycles == plain.cycles

    # Resilience-off tripwire: the supervised failure-free path must be
    # bitwise-identical to the unsupervised (pre-resilience) pool and
    # within 2% of its wall time.  Checksums, the supervisor loop, and
    # the quarantine scan are the only additions; any recovery work is
    # gated behind failures that never happen here.
    reports = {}

    def _resilience_run(enabled: bool) -> float:
        runtime = BatchRuntime(
            workers=runtime_workers,
            cache_directory=cache_dir,
            resilience=enabled,
        )
        t0 = time.perf_counter()
        reports[enabled] = runtime.run(batch)
        return time.perf_counter() - t0

    # The true delta is ~0: CRC32 verification and the quarantine scan
    # are the only serial additions (~25ms on this batch).
    wall_resilient, wall_bare = _overhead_rounds(
        lambda: _resilience_run(True),
        lambda: _resilience_run(False),
        1.02,
        0.02,
    )
    resilient_report, bare_report = reports[True], reports[False]
    assert np.array_equal(resilient_report.output, bare_report.output)
    assert resilient_report.failures == []
    assert (
        resilient_report.counters.snapshot() == bare_report.counters.snapshot()
    )
    resilience_overhead = wall_resilient / wall_bare - 1.0
    print(
        f"resilience on: {wall_resilient:.3f}s | off: {wall_bare:.3f}s "
        f"| overhead {resilience_overhead:+.1%}"
    )
    assert wall_resilient <= wall_bare * 1.02 + 0.02, (
        f"resilience overhead {resilience_overhead:+.1%} exceeds 2% "
        f"({wall_resilient:.3f}s vs {wall_bare:.3f}s)"
    )

    # Profiler-off tripwire: with no tracer active the profile layer must
    # be invisible -- its only hot-path residue is one enabled check per
    # run, so an untraced launch with profiling enabled (the default)
    # must match one with profiling globally disabled.
    def _untraced_run(profiled: bool) -> float:
        previous = set_profiling_enabled(profiled)
        try:
            runtime = BatchRuntime(
                workers=runtime_workers, cache_directory=cache_dir
            )
            t0 = time.perf_counter()
            runtime.run(batch)
            return time.perf_counter() - t0
        finally:
            set_profiling_enabled(previous)

    wall_profiled, wall_unprofiled = _overhead_rounds(
        lambda: _untraced_run(True),
        lambda: _untraced_run(False),
        1.02,
        0.02,
        alternate=True,
    )
    profiler_overhead = wall_profiled / wall_unprofiled - 1.0
    print(
        f"profiler default: {wall_profiled:.3f}s | disabled: "
        f"{wall_unprofiled:.3f}s | overhead {profiler_overhead:+.1%}"
    )
    assert wall_profiled <= wall_unprofiled * 1.02 + 0.02, (
        f"tracing-off profiler overhead {profiler_overhead:+.1%} exceeds 2% "
        f"({wall_profiled:.3f}s vs {wall_unprofiled:.3f}s)"
    )

    # Logging tripwire: REPRO_LOG is unset here, so the default launch
    # pays one module-flag check per instrumented site.  Force-enabling
    # the logger into a tmp sink must stay within 2% (the sink is ~a
    # dozen O_APPEND lines per launch) and must not perturb numerics.
    log_path = tmp_path / "events.jsonl"
    from repro.observe import log as obslog

    log_reports = {}

    def _logged_run(enabled: bool) -> float:
        previous_flag = obslog.set_log_enabled(enabled)
        previous_sink = obslog.set_default_logger(
            obslog.StructuredLogger(log_path) if enabled else None
        )
        try:
            runtime = BatchRuntime(
                workers=runtime_workers, cache_directory=cache_dir
            )
            t0 = time.perf_counter()
            log_reports[enabled] = runtime.run(batch)
            return time.perf_counter() - t0
        finally:
            obslog.set_log_enabled(previous_flag)
            obslog.set_default_logger(previous_sink)

    wall_unlogged, wall_logged = _overhead_rounds(
        lambda: _logged_run(False),
        lambda: _logged_run(True),
        1.02,
        0.02,
        alternate=True,
    )
    log_overhead = wall_unlogged / wall_logged - 1.0
    print(
        f"logging off: {wall_unlogged:.3f}s | on: {wall_logged:.3f}s "
        f"| off-path overhead {log_overhead:+.1%}"
    )
    assert wall_unlogged <= wall_logged * 1.02 + 0.02, (
        f"logging-off overhead {log_overhead:+.1%} exceeds 2% "
        f"({wall_unlogged:.3f}s vs {wall_logged:.3f}s)"
    )
    # The logged launch is bitwise-identical to the unlogged (and serial)
    # one, and its sink carries schema-stamped, span-stamped records.
    assert np.array_equal(log_reports[True].output, log_reports[False].output)
    assert np.array_equal(log_reports[True].output, serial.output)
    from repro.observe.log import read_log

    log_records = read_log(log_path)
    assert log_records, f"no structured records landed in {log_path}"
    launch_events = [r for r in log_records if r["event"] == "runtime.launch"]
    assert launch_events, "logged launch left no runtime.launch record"

    # A *traced* logged launch stamps its records with the profiler's
    # deterministic span ids, joining log lines to flamegraph spans.
    traced_log = tmp_path / "events_traced.jsonl"
    previous_flag = obslog.set_log_enabled(True)
    previous_sink = obslog.set_default_logger(obslog.StructuredLogger(traced_log))
    try:
        runtime = BatchRuntime(workers=runtime_workers, cache_directory=cache_dir)
        with tracing():
            runtime.run(batch)
    finally:
        obslog.set_log_enabled(previous_flag)
        obslog.set_default_logger(previous_sink)
    traced_records = read_log(traced_log)
    spanned = [
        r
        for r in traced_records
        if isinstance(r.get("span_id"), str) and r["span_id"].startswith("batch:")
    ]
    assert spanned, "traced logged launch left no span-stamped records"

    benchmark.extra_info["problems"] = problems
    benchmark.extra_info["n"] = n
    benchmark.extra_info["workers"] = warm.workers
    benchmark.extra_info["chunks"] = warm.chunks
    benchmark.extra_info["mode"] = warm.mode
    benchmark.extra_info["speedup_vs_serial"] = speedup
    benchmark.extra_info["metrics_overhead"] = overhead
    benchmark.extra_info["sanitizer_off_overhead"] = sanitizer_overhead
    benchmark.extra_info["resilience_overhead"] = resilience_overhead
    benchmark.extra_info["profiler_off_overhead"] = profiler_overhead
    benchmark.extra_info["logging_off_overhead"] = log_overhead
    benchmark.extra_info["profile"] = profile.to_dict()
