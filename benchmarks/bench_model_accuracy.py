"""The paper's headline claim as a regression gate: model accuracy.

Not a single table or figure, but the thesis of the paper -- "an
analytical model that accurately predicts GPU performance for these
problems".  Sweeps Figure 9's full size range and reports the mean
absolute percentage error of the Table-VI prediction against the
engine-measured throughput.
"""

from repro.model import model_accuracy


def test_model_accuracy_gate(benchmark):
    report = benchmark.pedantic(
        lambda: model_accuracy(sizes=range(8, 145, 8)), rounds=3, iterations=1
    )
    assert report.mape_no_spill < 0.10   # accurate where the model applies
    assert report.mape_spill > 0.15      # knowingly wrong where it doesn't
    benchmark.extra_info["mape_no_spill_pct"] = round(report.mape_no_spill * 100, 1)
    benchmark.extra_info["mape_spill_pct"] = round(report.mape_spill * 100, 1)
