"""Table VI: the per-column model estimates evaluated at 56x56."""


def test_table6_estimates(regenerate, benchmark):
    res = regenerate("table6")
    rows = res.data["rows"]
    qr_rows = [r for r in rows if r[0] == "QR"]
    lu_rows = [r for r in rows if r[0] == "LU"]
    assert len(qr_rows) == 3 and len(lu_rows) == 2
    # QR's first column costs more than LU's (extra norm/reductions).
    assert sum(r[-1] for r in qr_rows) > sum(r[-1] for r in lu_rows)
    benchmark.extra_info["qr_first_column_cycles"] = sum(r[-1] for r in qr_rows)
