"""Ablation: the paper's 64/256 thread-count rule vs an autotuned sweep.

The tuner replays every feasible square thread count.  Below the
80-column switch the paper's choice (64 threads) is exactly the tuned
optimum.  Above it our spill model keeps 64 threads competitive, where
the paper's silicon favoured 256 -- the per-access spill cost here does
not grow with occupancy (spilled traffic contending for DRAM), which is
the documented fidelity limit of the engine's spill model.
"""

from repro.approaches import Workload
from repro.approaches.tuning import tune_block_threads
from repro.model.block_config import block_config


def _sweep():
    return {
        n: tune_block_threads(Workload.square("qr", n, 8000))
        for n in (32, 48, 56, 64, 96, 128)
    }


def test_thread_count_ablation(benchmark):
    tuned = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    for n in (32, 48, 56, 64):
        assert tuned[n].threads == 64, n  # the paper's rule, rediscovered
    for n in (96, 128):
        # The paper's rule picks 256 here; it must stay within 2.5x of
        # the tuned optimum under our cost model.
        paper_choice = block_config(n, n).threads
        paper_gflops = tuned[n].candidates[paper_choice]
        assert paper_gflops > tuned[n].gflops / 2.5, n
    benchmark.extra_info["tuned_threads"] = {n: t.threads for n, t in tuned.items()}
