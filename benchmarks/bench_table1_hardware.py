"""Table I: device summary of the simulated Quadro 6000."""

import pytest


def test_table1_device_summary(regenerate, benchmark):
    res = regenerate("table1")
    rows = res.data["rows"]
    assert rows["Total number of FPUs"] == 448
    assert rows["Peak SP flops (TFlop/s)"] == pytest.approx(1.03, rel=0.01)
    benchmark.extra_info["peak_tflops"] = rows["Peak SP flops (TFlop/s)"]
