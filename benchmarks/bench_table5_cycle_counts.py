"""Table V: load/compute/store cycle counts for 56x56 LU and QR."""

from repro.reporting.paper_values import TABLE_V


def test_table5_cycle_counts(regenerate, benchmark):
    res = regenerate("table5")
    for kind in ("lu", "qr"):
        for phase in ("load", "compute", "store"):
            ratio = res.data[kind][phase] / TABLE_V[kind][phase]
            assert 0.8 < ratio < 1.25, (kind, phase)
    benchmark.extra_info["qr_compute_cycles"] = res.data["qr"]["compute"]
    benchmark.extra_info["lu_compute_cycles"] = res.data["lu"]["compute"]
