"""Table III: measured latencies of the memory hierarchy."""

import pytest


def test_table3_latencies(regenerate, benchmark):
    res = regenerate("table3")
    assert res.data["Shared memory"] == 27
    assert res.data["Global memory"] == pytest.approx(570, rel=0.02)
    assert res.data["G80 shared (Volkov)"] == 36
    benchmark.extra_info["shared_cycles"] = res.data["Shared memory"]
    benchmark.extra_info["global_cycles"] = res.data["Global memory"]
