"""Figure 8: per-panel cycle breakdown for the 56x56 QR."""


def test_fig8_panel_breakdown(regenerate, benchmark):
    res = regenerate("fig8")
    measured, modeled = res.data["measured"], res.data["modeled"]
    assert len(measured) == len(modeled) == 7
    totals_m = [sum(p.values()) for p in measured]
    totals_d = [sum(p.values()) for p in modeled]
    assert totals_m == sorted(totals_m, reverse=True)   # panels shrink
    assert sum(totals_d) < sum(totals_m) < 1.35 * sum(totals_d)
    # MV multiply dominates early panels in both views.
    assert measured[0]["Matrix-Vector Multiply"] == max(measured[0].values())
    benchmark.extra_info["measured_total"] = sum(totals_m)
    benchmark.extra_info["modeled_total"] = sum(totals_d)
