"""Ablation: hardware (fast) vs IEEE (precise) division and square root.

The paper quotes the penalty for *not* using --use_fast_math: a 5.6%
median for one-problem-per-thread (Section IV) and ~30% median for
one-problem-per-block (Section V-C).  The per-thread approach is
DRAM-bound, so precise math costs nothing there; the per-block QR pays
on every column's scale factor.
"""

import statistics

import numpy as np

from repro.kernels.batched import random_batch
from repro.kernels.device import per_block_qr, per_thread_factor


def _per_block_penalties():
    out = []
    for n in (16, 24, 32, 40, 48, 56):
        a = random_batch(2, n, n, dtype=np.float32, seed=n)
        fast = per_block_qr(a, fast_math=True).cycles
        precise = per_block_qr(a, fast_math=False).cycles
        out.append((precise - fast) / fast)
    return out


def test_per_block_fastmath_penalty(benchmark):
    penalties = benchmark.pedantic(_per_block_penalties, rounds=3, iterations=1)
    median = statistics.median(penalties)
    # Paper: ~30% median penalty for the per-block approach.  Our cost
    # table (precise div/sqrt at 8x/10x pipeline depth) lands at 12-21%
    # across these sizes -- same order, same direction.
    assert 0.10 < median < 0.40
    assert all(p > 0 for p in penalties)
    benchmark.extra_info["median_penalty"] = median


def test_per_thread_fastmath_penalty(benchmark):
    def run():
        a = random_batch(128, 6, 6, dtype=np.float32, seed=1)
        fast = per_thread_factor(a, "qr", fast_math=True).seconds
        precise = per_thread_factor(a, "qr", fast_math=False).seconds
        return (precise - fast) / fast

    penalty = benchmark.pedantic(run, rounds=3, iterations=1)
    # Paper: 5.6% median -- small, because the regime is bandwidth-bound.
    # Our model hides compute entirely, so the penalty is ~0.
    assert penalty < 0.06
    benchmark.extra_info["penalty"] = penalty
