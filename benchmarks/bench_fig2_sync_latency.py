"""Figure 2: synchronization latency vs threads per multiprocessor."""


def test_fig2_sync_latency(regenerate, benchmark):
    res = regenerate("fig2")
    threads, lats = res.data["threads"], res.data["latency"]
    assert lats[threads.index(64)] == 46        # Table IV's alpha_sync
    assert lats == sorted(lats)                 # monotone in thread count
    assert 150 <= lats[threads.index(1024)] <= 200
    benchmark.extra_info["alpha_sync_64"] = lats[threads.index(64)]
