"""Table IV: full microbenchmark calibration of the model parameters."""

import pytest

from repro.reporting.paper_values import TABLE_IV


def test_table4_calibration(regenerate, benchmark):
    res = regenerate("table4")
    for key, ref in TABLE_IV.items():
        assert res.data[key] == pytest.approx(ref, rel=0.05), key
    benchmark.extra_info.update({k: v for k, v in res.data.items()})
