"""Figure 9: one-problem-per-block QR/LU, measured vs predicted."""

import pytest


def test_fig9_per_block(regenerate, benchmark):
    res = regenerate("fig9")
    ns = res.data["n"]
    i56, i64, i80 = ns.index(56), ns.index(64), ns.index(80)
    # Model tracks the measurement at the flagship size...
    assert res.data["qr_measured"][i56] == pytest.approx(
        res.data["qr_predicted"][i56], rel=0.25
    )
    # ...diverges where registers spill (the model ignores spilling)...
    assert res.data["qr_measured"][i64] < res.data["qr_predicted"][i64]
    # ...and both drop at the 64->256 thread switch.
    assert res.data["qr_measured"][i80] < res.data["qr_measured"][i64]
    assert res.data["qr_predicted"][i80] < res.data["qr_predicted"][i64]
    benchmark.extra_info["qr_56_gflops"] = res.data["qr_measured"][i56]
