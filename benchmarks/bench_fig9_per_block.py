"""Figure 9: one-problem-per-block QR/LU, measured vs predicted.

Runs the declarative ``benchmarks/specs/fig9.toml`` sweep through the
experiment matrix engine and asserts the paper's shape on the resulting
per-cell gauges.
"""

import pytest


def test_fig9_per_block(sweep, benchmark):
    result = sweep("fig9")
    gauges = {(r.cell.op, r.cell.size): r.gauges for r in result.records}
    qr56, qr64, qr80 = gauges[("qr", 56)], gauges[("qr", 64)], gauges[("qr", 80)]
    # Model tracks the measurement at the flagship size...
    assert qr56["measured_gflops"] == pytest.approx(
        qr56["predicted_gflops"], rel=0.25
    )
    # ...diverges where registers spill (the model ignores spilling)...
    assert qr64["measured_gflops"] < qr64["predicted_gflops"]
    # ...and both drop at the 64->256 thread switch.
    assert qr80["measured_gflops"] < qr64["measured_gflops"]
    assert qr80["predicted_gflops"] < qr64["predicted_gflops"]
    benchmark.extra_info["qr_56_gflops"] = qr56["measured_gflops"]
