"""Figure 1: global memory latency as a function of access stride."""


def test_fig1_latency_staircase(regenerate, benchmark):
    res = regenerate("fig1")
    lats = res.data["latency"]
    assert lats[0] < 160          # line-reuse regime
    assert max(lats) > 550        # TLB-miss plateau
    assert lats == sorted(lats)   # monotone staircase across the sweep
    benchmark.extra_info["min_latency"] = min(lats)
    benchmark.extra_info["max_latency"] = max(lats)
