"""Table II: measured bandwidths of the memory hierarchy."""

import pytest


def test_table2_bandwidths(regenerate, benchmark):
    res = regenerate("table2")
    assert res.data["Shared memory (all cores)"] == pytest.approx(880, rel=0.02)
    assert res.data["Global memory"] == pytest.approx(108, rel=0.05)
    assert res.data["Global memory (cudaMemcpy)"] == pytest.approx(84, rel=0.05)
    benchmark.extra_info["shared_gbs"] = res.data["Shared memory (all cores)"]
    benchmark.extra_info["global_gbs"] = res.data["Global memory"]
