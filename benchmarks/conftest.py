"""Shared helpers for the per-artefact benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
regenerated tables/series).  Every benchmark regenerates one table or
figure of the paper via the experiment registry and records headline
numbers in ``extra_info`` so the saved benchmark JSON doubles as the
reproduction record.

Pass ``--json PATH`` to additionally append one flat metrics record per
benchmark to a JSON-array file via :mod:`repro.observe.export` -- the
repo's accumulating ``BENCH_*.json`` perf trajectory::

    pytest benchmarks/bench_fig9_per_block.py --benchmark-only \
        --json BENCH_fig9.json

With ``--json`` the session also snapshots the process-global fleet
metrics registry (``<stem>.metrics.json`` + ``.prom`` next to the JSON
file) so cache hit rates and runtime histograms from the benchmark run
are inspectable with ``python -m repro.observe.report --metrics ...``.
"""

from pathlib import Path

import pytest

from repro.reporting import run_experiment


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="append each benchmark's regenerated data to this JSON file "
        "via the repro.observe metrics exporter",
    )
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=4,
        metavar="N",
        help="worker-process count for runtime-backed benchmarks "
        "(see bench_runtime_scaling.py); 1 forces the serial path",
    )


def pytest_sessionfinish(session, exitstatus):
    """Snapshot the fleet metrics the benchmark run accumulated."""
    json_path = session.config.getoption("--json", default=None)
    if not json_path:
        return
    from repro.observe.metrics import (
        default_registry,
        write_metrics_snapshot,
        write_prometheus,
    )

    registry = default_registry()
    if len(registry) == 0:
        return
    base = Path(json_path)
    write_metrics_snapshot(registry, base.parent / (base.stem + ".metrics.json"))
    write_prometheus(registry, base.parent / (base.stem + ".metrics.prom"))


@pytest.fixture
def runtime_workers(request):
    """Pool size requested via ``--workers`` (default 4)."""
    return request.config.getoption("--workers")


@pytest.fixture
def sweep(benchmark, request, tmp_path):
    """Run one experiment spec through the matrix engine under the timer.

    Loads ``benchmarks/specs/<name>.toml``, executes it with
    :func:`repro.experiments.run_spec` (fresh artifact dir per round, a
    shared calibration cache so warm rounds skip calibration), and
    returns the :class:`~repro.experiments.SweepResult`.  Under
    ``--json`` the per-cell gauges are exported the same way
    ``regenerate`` exports experiment series.
    """
    import sys

    if sys.version_info < (3, 11):
        pytest.skip("TOML experiment specs need Python 3.11+ (stdlib tomllib)")

    from repro.experiments import load_spec, run_spec

    state = {}
    specs_dir = Path(__file__).parent / "specs"

    def _run(spec_name: str, **run_kwargs):
        spec = load_spec(specs_dir / f"{spec_name}.toml")
        rounds = {"count": 0}

        def _once():
            rounds["count"] += 1
            return run_spec(
                spec,
                tmp_path / f"{spec.name}-{rounds['count']}",
                cache_dir=tmp_path / "cache",
                resume=False,
                **run_kwargs,
            )

        result = benchmark.pedantic(_once, rounds=3, iterations=1, warmup_rounds=0)
        state["result"] = result
        failed = [r.cell.id for r in result.records if r.status == "failed"]
        assert not failed, f"sweep cells failed: {failed}"
        return result

    yield _run

    json_path = request.config.getoption("--json")
    if json_path and state:
        from repro.observe.export import metrics_record, write_metrics

        result = state["result"]
        gauges = {}
        for record in result.records:
            if record.status == "ok":
                for key, value in record.gauges.items():
                    gauges[f"{record.cell.id}.{key}"] = value
        stats = {}
        if benchmark.stats is not None:
            stats = {
                "mean_s": benchmark.stats.stats.mean,
                "min_s": benchmark.stats.stats.min,
                "rounds": benchmark.stats.stats.rounds,
            }
        write_metrics(
            json_path,
            metrics_record(
                name=request.node.name,
                metrics=gauges,
                experiment_id=result.spec.name,
                title=result.spec.title,
                fingerprint=result.fingerprint,
                extra_info=dict(benchmark.extra_info),
                timing=stats,
            ),
        )


@pytest.fixture
def regenerate(benchmark, request):
    """Run one experiment under the benchmark timer and print its report."""
    state = {}

    def _run(experiment_id: str, **kwargs):
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **kwargs),
            rounds=3,
            iterations=1,
            warmup_rounds=0,
        )
        state["experiment_id"] = experiment_id
        state["result"] = result
        print()
        print(result.report)
        return result

    yield _run

    json_path = request.config.getoption("--json")
    if json_path and state:
        from repro.observe.export import metrics_record, write_metrics

        stats = {}
        if benchmark.stats is not None:  # populated after pedantic() ran
            stats = {
                "mean_s": benchmark.stats.stats.mean,
                "min_s": benchmark.stats.stats.min,
                "rounds": benchmark.stats.stats.rounds,
            }
        write_metrics(
            json_path,
            metrics_record(
                name=request.node.name,
                metrics=state["result"].data,
                experiment_id=state["experiment_id"],
                title=state["result"].title,
                extra_info=dict(benchmark.extra_info),
                timing=stats,
            ),
        )
