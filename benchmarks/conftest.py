"""Shared helpers for the per-artefact benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
regenerated tables/series).  Every benchmark regenerates one table or
figure of the paper via the experiment registry and records headline
numbers in ``extra_info`` so the saved benchmark JSON doubles as the
reproduction record.
"""

import pytest

from repro.reporting import run_experiment


@pytest.fixture
def regenerate(benchmark):
    """Run one experiment under the benchmark timer and print its report."""

    def _run(experiment_id: str, **kwargs):
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **kwargs),
            rounds=3,
            iterations=1,
            warmup_rounds=0,
        )
        print()
        print(result.report)
        return result

    return _run
