"""Figure 7: 1D vs 2D register-file data layouts for the QR solver."""


def test_fig7_layouts(regenerate, benchmark):
    res = regenerate("fig7")
    ns = res.data["n"]
    for i, n in enumerate(ns):
        if n > 16:  # curves touch at the smallest size
            assert res.data["2D cyclic"][i] > res.data["1D column cyclic"][i]
        assert res.data["1D column cyclic"][i] > res.data["1D row cyclic"][i]
    benchmark.extra_info["2d_at_96"] = res.data["2D cyclic"][ns.index(96)]
