"""Figure 12: solving linear systems (QR solve + Gauss-Jordan) vs MKL."""


def test_fig12_solvers(regenerate, benchmark):
    res = regenerate("fig12")
    for i, n in enumerate(res.data["n"]):
        assert res.data["qr_solve_per_block"][i] > res.data["qr_solve_mkl"][i], n
        assert res.data["gj_per_block"][i] > res.data["gj_mkl"][i], n
    i56 = res.data["n"].index(56)
    benchmark.extra_info["qr_solve_56"] = res.data["qr_solve_per_block"][i56]
    benchmark.extra_info["gj_56"] = res.data["gj_per_block"][i56]
