"""Ablation: what would partial pivoting have cost the per-block LU?

The paper skips pivoting for stability ("Note our implementation does not
pivot...") and tests on diagonally dominant matrices.  This bench runs
the pivoted extension alongside and reports the overhead of the per-column
pivot search + cross-thread row swap -- the concrete price of stability
on this mapping.
"""

import numpy as np

from repro.kernels.batched import diagonally_dominant_batch
from repro.kernels.device import per_block_lu, per_block_lu_pivot


def _overheads():
    out = {}
    for n in (16, 32, 56):
        a = diagonally_dominant_batch(2, n, dtype=np.float32, seed=n)
        plain = per_block_lu(a).cycles
        pivoted = per_block_lu_pivot(a).cycles
        out[n] = (pivoted - plain) / plain
    return out


def test_pivoting_cost_ablation(benchmark):
    overheads = benchmark.pedantic(_overheads, rounds=3, iterations=1)
    # Pivoting roughly doubles the per-block LU at these sizes: the
    # search/swap machinery rivals the factorization's own column work.
    for n, overhead in overheads.items():
        assert 0.6 < overhead < 2.5, (n, overhead)
    # Relative cost shrinks as the O(n^2) rank-1 work grows against the
    # O(n) pivot machinery.
    assert overheads[56] < overheads[16]
    benchmark.extra_info["overhead_pct"] = {
        n: round(o * 100, 1) for n, o in overheads.items()
    }
