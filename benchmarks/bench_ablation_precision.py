"""Ablation: double precision on the GF100 (half-rate DP units).

The paper is single-precision throughout; this extension checks the
engine's DP path: fp64 per-block QR should run at roughly half the fp32
rate (compute-bound kernels track the DP unit ratio).
"""

import numpy as np

from repro.kernels.batched import random_batch
from repro.kernels.device import per_block_qr


def _ratio():
    a32 = random_batch(2, 48, 48, dtype=np.float32, seed=3)
    a64 = random_batch(2, 48, 48, dtype=np.float64, seed=3)
    f32 = per_block_qr(a32).launch.throughput_gflops()
    f64 = per_block_qr(a64).launch.throughput_gflops()
    return f32, f64


def test_double_precision_ablation(benchmark):
    f32, f64 = benchmark.pedantic(_ratio, rounds=3, iterations=1)
    assert 0.4 < f64 / f32 < 0.75  # ~half rate, shared/sync costs dilute
    benchmark.extra_info["fp32_gflops"] = f32
    benchmark.extra_info["fp64_gflops"] = f64
