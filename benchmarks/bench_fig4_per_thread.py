"""Figure 4: one-problem-per-thread QR/LU, measured vs predicted."""

import pytest


def test_fig4_per_thread(regenerate, benchmark):
    res = regenerate("fig4", batch=256)
    ns = res.data["n"]
    i7, i12 = ns.index(7), ns.index(12)
    # The worked example: 7x7 QR ~126 GFLOPS, measured tracks the model.
    assert res.data["qr_measured"][i7] == pytest.approx(126, rel=0.1)
    assert res.data["qr_measured"][i7] == pytest.approx(
        res.data["qr_predicted"][i7], rel=0.1
    )
    # Post-spill collapse: measured flat, prediction keeps climbing.
    assert res.data["qr_measured"][i12] < 0.5 * res.data["qr_predicted"][i12]
    benchmark.extra_info["qr_peak_gflops"] = res.data["qr_measured"][i7]
