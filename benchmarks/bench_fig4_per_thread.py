"""Figure 4: one-problem-per-thread QR/LU, measured vs predicted.

Runs the declarative ``benchmarks/specs/fig4.toml`` sweep through the
experiment matrix engine and asserts the paper's anchors on the
resulting per-cell gauges.
"""

import pytest


def test_fig4_per_thread(sweep, benchmark):
    result = sweep("fig4")
    gauges = {(r.cell.op, r.cell.size): r.gauges for r in result.records}
    qr7, qr12 = gauges[("qr", 7)], gauges[("qr", 12)]
    # The worked example: 7x7 QR ~126 GFLOPS, measured tracks the model.
    assert qr7["measured_gflops"] == pytest.approx(126, rel=0.1)
    assert qr7["measured_gflops"] == pytest.approx(qr7["predicted_gflops"], rel=0.1)
    # Post-spill collapse: measured flat, prediction keeps climbing.
    assert qr12["measured_gflops"] < 0.5 * qr12["predicted_gflops"]
    benchmark.extra_info["qr_peak_gflops"] = qr7["measured_gflops"]
