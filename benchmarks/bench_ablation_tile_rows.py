"""Ablation: tile-height choice for the tiled QR (the 240x66 STAP case).

The tuner prices every candidate height with the per-block charge replay;
this bench sweeps the candidates explicitly and checks the tuner's pick
is within a few percent of the sweep's optimum -- and that the choice
matters (worst/best spread well above the noise).
"""

import numpy as np

from repro.gpu import QUADRO_6000
from repro.kernels.batched import random_batch
from repro.tiled import choose_tile_rows, tiled_qr


def _sweep():
    a = random_batch(1, 240, 66, dtype=np.complex64, seed=0)
    results = {}
    for rows in (66, 80, 96, 112, 128, 146, 160, 192, 240):
        res = tiled_qr(a, tile_rows=rows)
        results[rows] = res.seconds
    return results


def test_tile_rows_ablation(benchmark):
    results = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    best_rows = min(results, key=results.get)
    tuned = choose_tile_rows(240, 66, True, QUADRO_6000)
    a = random_batch(1, 240, 66, dtype=np.complex64, seed=0)
    tuned_seconds = tiled_qr(a, tile_rows=tuned).seconds
    assert tuned_seconds <= results[best_rows] * 1.05
    # The knob matters: worst choice is substantially slower than best.
    assert max(results.values()) > 1.2 * min(results.values())
    benchmark.extra_info["tuned_rows"] = tuned
    benchmark.extra_info["sweep_best_rows"] = best_rows
