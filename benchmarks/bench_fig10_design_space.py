"""Figure 10: the three approaches across problem sizes 2..8192."""

import math


def test_fig10_design_space(regenerate, benchmark):
    res = regenerate("fig10")
    ns = res.data["n"]
    i8, i64, i8192 = ns.index(8), ns.index(64), ns.index(8192)
    for kind in ("qr", "lu"):
        assert res.data[f"{kind}_per_thread"][i8] > res.data[f"{kind}_per_block"][i8]
        assert res.data[f"{kind}_per_block"][i64] > res.data[f"{kind}_hybrid"][i64]
        assert res.data[f"{kind}_hybrid"][i8192] > 100
        assert math.isnan(res.data[f"{kind}_per_thread"][i8192])
    benchmark.extra_info["qr_hybrid_8192"] = res.data["qr_hybrid"][i8192]
