"""Ablation: the DRAM overlap factor behind Table V's load times.

The paper observes that per-block load timestamps imply fewer than all
resident blocks compete for bandwidth at once ("nearly double the peak
bandwidth" otherwise).  With a fair-share split (overlap factor 1.0) the
simulated 56x56 load takes ~15,000 cycles; with the fitted 0.59 it lands
on the paper's ~8,800-9,100.
"""

from repro.gpu import QUADRO_6000, MemorySystem


def _load_cycles():
    ms = MemorySystem(QUADRO_6000)
    nbytes = 56 * 56 * 4
    return {
        "fair_share": ms.block_transfer_cycles(nbytes, 112, overlap_factor=1.0),
        "fitted": ms.block_transfer_cycles(nbytes, 112),
        "no_contention": ms.block_transfer_cycles(nbytes, 1),
    }


def test_overlap_factor_ablation(benchmark):
    cycles = benchmark.pedantic(_load_cycles, rounds=3, iterations=1)
    assert 8000 < cycles["fitted"] < 10000          # Table V band
    assert cycles["fair_share"] > 13000             # what naive sharing predicts
    assert cycles["no_contention"] < 300            # a lone block is fast
    benchmark.extra_info.update({k: round(v) for k, v in cycles.items()})
