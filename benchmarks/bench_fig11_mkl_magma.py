"""Figure 11: one-problem-per-block vs Intel MKL and MAGMA."""


def test_fig11_mkl_magma(regenerate, benchmark):
    res = regenerate("fig11")
    ns = res.data["n"]
    for kind in ("qr", "lu"):
        for i, n in enumerate(ns):
            assert res.data[f"{kind}_per_block"][i] > res.data[f"{kind}_mkl"][i], n
            assert (
                res.data[f"{kind}_per_block"][i]
                > res.data[f"{kind}_magma_gpu_start"][i]
            ), n
        # Small problems: MAGMA runs on the CPU; CPU-start avoids PCIe.
        assert res.data[f"{kind}_magma_cpu_start"][0] > res.data[
            f"{kind}_magma_gpu_start"
        ][0]
    i56 = ns.index(56)
    speedup = res.data["qr_per_block"][i56] / res.data["qr_mkl"][i56]
    assert 15 < speedup < 45  # the paper's 29x headline band
    benchmark.extra_info["qr56_speedup_vs_mkl"] = speedup
