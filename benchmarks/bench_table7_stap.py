"""Table VII: RT_STAP single-precision complex QR factorizations."""


def test_table7_stap(regenerate, benchmark):
    res = regenerate("table7")
    rows = res.data["rows"]
    speedups = [r["speedup"] for r in rows]
    assert all(s > 1.5 for s in speedups)
    assert speedups[0] == max(speedups)      # 80x16 is the headline win
    assert 10 < speedups[0] < 40             # paper: 25x
    for row in rows[1:]:
        assert 1.5 < row["speedup"] < 8      # paper: 2.8x / 3.6x
    benchmark.extra_info["speedups"] = speedups
