"""Latency microbenchmarks vs Table III, Figure 1, Figure 2."""

import pytest

from repro.gpu import G80, QUADRO_6000
from repro.microbench import (
    measure_shared_latency,
    measure_sync_latency,
    plateau_latency,
    sweep_global_latency,
    sweep_sync_latency,
)


class TestSharedLatency:
    def test_gf100_byte_variant_is_27(self):
        res = measure_shared_latency(QUADRO_6000)
        assert res.byte_variant_cycles == 27

    def test_int_and_byte_variants_agree(self):
        # Section II-C1: "our byte pointer chasing benchmark yields the
        # exact same results as our other approach".
        res = measure_shared_latency(QUADRO_6000)
        assert res.int_variant_cycles == res.byte_variant_cycles

    def test_combined_shift_plus_load_is_45(self):
        res = measure_shared_latency(QUADRO_6000)
        assert res.combined_cycles == 45

    def test_generic_ld_penalty_is_14(self):
        res = measure_shared_latency(QUADRO_6000)
        assert res.generic_ld_penalty == 14

    def test_methodology_reproduces_volkov_on_g80(self):
        res = measure_shared_latency(G80)
        assert res.latency_cycles == 36

    def test_tiny_array_rejected(self):
        with pytest.raises(ValueError):
            measure_shared_latency(QUADRO_6000, words=1)


class TestGlobalLatency:
    def test_plateau_near_570(self):
        assert plateau_latency(QUADRO_6000) == pytest.approx(570, rel=0.02)

    def test_sweep_is_broadly_increasing(self):
        sweep = sweep_global_latency(
            QUADRO_6000, strides=[1, 8, 64, 512, 4096, 1 << 15], hops=256
        )
        lats = sweep.latencies
        assert lats[0] < 160
        assert lats[-1] > 600
        assert all(b >= a - 1e-9 for a, b in zip(lats, lats[1:]))

    def test_series_axes_are_log2(self):
        sweep = sweep_global_latency(QUADRO_6000, strides=[1, 2, 4], hops=64)
        assert [x for x, _ in sweep.series()] == [0, 1, 2]

    def test_figure1_range_matches_paper(self):
        # Figure 1's y-axis spans ~0-600 cycles.
        sweep = sweep_global_latency(
            QUADRO_6000, strides=[1, 1 << 10, 1 << 16], hops=256
        )
        assert max(sweep.latencies) < 700
        assert min(sweep.latencies) > 50


class TestSyncLatency:
    def test_64_threads_is_46_cycles(self):
        assert measure_sync_latency(QUADRO_6000, 64) == 46

    def test_sweep_monotone(self):
        sweep = sweep_sync_latency(QUADRO_6000, thread_counts=range(32, 513, 32))
        assert list(sweep.latencies) == sorted(sweep.latencies)

    def test_sweep_lookup(self):
        sweep = sweep_sync_latency(QUADRO_6000, thread_counts=[64, 128])
        assert sweep.at(64) == 46
        with pytest.raises(KeyError):
            sweep.at(96)

    def test_figure2_magnitude(self):
        sweep = sweep_sync_latency(QUADRO_6000, thread_counts=[1024])
        assert 150 <= sweep.latencies[0] <= 200

    def test_series_shape(self):
        sweep = sweep_sync_latency(QUADRO_6000, thread_counts=[64, 128])
        assert sweep.series() == [(64, 46.0), (128, sweep.at(128))]


class TestBankConflicts:
    def test_sawtooth_shape(self):
        from repro.microbench import sweep_bank_conflicts

        sweep = sweep_bank_conflicts(QUADRO_6000)
        by_stride = dict(zip(sweep.strides, sweep.degrees))
        assert by_stride[1] == 1     # unit stride: conflict-free
        assert by_stride[2] == 2     # even strides conflict
        assert by_stride[32] == 32   # full serialization
        assert by_stride[17] == 1    # odd strides: conflict-free
        assert sweep.worst_stride() == 32

    def test_bandwidth_inverse_to_degree(self):
        from repro.microbench import sweep_bank_conflicts

        sweep = sweep_bank_conflicts(QUADRO_6000)
        table = dict(zip(sweep.strides, sweep.bandwidths))
        assert table[1] == pytest.approx(32 * table[32])
        assert table[1] == pytest.approx(
            QUADRO_6000.shared_banks * 4 * QUADRO_6000.shared_clock_hz
        )

    def test_g80_16_banks(self):
        from repro.gpu import G80
        from repro.microbench import sweep_bank_conflicts

        # G80 has 16 banks, so conflicts saturate at half the stride they
        # do on GF100 (the model serves the full 32-lane warp at once;
        # real G80 split it into half-warps, halving the worst degree --
        # a documented simplification).
        sweep = sweep_bank_conflicts(G80)
        by_stride = dict(zip(sweep.strides, sweep.degrees))
        assert by_stride[8] == 16
        assert by_stride[16] == 32
        assert by_stride[1] == 2  # 32 lanes over 16 banks: 2 words/bank
