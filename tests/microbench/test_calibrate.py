"""End-to-end calibration vs the published Table IV."""

import pytest

from repro.gpu import QUADRO_6000
from repro.microbench import calibrate, measure_fma_latency
from repro.model import ModelParameters


@pytest.fixture(scope="module")
def params():
    return calibrate(QUADRO_6000)


class TestCalibration:
    def test_alpha_glb_near_570(self, params):
        assert params.alpha_glb == pytest.approx(570, rel=0.02)

    def test_global_bandwidth_near_108(self, params):
        assert params.global_bandwidth / 1e9 == pytest.approx(108, rel=0.05)

    def test_alpha_sh_is_27(self, params):
        assert params.alpha_sh == 27

    def test_shared_bandwidth_near_880(self, params):
        assert params.shared_bandwidth / 1e9 == pytest.approx(880, rel=0.02)

    def test_alpha_sync_is_46(self, params):
        assert params.alpha_sync == 46

    def test_gamma_is_18(self, params):
        assert params.gamma == 18

    def test_every_parameter_within_5pct_of_paper(self, params):
        paper = ModelParameters.paper_table_iv()
        assert params.alpha_glb == pytest.approx(paper.alpha_glb, rel=0.05)
        assert params.global_bandwidth == pytest.approx(
            paper.global_bandwidth, rel=0.05
        )
        assert params.alpha_sh == pytest.approx(paper.alpha_sh, rel=0.05)
        assert params.shared_bandwidth == pytest.approx(
            paper.shared_bandwidth, rel=0.05
        )
        assert params.alpha_sync == pytest.approx(paper.alpha_sync, rel=0.05)
        assert params.gamma == pytest.approx(paper.gamma, rel=0.05)


class TestParameterObject:
    def test_betas_are_inverses(self, params):
        assert params.beta_glb == pytest.approx(1.0 / params.global_bandwidth)
        assert params.beta_sh == pytest.approx(1.0 / params.shared_bandwidth)

    def test_table_iv_rows_render(self, params):
        rows = params.as_rows()
        assert len(rows) == 6
        assert all(isinstance(k, str) and isinstance(v, str) for k, v in rows)

    def test_sync_latency_generalizes(self, params):
        assert params.sync_latency(64) == 46
        assert params.sync_latency(256) > 46

    def test_paper_preset_exact_values(self):
        paper = ModelParameters.paper_table_iv()
        assert paper.alpha_glb == 570
        assert paper.global_bandwidth == 108e9
        assert paper.alpha_sh == 27
        assert paper.shared_bandwidth == 880e9
        assert paper.alpha_sync == 46
        assert paper.gamma == 18


class TestFmaLatency:
    def test_dependent_chain_gives_pipeline_depth(self):
        assert measure_fma_latency(QUADRO_6000) == QUADRO_6000.pipeline_latency

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            measure_fma_latency(QUADRO_6000, chain=0)
