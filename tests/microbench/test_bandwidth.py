"""Bandwidth microbenchmarks vs the paper's Table II."""

import pytest

from repro.gpu import G80, QUADRO_6000
from repro.microbench import measure_global_bandwidth, measure_shared_bandwidth


class TestSharedBandwidth:
    def test_total_matches_paper_880(self):
        res = measure_shared_bandwidth(QUADRO_6000)
        assert res.total_bandwidth / 1e9 == pytest.approx(880, rel=0.02)

    def test_per_sm_matches_paper_62_8(self):
        res = measure_shared_bandwidth(QUADRO_6000)
        assert res.per_sm_bandwidth / 1e9 == pytest.approx(62.8, rel=0.02)

    def test_efficiency_is_85_percent(self):
        res = measure_shared_bandwidth(QUADRO_6000)
        assert res.efficiency == pytest.approx(0.854, abs=0.01)

    def test_never_exceeds_theoretical_peak(self):
        res = measure_shared_bandwidth(QUADRO_6000)
        assert res.total_bandwidth < QUADRO_6000.peak_shared_bandwidth

    def test_deeper_unroll_is_more_efficient(self):
        shallow = measure_shared_bandwidth(QUADRO_6000, unroll=4)
        deep = measure_shared_bandwidth(QUADRO_6000, unroll=16)
        assert deep.efficiency > shallow.efficiency

    def test_partial_warp_thread_count_rejected(self):
        with pytest.raises(ValueError):
            measure_shared_bandwidth(QUADRO_6000, threads=100)

    def test_other_device_scales_with_banks_and_clock(self):
        g80 = measure_shared_bandwidth(G80, threads=128)
        q = measure_shared_bandwidth(QUADRO_6000, threads=128)
        assert g80.total_bandwidth != q.total_bandwidth
        assert g80.total_bandwidth < G80.peak_shared_bandwidth


class TestGlobalBandwidth:
    def test_copy_matches_paper_108(self):
        res = measure_global_bandwidth(QUADRO_6000)
        assert res.copy_bandwidth / 1e9 == pytest.approx(108, rel=0.05)

    def test_memcpy_matches_paper_84(self):
        res = measure_global_bandwidth(QUADRO_6000)
        assert res.memcpy_bandwidth / 1e9 == pytest.approx(84, rel=0.05)

    def test_copy_beats_memcpy(self):
        res = measure_global_bandwidth(QUADRO_6000)
        assert res.copy_bandwidth > res.memcpy_bandwidth

    def test_copy_efficiency_near_75_percent(self):
        res = measure_global_bandwidth(QUADRO_6000)
        assert res.copy_efficiency == pytest.approx(0.75, abs=0.04)

    def test_memcpy_efficiency_near_58_percent(self):
        res = measure_global_bandwidth(QUADRO_6000)
        assert res.memcpy_efficiency == pytest.approx(0.583, abs=0.04)

    def test_functional_copy_verified(self):
        assert measure_global_bandwidth(QUADRO_6000).checksum_ok

    def test_bytes_moved_counts_read_and_write(self):
        res = measure_global_bandwidth(QUADRO_6000, array_bytes=1 << 20)
        assert res.bytes_moved == 2 * (1 << 20)

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            measure_global_bandwidth(QUADRO_6000, array_bytes=0)
