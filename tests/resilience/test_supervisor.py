"""The chunk supervisor: retries, deadlines, rebuilds, inline rescue.

End-to-end scenarios drive a real :class:`BatchRuntime` with injected
faults; the fine-grained re-execution accounting drives
:func:`supervise_pool` directly with a marker-file execute stub.
"""

import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.kernels.batched import diagonally_dominant_batch
from repro.model.flops import lu_flops
from repro.observe import metrics as metrics_mod
from repro.resilience import (
    ChunkFailedError,
    FaultSpec,
    RetryPolicy,
    supervise_pool,
    supervise_serial,
)
from repro.runtime import BatchRuntime, ProblemBatch


@pytest.fixture
def metrics_registry():
    registry = metrics_mod.MetricsRegistry()
    previous = metrics_mod.set_default_registry(registry)
    previous_flag = metrics_mod.set_metrics_enabled(True)
    yield registry
    metrics_mod.set_default_registry(previous)
    metrics_mod.set_metrics_enabled(previous_flag)


def _runtime(**kwargs):
    kwargs.setdefault("use_caches", False)
    kwargs.setdefault("chunk_cost", lu_flops(6) * 8)
    return BatchRuntime(**kwargs)


def _reference(matrices):
    return _runtime(workers=1).run(ProblemBatch.single("lu", matrices))


class TestCrashRecovery:
    def test_crashed_chunk_retried_bitwise_identical(self, metrics_registry):
        matrices = diagonally_dominant_batch(32, 6, seed=0)
        ref = _reference(matrices)
        report = _runtime(
            workers=2, faults=FaultSpec(kind="crash", chunks=(0,), count=1)
        ).run(ProblemBatch.single("lu", matrices))
        assert report.mode == "process"
        assert np.array_equal(report.output, ref.output)
        assert report.counters.snapshot() == ref.counters.snapshot()
        assert (
            metrics_registry.value(
                "repro_chunk_retries_total", op="lu", reason="crash"
            )
            == 1
        )

    def test_serial_path_retries_too(self):
        matrices = diagonally_dominant_batch(16, 6, seed=1)
        ref = _reference(matrices)
        report = _runtime(
            workers=1, faults=FaultSpec(kind="crash", chunks=(1,), count=1)
        ).run(ProblemBatch.single("lu", matrices))
        assert np.array_equal(report.output, ref.output)

    def test_exhausted_retries_raise_chunk_failed(self):
        matrices = diagonally_dominant_batch(16, 6, seed=2)
        runtime = _runtime(
            workers=1,
            retry_policy=RetryPolicy(max_retries=1, backoff_s=0.0),
            faults=FaultSpec(kind="crash", chunks=(0,), count=float("inf")),
        )
        with pytest.raises(ChunkFailedError, match="chunk 0"):
            runtime.run(ProblemBatch.single("lu", matrices))


class TestCorruptionRecovery:
    def test_checksum_mismatch_detected_and_retried(self, metrics_registry):
        matrices = diagonally_dominant_batch(32, 6, seed=3)
        ref = _reference(matrices)
        report = _runtime(
            workers=2, faults=FaultSpec(kind="corrupt", chunks=(1,), count=1)
        ).run(ProblemBatch.single("lu", matrices))
        assert np.array_equal(report.output, ref.output)
        assert (
            metrics_registry.value(
                "repro_chunk_retries_total", op="lu", reason="corrupt"
            )
            == 1
        )


class TestBrokenPoolRecovery:
    def test_killed_worker_rebuilds_pool(self, metrics_registry):
        matrices = diagonally_dominant_batch(32, 6, seed=4)
        ref = _reference(matrices)
        report = _runtime(
            workers=2, faults=FaultSpec(kind="kill", chunks=(0,), count=1)
        ).run(ProblemBatch.single("lu", matrices))
        assert report.mode == "process"
        assert np.array_equal(report.output, ref.output)
        assert (
            metrics_registry.value(
                "repro_pool_rebuilds_total", reason="broken-pool"
            )
            >= 1
        )


class TestHangRecovery:
    def test_hung_chunk_cancelled_at_deadline(self, metrics_registry):
        matrices = diagonally_dominant_batch(32, 6, seed=5)
        ref = _reference(matrices)
        report = _runtime(
            workers=2,
            retry_policy=RetryPolicy(timeout_s=1.5, backoff_s=0.0),
            faults=FaultSpec(kind="hang", chunks=(0,), count=1, sleep=60.0),
        ).run(ProblemBatch.single("lu", matrices))
        assert np.array_equal(report.output, ref.output)
        assert metrics_registry.value("repro_chunk_timeouts_total", op="lu") == 1
        assert (
            metrics_registry.value("repro_pool_rebuilds_total", reason="timeout")
            >= 1
        )


class TestInlineRescue:
    def test_pool_exhaustion_falls_back_inline(self, metrics_registry):
        # count == max_retries + 1 makes every pool attempt crash while
        # the inline rescue (the next attempt number) stays clean.
        matrices = diagonally_dominant_batch(32, 6, seed=6)
        ref = _reference(matrices)
        policy = RetryPolicy(max_retries=1, backoff_s=0.0)
        report = _runtime(
            workers=2,
            retry_policy=policy,
            faults=FaultSpec(kind="crash", chunks=(0,), count=policy.max_retries + 1),
        ).run(ProblemBatch.single("lu", matrices))
        assert np.array_equal(report.output, ref.output)
        assert metrics_registry.value("repro_chunk_inline_total", op="lu") == 1


# ----------------------------------------------------------------------
# Direct supervisor accounting with a marker-file execute stub.
# ----------------------------------------------------------------------
class _StubOutcome:
    def __init__(self, value):
        self.value = value
        self.checksum = None
        self.wall_s = 0.0
        self.queue_wait_s = 0.0
        self.output = np.asarray([value])
        self.extra = None


def _stub_execute(
    value,
    marker_dir,
    fail_chunks,
    fail_below,
    chunk_index=0,
    attempt=0,
    nchunks=1,
    faults=None,
):
    Path(marker_dir, f"exec-{chunk_index}-{attempt}-{os.getpid()}").touch()
    if chunk_index in fail_chunks and attempt < fail_below:
        raise RuntimeError(f"stub failure on chunk {chunk_index}")
    return _StubOutcome(value)


def _entries(tmp_path, n, fail_chunks=(), fail_below=1):
    return [
        (i, (i * 10, str(tmp_path), tuple(fail_chunks), fail_below))
        for i in range(n)
    ]


def _executions(tmp_path):
    """chunk index -> attempts executed, parsed from marker files."""
    seen = {}
    for name in os.listdir(tmp_path):
        if name.startswith("exec-"):
            _, chunk, attempt, _ = name.split("-")
            seen.setdefault(int(chunk), set()).add(int(attempt))
    return seen


class TestSuperviseAccounting:
    POLICY = RetryPolicy(max_retries=2, backoff_s=0.0)

    def test_completed_chunks_never_reexecuted(self, tmp_path):
        context = multiprocessing.get_context("fork")
        outcomes, stats = supervise_pool(
            _entries(tmp_path, 4, fail_chunks=(2,), fail_below=1),
            execute=_stub_execute,
            mp_context=context,
            max_workers=2,
            policy=self.POLICY,
            nchunks=4,
        )
        assert sorted(outcomes) == [0, 1, 2, 3]
        assert [outcomes[i].value for i in range(4)] == [0, 10, 20, 30]
        executions = _executions(tmp_path)
        # The victim ran twice (attempts 0 and 1); everyone else once.
        assert executions[2] == {0, 1}
        for chunk in (0, 1, 3):
            assert executions[chunk] == {0}
        assert stats.retries == 1

    def test_serial_supervisor_same_accounting(self, tmp_path):
        outcomes, stats = supervise_serial(
            _entries(tmp_path, 3, fail_chunks=(0,), fail_below=2),
            execute=_stub_execute,
            policy=self.POLICY,
            nchunks=3,
        )
        assert [outcomes[i].value for i in range(3)] == [0, 10, 20]
        executions = _executions(tmp_path)
        assert executions[0] == {0, 1, 2}
        assert executions[1] == {0} and executions[2] == {0}
        assert stats.retries == 2

    def test_on_complete_called_once_per_chunk(self, tmp_path):
        journal = []
        outcomes, _ = supervise_serial(
            _entries(tmp_path, 3, fail_chunks=(1,), fail_below=1),
            execute=_stub_execute,
            policy=self.POLICY,
            nchunks=3,
            on_complete=lambda index, outcome: journal.append(index),
        )
        assert sorted(journal) == [0, 1, 2]
        assert len(journal) == len(set(journal))

    def test_permanent_failure_identifies_chunk(self, tmp_path):
        with pytest.raises(ChunkFailedError) as excinfo:
            supervise_serial(
                _entries(tmp_path, 2, fail_chunks=(1,), fail_below=99),
                execute=_stub_execute,
                policy=RetryPolicy(max_retries=1, backoff_s=0.0),
                nchunks=2,
            )
        assert excinfo.value.index == 1
        assert excinfo.value.reason == "crash"
