"""The fault-injection harness: parsing, determinism, activation."""

import numpy as np
import pytest

from repro.resilience import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    parse_faults,
    plan_from_env,
)
from repro.resilience.faults import resolve_faults


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_explicit_victims_pass_through(self):
        spec = FaultSpec(kind="crash", chunks=(0, 3, 99))
        assert spec.victims(nchunks=5) == {0, 3}  # out-of-range dropped

    def test_sampled_victims_are_deterministic(self):
        spec = FaultSpec(kind="crash", rate=0.5, seed=7)
        assert spec.victims(16) == spec.victims(16)
        assert spec.victims(16) != FaultSpec(kind="crash", rate=0.5, seed=8).victims(
            16
        )

    def test_fires_only_below_count(self):
        spec = FaultSpec(kind="crash", chunks=(2,), count=2)
        assert spec.fires(2, 0, 4)
        assert spec.fires(2, 1, 4)
        assert not spec.fires(2, 2, 4)  # retries past count succeed
        assert not spec.fires(1, 0, 4)

    def test_rate_zero_selects_nobody(self):
        assert FaultSpec(kind="crash", rate=0.0).victims(64) == set()

    def test_rate_one_selects_everybody(self):
        assert FaultSpec(kind="crash", rate=1.0).victims(5) == {0, 1, 2, 3, 4}


class TestParsing:
    def test_full_grammar(self):
        plan = parse_faults("crash@0;hang@2:sleep=30;corrupt:rate=0.25,seed=7")
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["crash", "hang", "corrupt"]
        assert plan.specs[0].chunks == (0,)
        assert plan.specs[1].sleep == 30.0
        assert plan.specs[2].rate == 0.25 and plan.specs[2].seed == 7

    def test_count_inf(self):
        plan = parse_faults("crash@1:count=inf")
        assert plan.specs[0].fires(1, 10_000, 4)

    def test_multi_chunk_list(self):
        plan = parse_faults("kill@1,3,5")
        assert plan.specs[0].chunks == (1, 3, 5)

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            parse_faults("crash:warp=9")

    def test_every_kind_parses(self):
        for kind in FAULT_KINDS:
            assert parse_faults(f"{kind}@0").specs[0].kind == kind


class TestActivation:
    def test_env_activation(self):
        assert plan_from_env({"REPRO_FAULTS": "crash@0"}) == FaultPlan(
            (FaultSpec(kind="crash", chunks=(0,)),)
        )
        assert plan_from_env({}) is None
        assert plan_from_env({"REPRO_FAULTS": "  "}) is None

    def test_resolve_normalizes_every_form(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        spec = FaultSpec(kind="crash", chunks=(0,))
        assert resolve_faults(None) is None
        assert resolve_faults(spec) == FaultPlan((spec,))
        assert resolve_faults("crash@0") == FaultPlan((spec,))
        assert resolve_faults([spec]) == FaultPlan((spec,))
        assert resolve_faults(FaultPlan(())) is None

    def test_resolve_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt@2")
        plan = resolve_faults(None)
        assert plan is not None and plan.specs[0].kind == "corrupt"


class TestWorkerHooks:
    def test_crash_hook_raises_injected_crash(self):
        from repro.resilience import InjectedCrash

        plan = FaultPlan((FaultSpec(kind="crash", chunks=(1,)),))
        plan.apply_pre(0, 0, 4)  # not a victim: no-op
        with pytest.raises(InjectedCrash):
            plan.apply_pre(1, 0, 4)

    def test_corrupt_hook_changes_bytes_without_mutating_input(self):
        plan = FaultPlan((FaultSpec(kind="corrupt", chunks=(0,)),))
        original = np.arange(32, dtype=float).reshape(2, 4, 4) + 1.0
        keep = original.copy()
        mangled = plan.apply_corrupt(0, 0, 1, original)
        assert not np.array_equal(mangled, original)
        assert np.array_equal(original, keep)
        untouched = plan.apply_corrupt(0, 1, 1, original)  # count exhausted
        assert untouched is original

    def test_truncate_hook_halves_file(self, tmp_path):
        plan = FaultPlan((FaultSpec(kind="truncate", chunks=(0,)),))
        path = tmp_path / "doc.bin"
        path.write_bytes(b"x" * 100)
        assert plan.mangle_file(path, chunk=0)
        assert path.stat().st_size == 50
        path.write_bytes(b"x" * 100)
        assert not plan.mangle_file(path, chunk=1)
        assert path.stat().st_size == 100
