"""Property test: recovery never changes surviving problems' bytes.

For *any* injected subset of failing chunks (crash faults, the cheap
deterministic stand-in for every retry path) and any subset of singular
problems, the supervised runtime must (a) merge every surviving problem
bitwise-identical to the all-serial unfaulted run and (b) report exactly
the injected singular victims on ``BatchReport.failures``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels.batched import diagonally_dominant_batch
from repro.model.flops import lu_flops
from repro.resilience import FaultSpec, RetryPolicy
from repro.runtime import BatchRuntime, ProblemBatch, plan_chunks

N = 6
BATCH = 24
CHUNK_PROBLEMS = 5  # 24/5 -> 5 chunks, the last one short
CHUNK_COST = lu_flops(N) * CHUNK_PROBLEMS


def _batch(seed, singular):
    matrices = diagonally_dominant_batch(BATCH, N, seed=seed)
    for index in singular:
        matrices[index] = 0.0
    return matrices


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    crash_chunks=st.sets(st.integers(min_value=0, max_value=4), max_size=3),
    singular=st.sets(st.integers(min_value=0, max_value=BATCH - 1), max_size=4),
    workers=st.sampled_from([1, 2]),
)
def test_surviving_problems_bitwise_identical(seed, crash_chunks, singular, workers):
    matrices = _batch(seed, singular)
    problems = ProblemBatch.single("lu", matrices)
    assert len(plan_chunks(problems, CHUNK_COST)) == 5

    serial_clean = BatchRuntime(
        workers=1, chunk_cost=CHUNK_COST, use_caches=False, resilience=False
    ).run(ProblemBatch.single("lu", diagonally_dominant_batch(BATCH, N, seed=seed)))

    faults = (
        [FaultSpec(kind="crash", chunks=tuple(sorted(crash_chunks)), count=1)]
        if crash_chunks
        else []
    )
    report = BatchRuntime(
        workers=workers,
        chunk_cost=CHUNK_COST,
        use_caches=False,
        retry_policy=RetryPolicy(max_retries=2, backoff_s=0.0),
        faults=faults,
    ).run(problems)

    # (b) failures index exactly the injected singular victims.
    assert [f.index for f in report.failures] == sorted(singular)
    assert all(f.reason == "zero-pivot" for f in report.failures)

    # (a) survivors merge bitwise-identical to the clean serial run;
    # quarantined slots are fully NaN-masked.
    for index in range(BATCH):
        if index in singular:
            assert np.isnan(report.output[index]).all()
        else:
            assert np.array_equal(report.output[index], serial_clean.output[index])
