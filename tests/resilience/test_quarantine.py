"""Numerical quarantine: singular problems fail their slot, not the batch."""

import numpy as np
import pytest

from repro.kernels.batched import diagonally_dominant_batch
from repro.runtime import BatchRuntime, ProblemBatch
from repro.resilience import ProblemFailure, scan_output


def _runtime(tmp_path, **kwargs):
    kwargs.setdefault("use_caches", False)
    kwargs.setdefault("workers", 1)
    return BatchRuntime(**kwargs)


def _spd_batch(batch, n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((batch, n, n))
    return a @ a.transpose(0, 2, 1) + n * np.eye(n)


class TestLuQuarantine:
    def test_singular_problems_complete_with_failures(self, tmp_path):
        matrices = diagonally_dominant_batch(20, 6, seed=0)
        matrices[4] = 0.0
        matrices[17] = 0.0
        clean = diagonally_dominant_batch(20, 6, seed=0)

        report = _runtime(tmp_path).run(ProblemBatch.single("lu", matrices))

        assert [(f.index, f.reason) for f in report.failures] == [
            (4, "zero-pivot"),
            (17, "zero-pivot"),
        ]
        assert report.summary()["failures"] == 2
        assert np.isnan(report.output[4]).all()
        assert np.isnan(report.output[17]).all()
        # Surviving slots are bitwise what a clean batch produces.
        survivors = [i for i in range(20) if i not in (4, 17)]
        clean_out = _runtime(tmp_path).run(ProblemBatch.single("lu", clean)).output
        assert np.array_equal(report.output[survivors], clean_out[survivors])

    def test_failures_span_chunk_boundaries(self, tmp_path):
        from repro.model.flops import lu_flops

        matrices = diagonally_dominant_batch(24, 6, seed=1)
        for index in (0, 9, 23):
            matrices[index] = 0.0
        report = _runtime(tmp_path, chunk_cost=lu_flops(6) * 5).run(
            ProblemBatch.single("lu", matrices)
        )
        assert report.chunks > 1
        assert [f.index for f in report.failures] == [0, 9, 23]

    def test_failure_record_shape(self, tmp_path):
        matrices = diagonally_dominant_batch(4, 5, seed=2)
        matrices[1] = 0.0
        report = _runtime(tmp_path).run(ProblemBatch.single("lu", matrices))
        (failure,) = report.failures
        assert isinstance(failure, ProblemFailure)
        assert failure.to_dict() == {
            "op": "lu",
            "group": 0,
            "index": 1,
            "reason": "zero-pivot",
        }
        assert "lu" in str(failure)


class TestCholeskyQuarantine:
    def test_non_psd_input_quarantined(self, tmp_path):
        matrices = _spd_batch(10, 5, seed=3)
        matrices[6] = -np.eye(5)  # decisively not PSD
        report = _runtime(tmp_path).run(ProblemBatch.single("cholesky", matrices))
        assert [(f.index, f.reason) for f in report.failures] == [
            (6, "not-positive-definite")
        ]
        assert np.isnan(report.output[6]).all()
        assert np.isfinite(report.output[5]).all()


class TestScanOutput:
    def test_unknown_op_falls_back_to_nonfinite_scan(self):
        output = np.ones((3, 2, 2))
        output[1, 0, 0] = np.inf
        assert scan_output("mystery-op", output, None) == {1: "non-finite"}

    def test_clean_output_reports_nothing(self):
        assert scan_output("lu", np.ones((4, 3, 3)), None) == {}


class TestBitwiseNeutrality:
    def test_quarantine_off_path_identical(self, tmp_path):
        # resilience=False must reproduce today's behavior exactly:
        # no NaN masking, no failure records.
        matrices = diagonally_dominant_batch(8, 5, seed=4)
        matrices[2] = 0.0
        report = _runtime(tmp_path, resilience=False).run(
            ProblemBatch.single("lu", matrices)
        )
        assert report.failures == []

    def test_clean_batch_untouched(self, tmp_path):
        matrices = diagonally_dominant_batch(12, 6, seed=5)
        on = _runtime(tmp_path).run(ProblemBatch.single("lu", matrices))
        off = _runtime(tmp_path, resilience=False).run(
            ProblemBatch.single("lu", matrices)
        )
        assert on.failures == []
        assert np.array_equal(on.output, off.output)
