"""Chaos suite: every recovery path, demonstrated under injected faults.

CI's ``chaos`` job runs this module across a seed x fault-kind matrix::

    REPRO_CHAOS_SEED=7 REPRO_CHAOS_KIND=crash REPRO_CHAOS_REPORT=out.json \\
        pytest tests/resilience/test_chaos.py

``REPRO_CHAOS_KIND`` selects one scenario family (``crash`` / ``kill`` /
``hang`` / ``corrupt`` / ``truncate`` / ``all``, the default); the JSON
report written to ``REPRO_CHAOS_REPORT`` records, per scenario, the
recovery events observed and whether the output was bitwise-identical to
the unfaulted serial run.
"""

import json
import os

import numpy as np
import pytest

from repro.kernels.batched import diagonally_dominant_batch
from repro.model.flops import lu_flops
from repro.observe import metrics as metrics_mod
from repro.resilience import FaultSpec, RetryPolicy
from repro.runtime import BatchRuntime, ProblemBatch

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
KIND = os.environ.get("REPRO_CHAOS_KIND", "all")
REPORT = os.environ.get("REPRO_CHAOS_REPORT", "")

N = 6
BATCH = 40
CHUNK_COST = lu_flops(N) * 8  # 5 chunks

#: scenario name -> (fault spec under test, retry policy)
SCENARIOS = {
    "crash": (
        FaultSpec(kind="crash", rate=0.5, seed=SEED, count=1),
        RetryPolicy(max_retries=2, backoff_s=0.0),
    ),
    "kill": (
        FaultSpec(kind="kill", chunks=(SEED % 5,), count=1),
        RetryPolicy(max_retries=2, backoff_s=0.0),
    ),
    "hang": (
        FaultSpec(kind="hang", chunks=(SEED % 5,), count=1, sleep=120.0),
        RetryPolicy(max_retries=2, backoff_s=0.0, timeout_s=2.0),
    ),
    "corrupt": (
        FaultSpec(kind="corrupt", rate=0.5, seed=SEED, count=1),
        RetryPolicy(max_retries=2, backoff_s=0.0),
    ),
}

_results = []


def _selected(name):
    return KIND in ("all", name)


def _record(name, **payload):
    _results.append({"scenario": name, "seed": SEED, **payload})


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    yield
    if REPORT:
        with open(REPORT, "w") as handle:
            json.dump(
                {"seed": SEED, "kind": KIND, "results": _results},
                handle,
                indent=2,
            )
            handle.write("\n")


@pytest.fixture
def metrics_registry():
    registry = metrics_mod.MetricsRegistry()
    previous = metrics_mod.set_default_registry(registry)
    previous_flag = metrics_mod.set_metrics_enabled(True)
    yield registry
    metrics_mod.set_default_registry(previous)
    metrics_mod.set_metrics_enabled(previous_flag)


def _reference(matrices):
    return BatchRuntime(
        workers=1, chunk_cost=CHUNK_COST, use_caches=False, resilience=False
    ).run(ProblemBatch.single("lu", matrices))


def _resilience_events(registry):
    names = (
        "repro_chunk_retries_total",
        "repro_chunk_timeouts_total",
        "repro_chunk_inline_total",
        "repro_pool_rebuilds_total",
        "repro_resume_chunks_skipped_total",
    )
    return {name: registry.sum_series(name) for name in names}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fault_recovery_is_bitwise(name, metrics_registry):
    if not _selected(name):
        pytest.skip(f"REPRO_CHAOS_KIND={KIND} excludes {name}")
    spec, policy = SCENARIOS[name]
    matrices = diagonally_dominant_batch(BATCH, N, seed=SEED)
    ref = _reference(matrices)
    report = BatchRuntime(
        workers=2,
        chunk_cost=CHUNK_COST,
        use_caches=False,
        faults=spec,
        retry_policy=policy,
    ).run(ProblemBatch.single("lu", matrices))
    identical = bool(np.array_equal(report.output, ref.output))
    counters_equal = report.counters.snapshot() == ref.counters.snapshot()
    _record(
        name,
        identical=identical,
        counters_equal=counters_equal,
        mode=report.mode,
        events=_resilience_events(metrics_registry),
        passed=identical and counters_equal,
    )
    assert identical and counters_equal


def test_truncated_checkpoint_recovers(tmp_path, metrics_registry):
    if not _selected("truncate"):
        pytest.skip(f"REPRO_CHAOS_KIND={KIND} excludes truncate")
    matrices = diagonally_dominant_batch(BATCH, N, seed=SEED)
    ref = _reference(matrices)
    # Every journal write for chunk 0 is truncated at the disk.
    runtime = BatchRuntime(
        workers=1,
        chunk_cost=CHUNK_COST,
        use_caches=False,
        checkpoint=tmp_path / "ck",
        faults=FaultSpec(kind="truncate", chunks=(0,), count=float("inf")),
    )
    report = runtime.run(ProblemBatch.single("lu", matrices))
    identical = bool(np.array_equal(report.output, ref.output))
    _record(
        "truncate",
        identical=identical,
        mode=report.mode,
        events=_resilience_events(metrics_registry),
        passed=identical,
    )
    assert identical
