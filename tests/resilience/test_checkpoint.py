"""Checkpoint/resume: journaled chunks are skipped, corrupt files are misses."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.kernels.batched import diagonally_dominant_batch
from repro.model.flops import lu_flops
from repro.observe import metrics as metrics_mod
from repro.resilience import CheckpointStore, FaultSpec, batch_fingerprint
from repro.runtime import BatchRuntime, ProblemBatch, plan_chunks
from repro.runtime.executor import _execute_chunk

CHUNK_COST = lu_flops(6) * 8


@pytest.fixture
def metrics_registry():
    registry = metrics_mod.MetricsRegistry()
    previous = metrics_mod.set_default_registry(registry)
    previous_flag = metrics_mod.set_metrics_enabled(True)
    yield registry
    metrics_mod.set_default_registry(previous)
    metrics_mod.set_metrics_enabled(previous_flag)


def _runtime(ckpt_dir, **kwargs):
    kwargs.setdefault("use_caches", False)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("chunk_cost", CHUNK_COST)
    return BatchRuntime(checkpoint=ckpt_dir, **kwargs)


def _journal_some(runtime, batch, matrices, indices):
    """Journal chunks ``indices`` exactly as a partial run would have."""
    kwargs = {"device": runtime.device}
    fingerprint = batch_fingerprint(batch, runtime.chunk_cost, kwargs)
    chunks = plan_chunks(batch, runtime.chunk_cost)
    for index in indices:
        chunk = chunks[index]
        outcome = _execute_chunk(
            "lu", matrices[chunk.start : chunk.stop], kwargs, False
        )
        runtime.checkpoint.record(fingerprint, index, outcome)
    return fingerprint, chunks


class TestResume:
    def test_partial_journal_resumes_bitwise(self, tmp_path, metrics_registry):
        matrices = diagonally_dominant_batch(32, 6, seed=0)
        batch = ProblemBatch.single("lu", matrices)
        ref = BatchRuntime(workers=1, chunk_cost=CHUNK_COST, use_caches=False).run(
            batch
        )

        runtime = _runtime(tmp_path / "ck")
        _journal_some(runtime, batch, matrices, indices=(0, 2))
        report = runtime.run(batch)

        assert np.array_equal(report.output, ref.output)
        assert report.counters.snapshot() == ref.counters.snapshot()
        assert (
            metrics_registry.value("repro_resume_chunks_skipped_total") == 2
        )
        # The journal is cleared after a successful merge.
        assert len(runtime.checkpoint) == 0

    def test_full_journal_reports_resumed_mode(self, tmp_path):
        matrices = diagonally_dominant_batch(32, 6, seed=1)
        batch = ProblemBatch.single("lu", matrices)
        ref = BatchRuntime(workers=1, chunk_cost=CHUNK_COST, use_caches=False).run(
            batch
        )
        runtime = _runtime(tmp_path / "ck")
        _, chunks = _journal_some(
            runtime, batch, matrices, indices=range(len(plan_chunks(batch, CHUNK_COST)))
        )
        report = runtime.run(batch)
        assert report.mode == "resumed"
        assert np.array_equal(report.output, ref.output)

    def test_foreign_fingerprint_is_stale_and_reexecutes(self, tmp_path):
        matrices = diagonally_dominant_batch(32, 6, seed=2)
        batch = ProblemBatch.single("lu", matrices)
        runtime = _runtime(tmp_path / "ck")
        _journal_some(runtime, batch, matrices, indices=(0,))

        tweaked = matrices.copy()
        tweaked[0, 0, 0] += 1.0  # one operand bit: new fingerprint
        other = ProblemBatch.single("lu", tweaked)
        ref = BatchRuntime(workers=1, chunk_cost=CHUNK_COST, use_caches=False).run(
            other
        )
        report = runtime.run(other)
        assert np.array_equal(report.output, ref.output)

    def test_truncated_journal_is_a_cold_miss(self, tmp_path, metrics_registry):
        matrices = diagonally_dominant_batch(32, 6, seed=3)
        batch = ProblemBatch.single("lu", matrices)
        runtime = _runtime(tmp_path / "ck")
        fingerprint, _ = _journal_some(runtime, batch, matrices, indices=(0,))

        path = runtime.checkpoint.path_for(0)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])

        assert runtime.checkpoint.resume(fingerprint) == {}
        assert (
            metrics_registry.value("repro_cache_corrupt_total", cache="checkpoint")
            == 1
        )
        assert not path.exists()  # the corpse is removed

        ref = BatchRuntime(workers=1, chunk_cost=CHUNK_COST, use_caches=False).run(
            batch
        )
        report = runtime.run(batch)
        assert np.array_equal(report.output, ref.output)

    def test_truncate_fault_mangles_journal_writes(self, tmp_path, metrics_registry):
        from repro.resilience import FaultPlan

        store = CheckpointStore(
            tmp_path / "ck",
            faults=FaultPlan((FaultSpec(kind="truncate", chunks=(0,)),)),
        )
        matrices = diagonally_dominant_batch(8, 6, seed=4)
        outcome = _execute_chunk("lu", matrices, {}, False)
        store.record("fp", 0, outcome)
        assert store.resume("fp") == {}  # truncated at write -> cold miss
        assert (
            metrics_registry.value("repro_cache_corrupt_total", cache="checkpoint")
            == 1
        )


class TestKilledRunResume:
    SCRIPT = """
import sys
import numpy as np
from repro.kernels.batched import diagonally_dominant_batch
from repro.model.flops import lu_flops
from repro.runtime import BatchRuntime, ProblemBatch

ckpt = sys.argv[1]
matrices = diagonally_dominant_batch(48, 6, seed=9)
runtime = BatchRuntime(
    workers=2,
    chunk_cost=lu_flops(6) * 8,
    use_caches=False,
    checkpoint=ckpt,
    faults="hang@5:sleep=600",  # the last chunk hangs forever
)
runtime.run(ProblemBatch.single("lu", matrices))
"""

    def test_sigkilled_run_resumes_to_bitwise_output(self, tmp_path, metrics_registry):
        ckpt = tmp_path / "ck"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", self.SCRIPT, str(ckpt)], env=env
        )
        try:
            # Wait until some chunks are journaled, then kill mid-run.
            deadline = time.time() + 60
            while time.time() < deadline:
                if len(list(ckpt.glob("chunk-*.ckpt"))) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail(f"victim exited early ({proc.returncode})")
                time.sleep(0.1)
            else:
                pytest.fail("victim never journaled a chunk")
        finally:
            proc.kill()
            proc.wait()

        journaled = len(list(ckpt.glob("chunk-*.ckpt")))
        assert journaled >= 2

        matrices = diagonally_dominant_batch(48, 6, seed=9)
        batch = ProblemBatch.single("lu", matrices)
        ref = BatchRuntime(
            workers=1, chunk_cost=lu_flops(6) * 8, use_caches=False
        ).run(batch)
        resumed = BatchRuntime(
            workers=2, chunk_cost=lu_flops(6) * 8, use_caches=False, checkpoint=ckpt
        ).run(batch)
        assert np.array_equal(resumed.output, ref.output)
        assert resumed.counters.snapshot() == ref.counters.snapshot()
        assert (
            metrics_registry.value("repro_resume_chunks_skipped_total") == journaled
        )
