"""RetryPolicy: backoff schedule and validation."""

import pytest

from repro.resilience import DEFAULT_RETRY_POLICY, RetryPolicy


class TestRetryPolicy:
    def test_default_has_no_deadline(self):
        # The failure-free path must behave exactly like the
        # unsupervised runtime; a default deadline could fire spuriously
        # on a loaded CI machine.
        assert DEFAULT_RETRY_POLICY.timeout_s is None
        assert DEFAULT_RETRY_POLICY.max_retries >= 1

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_cap_s=0.35)
        assert policy.backoff_delay(0) == 0.0  # first attempt never waits
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.35)  # capped
        assert policy.backoff_delay(9) == pytest.approx(0.35)

    def test_zero_base_disables_backoff(self):
        policy = RetryPolicy(backoff_s=0.0)
        assert policy.backoff_delay(5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
